//! Offline stand-in for the `parking_lot` crate, backed by `std::sync`.
//!
//! The build container has no network access to crates.io, so the workspace
//! vendors a small API-compatible subset: `Mutex`, `RwLock`, and `Condvar`
//! with the parking_lot calling convention (no `Result`-wrapped guards, no
//! poisoning). Poisoned std locks are recovered transparently, matching
//! parking_lot's semantics of never poisoning.

use std::fmt;
use std::sync::PoisonError;
use std::time::Duration;

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion primitive with parking_lot's panic-free `lock()`.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Mutex").field(&self.0).finish()
    }
}

/// Reader-writer lock with parking_lot's panic-free `read()`/`write()`.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("RwLock").field(&self.0).finish()
    }
}

/// Condition variable paired with [`Mutex`].
#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        replace_guard(guard, |g| self.0.wait(g).unwrap_or_else(PoisonError::into_inner));
    }

    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: Duration) -> WaitTimeoutResult {
        let mut timed_out = false;
        replace_guard(guard, |g| {
            let (g, res) = self
                .0
                .wait_timeout(g, timeout)
                .unwrap_or_else(PoisonError::into_inner);
            timed_out = res.timed_out();
            g
        });
        WaitTimeoutResult(timed_out)
    }
}

/// Outcome of [`Condvar::wait_for`].
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

fn replace_guard<'a, T>(
    slot: &mut MutexGuard<'a, T>,
    f: impl FnOnce(MutexGuard<'a, T>) -> MutexGuard<'a, T>,
) {
    // Temporarily move the guard out of the slot so std's by-value wait API
    // can consume it; `forget`/re-init tricks are not needed because we
    // always put a guard back before returning.
    unsafe {
        let taken = std::ptr::read(slot);
        let new = f(taken);
        std::ptr::write(slot, new);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn lock_survives_panicking_holder() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: no poisoning observable by later lockers.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
