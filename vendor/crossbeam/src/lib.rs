//! Offline stand-in for the `crossbeam` facade crate.
//!
//! The build container cannot reach crates.io, so the workspace vendors the
//! small slice of crossbeam it actually uses:
//!
//! * [`channel`] — MPMC-flavoured channels; here backed by `std::sync::mpsc`
//!   (the workspace only ever uses single-consumer patterns).
//! * [`thread`] — scoped threads; here backed by `std::thread::scope`, which
//!   has subsumed crossbeam's original raison d'être since Rust 1.63.

pub mod channel {
    //! Channel shim over `std::sync::mpsc` with crossbeam's spelling.

    use std::fmt;
    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// Sending half of a channel. Unifies std's `Sender`/`SyncSender` so
    /// `bounded` and `unbounded` return the same type, as crossbeam does.
    pub enum Sender<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match self {
                Sender::Unbounded(tx) => tx.send(value),
                Sender::Bounded(tx) => tx.send(value),
            }
        }

        pub fn try_send(&self, value: T) -> Result<(), SendError<T>> {
            match self {
                Sender::Unbounded(tx) => tx.send(value),
                Sender::Bounded(tx) => tx.try_send(value).map_err(|e| match e {
                    mpsc::TrySendError::Full(v) => SendError(v),
                    mpsc::TrySendError::Disconnected(v) => SendError(v),
                }),
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            match self {
                Sender::Unbounded(tx) => Sender::Unbounded(tx.clone()),
                Sender::Bounded(tx) => Sender::Bounded(tx.clone()),
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    /// Receiving half of a channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }

        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.0.iter()
        }

        pub fn try_iter(&self) -> mpsc::TryIter<'_, T> {
            self.0.try_iter()
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// Channel with unbounded capacity.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender::Unbounded(tx), Receiver(rx))
    }

    /// Channel with a fixed capacity (`0` gives a rendezvous channel).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender::Bounded(tx), Receiver(rx))
    }
}

pub mod thread {
    //! Scoped-thread shim over `std::thread::scope` with crossbeam's
    //! closure signature (`spawn` passes the scope back in).

    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// A scope handle mirroring `crossbeam::thread::Scope`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle(inner.spawn(move || f(&Scope { inner })))
        }
    }

    /// Join handle for a scoped thread.
    pub struct ScopedJoinHandle<'scope, T>(std::thread::ScopedJoinHandle<'scope, T>);

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        #[allow(clippy::missing_errors_doc)]
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.0.join()
        }
    }

    /// Run `f` with a scope that joins all spawned threads before returning.
    /// Returns `Err` if `f` or any un-joined child thread panicked, matching
    /// crossbeam's contract.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: FnOnce(&Scope<'_, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    use std::time::Duration;

    #[test]
    fn channels_roundtrip() {
        let (tx, rx) = super::channel::unbounded();
        tx.send(7u32).unwrap();
        assert_eq!(rx.try_recv().unwrap(), 7);
        assert!(rx.try_recv().is_err());

        let (tx, rx) = super::channel::bounded(1);
        tx.send("x").unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)).unwrap(), "x");
    }

    #[test]
    fn scoped_threads_join_and_borrow() {
        let data = vec![1u64, 2, 3];
        let total = super::thread::scope(|s| {
            let handles: Vec<_> = data
                .iter()
                .map(|&x| s.spawn(move |_| x * 2))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(total, 12);
    }

    #[test]
    fn scope_reports_child_panic() {
        let res = super::thread::scope(|s| {
            s.spawn(|_| panic!("child down"));
        });
        assert!(res.is_err());
    }
}
