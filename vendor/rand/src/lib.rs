//! Offline stand-in for the `rand` crate (0.10-flavoured API subset).
//!
//! The build container cannot reach crates.io, so the workspace vendors the
//! slice of `rand` it actually uses: `rand::rng()`, the `Rng` byte/word
//! source trait, the `RngExt` sampling extension (`random_range`,
//! `random_bool`), and `rngs::StdRng` + `SeedableRng::seed_from_u64` for
//! deterministic topologies.
//!
//! The generator is xoshiro256++ (public domain, Blackman & Vigna) with
//! splitmix64 seed expansion — statistically strong and fast. `rng()` seeds
//! from `/dev/urandom` (falling back to ASLR/time entropy), which is
//! adequate for this testbed's key generation; a production deployment
//! would swap in getrandom-backed OS entropy.

use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

pub mod rngs {
    pub use crate::StdRng;
}

/// A source of random 64-bit words and bytes.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

/// Extension methods for sampling typed values; blanket-implemented for
/// every [`Rng`], mirroring rand's `Rng`/`RngExt` split.
pub trait RngExt: Rng {
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(&mut || self.next_u64())
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Ranges a value can be uniformly sampled from.
pub trait SampleRange<T> {
    fn sample_from(self, word: &mut dyn FnMut() -> u64) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from(self, word: &mut dyn FnMut() -> u64) -> f64 {
        assert!(self.start < self.end, "empty f64 sample range");
        self.start + unit_f64(word()) * (self.end - self.start)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, word: &mut dyn FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "empty integer sample range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift (Lemire) keeps bias below 2^-64 per draw.
                let hi = ((word() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, u16, u8);

impl SampleRange<i64> for Range<i64> {
    fn sample_from(self, word: &mut dyn FnMut() -> u64) -> i64 {
        assert!(self.start < self.end, "empty i64 sample range");
        let span = self.end.wrapping_sub(self.start) as u64;
        let hi = ((word() as u128 * span as u128) >> 64) as u64;
        self.start.wrapping_add(hi as i64)
    }
}

/// Seedable generators, rand-style (only the u64 entry point is needed).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn unit_f64(word: u64) -> f64 {
    // 53 uniform mantissa bits in [0, 1).
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[derive(Clone, Debug)]
struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    fn from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Xoshiro256 { s }
    }

    fn next(&mut self) -> u64 {
        // xoshiro256++
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Deterministic seedable generator (`rand::rngs::StdRng` stand-in).
#[derive(Clone, Debug)]
pub struct StdRng(Xoshiro256);

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        StdRng(Xoshiro256::from_u64(state))
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next()
    }
}

/// Process-entropy generator returned by [`rng()`].
#[derive(Clone, Debug)]
pub struct ThreadRng(Xoshiro256);

impl Rng for ThreadRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next()
    }
}

fn entropy_base() -> u64 {
    static BASE: OnceLock<u64> = OnceLock::new();
    *BASE.get_or_init(|| {
        use std::io::Read;
        if let Ok(mut f) = std::fs::File::open("/dev/urandom") {
            let mut buf = [0u8; 8];
            if f.read_exact(&mut buf).is_ok() {
                return u64::from_le_bytes(buf);
            }
        }
        // Fallback entropy: hasher randomness + time + address-space layout.
        use std::hash::{BuildHasher, Hasher};
        let mut h = std::collections::hash_map::RandomState::new().build_hasher();
        h.write_u128(
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos())
                .unwrap_or(0),
        );
        h.write_usize(&BASE as *const _ as usize);
        h.finish()
    })
}

/// Returns a fresh generator seeded from process entropy
/// (`rand::rng()` / the old `thread_rng()`).
pub fn rng() -> ThreadRng {
    static CTR: AtomicU64 = AtomicU64::new(0);
    let mut mix = entropy_base() ^ CTR.fetch_add(1, Ordering::Relaxed).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    let seed = splitmix64(&mut mix);
    ThreadRng(Xoshiro256::from_u64(seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn std_rng_is_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        assert!((0..8).any(|_| c.next_u64() != xs[0]));
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let f = r.random_range(0.5..2.0);
            assert!((0.5..2.0).contains(&f));
            let u = r.random_range(0usize..10);
            assert!(u < 10);
            let i = r.random_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| r.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }

    #[test]
    fn fill_bytes_covers_partial_words() {
        let mut r = StdRng::seed_from_u64(1);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn process_rngs_differ() {
        let mut a = rng();
        let mut b = rng();
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }
}
