//! Offline stand-in for the `criterion` crate.
//!
//! The build container cannot reach crates.io, so the workspace vendors a
//! minimal wall-clock harness exposing the criterion API subset the bench
//! files use: `criterion_group!`/`criterion_main!`, `Criterion::benchmark_group`,
//! `sample_size`, `throughput`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, and `Bencher::iter`.
//!
//! Statistics are deliberately simple — warmup, then a fixed number of
//! timed iterations, reporting mean/min ns per iteration — enough to
//! compare hot-path deltas between commits without the full
//! bootstrap/outlier machinery.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation; recorded and echoed in the report line.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// A benchmark identifier: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_id: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{function_id}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Accepts both `&str` and [`BenchmarkId`] where criterion does.
pub trait IntoBenchmarkId {
    fn into_label(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

impl IntoBenchmarkId for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_label(self) -> String {
        self
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    warmup: Duration,
    results: Vec<Duration>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warmup: run until the warmup budget elapses at least once.
        let warm_start = Instant::now();
        loop {
            black_box(routine());
            if warm_start.elapsed() >= self.warmup {
                break;
            }
        }
        // Measure: batch iterations so per-sample timing overhead stays
        // negligible for nanosecond-scale routines.
        let probe = Instant::now();
        black_box(routine());
        let once = probe.elapsed();
        let batch = if once < Duration::from_micros(50) {
            (Duration::from_micros(200).as_nanos() / once.as_nanos().max(1)).clamp(1, 10_000) as u32
        } else {
            1
        };
        self.results.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.results.push(start.elapsed() / batch);
        }
    }

    fn report(&self) -> Option<(Duration, Duration)> {
        if self.results.is_empty() {
            return None;
        }
        let min = *self.results.iter().min().unwrap();
        let total: Duration = self.results.iter().sum();
        Some((total / self.results.len() as u32, min))
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn measurement_time(&mut self, _time: Duration) -> &mut Self {
        self
    }

    pub fn warm_up_time(&mut self, _time: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_label());
        run_one(label, self.sample_size, self.throughput, |b| routine(b));
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_label());
        run_one(label, self.sample_size, self.throughput, |b| routine(b, input));
        self
    }

    pub fn finish(self) {
        let _ = self.criterion;
    }
}

fn run_one(
    label: String,
    samples: usize,
    throughput: Option<Throughput>,
    mut routine: impl FnMut(&mut Bencher),
) {
    let mut bencher = Bencher {
        samples: samples.min(60),
        warmup: Duration::from_millis(20),
        results: Vec::new(),
    };
    routine(&mut bencher);
    let mut line = format!("bench {label:<56}");
    match bencher.report() {
        Some((mean, min)) => {
            let _ = write!(line, " mean {:>12} min {:>12}", fmt_ns(mean), fmt_ns(min));
            if let Some(tp) = throughput {
                let per_sec = |count: u64| count as f64 / mean.as_secs_f64().max(1e-12);
                match tp {
                    Throughput::Bytes(n) => {
                        let _ = write!(line, "  ({:.1} MiB/s)", per_sec(n) / (1024.0 * 1024.0));
                    }
                    Throughput::Elements(n) => {
                        let _ = write!(line, "  ({:.0} elem/s)", per_sec(n));
                    }
                }
            }
        }
        None => line.push_str(" (no samples: routine never called iter)"),
    }
    println!("{line}");
}

fn fmt_ns(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 10_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else if ns >= 10_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Benchmark driver; one per `criterion_group!` function list.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 30,
            throughput: None,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name.to_string(), 30, None, |b| routine(b));
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_group_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(5).throughput(Throughput::Bytes(64));
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("sum", 8), &8u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }
}
