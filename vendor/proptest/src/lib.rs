//! Offline stand-in for the `proptest` crate.
//!
//! The build container cannot reach crates.io, so the workspace vendors an
//! API-compatible subset of proptest: the `proptest!`/`prop_assert*` macros,
//! the `Strategy` trait with `prop_map`, `prop_oneof!`, `any::<T>()`,
//! numeric-range and regex-literal string strategies, and the collection /
//! array / option combinators the test suites use.
//!
//! Differences from real proptest, by design:
//! * **No shrinking.** A failing case reports its deterministic seed index
//!   instead of a minimized input.
//! * Case generation is deterministic per `(test name, case index)`, so
//!   failures reproduce across runs without a persistence file.
//! * String strategies accept the regex *subset* used in this workspace:
//!   literals, escapes, `[...]` classes with ranges, `(...)` groups,
//!   alternation, and the `?`/`*`/`+`/`{n}`/`{m,n}` quantifiers.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::marker::PhantomData;
use std::ops::Range;
use std::rc::Rc;

// ------------------------------------------------------------ test rng --

/// Deterministic per-case generator (xoshiro256++ with splitmix64 seeding).
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Seed derived from the test name and case index: reproducible runs
    /// without any state file.
    pub fn deterministic(name: &str, case: u64) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self::from_seed(h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }

    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform draw in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn size_in(&mut self, range: &Range<usize>) -> usize {
        assert!(range.start < range.end, "empty proptest size range");
        range.start + self.below((range.end - range.start) as u64) as usize
    }
}

// --------------------------------------------------------- error & cfg --

/// Why a generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assert*` failure — aborts the whole test.
    Fail(String),
    /// `prop_assume!` rejection — the case is skipped, not counted.
    Reject,
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject() -> Self {
        TestCaseError::Reject
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject => f.write_str("rejected by prop_assume"),
        }
    }
}

pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration; only `cases` is meaningful in this shim.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Drives one `proptest!` test function: runs `cfg.cases` accepted cases,
/// skipping `prop_assume!` rejections (with a runaway-rejection cap) and
/// panicking on the first failure with its reproducible seed index.
pub fn run_cases(
    cfg: &ProptestConfig,
    name: &str,
    mut case: impl FnMut(&mut TestRng) -> TestCaseResult,
) {
    let mut accepted = 0u32;
    let mut rejected = 0u32;
    let mut index = 0u64;
    while accepted < cfg.cases {
        let mut rng = TestRng::deterministic(name, index);
        match case(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                assert!(
                    rejected <= cfg.cases.saturating_mul(64).max(4096),
                    "proptest '{name}': too many prop_assume! rejections \
                     ({rejected} rejects for {accepted} accepted cases)"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest '{name}' failed (case {accepted}, seed index {index}): {msg}")
            }
        }
        index += 1;
    }
}

// ------------------------------------------------------------ strategy --

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.generate(rng)))
    }
}

/// Type-erased strategy (what `prop_oneof!` branches become).
#[derive(Clone)]
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

pub mod strategy {
    pub use crate::{BoxedStrategy, Map, Strategy, Union};
}

/// Uniform choice among same-valued strategies (`prop_oneof!`).
pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    pub fn new(branches: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!branches.is_empty(), "prop_oneof! needs at least one branch");
        Union(branches)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.0.len() as u64) as usize;
        self.0[idx].generate(rng)
    }
}

/// Always yields clones of one value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ------------------------------------------------------ range strategies --

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty f32 range strategy");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

// ------------------------------------------------------- any::<T>() --

/// Marker strategy for "any value of `T`" (`any::<T>()`).
pub struct Any<T>(PhantomData<T>);

pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy<Value = T>,
{
    Any(PhantomData)
}

macro_rules! any_uint {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

any_uint!(u8, u16, u32, u64, usize);

macro_rules! any_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

any_int!(i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Strategy for Any<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        // Finite, sign-balanced, wide-magnitude distribution.
        let mag = rng.unit_f64() * 2f64.powi((rng.below(129) as i32) - 64);
        if rng.next_u64() & 1 == 1 {
            -mag
        } else {
            mag
        }
    }
}

// -------------------------------------------------------------- tuples --

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

// ------------------------------------------------------- string regexes --

mod regex_lite {
    //! Generator for the regex subset used as proptest string strategies.

    use super::TestRng;

    #[derive(Debug, Clone)]
    pub(crate) struct Quant {
        min: u32,
        max: u32,
    }

    #[derive(Debug, Clone)]
    pub(crate) enum Node {
        Lit(char),
        Class(Vec<(char, char)>),
        Group(Vec<Vec<(Node, Quant)>>),
    }

    pub(crate) fn parse(pattern: &str) -> Vec<Vec<(Node, Quant)>> {
        let mut chars: Vec<char> = pattern.chars().collect();
        chars.push('\0'); // sentinel simplifies lookahead
        let mut pos = 0usize;
        let alts = parse_alternatives(&chars, &mut pos);
        assert!(
            chars[pos] == '\0',
            "unsupported regex (trailing input) in proptest shim: {pattern}"
        );
        alts
    }

    fn parse_alternatives(chars: &[char], pos: &mut usize) -> Vec<Vec<(Node, Quant)>> {
        let mut alts = vec![parse_seq(chars, pos)];
        while chars[*pos] == '|' {
            *pos += 1;
            alts.push(parse_seq(chars, pos));
        }
        alts
    }

    fn parse_seq(chars: &[char], pos: &mut usize) -> Vec<(Node, Quant)> {
        let mut seq = Vec::new();
        loop {
            let node = match chars[*pos] {
                '\0' | ')' | '|' => break,
                '(' => {
                    *pos += 1;
                    let inner = parse_alternatives(chars, pos);
                    assert!(chars[*pos] == ')', "unclosed group in proptest regex shim");
                    *pos += 1;
                    Node::Group(inner)
                }
                '[' => {
                    *pos += 1;
                    Node::Class(parse_class(chars, pos))
                }
                '\\' => {
                    *pos += 1;
                    let c = chars[*pos];
                    *pos += 1;
                    Node::Lit(unescape(c))
                }
                '.' => {
                    *pos += 1;
                    Node::Class(vec![(' ', '~')]) // printable ASCII stand-in
                }
                c => {
                    *pos += 1;
                    Node::Lit(c)
                }
            };
            seq.push((node, parse_quant(chars, pos)));
        }
        seq
    }

    fn parse_class(chars: &[char], pos: &mut usize) -> Vec<(char, char)> {
        let mut ranges = Vec::new();
        while chars[*pos] != ']' {
            assert!(chars[*pos] != '\0', "unclosed class in proptest regex shim");
            let lo = if chars[*pos] == '\\' {
                *pos += 1;
                let c = unescape(chars[*pos]);
                *pos += 1;
                c
            } else {
                let c = chars[*pos];
                *pos += 1;
                c
            };
            if chars[*pos] == '-' && chars[*pos + 1] != ']' && chars[*pos + 1] != '\0' {
                *pos += 1;
                let hi = if chars[*pos] == '\\' {
                    *pos += 1;
                    let c = unescape(chars[*pos]);
                    *pos += 1;
                    c
                } else {
                    let c = chars[*pos];
                    *pos += 1;
                    c
                };
                assert!(lo <= hi, "inverted class range in proptest regex shim");
                ranges.push((lo, hi));
            } else {
                ranges.push((lo, lo));
            }
        }
        *pos += 1; // consume ']'
        ranges
    }

    fn parse_quant(chars: &[char], pos: &mut usize) -> Quant {
        match chars[*pos] {
            '?' => {
                *pos += 1;
                Quant { min: 0, max: 1 }
            }
            '*' => {
                *pos += 1;
                Quant { min: 0, max: 8 }
            }
            '+' => {
                *pos += 1;
                Quant { min: 1, max: 8 }
            }
            '{' => {
                *pos += 1;
                let mut min = 0u32;
                while chars[*pos].is_ascii_digit() {
                    min = min * 10 + chars[*pos].to_digit(10).unwrap();
                    *pos += 1;
                }
                let max = if chars[*pos] == ',' {
                    *pos += 1;
                    let mut m = 0u32;
                    while chars[*pos].is_ascii_digit() {
                        m = m * 10 + chars[*pos].to_digit(10).unwrap();
                        *pos += 1;
                    }
                    m
                } else {
                    min
                };
                assert!(chars[*pos] == '}', "unclosed quantifier in proptest regex shim");
                *pos += 1;
                Quant { min, max }
            }
            _ => Quant { min: 1, max: 1 },
        }
    }

    fn unescape(c: char) -> char {
        match c {
            'n' => '\n',
            't' => '\t',
            'r' => '\r',
            other => other, // \. \\ \- \[ etc: the literal itself
        }
    }

    pub(crate) fn generate(alts: &[Vec<(Node, Quant)>], rng: &mut TestRng, out: &mut String) {
        let alt = &alts[rng.below(alts.len() as u64) as usize];
        for (node, quant) in alt {
            let reps = quant.min + rng.below((quant.max - quant.min + 1) as u64) as u32;
            for _ in 0..reps {
                match node {
                    Node::Lit(c) => out.push(*c),
                    Node::Class(ranges) => {
                        let total: u64 = ranges.iter().map(|(lo, hi)| (*hi as u64 - *lo as u64) + 1).sum();
                        let mut pick = rng.below(total);
                        for (lo, hi) in ranges {
                            let width = (*hi as u64 - *lo as u64) + 1;
                            if pick < width {
                                out.push(char::from_u32(*lo as u32 + pick as u32).unwrap_or(*lo));
                                break;
                            }
                            pick -= width;
                        }
                    }
                    Node::Group(inner) => generate(inner, rng, out),
                }
            }
        }
    }
}

impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let ast = regex_lite::parse(self);
        let mut out = String::new();
        regex_lite::generate(&ast, rng, &mut out);
        out
    }
}

impl Strategy for String {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        self.as_str().generate(rng)
    }
}

// --------------------------------------------------------- collections --

pub mod collection {
    use super::*;

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.size_in(&self.size);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = rng.size_in(&self.size);
            let mut out = BTreeSet::new();
            // Bounded attempts: small element domains may not admit `target`
            // distinct values, which real proptest handles the same way.
            for _ in 0..target.saturating_mul(16).max(16) {
                if out.len() >= target {
                    break;
                }
                out.insert(self.element.generate(rng));
            }
            out
        }
    }

    pub fn btree_set<S: Strategy>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: Range<usize>,
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
            let target = rng.size_in(&self.size);
            let mut out = BTreeMap::new();
            for _ in 0..target.saturating_mul(16).max(16) {
                if out.len() >= target {
                    break;
                }
                out.insert(self.key.generate(rng), self.value.generate(rng));
            }
            out
        }
    }

    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: Range<usize>,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy { key, value, size }
    }
}

pub mod array {
    use super::*;

    pub struct UniformArray<S, const N: usize>(S);

    impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
        type Value = [S::Value; N];

        fn generate(&self, rng: &mut TestRng) -> [S::Value; N] {
            std::array::from_fn(|_| self.0.generate(rng))
        }
    }

    pub fn uniform12<S: Strategy>(element: S) -> UniformArray<S, 12> {
        UniformArray(element)
    }

    pub fn uniform32<S: Strategy>(element: S) -> UniformArray<S, 32> {
        UniformArray(element)
    }
}

pub mod option {
    use super::*;

    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            // Same shape as proptest's default: mostly Some, a fair share of None.
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }

    pub fn of<S: Strategy>(element: S) -> OptionStrategy<S> {
        OptionStrategy(element)
    }
}

// -------------------------------------------------------------- macros --

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            $crate::run_cases(&__cfg, stringify!($name), |__rng| {
                $(let $arg = $crate::Strategy::generate(&($strat), __rng);)+
                let mut __case = move || -> $crate::TestCaseResult {
                    $body
                    ::std::result::Result::Ok(())
                };
                __case()
            });
        }
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "prop_assert_eq failed: `{}` != `{}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                __l,
                __r
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "prop_assert_ne failed: `{}` == `{}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                __l
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($branch:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($branch)),+])
    };
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };

    pub mod prop {
        pub use crate::{array, collection, option, strategy};
    }
}

// ---------------------------------------------------------- self tests --

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn regex_subset_shapes() {
        let mut rng = crate::TestRng::deterministic("regex", 0);
        for _ in 0..200 {
            let s = crate::Strategy::generate(&"[A-Z][a-z]{1,6}(\\.[A-Z]{2})?", &mut rng);
            assert!(s.chars().next().unwrap().is_ascii_uppercase(), "{s:?}");
            let tail_ok = s.len() >= 2;
            assert!(tail_ok, "{s:?}");
            if let Some(idx) = s.find('.') {
                assert_eq!(s.len() - idx, 3, "{s:?}");
            }
            let printable = crate::Strategy::generate(&"[ -~<>&\"']{0,200}", &mut rng);
            assert!(printable.chars().all(|c| (' '..='~').contains(&c)));
            assert!(printable.len() <= 200);
        }
    }

    #[test]
    fn determinism_per_name_and_index() {
        let mut a = crate::TestRng::deterministic("t", 3);
        let mut b = crate::TestRng::deterministic("t", 3);
        let mut c = crate::TestRng::deterministic("t", 4);
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_collections_in_bounds(
            n in 1usize..10,
            v in prop::collection::vec(any::<u8>(), 0..16),
            s in prop::collection::btree_set("[a-z]{1,3}", 1..5),
            o in prop::option::of(-10i64..10),
        ) {
            prop_assert!(n >= 1 && n < 10);
            prop_assert!(v.len() < 16);
            prop_assert!(!s.is_empty() && s.len() < 5);
            if let Some(x) = o {
                prop_assert!((-10..10).contains(&x), "x = {}", x);
            }
        }

        #[test]
        fn oneof_and_map_compose(x in prop_oneof![
            (0u32..10).prop_map(|v| v as u64),
            (100u32..110).prop_map(|v| v as u64),
        ]) {
            prop_assert!(x < 10 || (100..110).contains(&x));
        }

        #[test]
        fn assume_rejects_without_failing(a in 0u8..4, b in 0u8..4) {
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
        }
    }
}
