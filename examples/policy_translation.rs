//! The paper's §6 future work, running: (1) a domain with a *non-dRBAC*
//! policy (Unix-style groups) joins the framework through the policy
//! translation service; (2) VIG derives views *automatically* from
//! capability rules ("these rules are also used for automatic view
//! creation", Table 4).
//!
//! ```sh
//! cargo run --example policy_translation
//! ```

use psf_drbac::entity::{Entity, EntityRegistry};
use psf_drbac::guard::Guard;
use psf_drbac::repository::Repository;
use psf_drbac::revocation::RevocationBus;
use psf_drbac::translator::{GroupPolicy, PolicyTranslator};
use psf_views::binding::InProcessRemote;
use psf_views::{derive_spec, CapabilityRule, CoherencePolicy, ExposureType, MethodLibrary, Vig};

fn main() {
    // --- a foreign domain with a group-based policy --------------------
    let registry = EntityRegistry::new();
    let repository = Repository::new();
    let bus = RevocationBus::new();
    let foreign = Guard::new(
        Entity::with_seed("Acme.IT", b"demo"),
        registry.clone(),
        repository.clone(),
        bus.clone(),
    );

    let policy = GroupPolicy::default()
        .member("engineers", "dana")
        .member("engineers", "eve")
        .member("oncall", "eve")
        .permit("engineers", "read_mail")
        .permit("oncall", "page");

    println!("== foreign (group-based) policy ==");
    for (group, members) in &policy.groups {
        println!("  group {group}: members {members:?}");
    }
    for (group, caps) in &policy.permissions {
        println!("  group {group}: capabilities {caps:?}");
    }

    let translator = PolicyTranslator::new(&foreign);
    let creds = translator.translate_groups(&policy).unwrap();
    println!("\n== translated into {} dRBAC delegations ==", creds.len());
    for c in &creds {
        println!("  {}", c.body.render());
    }

    // Decisions agree with the foreign model, but now interoperate with
    // everything dRBAC: proofs, monitors, cross-domain mappings.
    let dana = foreign.create_principal("dana");
    let eve = foreign.create_principal("eve");
    for (who, cap) in [(&dana, "read_mail"), (&dana, "page"), (&eve, "page")] {
        let ok = foreign
            .authorize(&who.as_subject(), &translator.capability_role(cap), &[], 0)
            .is_ok();
        println!(
            "  {} may {cap}? dRBAC says {ok}, foreign policy says {}",
            who.name.0,
            policy.allows(&who.name.0, cap)
        );
    }

    // --- automatic view creation from capability rules -----------------
    println!("\n== VIG automatic view derivation ==");
    let class = psf_mail::mail_client_class();
    let rule = CapabilityRule::new("ViewMailClient_OnCall")
        .allow_interface("MessageI")
        .allow("getEmail")
        .deny("sendMessage") // on-call reads, never sends
        .expose("MessageI", ExposureType::Local)
        .default_expose(ExposureType::Switchboard);
    let mut library = MethodLibrary::new();
    let spec = derive_spec(&class, &rule, &mut library).unwrap();
    println!("derived XML:\n{}", spec.to_xml());

    let view = Vig::new(library).generate(&class, &spec).unwrap();
    let original = class.instantiate();
    original.set_field("accounts", "dana,555-0100,dana@acme");
    let inst = view
        .instantiate(
            Some(InProcessRemote::switchboard(original)),
            CoherencePolicy::WriteThrough,
            0,
            b"",
        )
        .unwrap();
    println!(
        "receiveMessages -> {:?}",
        inst.invoke("receiveMessages", b"").map(|v| v.len())
    );
    println!(
        "getEmail(dana)  -> {:?}",
        String::from_utf8_lossy(&inst.invoke("getEmail", b"dana").unwrap())
    );
    println!(
        "sendMessage     -> {}",
        inst.invoke("sendMessage", b"spam").unwrap_err()
    );
}
