//! Switchboard demo over real TCP (paper §4.3): mutual authentication,
//! encrypted RPC, heartbeat RTT, and continuous authorization — a
//! credential revoked mid-connection blocks service until the peer
//! re-validates with fresh credentials.
//!
//! ```sh
//! cargo run --example secure_channel
//! ```

use psf_drbac::entity::{Entity, EntityRegistry};
use psf_drbac::repository::Repository;
use psf_drbac::revocation::RevocationBus;
use psf_drbac::DelegationBuilder;
use psf_switchboard::{
    connect_tcp, listen_tcp, AuthSuite, Authorizer, ChannelConfig, ClockRef, SwitchboardError,
};
use std::time::Duration;

fn main() {
    let registry = EntityRegistry::new();
    let repository = Repository::new();
    let bus = RevocationBus::new();
    let clock = ClockRef::new();

    let domain = Entity::with_seed("Comp.NY", b"chan-demo");
    let server_id = Entity::with_seed("MailServer", b"chan-demo");
    let client_id = Entity::with_seed("Bob", b"chan-demo");
    for e in [&domain, &server_id, &client_id] {
        registry.register(e);
    }

    let client_cred = DelegationBuilder::new(&domain)
        .subject_entity(&client_id)
        .role(domain.role("Member"))
        .monitored()
        .sign();
    let server_cred = DelegationBuilder::new(&domain)
        .subject_entity(&server_id)
        .role(domain.role("Service"))
        .monitored()
        .sign();

    let authorizer = |role: &str| {
        Authorizer::new(
            registry.clone(),
            repository.clone(),
            bus.clone(),
            clock.clone(),
            domain.role(role),
        )
    };
    let client_suite = AuthSuite::new(
        client_id.clone(),
        vec![client_cred.clone()],
        authorizer("Service"), // the client requires a Service peer
    );
    let server_suite = AuthSuite::new(
        server_id.clone(),
        vec![server_cred],
        authorizer("Member"), // the server requires a Member peer
    );

    let config = ChannelConfig {
        heartbeat_interval: Some(Duration::from_millis(50)),
        rpc_timeout: Duration::from_secs(5),
        ..Default::default()
    };

    // Real TCP on loopback.
    let listener = listen_tcp("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().unwrap().to_string();
    println!("switchboard listening on {addr}");

    let cfg = config.clone();
    let (ready_tx, ready_rx) = std::sync::mpsc::channel();
    let server_thread = std::thread::spawn(move || {
        let channel = listener.accept(&server_suite, cfg).expect("accept");
        channel.register_handler("getEmail", |args| {
            Ok(format!("{}@comp.example", String::from_utf8_lossy(args)).into_bytes())
        });
        ready_tx.send(()).unwrap(); // handlers registered: serve
                                    // Serve until the client closes.
        while !matches!(channel.status(), psf_switchboard::ChannelStatus::Closed) {
            std::thread::sleep(Duration::from_millis(20));
        }
    });

    let channel = connect_tcp(&addr, &client_suite, config).expect("connect + authorize");
    ready_rx.recv().unwrap();
    println!(
        "connected; authenticated peer = {} ({})",
        channel.peer().unwrap().name.0,
        channel.peer().unwrap().key.fingerprint()
    );

    let email = channel.call("getEmail", b"alice").unwrap();
    println!("rpc getEmail(alice) = {}", String::from_utf8_lossy(&email));

    std::thread::sleep(Duration::from_millis(200));
    println!(
        "heartbeats: RTT = {:?}, alive = {}",
        channel.last_rtt(),
        channel.is_alive(Duration::from_secs(1))
    );

    // --- continuous authorization ------------------------------------
    println!("\nrevoking the client's credential mid-connection…");
    bus.revoke(&client_cred.id());
    match channel.call("getEmail", b"alice") {
        Err(SwitchboardError::RevalidationRequired(msg)) => {
            println!("server refused service: revalidation required ({msg})")
        }
        other => println!("unexpected: {other:?}"),
    }

    println!("domain re-issues a fresh credential; client re-validates…");
    let fresh = DelegationBuilder::new(&domain)
        .subject_entity(&client_id)
        .role(domain.role("Member"))
        .monitored()
        .serial(2)
        .sign();
    let accepted = channel
        .offer_revalidation(&[fresh], Duration::from_secs(5))
        .unwrap();
    println!("revalidation accepted: {accepted}");
    let email = channel.call("getEmail", b"alice").unwrap();
    println!("rpc works again: {}", String::from_utf8_lossy(&email));

    channel.close();
    server_thread.join().unwrap();
}
