//! Reproduces Table 1 (the three delegation types) and demonstrates
//! proof-graph construction, attribute attenuation, repository discovery
//! tags, and revocation.
//!
//! ```sh
//! cargo run --example cross_domain_auth
//! ```

use psf_drbac::entity::{Entity, EntityRegistry, RoleName};
use psf_drbac::proof::ProofEngine;
use psf_drbac::repository::{DiscoveryTag, Repository};
use psf_drbac::revocation::RevocationBus;
use psf_drbac::{AttrValue, DelegationBuilder};

fn main() {
    let registry = EntityRegistry::new();
    let repository = Repository::new();
    let bus = RevocationBus::new();

    let ny = Entity::with_seed("Comp.NY", b"t1");
    let sd = Entity::with_seed("Comp.SD", b"t1");
    let bob = Entity::with_seed("Bob", b"t1");
    for e in [&ny, &sd, &bob] {
        registry.register(e);
    }

    println!("== Table 1: the three delegation types ==\n");

    // Self-certifying: the role owner grants membership directly.
    let self_cert = DelegationBuilder::new(&sd)
        .subject_entity(&bob)
        .role(sd.role("Member"))
        .attr("Trust", AttrValue::Range(0, 10))
        .sign();
    println!("self-certifying:  {}", self_cert.body.render());

    // Assignment: NY gives SD the right of assignment for NY.Partner.
    let assignment = DelegationBuilder::new(&ny)
        .subject_entity(&sd)
        .assignment()
        .role(ny.role("Partner"))
        .attr("CPU", AttrValue::Capacity(80))
        .sign();
    println!("assignment:       {}", assignment.body.render());

    // Third-party: SD (not the owner!) grants NY.Partner — valid only
    // because of the assignment above.
    let third_party = DelegationBuilder::new(&sd)
        .subject_entity(&bob)
        .role(ny.role("Partner"))
        .attr("CPU", AttrValue::Capacity(100))
        .sign();
    println!("third-party:      {}", third_party.body.render());

    // Publish with discovery tags.
    repository.publish(sd.name.clone(), self_cert.clone(), DiscoveryTag::Both);
    repository.publish(ny.name.clone(), assignment.clone(), DiscoveryTag::Both);
    repository.publish(sd.name.clone(), third_party.clone(), DiscoveryTag::Both);

    println!("\n== proof graphs ==\n");
    let engine = ProofEngine::new(&registry, &repository, &bus, 0);

    let (proof, stats) = engine
        .prove(&bob.as_subject(), &ny.role("Partner"), &[])
        .expect("Bob holds Comp.NY.Partner via the third-party chain");
    print!("{}", proof.render());
    println!(
        "search: {} nodes expanded, {} credentials examined",
        stats.nodes_expanded, stats.credentials_examined
    );
    println!(
        "attenuated attributes: CPU = {}",
        match proof.attrs.get("CPU") {
            Some(AttrValue::Capacity(v)) => v.to_string(),
            _ => "-".into(),
        }
    );

    // Independent re-verification (what a remote Guard does).
    proof.verify(&registry, &bus, 0).expect("proof verifies");
    println!("proof independently re-verified ✓");

    println!("\n== discovery-tag traffic ==\n");
    repository.reset_stats();
    let _ = engine.prove(&bob.as_subject(), &ny.role("Partner"), &[]);
    let s = repository.stats();
    println!(
        "queries: {} (directed {}, broadcast {}), per-home messages: {}",
        s.queries, s.directed, s.broadcast, s.messages
    );

    println!("\n== revocation ==\n");
    let monitor = bus.monitor(proof.credential_ids());
    println!("monitor valid: {}", monitor.is_valid());
    bus.revoke(&assignment.id());
    println!(
        "revoked the assignment ({}); monitor valid: {}",
        assignment.id(),
        monitor.is_valid()
    );
    let gone = engine.prove(&bob.as_subject(), &ny.role("Partner"), &[]);
    println!("re-proving now fails: {}", gone.is_err());
    // The unrelated SD.Member chain still stands.
    let still = engine.prove(&bob.as_subject(), &RoleName::new("Comp.SD", "Member"), &[]);
    println!("Comp.SD.Member unaffected: {}", still.is_ok());
}
