//! The full §2.2/§3.3 walkthrough: the three-site mail service with all
//! Table 2 credentials, Table 4 access control, and QoS-adaptive
//! deployment (caches for latency, encryptor/decryptor pairs for
//! privacy).
//!
//! ```sh
//! cargo run --example mail_scenario
//! ```

use psf_core::Goal;
use psf_mail::{MailWorld, Message};

fn main() {
    println!("building the three-site world (Comp.NY / Comp.SD / Inc.SE)…\n");
    let w = MailWorld::build(2);

    println!("== Table 2: the issued credentials ==");
    for (n, cred) in &w.creds {
        println!("  ({n:>2}) {}", cred.body.render());
    }

    println!("\n== §3.3 client authorization ==");
    for user in [&w.alice, &w.bob, &w.charlie] {
        let (view, proof) = w.client_view(user).expect("every user gets a view");
        println!(
            "  {:<8} -> {view}  (proof: {} edge(s))",
            user.name.0,
            proof.as_ref().map(|p| p.edges.len()).unwrap_or(0)
        );
    }

    println!("\n== Table 4 in action: capability differences ==");
    let (_, alice_view) = w.instantiate_client_view(&w.alice).unwrap();
    let (_, charlie_view) = w.instantiate_client_view(&w.charlie).unwrap();
    println!(
        "  Alice   addMeeting -> {}",
        String::from_utf8_lossy(&alice_view.invoke("addMeeting", b"q3-sync").unwrap())
    );
    println!(
        "  Charlie addMeeting -> {}",
        String::from_utf8_lossy(&charlie_view.invoke("addMeeting", b"q3-sync").unwrap())
    );

    println!("\n== QoS adaptation: private mail for Bob in San Diego ==");
    let goal = Goal::private("MailI", w.sites.sd[1]);
    let (plan, deployment) = w.deliver(&goal).expect("plan + deploy");
    print!("{}", plan.render());
    println!(
        "  deployed artifacts: {:?}",
        deployment
            .placements
            .iter()
            .map(|(s, n, d)| format!("{s}@node{} ({})", n.0, d.kind()))
            .collect::<Vec<_>>()
    );

    deployment
        .endpoint
        .call_remote(
            "send",
            &Message::new("bob", "alice", "hello", "see you in NY").to_bytes(),
        )
        .unwrap();
    let inbox =
        Message::decode_list(&deployment.endpoint.call_remote("fetch", b"alice").unwrap()).unwrap();
    println!(
        "  mail delivered through the encrypted chain: {:?} -> {:?}",
        inbox[0].subject, inbox[0].body
    );

    println!("\n== QoS adaptation: low-latency mail in San Diego (cache) ==");
    let goal = Goal {
        iface: "MailI".into(),
        client_node: w.sites.sd[1],
        max_latency_ms: Some(10.0),
        require_privacy: false,
        require_plaintext_delivery: true,
    };
    let (plan, _deployment) = w.deliver(&goal).expect("cache plan");
    print!("{}", plan.render());

    println!("\n== the same demand in Seattle is *refused* ==");
    let goal = Goal {
        iface: "MailI".into(),
        client_node: w.sites.se[1],
        max_latency_ms: Some(10.0),
        require_privacy: false,
        require_plaintext_delivery: true,
    };
    match w.plan_service(&goal) {
        Err(e) => println!("  planner: {e}"),
        Ok(_) => println!("  unexpected success"),
    }
    println!("  (IBM.Windows maps to Mail.Node with Secure={{false}}, Trust=(0,1) —");
    println!("   the plaintext cache demands Secure={{true}}, Trust=(5,10).)");
}
