//! Reproduces Tables 3 and 5 of the paper: the `MailClient` original
//! object, the XML view definition of `ViewMailClient_Partner`, and the
//! VIG-generated view source, then exercises the running view.
//!
//! ```sh
//! cargo run --example view_generation
//! ```

use psf_mail::views::PARTNER_XML;
use psf_mail::{mail_client_class, mail_method_library};
use psf_views::binding::InProcessRemote;
use psf_views::{CoherencePolicy, ViewSpec, Vig};

fn main() {
    println!("== Table 3(a): the original object ==");
    let class = mail_client_class();
    println!("class {} implements:", class.name);
    for iface in &class.interfaces {
        println!("  {} {{ {} }}", iface.name, iface.methods.join(", "));
    }
    println!("fields:");
    for f in &class.fields {
        println!("  {} {}", f.type_name, f.name);
    }

    println!("\n== Table 3(b): the XML rules ==");
    println!("{}", PARTNER_XML.trim());

    println!("\n== VIG: parse, validate, generate ==");
    let spec = ViewSpec::parse_xml(PARTNER_XML).expect("spec parses");
    let vig = Vig::new(mail_method_library());
    let view = vig.generate(&class, &spec).expect("view generates");

    println!("== Table 5: the generated view source ==");
    println!("{}", view.source);

    println!("== running the view ==");
    let original = class.instantiate();
    original.set_field(
        "accounts",
        "alice,555-0100,alice@comp.ny\nbob,555-0199,bob@comp.sd",
    );
    let inst = view
        .instantiate(
            Some(InProcessRemote::switchboard(original.clone())),
            CoherencePolicy::WriteThrough,
            0,
            b"partner-cache",
        )
        .unwrap();

    // switchboard-exposed AddressI forwards to the original:
    let phone = inst.invoke("getPhone", b"alice").unwrap();
    println!("getPhone(alice)   -> {}", String::from_utf8_lossy(&phone));
    // rmi-exposed NotesI forwards too:
    inst.invoke("addNote", b"ship the repro").unwrap();
    println!(
        "addNote           -> original notes: {:?}",
        String::from_utf8_lossy(&original.field("notes")).trim()
    );
    // the customized method only *requests* the meeting:
    let meeting = inst.invoke("addMeeting", b"board-review").unwrap();
    println!("addMeeting        -> {}", String::from_utf8_lossy(&meeting));

    println!("\n== error-guided spec repair ==");
    let broken =
        ViewSpec::new("Broken", "MailClient").restrict("CalendarI", psf_views::ExposureType::Local);
    let err = vig.generate(&class, &broken).unwrap_err();
    println!("VIG error: {err}");
}
