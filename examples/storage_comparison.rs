//! Experiment F1: the §5 storage comparison — GSI `P×U` vs CAS
//! `C×(P+U)` vs dRBAC `P+U+c` — over a sweep of deployment sizes. The
//! dRBAC column is measured from real signed credentials.
//!
//! ```sh
//! cargo run --example storage_comparison
//! ```

use psf_drbac::storage_model::storage_comparison;

fn main() {
    println!("Cross-domain authorization state (entries / KiB)");
    println!("C = 8 communities, c = 2·P cross-domain delegations\n");
    println!(
        "{:>6} {:>6} | {:>12} {:>10} | {:>12} {:>10} | {:>12} {:>10}",
        "P", "U", "GSI entries", "GSI KiB", "CAS entries", "CAS KiB", "dRBAC entr.", "dRBAC KiB"
    );
    for (p, u) in [
        (5u64, 50u64),
        (10, 100),
        (20, 500),
        (50, 1_000),
        (100, 5_000),
        (200, 20_000),
        (500, 100_000),
    ] {
        let [gsi, cas, drbac] = storage_comparison(p, u, 8, 2 * p);
        println!(
            "{:>6} {:>6} | {:>12} {:>10.1} | {:>12} {:>10.1} | {:>12} {:>10.1}",
            p,
            u,
            gsi.entries,
            gsi.bytes as f64 / 1024.0,
            cas.entries,
            cas.bytes as f64 / 1024.0,
            drbac.entries,
            drbac.bytes as f64 / 1024.0,
        );
    }
    println!("\nshape check (paper §5): GSI grows as P×U (quadratic in scale),");
    println!("CAS as C×(P+U), dRBAC as P+U+c (linear) — dRBAC < CAS < GSI.");
}
