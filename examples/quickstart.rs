//! Quickstart: the shortest path through the library.
//!
//! 1. Two domains issue dRBAC credentials (a cross-domain role mapping).
//! 2. A client proves a foreign role through the proof engine.
//! 3. VIG generates a restricted view of a component and the client
//!    calls it.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use psf_drbac::entity::{Entity, EntityRegistry};
use psf_drbac::guard::Guard;
use psf_drbac::repository::Repository;
use psf_drbac::revocation::RevocationBus;
use psf_views::binding::InProcessRemote;
use psf_views::{CoherencePolicy, ComponentClass, ExposureType, MethodLibrary, ViewSpec, Vig};
use std::sync::Arc;

fn main() {
    // --- shared trust infrastructure ---------------------------------
    let registry = EntityRegistry::new();
    let repository = Repository::new();
    let bus = RevocationBus::new();

    // Two administrative domains.
    let hq = Guard::new(
        Entity::with_seed("Corp.HQ", b"quickstart"),
        registry.clone(),
        repository.clone(),
        bus.clone(),
    );
    let branch = Guard::new(
        Entity::with_seed("Corp.Branch", b"quickstart"),
        registry,
        repository.clone(),
        bus.clone(),
    );

    // The branch employs Dana; HQ maps branch staff into its own Staff
    // role (the cross-domain delegation of dRBAC).
    let dana = branch.create_principal("Dana");
    let c1 = branch.publish(
        branch
            .issue()
            .subject_entity(&dana)
            .role(branch.role("Staff"))
            .sign(),
    );
    let c2 = hq.publish(
        hq.issue()
            .subject_role(branch.role("Staff"))
            .role(hq.role("Staff"))
            .sign(),
    );
    println!("issued:");
    println!("  {}", c1.body.render());
    println!("  {}", c2.body.render());

    // --- cross-domain authorization -----------------------------------
    let proof = hq
        .authorize(&dana.as_subject(), &hq.role("Staff"), &[], 0)
        .expect("Dana holds Corp.HQ.Staff transitively");
    println!("\n{}", proof.render());

    // --- views: a restricted realization of a component ----------------
    let notepad = ComponentClass::builder("Notepad")
        .interface("ReadI", ["read"])
        .interface("WriteI", ["write"])
        .field("content", "String")
        .method("read", "String read()", &["content"], false, |st, _| {
            Ok(st.get("content"))
        })
        .method(
            "write",
            "void write(String)",
            &["content"],
            true,
            |st, args| {
                st.set("content", args.to_vec());
                Ok(vec![])
            },
        )
        .build()
        .unwrap();

    // A read-only view: WriteI simply isn't part of it.
    let spec = ViewSpec::new("NotepadReadOnly", "Notepad").restrict("ReadI", ExposureType::Local);
    let vig = Vig::new(MethodLibrary::new());
    let view = vig.generate(&notepad, &spec).unwrap();
    println!("VIG emitted:\n{}", view.source);

    let original = notepad.instantiate();
    original.set_field("content", "hello from the original object");
    let instance = view
        .instantiate(
            Some(InProcessRemote::rmi(original)),
            CoherencePolicy::WriteThrough,
            0,
            b"",
        )
        .unwrap();
    let read = instance.invoke("read", b"").unwrap();
    println!("view.read() = {:?}", String::from_utf8_lossy(&read));
    let denied = instance.invoke("write", b"sneaky").unwrap_err();
    println!("view.write() -> {denied}");

    // --- continuous authorization: revoke and watch the proof die ------
    let monitor = bus.monitor(proof.credential_ids());
    assert!(monitor.is_valid());
    branch.revoke(&c1);
    assert!(!monitor.is_valid());
    println!(
        "\nrevoked {}; monitor now invalid: {}",
        c1.id(),
        !monitor.is_valid()
    );
    let _ = Arc::new(());
}
