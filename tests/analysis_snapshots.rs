//! Snapshot tests for the seeded defect corpus under
//! `tests/fixtures/analysis/`: each scenario XML must produce exactly
//! the diagnostics recorded in its `.expected` file (the same files
//! `psf analyze --fixtures` gates on in CI), and each defect class must
//! surface its designated lint code.

use psf_analysis::{FixtureWorld, LintCode};
use std::path::PathBuf;

/// Fixed analysis time/horizon — must match `psf analyze --fixtures`.
const FIXTURE_NOW: u64 = 100;
const FIXTURE_HORIZON: u64 = 3600;

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/fixtures/analysis")
}

fn analyze_fixture(name: &str) -> (psf_analysis::Report, String) {
    let dir = fixture_dir();
    let xml = std::fs::read_to_string(dir.join(format!("{name}.xml")))
        .unwrap_or_else(|e| panic!("read {name}.xml: {e}"));
    let expected = std::fs::read_to_string(dir.join(format!("{name}.expected")))
        .unwrap_or_else(|e| panic!("read {name}.expected: {e}"));
    let world = FixtureWorld::parse(&xml).unwrap_or_else(|e| panic!("parse {name}: {e}"));
    let mut report = world.analyze(FIXTURE_NOW, FIXTURE_HORIZON);
    report.sort();
    (report, expected)
}

#[test]
fn escalating_delegation_snapshot() {
    let (report, expected) = analyze_fixture("escalating-delegation");
    assert_eq!(report.render_human(), expected);
    assert!(report.codes().contains(&"PSF001"));
    assert!(report
        .diagnostics
        .iter()
        .any(|d| d.code == LintCode::PrivilegeEscalation
            && d.subject.as_deref() == Some("Alice")
            && d.message.contains("Org.Admin")));
}

#[test]
fn cyclic_chain_snapshot() {
    let (report, expected) = analyze_fixture("cyclic-chain");
    assert_eq!(report.render_human(), expected);
    assert_eq!(report.codes(), vec!["PSF002"]);
    // The cycle is a warning, not an error: the gate only trips under
    // --deny warnings.
    assert!(!report.fails(false));
    assert!(report.fails(true));
}

#[test]
fn unreachable_view_snapshot() {
    let (report, expected) = analyze_fixture("unreachable-view");
    assert_eq!(report.render_human(), expected);
    assert_eq!(report.codes(), vec!["PSF009"]);
    assert!(report
        .diagnostics
        .iter()
        .any(|d| d.code == LintCode::UnreachableView && d.subject.as_deref() == Some("KvOrphan")));
}

#[test]
fn non_monotone_acl_snapshot() {
    let (report, expected) = analyze_fixture("non-monotone-acl");
    assert_eq!(report.render_human(), expected);
    assert_eq!(report.codes(), vec!["PSF008"]);
    // The widening is concrete: the catch-all view leaks purge().
    assert!(report.diagnostics[0].message.contains("purge()"));
}

#[test]
fn stale_certificate_snapshot() {
    let (report, expected) = analyze_fixture("stale-certificate");
    assert_eq!(report.render_human(), expected);
    assert_eq!(report.codes(), vec!["PSF014"]);
    let d = &report.diagnostics[0];
    assert_eq!(d.code, LintCode::CertificateReplay);
    assert_eq!(d.subject.as_deref(), Some("Bob → Comp.NY.Partner"));
    // The finding carries the certificate digest and the checker's own
    // typed reason — the lint is exactly the runtime checker's verdict.
    assert!(d.message.contains("no longer replays"));
    assert!(d.message.contains("revoked"));
}

#[test]
fn every_fixture_has_a_snapshot_and_parses() {
    let dir = fixture_dir();
    let mut xml_count = 0;
    for entry in std::fs::read_dir(&dir).expect("fixture dir") {
        let path = entry.expect("entry").path();
        if path.extension().is_some_and(|e| e == "xml") {
            xml_count += 1;
            assert!(
                path.with_extension("expected").exists(),
                "{} lacks an .expected snapshot",
                path.display()
            );
            let xml = std::fs::read_to_string(&path).expect("read");
            FixtureWorld::parse(&xml)
                .unwrap_or_else(|e| panic!("{} does not parse: {e}", path.display()));
        }
    }
    assert!(xml_count >= 4, "expected at least 4 defect fixtures");
}
