//! Deeper property suites: algebraic laws of the curve/scalar arithmetic,
//! netsim routing optimality against a brute-force oracle, and planner
//! soundness over random topologies and goals.

use proptest::prelude::*;
use psf_core::{ComponentSpec, Effect, Goal, PermissiveOracle, Planner, PlannerConfig, Registrar};
use psf_crypto::edwards::{basepoint, EdwardsPoint};
use psf_crypto::scalar::Scalar;
use psf_netsim::{random_topology, LinkSpec, Network, NodeId, NodeSpec, TopologyConfig};

// ------------------------------------------------------ group laws --

fn arb_scalar() -> impl Strategy<Value = Scalar> {
    prop::array::uniform32(any::<u8>()).prop_map(|b| Scalar::from_bytes_mod_order(&b))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))] // point ops are ms-scale

    #[test]
    fn scalar_mul_is_group_homomorphism(a in arb_scalar(), b in arb_scalar()) {
        let base = basepoint();
        // (a+b)·B == a·B + b·B
        let lhs = base.mul_scalar(&a.add(&b));
        let rhs = base.mul_scalar(&a).add(&base.mul_scalar(&b));
        prop_assert!(lhs.eq_point(&rhs));
    }

    #[test]
    fn point_addition_commutes(a in 1u64..1_000_000, b in 1u64..1_000_000) {
        let base = basepoint();
        let pa = base.mul_scalar(&Scalar::from_u64(a));
        let pb = base.mul_scalar(&Scalar::from_u64(b));
        prop_assert!(pa.add(&pb).eq_point(&pb.add(&pa)));
        prop_assert!(pa.add(&pb).is_on_curve());
    }

    #[test]
    fn point_addition_associates(a in 1u64..100_000, b in 1u64..100_000, c in 1u64..100_000) {
        let base = basepoint();
        let pa = base.mul_scalar(&Scalar::from_u64(a));
        let pb = base.mul_scalar(&Scalar::from_u64(b));
        let pc = base.mul_scalar(&Scalar::from_u64(c));
        prop_assert!(pa.add(&pb).add(&pc).eq_point(&pa.add(&pb.add(&pc))));
    }

    #[test]
    fn inverse_cancels(a in 1u64..1_000_000) {
        let base = basepoint();
        let p = base.mul_scalar(&Scalar::from_u64(a));
        prop_assert!(p.add(&p.neg()).is_identity());
    }

    #[test]
    fn compression_is_injective_on_multiples(a in 1u64..1_000_000, b in 1u64..1_000_000) {
        prop_assume!(a != b);
        let base = basepoint();
        let pa = base.mul_scalar(&Scalar::from_u64(a));
        let pb = base.mul_scalar(&Scalar::from_u64(b));
        prop_assert_ne!(pa.compress(), pb.compress());
        // And decompression inverts compression.
        let back = EdwardsPoint::decompress(&pa.compress()).unwrap();
        prop_assert!(back.eq_point(&pa));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn scalar_field_is_a_commutative_ring(a in arb_scalar(), b in arb_scalar(), c in arb_scalar()) {
        prop_assert_eq!(a.add(&b), b.add(&a));
        prop_assert_eq!(a.mul(&b), b.mul(&a));
        prop_assert_eq!(a.add(&b).add(&c), a.add(&b.add(&c)));
        prop_assert_eq!(a.mul(&b).mul(&c), a.mul(&b.mul(&c)));
        prop_assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
        prop_assert_eq!(a.sub(&a), Scalar::ZERO);
        prop_assert_eq!(a.mul(&Scalar::from_u64(1)), a);
        prop_assert_eq!(a.mul(&Scalar::ZERO), Scalar::ZERO);
    }

    #[test]
    fn scalar_roundtrips_canonical_bytes(a in arb_scalar()) {
        let bytes = a.to_bytes();
        prop_assert_eq!(Scalar::from_canonical_bytes(&bytes).unwrap(), a);
    }
}

// ------------------------------------------------- routing optimality --

/// Brute-force all-pairs shortest latency (Floyd–Warshall).
fn brute_force_latency(net: &Network) -> Vec<Vec<f64>> {
    let n = net.node_count();
    let mut d = vec![vec![f64::INFINITY; n]; n];
    for (i, row) in d.iter_mut().enumerate() {
        row[i] = 0.0;
    }
    for l in 0..net.link_count() {
        let link = net.link(psf_netsim::LinkId(l as u32)).unwrap();
        let (a, b) = (link.a.0 as usize, link.b.0 as usize);
        if link.latency_ms < d[a][b] {
            d[a][b] = link.latency_ms;
            d[b][a] = link.latency_ms;
        }
    }
    for k in 0..n {
        for i in 0..n {
            for j in 0..n {
                if d[i][k] + d[k][j] < d[i][j] {
                    d[i][j] = d[i][k] + d[k][j];
                }
            }
        }
    }
    d
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn dijkstra_matches_floyd_warshall(
        seed in 0u64..10_000,
        n in 2usize..10,
        extra_links in 0usize..12,
    ) {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let net = Network::new();
        let nodes: Vec<NodeId> = (0..n)
            .map(|i| {
                net.add_node(NodeSpec {
                    name: format!("n{i}"),
                    domain: "D".into(),
                    vendor: "Dell".into(),
                    os: "Linux".into(),
                    cpu_capacity: 100,
                    cpu_used: 0,
                })
            })
            .collect();
        // Spanning chain + random extra links.
        for w in nodes.windows(2) {
            net.add_link(LinkSpec {
                a: w[0],
                b: w[1],
                latency_ms: rng.random_range(1.0..50.0),
                bandwidth_mbps: 100.0,
                secure: rng.random_bool(0.5),
            });
        }
        for _ in 0..extra_links {
            let a = nodes[rng.random_range(0..n)];
            let b = nodes[rng.random_range(0..n)];
            if a != b {
                net.add_link(LinkSpec {
                    a,
                    b,
                    latency_ms: rng.random_range(1.0..50.0),
                    bandwidth_mbps: 100.0,
                    secure: rng.random_bool(0.5),
                });
            }
        }
        let truth = brute_force_latency(&net);
        for &from in &nodes {
            for &to in &nodes {
                let got = net.route(from, to).unwrap();
                let want = truth[from.0 as usize][to.0 as usize];
                prop_assert!(
                    (got.latency_ms - want).abs() < 1e-6,
                    "{from:?}->{to:?}: dijkstra {} vs truth {want}",
                    got.latency_ms
                );
            }
        }
    }
}

// ---------------------------------------------------- planner soundness --

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every plan the planner emits must actually satisfy the goal it was
    /// asked for — privacy goals never deliver exposed plaintext, latency
    /// bounds hold, delivery is plaintext when demanded.
    #[test]
    fn plans_satisfy_their_goals(
        seed in 0u64..5_000,
        domains in 2usize..6,
        want_privacy in any::<bool>(),
        latency_bound in prop::option::of(5.0f64..100.0),
    ) {
        let cfg = TopologyConfig {
            domains,
            nodes_per_domain: 2,
            extra_wan_prob: 0.3,
            wan_secure_prob: 0.3,
            seed,
        };
        let (network, doms) = random_topology(&cfg);
        let r = Registrar::new();
        r.register(ComponentSpec::source("Server", "SvcI"));
        r.register(
            ComponentSpec::processor("Enc", "SvcI", "SvcI", Effect::Encrypt)
                .requires_encrypted(false)
                .cpu(10),
        );
        r.register(
            ComponentSpec::processor("Dec", "SvcI", "SvcI", Effect::Decrypt)
                .requires_encrypted(true)
                .cpu(10),
        );
        r.register(
            ComponentSpec::processor("Cache", "SvcI", "SvcI", Effect::Cache)
                .cpu(20)
                .view_of("Server"),
        );
        r.record_deployed("Server", doms[0][0]);
        let goal = Goal {
            iface: "SvcI".into(),
            client_node: doms[domains - 1][1],
            max_latency_ms: latency_bound,
            require_privacy: want_privacy,
            require_plaintext_delivery: true,
        };
        let planner = Planner::new(&r, &network, &PermissiveOracle, PlannerConfig::default());
        if let Ok((plan, _)) = planner.plan(&goal) {
            prop_assert!(goal.satisfied_by(&plan.delivered), "plan: {}", plan.render());
            if want_privacy {
                prop_assert!(!plan.delivered.plaintext_exposed);
            }
            if let Some(bound) = latency_bound {
                prop_assert!(plan.delivered.latency_ms <= bound);
            }
            prop_assert!(!plan.delivered.encrypted);
            // Structural sanity: the plan starts from a running instance.
            let starts_from_deployed = matches!(
                plan.steps.first(),
                Some(psf_core::PlanStep::UseDeployed { .. })
            );
            prop_assert!(starts_from_deployed);
        }
        // (No-plan outcomes are legitimate for tight bounds; soundness is
        // what we assert, completeness is covered by F6.)
    }
}
