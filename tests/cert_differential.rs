//! Differential and adversarial properties of the proof-carrying
//! certificate layer (`psf-cert` vs the `psf-drbac` engine).
//!
//! The headline property is the trust split's contract:
//!
//! * **engine-proves ⇒ checker-accepts** — every certificate the engine
//!   emits for a verdict replays clean through the independent checker,
//!   in the same environment the proof search ran in;
//! * **checker-accepts ⇒ engine-proves** — whenever the checker vouches
//!   for a certificate (after arbitrary revocations and clock advances),
//!   the engine can still derive the verdict from the live repository.
//!
//! The adversarial half pins deny-by-default: any tampering with an
//! emitted certificate — swapped subject, widened attenuation, dropped
//! link, dropped support, forged signature, stale epoch, uncovered watch
//! set, re-targeted role, raw wire corruption — is a *typed*
//! [`CertError`], never an accept and never a panic, both on the decoded
//! structure and on re-encoded wire bytes.

use proptest::prelude::*;
use psf_cert::{AuthCertificate, CertAttr, CertError, CertSubject};
use psf_drbac::check_certificate;
use psf_drbac::entity::{Entity, EntityRegistry, RoleName};
use psf_drbac::proof::ProofEngine;
use psf_drbac::repository::{CredentialSource, Repository};
use psf_drbac::revocation::RevocationBus;
use psf_drbac::{AttrValue, DelegationBuilder};
use std::sync::Arc;

// ------------------------------------------------------- differential --

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random delegation worlds: role→role chains of random depth plus an
    /// optional third-party grant (assignment support, attribute
    /// attenuation, optional expiry). Every engine verdict must emit a
    /// certificate the checker accepts; after a random revocation and a
    /// clock advance, every certificate the checker still accepts must
    /// still be engine-provable.
    #[test]
    fn checker_accepts_iff_engine_proves(
        seed in 0u64..1000,
        chain_len in 1usize..4,
        third_party in any::<bool>(),
        cap_owner in 1i64..100,
        cap_manager in 1i64..100,
        expiry in prop::option::of(50u64..200),
        revoke_pick in 0usize..16,
        now_later in 0u64..300,
    ) {
        let registry = EntityRegistry::new();
        let repo = Repository::new();
        let bus = RevocationBus::new();
        let user = Entity::with_seed(format!("user{seed}"), b"certdiff");
        registry.register(&user);

        let mut published: Vec<String> = Vec::new();
        let mut publish = |cred: psf_drbac::SignedDelegation| {
            published.push(cred.id());
            repo.publish_at_issuer(cred);
        };

        // Membership chain: user ∈ d_{n-1}.R, and d_{i+1}.R → d_i.R.
        let mut domains = Vec::new();
        for i in 0..chain_len {
            let d = Entity::with_seed(format!("d{seed}-{i}"), b"certdiff");
            registry.register(&d);
            domains.push(d);
        }
        let mut leaf = DelegationBuilder::new(&domains[chain_len - 1])
            .subject_entity(&user)
            .role(domains[chain_len - 1].role("R"));
        if let Some(t) = expiry {
            leaf = leaf.expires(t);
        }
        publish(leaf.sign());
        for i in (0..chain_len - 1).rev() {
            publish(
                DelegationBuilder::new(&domains[i])
                    .subject_role(domains[i + 1].role("R"))
                    .role(domains[i].role("R"))
                    .sign(),
            );
        }
        // Third-party grant: the owner hands the assignment right for TP
        // to a manager, who then enrols the user with its own bound.
        if third_party {
            let manager = Entity::with_seed(format!("mgr{seed}"), b"certdiff");
            registry.register(&manager);
            publish(
                DelegationBuilder::new(&domains[0])
                    .subject_entity(&manager)
                    .assignment()
                    .role(domains[0].role("TP"))
                    .attr("CPU", AttrValue::Capacity(cap_owner))
                    .sign(),
            );
            publish(
                DelegationBuilder::new(&manager)
                    .subject_entity(&user)
                    .role(domains[0].role("TP"))
                    .attr("CPU", AttrValue::Capacity(cap_manager))
                    .sign(),
            );
        }

        let subject = user.as_subject();
        let mut targets: Vec<RoleName> =
            (0..chain_len).map(|i| domains[i].role("R")).collect();
        if third_party {
            targets.push(domains[0].role("TP"));
        }

        // Forward: engine-proves ⇒ the emitted certificate replays.
        let engine = ProofEngine::new(&registry, &repo, &bus, 0);
        let mut emitted: Vec<(RoleName, Arc<AuthCertificate>)> = Vec::new();
        for target in &targets {
            if let Ok((proof, cert, _)) = engine.prove_certified(&subject, target, &[]) {
                prop_assert_eq!(
                    check_certificate(&cert, &registry, &bus, 0, repo.version()),
                    Ok(()),
                    "emitted certificate for {} must replay",
                    target
                );
                prop_assert_eq!(&cert.watch, &proof.credential_ids());
                // The wire round-trip is the same verdict.
                let decoded = AuthCertificate::decode(&cert.encode()).unwrap();
                prop_assert_eq!(
                    check_certificate(&decoded, &registry, &bus, 0, repo.version()),
                    Ok(())
                );
                emitted.push((target.clone(), cert));
            }
        }
        prop_assert!(!emitted.is_empty(), "at least the direct chain proves");

        // Mutate the environment: revoke one random published credential
        // and advance the clock; then the reverse direction must hold.
        bus.revoke(&published[revoke_pick % published.len()]);
        let engine_later = ProofEngine::new(&registry, &repo, &bus, now_later);
        for (target, cert) in &emitted {
            let verdict = check_certificate(cert, &registry, &bus, now_later, repo.version());
            if verdict.is_ok() {
                prop_assert!(
                    engine_later.prove(&subject, target, &[]).is_ok(),
                    "checker accepts {} → {} after revocation but engine cannot prove it",
                    cert.subject.render(),
                    target
                );
            }
            // And a fresh engine verdict still emits a replaying cert.
            if let Ok((_, fresh, _)) = engine_later.prove_certified(&subject, target, &[]) {
                prop_assert_eq!(
                    check_certificate(&fresh, &registry, &bus, now_later, repo.version()),
                    Ok(())
                );
            }
        }
    }
}

// -------------------------------------------------------- adversarial --

/// A fixed two-edge world (owner → manager assignment with a CPU bound,
/// manager → Bob membership) shared by the mutation cases.
struct AdvWorld {
    registry: EntityRegistry,
    repo: Repository,
    bus: RevocationBus,
    alice_key: [u8; 32],
    cert: AuthCertificate,
    wire: Vec<u8>,
}

fn adv_world() -> &'static AdvWorld {
    static WORLD: std::sync::OnceLock<AdvWorld> = std::sync::OnceLock::new();
    WORLD.get_or_init(|| {
        let registry = EntityRegistry::new();
        let ny = Entity::with_seed("Comp.NY", b"adv");
        let sd = Entity::with_seed("Comp.SD", b"adv");
        let bob = Entity::with_seed("Bob", b"adv");
        let alice = Entity::with_seed("Alice", b"adv");
        for e in [&ny, &sd, &bob, &alice] {
            registry.register(e);
        }
        let repo = Repository::new();
        let bus = RevocationBus::new();
        repo.publish_at_issuer(
            DelegationBuilder::new(&ny)
                .subject_entity(&sd)
                .assignment()
                .role(ny.role("Partner"))
                .attr("CPU", AttrValue::Capacity(50))
                .sign(),
        );
        repo.publish_at_issuer(
            DelegationBuilder::new(&sd)
                .subject_entity(&bob)
                .role(ny.role("Partner"))
                .attr("CPU", AttrValue::Capacity(100))
                .sign(),
        );
        let engine = ProofEngine::new(&registry, &repo, &bus, 0);
        let (_, cert, _) = engine
            .prove_certified(&bob.as_subject(), &ny.role("Partner"), &[])
            .expect("mail-style chain proves");
        let cert = (*cert).clone();
        let wire = cert.encode();
        let alice_key = alice.public_key().0;
        AdvWorld {
            registry,
            repo,
            bus,
            alice_key,
            cert,
            wire,
        }
    })
}

fn recheck(w: &AdvWorld, cert: &AuthCertificate, now: u64) -> Result<(), CertError> {
    check_certificate(cert, &w.registry, &w.bus, now, w.repo.version())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Structural tampering with an emitted certificate: every mutation
    /// class is rejected with a typed error, both on the decoded
    /// structure and after re-encoding (the attacker can recompute the
    /// integrity digest — rejection must be semantic, not just
    /// integrity).
    #[test]
    fn structural_mutations_never_replay(
        mutation in 0usize..8,
        tweak in 1u64..1000,
        byte in 0usize..64,
    ) {
        let w = adv_world();
        let mut cert = w.cert.clone();
        let expect_class: fn(&CertError) -> bool = match mutation {
            0 => {
                // Swapped subject: Alice's real identity, Bob's chain.
                cert.subject = CertSubject::Entity {
                    name: "Alice".into(),
                    key: w.alice_key,
                };
                |e| matches!(e, CertError::BrokenLink { .. })
            }
            1 => {
                // Widened attenuation: claim more CPU than the chain
                // conveys (the assignment bound is 50).
                cert.attrs
                    .0
                    .insert("CPU".into(), CertAttr::Capacity(100));
                |e| matches!(e, CertError::AttrMismatch)
            }
            2 => {
                // Dropped link: no chain at all.
                cert.edges.clear();
                |e| matches!(e, CertError::EmptyChain)
            }
            3 => {
                // Forged signature. The edge id is derived from the signed
                // bytes, so the attacker also patches the watch set to the
                // new ids — rejection must come from the signature check
                // itself, not from watch coverage.
                cert.edges[0].signature[byte % 64] ^= (tweak % 255 + 1) as u8;
                cert.watch = cert.chain_ids();
                |e| matches!(e, CertError::BadSignature { .. })
            }
            4 => {
                // Stale (future) epoch: evidence the repository never saw.
                let current = w.repo.version().unwrap_or(0);
                cert.repo_epoch = Some(current + tweak);
                |e| matches!(e, CertError::EpochAhead { .. })
            }
            5 => {
                // Watch set no longer covers the chain: a revocation
                // monitor built from it would silently miss an edge.
                cert.watch.remove(byte % cert.watch.len());
                |e| matches!(e, CertError::UnwatchedEdge(_))
            }
            6 => {
                // Re-targeted role.
                cert.role = "Comp.NY.Admin".into();
                |e| matches!(e, CertError::WrongTarget | CertError::UnwatchedEdge(_))
            }
            _ => {
                // Dropped support: the membership edge's issuer loses its
                // authorization chain.
                cert.edges[0].support = Some(Vec::new());
                |e| {
                    matches!(
                        e,
                        CertError::SupportMismatch { .. } | CertError::UnwatchedEdge(_)
                    )
                }
            }
        };
        let err = recheck(w, &cert, 0).expect_err("tampered certificate must be rejected");
        prop_assert!(expect_class(&err), "unexpected rejection {err:?} for mutation {mutation}");
        // Re-encoded wire bytes (digest recomputed) are rejected too; a
        // mutation that broke the encoding itself is already a rejection.
        if let Ok(decoded) = AuthCertificate::decode(&cert.encode()) {
            prop_assert!(recheck(w, &decoded, 0).is_err());
        }
    }

    /// Raw wire corruption: any single byte flip and any truncation is a
    /// typed [`CertError`] — never an accept, never a panic.
    #[test]
    fn wire_corruption_is_a_typed_rejection(
        idx in any::<usize>(),
        mask in 1u16..256,
        cut in any::<usize>(),
    ) {
        let w = adv_world();
        let mut flipped = w.wire.clone();
        let i = idx % flipped.len();
        flipped[i] ^= mask as u8;
        let verdict = AuthCertificate::decode(&flipped)
            .and_then(|c| recheck(w, &c, 0).map(|()| c));
        prop_assert!(verdict.is_err(), "flipped wire byte {i} must not verify");

        let truncated = &w.wire[..cut % w.wire.len()];
        prop_assert!(AuthCertificate::decode(truncated).is_err());
    }
}

/// The untampered baseline the mutation cases deviate from: the emitted
/// certificate replays clean, so every rejection above is attributable
/// to the mutation.
#[test]
fn baseline_certificate_replays() {
    let w = adv_world();
    assert_eq!(recheck(w, &w.cert, 0), Ok(()));
    let decoded = AuthCertificate::decode(&w.wire).unwrap();
    assert_eq!(recheck(w, &decoded, 0), Ok(()));
}
