//! Cross-crate integration: a client view reaching a deployed mail
//! service across a *real TCP* Switchboard channel, with dRBAC
//! authorization at every seam.

use psf_drbac::DelegationBuilder;
use psf_mail::{mail_server_class, MailWorld, Message};
use psf_switchboard::{connect_tcp, listen_tcp, AuthSuite, Authorizer, ChannelConfig};
use psf_views::binding::serve_on_channel;
use std::sync::Arc;
use std::time::Duration;

fn quiet() -> ChannelConfig {
    ChannelConfig {
        heartbeat_interval: None,
        rpc_timeout: Duration::from_secs(10),
        ..Default::default()
    }
}

#[test]
fn client_view_over_real_tcp_switchboard() {
    let w = MailWorld::build(1);

    // The server side: a MailServer instance served over TCP Switchboard.
    let server_instance = mail_server_class().instantiate();
    server_instance
        .invoke("createAccount", b"alice,555-0100,alice@comp.ny")
        .unwrap();
    server_instance
        .invoke("createAccount", b"bob,555-0199,bob@comp.sd")
        .unwrap();

    // Identities + credentials for both channel ends, issued by NY-Guard.
    let server_id = w.ny_guard.create_principal("MailServerEndpoint");
    let server_cred = w.ny_guard.publish(
        w.ny_guard
            .issue()
            .subject_entity(&server_id)
            .role(w.ny_guard.role("Service"))
            .monitored()
            .sign(),
    );
    // Bob authenticates with his own identity; his Table 2 membership
    // chain (11)+(2) authorizes him as Comp.NY.Member.
    let member_role = w.ny_guard.entity().role("Member");
    let service_role = w.ny_guard.entity().role("Service");

    let server_suite = AuthSuite::new(
        server_id,
        vec![server_cred],
        Authorizer::new(
            w.registry.clone(),
            w.repository.clone(),
            w.bus.clone(),
            w.clock.clone(),
            member_role,
        ),
    );
    let client_suite = AuthSuite::new(
        w.bob.clone(),
        vec![w.creds[&11].clone(), w.creds[&2].clone()],
        Authorizer::new(
            w.registry.clone(),
            w.repository.clone(),
            w.bus.clone(),
            w.clock.clone(),
            service_role,
        ),
    );

    let listener = listen_tcp("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let cfg = quiet();
    // The client's first call races the server thread's handler
    // registration, so the server signals readiness after registering.
    let (ready_tx, ready_rx) = std::sync::mpsc::channel();
    let server_thread = std::thread::spawn(move || {
        let channel = listener.accept(&server_suite, cfg).unwrap();
        serve_on_channel(&channel, server_instance);
        ready_tx.send(()).unwrap();
        channel // keep alive until the test ends
    });

    let channel = Arc::new(connect_tcp(&addr, &client_suite, quiet()).unwrap());
    ready_rx.recv().unwrap();
    assert_eq!(channel.peer().unwrap().name.0, "MailServerEndpoint");

    // Bob's MailClient view uses this channel as its remote binding for
    // the switchboard-exposed interfaces; but here we drive the MailServer
    // interface directly over RPC, then through a VIG view.
    channel
        .call(
            "send",
            &Message::new("bob", "alice", "tcp", "over real sockets").to_bytes(),
        )
        .unwrap();
    let inbox = Message::decode_list(&channel.call("fetch", b"alice").unwrap()).unwrap();
    assert_eq!(inbox.len(), 1);
    assert_eq!(inbox[0].body, "over real sockets");

    // A view bound to the TCP channel: the cache pulls its image across
    // the real socket (coherence over the network).
    let view = psf_views::Vig::new(psf_views::MethodLibrary::new())
        .generate(
            &mail_server_class(),
            &psf_views::ViewSpec::new("MailServerCache", "MailServer")
                .restrict("MailI", psf_views::ExposureType::Local),
        )
        .unwrap();
    let cache = view
        .instantiate(
            Some(channel.clone()),
            psf_views::CoherencePolicy::WriteThrough,
            0,
            b"",
        )
        .unwrap();
    let via_cache = Message::decode_list(&cache.invoke("fetch", b"alice").unwrap()).unwrap();
    assert_eq!(via_cache.len(), 1, "cache image pulled over TCP");

    // A write through the cache lands on the remote original.
    cache
        .invoke(
            "send",
            &Message::new("bob", "alice", "2nd", "written via cache").to_bytes(),
        )
        .unwrap();
    let inbox = Message::decode_list(&channel.call("fetch", b"alice").unwrap()).unwrap();
    assert_eq!(inbox.len(), 2, "cache write-through crossed the socket");

    channel.close();
    let _server = server_thread.join().unwrap();
}

#[test]
fn unauthorized_client_rejected_over_tcp() {
    let w = MailWorld::build(1);
    let server_id = w.ny_guard.create_principal("Srv2");
    let server_cred = w.ny_guard.publish(
        w.ny_guard
            .issue()
            .subject_entity(&server_id)
            .role(w.ny_guard.role("Service"))
            .sign(),
    );
    let server_suite = AuthSuite::new(
        server_id,
        vec![server_cred],
        Authorizer::new(
            w.registry.clone(),
            w.repository.clone(),
            w.bus.clone(),
            w.clock.clone(),
            w.ny_guard.entity().role("Member"),
        ),
    );
    // Mallory has an identity but no membership chain.
    let mallory = psf_drbac::Entity::with_seed("Mallory", b"intruder");
    w.registry.register(&mallory);
    let mallory_suite = AuthSuite::new(
        mallory,
        vec![],
        Authorizer::new(
            w.registry.clone(),
            w.repository.clone(),
            w.bus.clone(),
            w.clock.clone(),
            w.ny_guard.entity().role("Service"),
        ),
    );

    let listener = listen_tcp("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let cfg = quiet();
    let server_thread = std::thread::spawn(move || listener.accept(&server_suite, cfg));
    let result = connect_tcp(&addr, &mallory_suite, quiet());
    assert!(result.is_err(), "handshake must reject Mallory");
    assert!(server_thread.join().unwrap().is_err());
}

#[test]
fn deployment_channels_enforce_component_credentials() {
    // The deployer issues per-connection identities; revoking one of the
    // deployment's credentials flips its monitors (continuous
    // authorization of the *deployed components themselves*).
    let w = MailWorld::build(1);
    let goal = psf_core::Goal::private("MailI", w.sites.sd[0]);
    let (_plan, deployment) = w.deliver(&goal).unwrap();
    assert!(!deployment.issued_credentials.is_empty());

    // All deployment channels are healthy.
    for (client, server) in &deployment.channels {
        assert_eq!(client.status(), psf_switchboard::ChannelStatus::Healthy);
        assert_eq!(server.status(), psf_switchboard::ChannelStatus::Healthy);
    }

    // Revoke one endpoint credential: the secure channel pair notices on
    // the next call.
    let victim = &deployment.issued_credentials[0];
    w.ny_guard.bus().revoke(&victim.id());

    let mut any_blocked = false;
    for (client, _) in &deployment.channels {
        if client.call("fetch", b"alice").is_err() {
            any_blocked = true;
        }
    }
    // Either direction may hold the revoked credential; at least the
    // deployment's endpoint path must now fail (or channels are plain —
    // in which case payload crypto still protects privacy and this test
    // asserts the call still works).
    let endpoint_result = deployment.endpoint.call_remote("fetch", b"alice");
    assert!(
        any_blocked || endpoint_result.is_ok(),
        "revocation must either block the channel or leave a working plain path"
    );

    // Re-issuing works: fresh credential via the guard.
    let fresh = DelegationBuilder::new(w.ny_guard.entity())
        .subject_entity(&deployment.issued_identities[0])
        .role(w.ny_guard.role("Component"))
        .serial(999)
        .sign();
    for (client, _) in &deployment.channels {
        if matches!(
            client.status(),
            psf_switchboard::ChannelStatus::RevalidationRequired(_)
        ) {
            let _ = client.offer_revalidation(std::slice::from_ref(&fresh), Duration::from_secs(2));
        }
    }
}
