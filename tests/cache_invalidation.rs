//! Cache-invalidation coverage for the authorization fast path: a cached
//! proof must be dropped — and the next `prove()` must re-derive or fail
//! afresh — whenever any credential it depends on is revoked or expires,
//! including assignment-right *supports* of third-party delegations, and
//! whenever the repository or registry contents change under it.

use psf_drbac::entity::{Entity, EntityRegistry, RoleName, Subject};
use psf_drbac::proof::ProofEngine;
use psf_drbac::repository::Repository;
use psf_drbac::revocation::RevocationBus;
use psf_drbac::{AuthCache, DelegationBuilder};

struct World {
    registry: EntityRegistry,
    repo: Repository,
    bus: RevocationBus,
    cache: AuthCache,
    user: Entity,
    target: RoleName,
}

impl World {
    /// `user -R-> d2 -R-> d1 -R-> d0`, all published.
    fn chain(depth: usize) -> World {
        let registry = EntityRegistry::new();
        let repo = Repository::new();
        let bus = RevocationBus::new();
        let user = Entity::with_seed("User", b"inval");
        registry.register(&user);
        let mut domains = Vec::new();
        for i in 0..depth {
            let d = Entity::with_seed(format!("D{i}"), b"inval");
            registry.register(&d);
            domains.push(d);
        }
        repo.publish_at_issuer(
            DelegationBuilder::new(&domains[depth - 1])
                .subject_entity(&user)
                .role(domains[depth - 1].role("R"))
                .sign(),
        );
        for i in (0..depth - 1).rev() {
            repo.publish_at_issuer(
                DelegationBuilder::new(&domains[i])
                    .subject_role(domains[i + 1].role("R"))
                    .role(domains[i].role("R"))
                    .sign(),
            );
        }
        let target = domains[0].role("R");
        World {
            registry,
            repo,
            bus,
            cache: AuthCache::new(),
            user,
            target,
        }
    }

    fn engine(&self, now: u64) -> ProofEngine<'_> {
        ProofEngine::with_cache(&self.registry, &self.repo, &self.bus, now, &self.cache)
    }

    fn subject(&self) -> Subject {
        self.user.as_subject()
    }
}

/// Warm the cache, then revoke each credential in the cached proof's
/// `credential_ids()` set in turn (fresh world each time): the next
/// `prove()` must not serve the stale entry — it re-derives and fails.
#[test]
fn revoking_any_proof_credential_forces_a_miss() {
    let depth = 4;
    let probe = World::chain(depth);
    let (proof, _) = probe
        .engine(0)
        .prove(&probe.subject(), &probe.target, &[])
        .unwrap();
    let ids = proof.credential_ids();
    assert_eq!(ids.len(), depth);

    for victim in &ids {
        let w = World::chain(depth);
        w.engine(0).prove(&w.subject(), &w.target, &[]).unwrap();
        // Warm: the second call is a pure cache hit.
        w.engine(0).prove(&w.subject(), &w.target, &[]).unwrap();
        let warm = w.cache.stats();
        assert_eq!(warm.proof_hits, 1, "second prove must hit");

        w.bus.revoke(victim);
        let err = w
            .engine(0)
            .prove(&w.subject(), &w.target, &[])
            .expect_err("revoked chain credential must break the proof");
        // The failed search really ran (it examined credentials) rather
        // than echoing a cached verdict.
        assert!(err.stats.credentials_examined > 0);
        let after = w.cache.stats();
        assert_eq!(after.proof_hits, warm.proof_hits, "no hit after revoke");
        assert!(after.proof_invalidations > 0, "stale entry dropped");
    }
}

/// Revoking a credential that does *not* appear in the proof, and was
/// never examined by the search, leaves the cached entry intact.
#[test]
fn revoking_an_unrelated_credential_keeps_the_entry() {
    let w = World::chain(3);
    w.engine(0).prove(&w.subject(), &w.target, &[]).unwrap();
    w.bus.revoke("not-a-credential-the-search-ever-saw");
    w.engine(0).prove(&w.subject(), &w.target, &[]).unwrap();
    assert_eq!(w.cache.stats().proof_hits, 1);
}

/// Third-party delegation: the proof's top edge is issued by a domain
/// that only holds the *right of assignment* via a support credential.
/// Revoking that support — which never appears as a chain edge — must
/// still invalidate the cached proof.
#[test]
fn revoking_a_third_party_support_forces_a_miss() {
    let registry = EntityRegistry::new();
    let repo = Repository::new();
    let bus = RevocationBus::new();
    let cache = AuthCache::new();
    let ny = Entity::with_seed("Comp.NY", b"inval");
    let sd = Entity::with_seed("Comp.SD", b"inval");
    let bob = Entity::with_seed("Bob", b"inval");
    for e in [&ny, &sd, &bob] {
        registry.register(e);
    }
    // SD grants Bob NY.Partner — only valid because NY granted SD the
    // assignment right.
    let grant = DelegationBuilder::new(&sd)
        .subject_entity(&bob)
        .role(ny.role("Partner"))
        .sign();
    let assignment = DelegationBuilder::new(&ny)
        .subject_entity(&sd)
        .assignment()
        .role(ny.role("Partner"))
        .sign();
    repo.publish_at_issuer(grant.clone());
    repo.publish_at_issuer(assignment.clone());

    let engine = ProofEngine::with_cache(&registry, &repo, &bus, 0, &cache);
    let (proof, _) = engine
        .prove(&bob.as_subject(), &ny.role("Partner"), &[])
        .unwrap();
    let support = proof.edges[0].support.as_ref().expect("support proof");
    assert_eq!(support.edges[0].credential.id(), assignment.id());
    // The support's id is part of the dependency set…
    assert!(proof.credential_ids().contains(&assignment.id()));
    engine
        .prove(&bob.as_subject(), &ny.role("Partner"), &[])
        .unwrap();
    assert_eq!(cache.stats().proof_hits, 1);

    // …so revoking it kills the cached entry and the re-derivation.
    bus.revoke(&assignment.id());
    assert!(engine
        .prove(&bob.as_subject(), &ny.role("Partner"), &[])
        .is_err());
    let s = cache.stats();
    assert_eq!(s.proof_hits, 1, "no stale hit after support revocation");
    assert!(s.proof_invalidations > 0);
}

/// A cached proof over an expiring credential must lapse exactly at its
/// expiry time — a hit at `expiry - 1`, a fresh failing search at
/// `expiry`.
#[test]
fn expiry_is_observed_through_the_cache() {
    let registry = EntityRegistry::new();
    let repo = Repository::new();
    let bus = RevocationBus::new();
    let cache = AuthCache::new();
    let d = Entity::with_seed("D", b"inval");
    let user = Entity::with_seed("User", b"inval");
    registry.register(&d);
    registry.register(&user);
    repo.publish_at_issuer(
        DelegationBuilder::new(&d)
            .subject_entity(&user)
            .role(d.role("R"))
            .expires(100)
            .sign(),
    );
    let engine = |now| ProofEngine::with_cache(&registry, &repo, &bus, now, &cache);
    engine(0)
        .prove(&user.as_subject(), &d.role("R"), &[])
        .unwrap();
    engine(99)
        .prove(&user.as_subject(), &d.role("R"), &[])
        .unwrap();
    assert_eq!(cache.stats().proof_hits, 1, "pre-expiry repeat hits");
    assert!(engine(100)
        .prove(&user.as_subject(), &d.role("R"), &[])
        .is_err());
    assert_eq!(cache.stats().proof_hits, 1, "no hit at expiry");
}

/// Publishing into the repository bumps its epoch, so a cached decision
/// can never hide newly granted credentials: after a publish the next
/// `prove()` re-searches and picks up the new, shorter proof.
#[test]
fn repository_publish_forces_rederivation() {
    let w = World::chain(3);
    let (proof, _) = w.engine(0).prove(&w.subject(), &w.target, &[]).unwrap();
    assert_eq!(proof.edges.len(), 3);
    // The target domain now grants the user membership directly.
    let d0 = Entity::with_seed("D0", b"inval");
    w.repo.publish_at_issuer(
        DelegationBuilder::new(&d0)
            .subject_entity(&w.user)
            .role(w.target.clone())
            .sign(),
    );
    let (proof, _) = w.engine(0).prove(&w.subject(), &w.target, &[]).unwrap();
    assert_eq!(proof.edges.len(), 1, "publish must be visible immediately");
    assert_eq!(w.cache.stats().proof_hits, 0);
}

/// Failed searches are cached too, and invalidated the same way: after a
/// repository publish that makes the role provable, the cached failure
/// must not stick.
#[test]
fn negative_entries_lift_after_publish() {
    let registry = EntityRegistry::new();
    let repo = Repository::new();
    let bus = RevocationBus::new();
    let cache = AuthCache::new();
    let d = Entity::with_seed("D", b"inval");
    let user = Entity::with_seed("User", b"inval");
    registry.register(&d);
    registry.register(&user);
    let engine = ProofEngine::with_cache(&registry, &repo, &bus, 0, &cache);
    assert!(engine.prove(&user.as_subject(), &d.role("R"), &[]).is_err());
    assert!(engine.prove(&user.as_subject(), &d.role("R"), &[]).is_err());
    assert_eq!(cache.stats().proof_hits, 1, "repeat failure is a hit");
    repo.publish_at_issuer(
        DelegationBuilder::new(&d)
            .subject_entity(&user)
            .role(d.role("R"))
            .sign(),
    );
    engine
        .prove(&user.as_subject(), &d.role("R"), &[])
        .expect("publish must lift the cached failure");
}

/// `purge_expired` sweeps shard by shard. A purge that removes a
/// credential the proof depends on moves that shard's high-water mark,
/// so the cached proof must re-derive (and fail — the credential is
/// gone). A purge that removes nothing leaves every shard mark
/// untouched, and the cached proof — derived from identical contents —
/// stays servable.
#[test]
fn purge_expired_invalidates() {
    let registry = EntityRegistry::new();
    let repo = Repository::new();
    let bus = RevocationBus::new();
    let cache = AuthCache::new();
    let d = Entity::with_seed("D", b"inval");
    let user = Entity::with_seed("User", b"inval");
    registry.register(&d);
    registry.register(&user);
    repo.publish_at_issuer(
        DelegationBuilder::new(&d)
            .subject_entity(&user)
            .role(d.role("R"))
            .expires(100)
            .sign(),
    );
    let engine = ProofEngine::with_cache(&registry, &repo, &bus, 0, &cache);
    engine.prove(&user.as_subject(), &d.role("R"), &[]).unwrap();
    assert_eq!(repo.purge_expired(0), 0);
    engine.prove(&user.as_subject(), &d.role("R"), &[]).unwrap();
    assert_eq!(
        cache.stats().proof_hits,
        1,
        "a purge that removed nothing keeps the entry (contents unchanged)"
    );
    assert_eq!(repo.purge_expired(150), 1);
    engine
        .prove(&user.as_subject(), &d.role("R"), &[])
        .expect_err("purging the proof's credential must force a failing re-search");
    assert_eq!(
        cache.stats().proof_hits,
        1,
        "no stale hit after the effective purge"
    );
}
