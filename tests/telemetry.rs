//! Observability integration: a full-stack mail-scenario run must leave a
//! coherent telemetry record — nested spans covering planning, dRBAC proof
//! search, VIG view generation, deployment, and Switchboard handshakes,
//! plus a metrics registry with nonzero planner frontier counters and at
//! least one heartbeat round-trip sample. A second test drives the `psf`
//! binary itself (`--quiet --trace-out … metrics`).

use psf_core::Goal;
use psf_mail::MailWorld;
use psf_switchboard::{pair_in_memory_plain, ChannelConfig};
use psf_telemetry::SpanRecord;
use std::time::Duration;

fn find<'a>(spans: &'a [SpanRecord], target: &str, name: &str) -> Option<&'a SpanRecord> {
    spans.iter().find(|s| s.target == target && s.name == name)
}

#[test]
fn full_stack_run_emits_nested_spans_and_metrics() {
    let w = MailWorld::build(2);

    // Privacy across the insecure WAN: planner, proof search, secure
    // Switchboard channels, encryptor/decryptor middleware.
    let (plan, deployment) = w.deliver(&Goal::private("MailI", w.sites.sd[1])).unwrap();
    assert!(plan.deployments() >= 2, "plan: {}", plan.render());
    deployment.endpoint.call_remote("fetch", b"alice").unwrap();
    deployment.teardown(Some(&w.sites.network), &w.ny_guard);

    // A tight latency bound forces the cache view: VIG generation.
    let latency_goal = Goal {
        iface: "MailI".into(),
        client_node: w.sites.sd[0],
        max_latency_ms: Some(10.0),
        require_privacy: false,
        require_plaintext_delivery: true,
    };
    let (_, deployment) = w.deliver(&latency_goal).unwrap();
    deployment.teardown(Some(&w.sites.network), &w.ny_guard);

    // --- spans -----------------------------------------------------------
    let spans = psf_telemetry::tracer().snapshot();
    assert!(!spans.is_empty(), "tracer buffer must not be empty");
    let plan_span = find(&spans, "psf.planner", "plan").expect("planner span");
    let prove_span = find(&spans, "psf.drbac", "prove").expect("proof-search span");
    let vig_span = find(&spans, "psf.views", "vig.generate").expect("VIG span");
    let exec_span = find(&spans, "psf.deploy", "execute").expect("deploy span");
    let hs_span = find(&spans, "psf.swbd", "handshake").expect("handshake span");
    assert!(exec_span
        .fields
        .iter()
        .any(|(k, v)| *k == "ok" && v == "true"));
    assert!(plan_span.dur_us > 0 || prove_span.dur_us > 0);
    assert!(vig_span.fields.iter().any(|(k, _)| *k == "view"));
    assert!(hs_span.fields.iter().any(|(k, _)| *k == "role"));

    // Nesting: oracle proofs run inside planning; plan steps inside the
    // deployment; the whole pipeline inside the mail deliver span.
    let deliver_span = find(&spans, "psf.mail", "deliver").expect("deliver span");
    assert!(
        spans
            .iter()
            .filter(|s| s.target == "psf.drbac" && s.name == "prove")
            .any(|s| {
                s.parent.is_some_and(|p| {
                    spans
                        .iter()
                        .any(|q| q.id == p && q.target == "psf.planner" && q.name == "plan")
                })
            }),
        "at least one proof-search span must nest under a planner span"
    );
    let step_parent_of_execute = spans
        .iter()
        .filter(|s| s.target == "psf.deploy" && s.name == "step")
        .filter_map(|s| s.parent)
        .any(|p| spans.iter().any(|q| q.id == p && q.name == "execute"));
    assert!(
        step_parent_of_execute,
        "deploy steps must nest under execute"
    );
    assert!(
        spans
            .iter()
            .filter(|s| s.name == "plan" || s.name == "execute")
            .any(|s| s.parent == Some(deliver_span.id)),
        "planning/deployment must nest under the deliver span"
    );

    // --- JSONL export ----------------------------------------------------
    let jsonl = psf_telemetry::export_jsonl();
    assert_eq!(jsonl.lines().count(), spans.len());
    assert!(jsonl.contains("\"target\":\"psf.planner\""));
    assert!(jsonl.contains("\"target\":\"psf.swbd\""));
    let nested_lines = jsonl
        .lines()
        .filter(|l| l.contains("\"parent\":") && !l.contains("\"parent\":null"))
        .count();
    assert!(nested_lines > 0, "export must contain child spans");

    // --- metrics ---------------------------------------------------------
    let reg = psf_telemetry::registry();
    assert!(reg.counter_value("psf.planner.plans") >= 2);
    assert!(
        reg.counter_value("psf.planner.expanded") > 0,
        "frontier counter"
    );
    assert!(
        reg.counter_value("psf.planner.generated") > 0,
        "frontier counter"
    );
    assert!(reg.counter_value("psf.drbac.prove.calls") > 0);
    assert!(reg.counter_value("psf.drbac.repo.queries") > 0);
    assert!(reg.counter_value("psf.deploy.executions") >= 2);
    assert!(reg.counter_value("psf.deploy.steps") > 0);
    assert!(reg.counter_value("psf.views.vig.generated") >= 1);
    // The insecure NY→SD hop runs the secure handshake on both ends.
    assert!(reg.counter_value("psf.swbd.handshake.ok") >= 2);
    let plan_us = reg
        .histogram_snapshot("psf.planner.plan.us")
        .expect("plan duration histogram");
    assert!(plan_us.count >= 2);
}

#[test]
fn heartbeat_populates_rtt_histogram_and_channel_stats() {
    let before = psf_telemetry::registry()
        .histogram_snapshot("psf.swbd.hb.rtt.us")
        .map_or(0, |s| s.count);

    let cfg = ChannelConfig {
        heartbeat_interval: None,
        rpc_timeout: Duration::from_secs(2),
        ..Default::default()
    };
    let (a, b) = pair_in_memory_plain(cfg);
    a.send_heartbeat().unwrap();
    for _ in 0..2000 {
        if a.last_rtt().is_some() {
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }

    let stats = a.stats();
    assert!(stats.last_rtt.is_some(), "heartbeat must round-trip");
    assert_eq!(stats.heartbeats_sent, 1);
    assert!(stats.traffic.frames_sent >= 1);
    assert!(stats.traffic.bytes_sent > 0);
    assert!(b.stats().heartbeats_received >= 1);

    let after = psf_telemetry::registry()
        .histogram_snapshot("psf.swbd.hb.rtt.us")
        .expect("hb rtt histogram");
    assert!(after.count > before, "RTT histogram must gain a sample");
    assert!(after.max >= 1);

    a.close();
    b.close();
}

#[test]
fn psf_binary_metrics_run_writes_trace_and_snapshot() {
    let trace_path =
        std::env::temp_dir().join(format!("psf-telemetry-test-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&trace_path);

    let output = std::process::Command::new(env!("CARGO_BIN_EXE_psf"))
        .args(["--quiet", "--trace-out"])
        .arg(&trace_path)
        .arg("metrics")
        .output()
        .expect("run psf binary");
    assert!(
        output.status.success(),
        "psf metrics failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );

    // The Prometheus snapshot carries nonzero planner frontier counters
    // and a populated heartbeat RTT summary.
    let stdout = String::from_utf8_lossy(&output.stdout);
    let counter_value = |name: &str| -> u64 {
        stdout
            .lines()
            .find_map(|l| l.strip_prefix(&format!("{name} ")))
            .and_then(|v| v.parse().ok())
            .unwrap_or(0)
    };
    assert!(counter_value("psf_planner_expanded") > 0, "got:\n{stdout}");
    assert!(counter_value("psf_planner_generated") > 0);
    assert!(counter_value("psf_swbd_handshake_ok") >= 2);
    assert!(
        counter_value("psf_swbd_hb_rtt_us_count") >= 1,
        "got:\n{stdout}"
    );

    // The JSONL trace has the pipeline's spans, including nested ones.
    let trace = std::fs::read_to_string(&trace_path).expect("trace file written");
    assert!(
        trace.lines().count() > 10,
        "trace: {} lines",
        trace.lines().count()
    );
    for target in [
        "psf.planner",
        "psf.drbac",
        "psf.views",
        "psf.deploy",
        "psf.swbd",
    ] {
        assert!(
            trace.contains(&format!("\"target\":\"{target}\"")),
            "trace missing {target}"
        );
    }
    assert!(
        trace
            .lines()
            .any(|l| l.contains("\"parent\":") && !l.contains("\"parent\":null")),
        "trace must contain nested spans"
    );
    let _ = std::fs::remove_file(&trace_path);
}
