//! End-to-end causal tracing: one SSO-shaped request over an in-memory
//! secure Switchboard pair must yield ONE trace linking the client's
//! `rpc.call` span, the server's `rpc.dispatch` span, the ProofEngine
//! proof search, and the view/ACL decision — across the client thread,
//! the RPC envelope, and the server reader thread. The audit log must
//! replay the authorization decisions behind that same trace, and
//! untraced traffic must leave no per-call spans at all.

use psf_drbac::entity::{Entity, EntityRegistry, Subject};
use psf_drbac::repository::Repository;
use psf_drbac::revocation::RevocationBus;
use psf_drbac::DelegationBuilder;
use psf_switchboard::{pair_in_memory, AuthSuite, Authorizer, ChannelConfig, ClockRef};
use psf_telemetry::audit::{Decision, Verdict};
use psf_telemetry::{SpanRecord, TraceId};
use psf_views::ViewAcl;
use std::time::Duration;

struct World {
    registry: EntityRegistry,
    repo: Repository,
    bus: RevocationBus,
    domain: Entity,
    client_suite: AuthSuite,
    server_suite: AuthSuite,
    bob: Entity,
    bob_cred: psf_drbac::SignedDelegation,
}

fn world(seed: &[u8]) -> World {
    let registry = EntityRegistry::new();
    let repo = Repository::new();
    let bus = RevocationBus::new();
    let clock = ClockRef::new();
    let domain = Entity::with_seed("Comp.NY", seed);
    let server = Entity::with_seed("Srv", seed);
    let bob = Entity::with_seed("Bob", seed);
    for e in [&domain, &server, &bob] {
        registry.register(e);
    }
    let client_cred = DelegationBuilder::new(&domain)
        .subject_entity(&bob)
        .role(domain.role("Member"))
        .sign();
    let server_cred = DelegationBuilder::new(&domain)
        .subject_entity(&server)
        .role(domain.role("Service"))
        .sign();
    let auth = |role: &str| {
        Authorizer::new(
            registry.clone(),
            repo.clone(),
            bus.clone(),
            clock.clone(),
            domain.role(role),
        )
    };
    let bob_cred = client_cred.clone();
    World {
        client_suite: AuthSuite::new(bob.clone(), vec![client_cred], auth("Service")),
        server_suite: AuthSuite::new(server, vec![server_cred], auth("Member")),
        registry,
        repo,
        bus,
        domain,
        bob,
        bob_cred,
    }
}

fn config() -> ChannelConfig {
    ChannelConfig {
        heartbeat_interval: None,
        rpc_timeout: Duration::from_secs(5),
        ..Default::default()
    }
}

/// Register the SSO-shaped handler: a role→view ACL decision (which runs
/// the dRBAC proof search inside) on the server side of the channel.
fn register_sso(server: &psf_switchboard::Channel, w: &World) {
    let acl = ViewAcl::new()
        .rule(w.domain.role("Member"), "member")
        .others("anonymous");
    let subject = Subject::Entity {
        name: w.bob.name.clone(),
        key: w.bob.public_key(),
    };
    let creds = vec![w.bob_cred.clone()];
    let (registry, repo, bus) = (w.registry.clone(), w.repo.clone(), w.bus.clone());
    server.register_handler("sso", move |_args| {
        let (view, _proof) = acl
            .select_view(&subject, &creds, &registry, &repo, &bus, 0)
            .ok_or_else(|| "no view".to_string())?;
        Ok(view.into_bytes())
    });
}

fn in_trace(spans: &[SpanRecord], trace: TraceId) -> Vec<&SpanRecord> {
    spans.iter().filter(|s| s.trace == Some(trace)).collect()
}

#[test]
fn one_trace_links_client_rpc_server_dispatch_prove_and_view_decision() {
    let w = world(b"e2e-linked");
    let trace;
    {
        let root = psf_telemetry::span("psf.e2e", "sso.request");
        trace = root.trace_id();
        // The handshake (and the proof search inside each side's
        // Authorizer) runs under the root span, so admission decisions
        // join the trace too.
        let (client, server) =
            pair_in_memory(w.client_suite.clone(), w.server_suite.clone(), config()).unwrap();
        register_sso(&server, &w);

        // Serial path.
        assert_eq!(client.call("sso", b"bob").unwrap(), b"member");
        // Pipelined path: the context rides in every envelope of the
        // window, not just the first.
        let batch: Vec<&[u8]> = vec![b"bob"; 6];
        let results = client.call_many("sso", &batch, 3);
        assert!(results
            .iter()
            .all(|r| matches!(r.as_deref(), Ok(b"member"))));

        client.close();
        server.close();
    } // root drops: the whole tree is now in the buffer.

    let spans = psf_telemetry::tracer().snapshot();
    let ours = in_trace(&spans, trace);
    let find_all = |target: &str, name: &str| -> Vec<&&SpanRecord> {
        ours.iter()
            .filter(|s| s.target == target && s.name == name)
            .collect()
    };
    let calls = find_all("psf.swbd", "rpc.call");
    let dispatches = find_all("psf.swbd", "rpc.dispatch");
    let proves = find_all("psf.drbac", "prove");
    let selects = find_all("psf.views", "select_view");
    assert!(
        !calls.is_empty(),
        "client rpc.call span must join the trace"
    );
    // 1 serial + 6 pipelined dispatches, all joined via the envelope.
    assert!(
        dispatches.len() >= 7,
        "expected >= 7 rpc.dispatch spans, got {}",
        dispatches.len()
    );
    assert!(!proves.is_empty(), "proof search must join the trace");
    assert_eq!(
        selects.len(),
        7,
        "one view decision per request must join the trace"
    );

    // Cross-thread parenting: the serial dispatch hangs under the
    // client's rpc.call span; the view decision under a dispatch; the
    // proof search under the view decision.
    assert!(
        dispatches
            .iter()
            .any(|d| calls.iter().any(|c| Some(c.id) == d.parent)),
        "a dispatch span must be parented under the client's rpc.call"
    );
    assert!(
        selects
            .iter()
            .all(|s| dispatches.iter().any(|d| Some(d.id) == s.parent)),
        "every view decision must be parented under a dispatch"
    );
    assert!(
        proves
            .iter()
            .any(|p| selects.iter().any(|s| Some(s.id) == p.parent)),
        "a proof search must be parented under a view decision"
    );

    // Completeness: no span in the tree references a parent outside it
    // (the root itself is in the buffer since its guard dropped).
    let ids: std::collections::HashSet<u64> = ours.iter().map(|s| s.id).collect();
    let orphans: Vec<_> = ours
        .iter()
        .filter(|s| s.parent.is_some_and(|p| !ids.contains(&p)))
        .collect();
    assert!(orphans.is_empty(), "orphan parents in trace: {orphans:?}");

    // The audit trail replays the decisions behind this trace: channel
    // admission on both sides, the proof searches, the view selections.
    let records = psf_telemetry::audit::global().query(None, false, Some(trace));
    let count = |d: Decision| records.iter().filter(|r| r.decision == d).count();
    assert!(count(Decision::Authorize) >= 2, "handshake admissions");
    assert!(count(Decision::Prove) >= 7, "proof searches");
    assert_eq!(count(Decision::SelectView), 7, "view selections");
    assert!(records.iter().all(|r| r.verdict == Verdict::Allow));
    // Role-rule decisions carry the delegation-chain digest.
    assert!(records
        .iter()
        .filter(|r| r.decision == Decision::SelectView)
        .all(|r| !r.chain_digest.is_empty()));

    // JSONL replay (what `psf audit --json` prints) round-trips the
    // trace id and decision kinds.
    let hex = trace.to_hex();
    for r in &records {
        let line = psf_telemetry::AuditLog::render_jsonl(r);
        assert!(line.contains(&hex), "record must carry the trace id");
        assert!(line.contains(&format!("\"decision\":\"{}\"", r.decision.as_str())));
    }
}

/// Continuous authorization over the certificate path: when a revocation
/// notice invalidates a channel's monitor, the next call re-checks the
/// admission certificate with the independent checker, and that verdict
/// joins the audit trail under the ORIGINAL request trace — carrying the
/// certificate digest and `cert-verified` cache provenance, so the replay
/// shows exactly which piece of evidence was re-validated and why traffic
/// stopped.
#[test]
fn revocation_recheck_joins_the_trace_with_certificate_digest() {
    use psf_telemetry::audit::CacheOutcome;

    let registry = EntityRegistry::new();
    let repo = Repository::new();
    let bus = RevocationBus::new();
    let clock = ClockRef::new();
    let domain = Entity::with_seed("Comp.NY", b"e2e-recheck");
    let server = Entity::with_seed("Srv", b"e2e-recheck");
    let bob = Entity::with_seed("Bob", b"e2e-recheck");
    for e in [&domain, &server, &bob] {
        registry.register(e);
    }
    let client_cred = DelegationBuilder::new(&domain)
        .subject_entity(&bob)
        .role(domain.role("Member"))
        .monitored()
        .sign();
    let server_cred = DelegationBuilder::new(&domain)
        .subject_entity(&server)
        .role(domain.role("Service"))
        .monitored()
        .sign();
    let server_cred_id = server_cred.id();
    let auth = |role: &str| {
        Authorizer::new(
            registry.clone(),
            repo.clone(),
            bus.clone(),
            clock.clone(),
            domain.role(role),
        )
    };
    let client_suite = AuthSuite::new(bob.clone(), vec![client_cred], auth("Service"));
    let server_suite = AuthSuite::new(server, vec![server_cred], auth("Member"));

    let trace;
    {
        let root = psf_telemetry::span("psf.e2e", "sso.recheck");
        trace = root.trace_id();
        let (client, server_ch) = pair_in_memory(client_suite, server_suite, config()).unwrap();
        server_ch.register_handler("ping", |args| Ok(args.to_vec()));
        assert_eq!(client.call("ping", b"hi").unwrap(), b"hi");

        // The server's credential — watched by the client's monitor and
        // part of the admission certificate's chain — is revoked mid-
        // conversation. The client's next call runs the checker-only
        // re-check and refuses traffic.
        bus.revoke(&server_cred_id);
        let err = client.call("ping", b"again").unwrap_err();
        assert!(
            err.to_string().contains("revalidation required"),
            "expected revalidation refusal, got: {err}"
        );
        client.close();
        server_ch.close();
    }

    let records = psf_telemetry::audit::global().query(None, false, Some(trace));
    let rechecks: Vec<_> = records
        .iter()
        .filter(|r| r.cache == CacheOutcome::CertVerified)
        .collect();
    assert_eq!(
        rechecks.len(),
        1,
        "exactly one checker re-check must join the request trace"
    );
    let r = rechecks[0];
    assert_eq!(r.decision, Decision::Authorize);
    assert_eq!(
        r.verdict,
        Verdict::Revoked,
        "the revoked chain must be refused"
    );
    assert_eq!(
        r.cert_digest.len(),
        16,
        "the audited verdict must carry the certificate digest, got {:?}",
        r.cert_digest
    );
    assert_eq!(
        r.chain_digest,
        psf_telemetry::audit::chain_digest(&[&server_cred_id]),
        "the audited chain digest must cover the revoked credential's chain"
    );
    assert!(r.detail.contains("certificate re-check"));

    // The admissions from the handshake audited under the same trace used
    // the engine path, not the checker: provenance separates them.
    assert!(records
        .iter()
        .any(|rec| rec.decision == Decision::Authorize && rec.cache != CacheOutcome::CertVerified));
}

#[test]
fn untraced_traffic_records_no_per_call_spans() {
    let w = world(b"e2e-untraced");
    // No live trace: the client must skip its rpc.call span, embed a
    // zero header, and the server must skip its dispatch span.
    let _quiet = psf_telemetry::untraced();
    let (client, server) =
        pair_in_memory(w.client_suite.clone(), w.server_suite.clone(), config()).unwrap();
    register_sso(&server, &w);
    assert_eq!(client.call("sso", b"bob").unwrap(), b"member");
    client.close();
    server.close();

    // The view decision still ran (its span exists, in a fresh tree of
    // its own), but no rpc.call/rpc.dispatch span was recorded for it:
    // its parent chain stops at the handler, not at a dispatch span.
    let spans = psf_telemetry::tracer().snapshot();
    let selects: Vec<&SpanRecord> = spans
        .iter()
        .filter(|s| s.target == "psf.views" && s.name == "select_view")
        .collect();
    assert!(!selects.is_empty());
    let dispatch_ids: std::collections::HashSet<u64> = spans
        .iter()
        .filter(|s| s.target == "psf.swbd" && s.name == "rpc.dispatch")
        .map(|s| s.id)
        .collect();
    // None of *this* test's view decisions nest under any dispatch; the
    // linked test runs in the same process, so scope the check to spans
    // whose trace has no dispatch member.
    let linked_traces: std::collections::HashSet<_> = spans
        .iter()
        .filter(|s| dispatch_ids.contains(&s.id))
        .filter_map(|s| s.trace)
        .collect();
    assert!(
        selects
            .iter()
            .any(|s| s.trace.is_some_and(|t| !linked_traces.contains(&t))
                && s.parent.is_none_or(|p| !dispatch_ids.contains(&p))),
        "an untraced request must produce a view decision with no dispatch parent"
    );

    // And its audit record does not join any RPC-linked trace: with no
    // context in the envelope, the decision's span (and hence its audit
    // trace, if any) starts a tree of its own on the reader thread.
    let records = psf_telemetry::audit::global().query(Some("Bob"), false, None);
    assert!(
        records.iter().any(|r| r.decision == Decision::SelectView
            && r.trace.is_none_or(|t| !linked_traces.contains(&t))),
        "untraced decisions must not join an RPC-linked trace"
    );
}
