//! Experiment F5 behaviours: single sign-on — "authentication and
//! authorization decisions can be completed when the view is first
//! instantiated. After that clients are free to access the view they
//! receive, without additional access control."

use psf_drbac::entity::{Entity, EntityRegistry};
use psf_drbac::proof::ProofEngine;
use psf_drbac::repository::Repository;
use psf_drbac::revocation::RevocationBus;
use psf_drbac::DelegationBuilder;
use psf_views::ViewAcl;

struct World {
    registry: EntityRegistry,
    repo: Repository,
    bus: RevocationBus,
    domain: Entity,
    user: Entity,
    acl: ViewAcl,
    creds: Vec<psf_drbac::SignedDelegation>,
}

fn world(chain_len: usize) -> World {
    let registry = EntityRegistry::new();
    let repo = Repository::new();
    let bus = RevocationBus::new();
    let domain = Entity::with_seed("Domain0", b"sso");
    registry.register(&domain);
    let user = Entity::with_seed("User", b"sso");
    registry.register(&user);

    // A chain of role mappings Domain0.R0 ← Domain1.R1 ← … ← user.
    let mut creds = Vec::new();
    let mut prev_role = domain.role("R0");
    let mut prev_domain = domain.clone();
    for i in 1..chain_len {
        let d = Entity::with_seed(format!("Domain{i}"), b"sso");
        registry.register(&d);
        // [ Domain_i.R_i → Domain_{i-1}.R_{i-1} ] Domain_{i-1}
        creds.push(
            DelegationBuilder::new(&prev_domain)
                .subject_role(d.role(format!("R{i}")))
                .role(prev_role.clone())
                .monitored()
                .sign(),
        );
        prev_role = d.role(format!("R{i}"));
        prev_domain = d;
    }
    creds.push(
        DelegationBuilder::new(&prev_domain)
            .subject_entity(&user)
            .role(prev_role)
            .monitored()
            .sign(),
    );
    let acl = ViewAcl::new().rule(domain.role("R0"), "FullView");
    World {
        registry,
        repo,
        bus,
        domain,
        user,
        acl,
        creds,
    }
}

#[test]
fn sso_token_amortizes_authorization() {
    let w = world(5);
    let token = w
        .acl
        .authorize_once(
            &w.user.as_subject(),
            &w.creds,
            &w.registry,
            &w.repo,
            &w.bus,
            0,
        )
        .expect("authorized");
    assert_eq!(token.view, "FullView");
    assert_eq!(token.proof.as_ref().unwrap().edges.len(), 5);
    // 10k requests: each is a lock-free flag check, no proof search.
    for _ in 0..10_000 {
        assert!(token.is_valid());
    }
}

#[test]
fn per_request_reauthorization_recomputes_the_chain() {
    // The baseline the paper compares against: checking every request.
    let w = world(5);
    let engine = ProofEngine::new(&w.registry, &w.repo, &w.bus, 0);
    let mut total_edges = 0usize;
    for _ in 0..100 {
        let (proof, _) = engine
            .prove(&w.user.as_subject(), &w.domain.role("R0"), &w.creds)
            .unwrap();
        total_edges += proof.total_edges();
    }
    assert_eq!(total_edges, 500, "every request re-walked the 5-edge chain");
}

#[test]
fn sso_token_dies_on_revocation_anywhere_in_the_chain() {
    let w = world(4);
    let token = w
        .acl
        .authorize_once(
            &w.user.as_subject(),
            &w.creds,
            &w.registry,
            &w.repo,
            &w.bus,
            0,
        )
        .unwrap();
    assert!(token.is_valid());
    // Revoke the *middle* of the chain.
    w.bus.revoke(&w.creds[1].id());
    assert!(!token.is_valid());
    assert_eq!(token.revocation_notice(), Some(w.creds[1].id()));
}

#[test]
fn deeper_chains_cost_more_to_prove_but_not_to_check() {
    use std::time::Instant;
    let shallow = world(2);
    let deep = world(12);

    let prove_cost = |w: &World| {
        let engine = ProofEngine::new(&w.registry, &w.repo, &w.bus, 0);
        let t = Instant::now();
        for _ in 0..50 {
            engine
                .prove(&w.user.as_subject(), &w.domain.role("R0"), &w.creds)
                .unwrap();
        }
        t.elapsed()
    };
    let shallow_prove = prove_cost(&shallow);
    let deep_prove = prove_cost(&deep);
    // Deep chains must cost measurably more to prove…
    assert!(
        deep_prove > shallow_prove,
        "deep {deep_prove:?} vs shallow {shallow_prove:?}"
    );

    // …while token checks are O(1) regardless of depth.
    let token = deep
        .acl
        .authorize_once(
            &deep.user.as_subject(),
            &deep.creds,
            &deep.registry,
            &deep.repo,
            &deep.bus,
            0,
        )
        .unwrap();
    let t = Instant::now();
    for _ in 0..100_000 {
        assert!(token.is_valid());
    }
    let check_time = t.elapsed();
    assert!(
        check_time < deep_prove,
        "100k token checks ({check_time:?}) must beat 50 deep proofs ({deep_prove:?})"
    );
}
