//! Property-based tests over the core data structures and invariants:
//! credential codecs, attribute attenuation algebra, the crypto layer,
//! XML round-trips, and proof-engine soundness under random worlds.

use proptest::prelude::*;
use psf_drbac::entity::{Entity, EntityRegistry, RoleName};
use psf_drbac::proof::ProofEngine;
use psf_drbac::repository::Repository;
use psf_drbac::revocation::RevocationBus;
use psf_drbac::wire::{decode_credentials, encode_credentials, Reader};
use psf_drbac::{AttrSet, AttrValue, AuthCache, DelegationBuilder, SignedDelegation};

// ------------------------------------------------------------ crypto --

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn aead_roundtrips_any_payload(
        key in prop::array::uniform32(any::<u8>()),
        nonce in prop::array::uniform12(any::<u8>()),
        aad in prop::collection::vec(any::<u8>(), 0..64),
        payload in prop::collection::vec(any::<u8>(), 0..2048),
    ) {
        let aead = psf_crypto::ChaCha20Poly1305::new(key);
        let sealed = aead.seal(&nonce, &aad, &payload);
        prop_assert_eq!(aead.open(&nonce, &aad, &sealed).unwrap(), payload);
    }

    #[test]
    fn aead_rejects_any_single_bitflip(
        key in prop::array::uniform32(any::<u8>()),
        payload in prop::collection::vec(any::<u8>(), 1..256),
        flip_byte in 0usize..256,
        flip_bit in 0u8..8,
    ) {
        let aead = psf_crypto::ChaCha20Poly1305::new(key);
        let nonce = [0u8; 12];
        let mut sealed = aead.seal(&nonce, b"", &payload);
        let idx = flip_byte % sealed.len();
        sealed[idx] ^= 1 << flip_bit;
        prop_assert!(aead.open(&nonce, b"", &sealed).is_err());
    }

    #[test]
    fn sha256_is_deterministic_and_sensitive(
        data in prop::collection::vec(any::<u8>(), 0..512),
        tweak in 0usize..512,
    ) {
        let d1 = psf_crypto::sha256(&data);
        prop_assert_eq!(d1, psf_crypto::sha256(&data));
        if !data.is_empty() {
            let mut other = data.clone();
            let idx = tweak % other.len();
            other[idx] ^= 0xff;
            prop_assert_ne!(d1, psf_crypto::sha256(&other));
        }
    }

    #[test]
    fn ed25519_signs_arbitrary_messages(
        seed in prop::array::uniform32(any::<u8>()),
        msg in prop::collection::vec(any::<u8>(), 0..512),
    ) {
        let sk = psf_crypto::SigningKey::from_seed(seed);
        let sig = sk.sign(&msg);
        prop_assert!(sk.verifying_key().verify(&msg, &sig).is_ok());
        let mut tampered = msg.clone();
        tampered.push(0x42);
        prop_assert!(sk.verifying_key().verify(&tampered, &sig).is_err());
    }

    #[test]
    fn x25519_agreement_holds_for_random_secrets(
        a in prop::array::uniform32(any::<u8>()),
        b in prop::array::uniform32(any::<u8>()),
    ) {
        let pa = psf_crypto::x25519::x25519_base(&a);
        let pb = psf_crypto::x25519::x25519_base(&b);
        prop_assert_eq!(
            psf_crypto::x25519(&a, &pb),
            psf_crypto::x25519(&b, &pa)
        );
    }
}

// ----------------------------------------------------------- attrsets --

fn arb_attr_value() -> impl Strategy<Value = AttrValue> {
    prop_oneof![
        (-1000i64..1000).prop_map(AttrValue::Capacity),
        (-100i64..100, 0i64..100).prop_map(|(lo, len)| AttrValue::Range(lo, lo + len)),
        prop::collection::btree_set("[a-z]{1,6}", 1..4).prop_map(AttrValue::Set),
    ]
}

fn arb_attr_set() -> impl Strategy<Value = AttrSet> {
    prop::collection::btree_map("[A-Z][a-z]{0,5}", arb_attr_value(), 0..4).prop_map(AttrSet)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn attenuation_is_commutative_on_singletons(a in arb_attr_value(), b in arb_attr_value()) {
        prop_assert_eq!(a.attenuate(&b), b.attenuate(&a));
    }

    #[test]
    fn attenuation_is_idempotent(a in arb_attr_value()) {
        prop_assert_eq!(a.attenuate(&a), Some(a.clone()));
    }

    #[test]
    fn attenuation_is_associative(
        a in arb_attr_value(),
        b in arb_attr_value(),
        c in arb_attr_value(),
    ) {
        let left = a.attenuate(&b).and_then(|ab| ab.attenuate(&c));
        let right = b.attenuate(&c).and_then(|bc| a.attenuate(&bc));
        prop_assert_eq!(left, right);
    }

    #[test]
    fn attrset_attenuation_never_widens(a in arb_attr_set(), b in arb_attr_set()) {
        if let Some(c) = a.attenuate(&b) {
            // Whatever satisfies the combined set satisfies each factor on
            // shared keys: c must satisfy any requirement a or b satisfied…
            // we check the weaker monotonic property: c satisfies b's
            // non-capacity requirements it shares with a.
            for (k, v) in &b.0 {
                let cv = c.get(k).expect("combined keeps b's keys");
                prop_assert!(cv.attenuate(v).is_some());
            }
        }
    }
}

// ------------------------------------------------------------- codecs --

fn arb_role() -> impl Strategy<Value = RoleName> {
    ("[A-Z][a-z]{1,6}(\\.[A-Z]{2})?", "[A-Z][a-z]{1,8}")
        .prop_map(|(owner, role)| RoleName::new(owner, role))
}

fn arb_credential() -> impl Strategy<Value = SignedDelegation> {
    (
        arb_role(),
        arb_attr_set(),
        any::<bool>(),
        proptest::option::of(1u64..1_000_000),
        any::<u64>(),
        any::<u8>(),
    )
        .prop_map(|(role, attrs, monitored, expires, serial, kind_seed)| {
            let issuer = Entity::with_seed("Issuer", b"prop");
            let subject = Entity::with_seed("Subject", b"prop");
            let mut b = DelegationBuilder::new(&issuer).serial(serial);
            b = match kind_seed % 3 {
                0 => b
                    .subject_entity(&subject)
                    .role(issuer.role(role.role.clone())),
                1 => b.subject_role(RoleName::new("Other.Dom", "R")).role(role),
                _ => b.subject_entity(&subject).assignment().role(role),
            };
            for (k, v) in attrs.0 {
                b = b.attr(k, v);
            }
            if monitored {
                b = b.monitored();
            }
            if let Some(t) = expires {
                b = b.expires(t);
            }
            b.sign()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn credential_wire_roundtrip(cred in arb_credential()) {
        let wire = cred.to_wire();
        let back = SignedDelegation::from_wire(&mut Reader::new(&wire)).unwrap();
        prop_assert_eq!(&back, &cred);
        prop_assert_eq!(back.id(), cred.id());
    }

    #[test]
    fn credential_set_roundtrip(creds in prop::collection::vec(arb_credential(), 0..8)) {
        let wire = encode_credentials(&creds);
        prop_assert_eq!(decode_credentials(&wire).unwrap(), creds);
    }

    #[test]
    fn truncated_credentials_never_panic(
        cred in arb_credential(),
        cut_ratio in 0.0f64..1.0,
    ) {
        let wire = cred.to_wire();
        let cut = ((wire.len() as f64) * cut_ratio) as usize;
        // Must error or parse — never panic.
        let _ = SignedDelegation::from_wire(&mut Reader::new(&wire[..cut]));
    }

    #[test]
    fn random_bytes_never_panic_the_decoder(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = decode_credentials(&bytes);
        let _ = SignedDelegation::from_wire(&mut Reader::new(&bytes));
    }
}

// ---------------------------------------------------------------- xml --

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn xml_attr_roundtrip(value in "[ -~]{0,40}") {
        let el = psf_xml::Element::new("a").attr("k", value.clone());
        let parsed = psf_xml::parse(&el.to_xml()).unwrap();
        prop_assert_eq!(parsed.get_attr("k").unwrap(), value.as_str());
    }

    #[test]
    fn xml_text_roundtrip(text in "[ -~]{0,60}") {
        let el = psf_xml::Element::new("a").with_text(text.clone());
        let parsed = psf_xml::parse(&el.to_xml()).unwrap();
        prop_assert_eq!(parsed.text, text.trim());
    }

    #[test]
    fn xml_parser_never_panics(input in "[ -~<>&\"']{0,200}") {
        let _ = psf_xml::parse(&input);
    }
}

// ------------------------------------------- rollback leak-freedom --

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// A deployment that faults at any step must leave no trace: every
    /// CPU reservation released, every channel closed, every issued
    /// credential revoked on the bus (transactional deploy semantics).
    #[test]
    fn faulted_deployments_roll_back_without_leaks(
        step_seed in 0usize..64,
        jitter_seed in 0u64..1_000_000,
    ) {
        use psf_core::{DeployFaultPlan, Goal, Planner, PlannerConfig, RetryPolicy};

        let w = psf_mail::MailWorld::build(1);
        let goal = Goal {
            iface: "MailI".into(),
            client_node: w.sites.sd[0],
            max_latency_ms: Some(10.0),
            require_privacy: false,
            require_plaintext_delivery: true,
        };
        let planner = Planner::new(
            &w.registrar,
            &w.sites.network,
            &w.oracle,
            PlannerConfig::default(),
        );
        let (plan, _) = planner.plan(&goal).unwrap();
        prop_assert!(!plan.steps.is_empty());
        let step = step_seed % plan.steps.len();

        let cpu_before: Vec<u32> = w
            .sites
            .network
            .node_ids()
            .iter()
            .map(|&n| w.sites.network.node(n).unwrap().cpu_available())
            .collect();

        w.deployer.set_retry_policy(RetryPolicy {
            max_attempts: 1,
            base_backoff: std::time::Duration::from_micros(1),
            jitter_seed,
            ..RetryPolicy::default()
        });
        w.deployer.set_fault_plan(Some(DeployFaultPlan::fail_at(1, step)));
        prop_assert!(w.deployer.execute(&plan, &goal).is_err());

        let report = w.deployer.last_rollback().expect("rollback recorded");
        prop_assert_eq!(report.attempt, 1);
        prop_assert_eq!(report.failed_step, step);
        for id in &report.revoked_credential_ids {
            prop_assert!(w.bus.is_revoked(id), "leaked credential {}", id);
        }
        let cpu_after: Vec<u32> = w
            .sites
            .network
            .node_ids()
            .iter()
            .map(|&n| w.sites.network.node(n).unwrap().cpu_available())
            .collect();
        prop_assert_eq!(cpu_before, cpu_after, "leaked CPU reservations");
    }
}

// ------------------------------------------------------ proof soundness --

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any proof the engine produces over a random delegation world must
    /// independently re-verify; and revoking any credential in it must
    /// break re-verification.
    #[test]
    fn proofs_are_sound_under_random_worlds(
        seed in 0u64..1000,
        chain_len in 1usize..6,
        decoys in 0usize..10,
    ) {
        let registry = EntityRegistry::new();
        let repo = Repository::new();
        let bus = RevocationBus::new();
        let user = Entity::with_seed(format!("user{seed}"), b"world");
        registry.register(&user);

        // Build a chain of role mappings ending at the target role.
        let mut domains = Vec::new();
        for i in 0..chain_len {
            let d = Entity::with_seed(format!("d{seed}-{i}"), b"world");
            registry.register(&d);
            domains.push(d);
        }
        // membership: user -> role_{n-1}
        repo.publish_at_issuer(
            DelegationBuilder::new(&domains[chain_len - 1])
                .subject_entity(&user)
                .role(domains[chain_len - 1].role("R"))
                .sign(),
        );
        // mappings: role_i <- role_{i+1}
        for i in (0..chain_len - 1).rev() {
            repo.publish_at_issuer(
                DelegationBuilder::new(&domains[i])
                    .subject_role(domains[i + 1].role("R"))
                    .role(domains[i].role("R"))
                    .sign(),
            );
        }
        // Decoy credentials that must not break anything.
        for i in 0..decoys {
            let d = Entity::with_seed(format!("decoy{seed}-{i}"), b"world");
            registry.register(&d);
            repo.publish_at_issuer(
                DelegationBuilder::new(&d)
                    .subject_role(RoleName::new("Nowhere.Else", "X"))
                    .role(d.role("Y"))
                    .sign(),
            );
        }

        let engine = ProofEngine::new(&registry, &repo, &bus, 0);
        let target = domains[0].role("R");
        let (proof, _) = engine.prove(&user.as_subject(), &target, &[]).unwrap();
        prop_assert_eq!(proof.edges.len(), chain_len);
        prop_assert!(proof.verify(&registry, &bus, 0).is_ok());

        // Revoke a uniformly chosen chain credential: both re-proving and
        // re-verifying must fail.
        let ids = proof.credential_ids();
        let victim = &ids[(seed as usize) % ids.len()];
        bus.revoke(victim);
        prop_assert!(proof.verify(&registry, &bus, 0).is_err());
        prop_assert!(engine.prove(&user.as_subject(), &target, &[]).is_err());
    }
}

// ------------------------------------------------ cache transparency --

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The authorization cache must be semantically invisible. Over a
    /// random delegation world and a random interleaving of proof
    /// queries, revocations, clock advances, and repository publishes,
    /// an engine sharing one `AuthCache` must return byte-identical
    /// proofs — and identical errors — to a fresh uncached engine at
    /// every step.
    #[test]
    fn cached_prove_is_indistinguishable_from_uncached(
        seed in 0u64..500,
        chain_len in 1usize..5,
        decoys in 0usize..6,
        membership_expiry in proptest::option::of(1u64..30),
        schedule in prop::collection::vec((0u8..4, 0u64..16), 1..24),
    ) {
        let registry = EntityRegistry::new();
        let repo = Repository::new();
        let bus = RevocationBus::new();
        let user = Entity::with_seed(format!("user{seed}"), b"cachew");
        registry.register(&user);

        let mut domains = Vec::new();
        for i in 0..chain_len {
            let d = Entity::with_seed(format!("d{seed}-{i}"), b"cachew");
            registry.register(&d);
            domains.push(d);
        }
        let mut chain: Vec<SignedDelegation> = Vec::new();
        let mut membership = DelegationBuilder::new(&domains[chain_len - 1])
            .subject_entity(&user)
            .role(domains[chain_len - 1].role("R"));
        if let Some(t) = membership_expiry {
            membership = membership.expires(t);
        }
        let membership = membership.sign();
        repo.publish_at_issuer(membership.clone());
        chain.push(membership);
        for i in (0..chain_len - 1).rev() {
            let mapping = DelegationBuilder::new(&domains[i])
                .subject_role(domains[i + 1].role("R"))
                .role(domains[i].role("R"))
                .sign();
            repo.publish_at_issuer(mapping.clone());
            chain.push(mapping);
        }
        for i in 0..decoys {
            let d = Entity::with_seed(format!("decoy{seed}-{i}"), b"cachew");
            registry.register(&d);
            repo.publish_at_issuer(
                DelegationBuilder::new(&d)
                    .subject_role(RoleName::new("Nowhere.Else", "X"))
                    .role(d.role("Y"))
                    .sign(),
            );
        }

        let cache = AuthCache::new();
        let target = domains[0].role("R");
        let subject = user.as_subject();
        let mut now = 0u64;
        let mut extra = 0usize;
        for (op, arg) in schedule {
            match op {
                // Advance the logical clock (possibly past an expiry).
                0 => now += arg % 16,
                // Revoke a chain credential (sometimes an unknown id, a
                // no-op the cache must also shrug off).
                1 => {
                    if arg % 4 == 0 {
                        bus.revoke("no-such-credential");
                    } else {
                        bus.revoke(&chain[(arg as usize) % chain.len()].id());
                    }
                }
                // Publish an unrelated credential (repository epoch bump).
                2 => {
                    let d = Entity::with_seed(format!("extra{seed}-{extra}"), b"cachew");
                    extra += 1;
                    registry.register(&d);
                    repo.publish_at_issuer(
                        DelegationBuilder::new(&d)
                            .subject_role(RoleName::new("Nowhere.Else", "X"))
                            .role(d.role("Y"))
                            .sign(),
                    );
                }
                // Plain query step (drives cache hits).
                _ => {}
            }
            let cached = ProofEngine::with_cache(&registry, &repo, &bus, now, &cache);
            let plain = ProofEngine::new(&registry, &repo, &bus, now);
            match (
                cached.prove(&subject, &target, &[]),
                plain.prove(&subject, &target, &[]),
            ) {
                (Ok((pc, _)), Ok((pp, _))) => {
                    // Full structural identity, supports included.
                    prop_assert_eq!(format!("{pc:?}"), format!("{pp:?}"));
                }
                (Err(ec), Err(ep)) => prop_assert_eq!(ec.error, ep.error),
                (c, p) => prop_assert!(
                    false,
                    "cached/uncached diverged: cached ok={} plain ok={}",
                    c.is_ok(),
                    p.is_ok()
                ),
            }
        }
        // The schedule must have produced at least one hit for the
        // comparison to mean anything beyond the cold path.
        let s = cache.stats();
        prop_assert!(s.proof_hits + s.proof_misses > 0);
    }
}

// ------------------------------------- static/dynamic proof agreement --

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The static analyzer's reachability closure and the live
    /// `ProofEngine` must agree exactly over random delegation worlds:
    ///
    /// * every (subject, role) pair in the closure is provable live;
    /// * every provable pair appears in the closure (completeness over
    ///   the world's subject × role grid);
    /// * with the full closure as intent the analyzer reports no
    ///   escalation, and removing pairs from the intent flags exactly
    ///   those pairs as PSF001 — each still backed by a live proof.
    #[test]
    fn static_closure_agrees_with_proof_engine(
        seed in 0u64..500,
        chain_len in 1usize..5,
        extra_grants in 0usize..4,
        decoys in 0usize..6,
        drop_index in 0usize..16,
    ) {
        use psf_analysis::{analyze_graph, closure, GraphInput, LintCode, Report};
        use psf_drbac::repository::subject_key;

        let registry = EntityRegistry::new();
        let repo = Repository::new();
        let bus = RevocationBus::new();
        let user = Entity::with_seed(format!("user{seed}"), b"diff");
        registry.register(&user);

        let mut domains = Vec::new();
        for i in 0..chain_len {
            let d = Entity::with_seed(format!("d{seed}-{i}"), b"diff");
            registry.register(&d);
            domains.push(d);
        }
        repo.publish_at_issuer(
            DelegationBuilder::new(&domains[chain_len - 1])
                .subject_entity(&user)
                .role(domains[chain_len - 1].role("R"))
                .sign(),
        );
        for i in (0..chain_len - 1).rev() {
            repo.publish_at_issuer(
                DelegationBuilder::new(&domains[i])
                    .subject_role(domains[i + 1].role("R"))
                    .role(domains[i].role("R"))
                    .sign(),
            );
        }
        // Extra direct grants to the user from random domains.
        for g in 0..extra_grants {
            let d = &domains[g % domains.len()];
            repo.publish_at_issuer(
                DelegationBuilder::new(d)
                    .subject_entity(&user)
                    .role(d.role(format!("Extra{g}")))
                    .sign(),
            );
        }
        // Decoy role mappings rooted at a role nothing reaches.
        for i in 0..decoys {
            let d = Entity::with_seed(format!("decoy{seed}-{i}"), b"diff");
            registry.register(&d);
            repo.publish_at_issuer(
                DelegationBuilder::new(&d)
                    .subject_role(RoleName::new("Nowhere.Else", "X"))
                    .role(d.role("Y"))
                    .sign(),
            );
        }

        let input = GraphInput {
            registry: &registry,
            repository: &repo,
            bus: &bus,
            now: 0,
            intent: None,
            expiry_horizon: 0,
        };
        let pairs = closure(&input);
        prop_assert!(!pairs.is_empty());
        let engine = ProofEngine::new(&registry, &repo, &bus, 0);

        // Soundness: every closure pair proves live.
        for (subject, role) in &pairs {
            prop_assert!(
                engine.prove(subject, role, &[]).is_ok(),
                "closure pair {} -> {role} is not live-provable",
                subject.render()
            );
        }

        // Completeness: every provable (entity, role) pair over the
        // world's grid is in the closure.
        let closure_keys: std::collections::HashSet<(String, String)> = pairs
            .iter()
            .map(|(s, r)| (subject_key(s), r.to_string()))
            .collect();
        let all_roles: Vec<RoleName> = repo
            .all_credentials()
            .iter()
            .map(|c| c.body.object.clone())
            .collect();
        let mut entities: Vec<&Entity> = vec![&user];
        entities.extend(domains.iter());
        for e in entities {
            for role in &all_roles {
                if engine.prove(&e.as_subject(), role, &[]).is_ok() {
                    prop_assert!(
                        closure_keys.contains(&(subject_key(&e.as_subject()), role.to_string())),
                        "live-provable pair {} -> {role} missing from closure",
                        e.name.0
                    );
                }
            }
        }

        // Intent = full closure: the analyzer is escalation-silent.
        let mut clean = Report::new();
        analyze_graph(
            &GraphInput { intent: Some(&pairs), ..input },
            &mut clean,
        );
        prop_assert!(
            !clean.diagnostics.iter().any(|d| d.code == LintCode::PrivilegeEscalation),
            "{}",
            clean.render_human()
        );

        // Dropping one pair from the intent flags exactly that pair, and
        // the flagged escalation reproduces as a live proof.
        let victim = drop_index % pairs.len();
        let reduced: Vec<_> = pairs
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != victim)
            .map(|(_, p)| p.clone())
            .collect();
        let mut flagged = Report::new();
        analyze_graph(
            &GraphInput { intent: Some(&reduced), ..input },
            &mut flagged,
        );
        let escalations: Vec<_> = flagged
            .diagnostics
            .iter()
            .filter(|d| d.code == LintCode::PrivilegeEscalation)
            .collect();
        prop_assert_eq!(escalations.len(), 1, "{}", flagged.render_human());
        let (victim_subject, victim_role) = &pairs[victim];
        let victim_render = victim_subject.render();
        prop_assert_eq!(
            escalations[0].subject.as_deref(),
            Some(victim_render.as_str())
        );
        prop_assert!(escalations[0].message.contains(&victim_role.to_string()));
        prop_assert!(engine.prove(victim_subject, victim_role, &[]).is_ok());
    }
}

// ------------------------------------- malformed-input hardening --

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Any prefix of a real view document must parse-or-error, never
    /// panic — truncated tags are the common corruption for specs that
    /// travel over Switchboard channels.
    #[test]
    fn truncated_view_xml_never_panics(cut_ratio in 0.0f64..1.0) {
        let full = psf_mail::views::PARTNER_XML;
        let cut = ((full.len() as f64) * cut_ratio) as usize;
        let mut cut = cut;
        while cut > 0 && !full.is_char_boundary(cut) {
            cut -= 1;
        }
        let prefix = &full[..cut];
        let _ = psf_views::ViewSpec::parse_xml(prefix);
        let _ = psf_xml::parse(prefix);
    }

    /// Duplicate attributes are always rejected, whatever the key,
    /// values, or separating whitespace.
    #[test]
    fn duplicate_attributes_always_rejected(
        key in "[A-Za-z][A-Za-z0-9_-]{0,12}",
        v1 in "[a-zA-Z0-9 .,]{0,16}",
        v2 in "[a-zA-Z0-9 .,]{0,16}",
        pad in " {1,4}",
    ) {
        let doc = format!(r#"<a {key}="{v1}"{pad}{key}="{v2}"/>"#);
        let err = psf_xml::parse(&doc).unwrap_err();
        prop_assert!(err.message.contains("duplicate attribute"), "{}", err);
    }

    /// Nesting beyond the depth cap errors cleanly instead of blowing
    /// the stack; below the cap, deep-but-legal documents still parse.
    #[test]
    fn nesting_depth_is_capped_not_crashed(extra in 1usize..64, name in "[a-z]{1,8}") {
        let depth = psf_xml::MAX_DEPTH + extra;
        let open = format!("<{name}>").repeat(depth);
        let close = format!("</{name}>").repeat(depth);
        let err = psf_xml::parse(&format!("{open}{close}")).unwrap_err();
        prop_assert!(err.message.contains("nesting exceeds"), "{}", err);

        let legal = psf_xml::MAX_DEPTH - 1;
        let doc = format!("{}{}", format!("<{name}>").repeat(legal), format!("</{name}>").repeat(legal));
        prop_assert!(psf_xml::parse(&doc).is_ok());
    }

    /// The view-spec loader survives arbitrary printable garbage and
    /// arbitrary structurally-valid-but-meaningless documents.
    #[test]
    fn view_spec_loader_never_panics(input in "[ -~<>/&\"']{0,160}") {
        let _ = psf_views::ViewSpec::parse_xml(&input);
    }

    /// So does the analysis fixture loader.
    #[test]
    fn fixture_loader_never_panics(
        input in "[ -~<>/&\"']{0,120}",
        cut_ratio in 0.0f64..1.0,
    ) {
        let _ = psf_analysis::FixtureWorld::parse(&input);
        let real = r#"<Scenario name="t"><Delegations><Delegation subject-entity="A" role="O.R" issuer="O"/></Delegations></Scenario>"#;
        let cut = ((real.len() as f64) * cut_ratio) as usize;
        let _ = psf_analysis::FixtureWorld::parse(&real[..cut]);
    }
}

// -------------------------------------------------- durability / WAL --

/// One step of a random durable-repository workload.
#[derive(Debug, Clone)]
enum WalStep {
    /// Publish a fresh `PD{domain}.R -> PropUser` credential, optionally
    /// expiring at logical second `expires`.
    Publish { domain: usize, expires: Option<u64> },
    /// Revoke one of the previously issued credentials (modulo-indexed).
    Revoke { pick: usize },
    /// Purge everything expired as of logical second `now`.
    Purge { now: u64 },
}

fn arb_wal_step() -> impl Strategy<Value = WalStep> {
    // Publish twice: bias the unweighted union toward growing the log.
    prop_oneof![
        (0usize..8, proptest::option::of(1u64..64))
            .prop_map(|(domain, expires)| WalStep::Publish { domain, expires }),
        (0usize..8, proptest::option::of(1u64..64))
            .prop_map(|(domain, expires)| WalStep::Publish { domain, expires }),
        (0usize..32).prop_map(|pick| WalStep::Revoke { pick }),
        (1u64..64).prop_map(|now| WalStep::Purge { now }),
    ]
}

fn wal_tmpdir() -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static N: AtomicU64 = AtomicU64::new(0);
    let d = std::env::temp_dir().join(format!(
        "psf-prop-wal-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Crash injection: run a random publish/revoke/purge workload against
    /// a durable repository, cut the WAL at a random byte offset (a torn
    /// write), recover, and require authorization state identical to an
    /// in-memory oracle built from the records that survived the cut —
    /// same `prove` outcome, same view selection, same credential ids,
    /// same revocation set. A writable reopen must then truncate the tail
    /// and leave the directory verifiably clean.
    #[test]
    fn recovery_matches_never_crashed_oracle(
        steps in proptest::collection::vec(arb_wal_step(), 1..24),
        cut_ratio in 0.0f64..1.0,
    ) {
        use psf_drbac::wal::{self, DurableRepository, FsyncPolicy, WalConfig};
        use psf_views::ViewAcl;

        let dir = wal_tmpdir();
        let user = Entity::with_seed("PropUser", b"prop-wal");
        let domains: Vec<Entity> = (0..8)
            .map(|i| Entity::with_seed(format!("PD{i}"), b"prop-wal"))
            .collect();

        // --- Run the workload against the durable repository. ---
        let mut issued: Vec<String> = Vec::new();
        {
            let (d, _) = DurableRepository::open(
                &dir,
                WalConfig { fsync: FsyncPolicy::Never, auto_compact_appends: None },
            ).unwrap();
            for step in &steps {
                match step {
                    WalStep::Publish { domain, expires } => {
                        let dom = &domains[*domain];
                        let mut b = DelegationBuilder::new(dom)
                            .subject_entity(&user)
                            .role(dom.role("R"));
                        if let Some(e) = expires {
                            b = b.expires(*e);
                        }
                        let cred = b.sign();
                        issued.push(cred.id());
                        d.repository().publish_at_issuer(cred);
                    }
                    WalStep::Revoke { pick } => {
                        if !issued.is_empty() {
                            d.bus().revoke(&issued[pick % issued.len()]);
                        }
                    }
                    WalStep::Purge { now } => {
                        d.repository().purge_expired(*now);
                    }
                }
            }
            d.sync().unwrap();
        }

        // --- Tear the log at a random byte offset. ---
        let log = dir.join(wal::LOG_FILE);
        let full = std::fs::read(&log).unwrap();
        // A workload of no-ops (revokes with nothing issued) commits no
        // records; there is nothing to tear.
        prop_assume!(!full.is_empty());
        let cut = 1 + ((full.len() - 1) as f64 * cut_ratio) as u64;
        std::fs::OpenOptions::new()
            .write(true)
            .open(&log)
            .unwrap()
            .set_len(cut)
            .unwrap();

        // --- Oracle: apply the surviving records through the public API,
        // never having crashed. ---
        let torn = std::fs::read(&log).unwrap();
        let scan = wal::scan_log(&torn);
        let oracle_repo = Repository::new();
        let oracle_bus = RevocationBus::new();
        for rec in &scan.records {
            match &rec.op {
                wal::WalOp::Publish { home, tag, cred } => {
                    oracle_repo.publish(home.clone(), cred.clone(), *tag)
                }
                wal::WalOp::Revoke { id } => oracle_bus.revoke(id),
                wal::WalOp::RevokeBatch { ids } => {
                    for id in ids {
                        oracle_bus.revoke(id);
                    }
                }
                wal::WalOp::PurgeExpired { now } => {
                    oracle_repo.purge_expired(*now);
                }
            }
        }

        // --- Recover and compare. ---
        let (rec_repo, rec_bus, report) = Repository::recover(&dir).unwrap();
        prop_assert_eq!(report.records_replayed, scan.records.len());

        let registry = EntityRegistry::new();
        registry.register(&user);
        for dom in &domains {
            registry.register(dom);
        }
        let subject = user.as_subject();
        let oracle_engine = ProofEngine::new(&registry, &oracle_repo, &oracle_bus, 0);
        let rec_engine = ProofEngine::new(&registry, &rec_repo, &rec_bus, 0);
        for dom in &domains {
            let role = dom.role("R");
            prop_assert_eq!(
                oracle_engine.check(&subject, &role, &[]),
                rec_engine.check(&subject, &role, &[]),
                "prove divergence on {}", role
            );
            let acl = ViewAcl::new().rule(role.clone(), "FullView");
            prop_assert_eq!(
                acl.authorize_once(&subject, &[], &registry, &oracle_repo, &oracle_bus, 0).is_some(),
                acl.authorize_once(&subject, &[], &registry, &rec_repo, &rec_bus, 0).is_some(),
                "view selection divergence on {}", dom.name
            );
        }
        // Replay dedups repeated publishes of the same credential (the
        // duplicate-tolerance rule that absorbs snapshot/log overlap), so
        // compare the *distinct* committed id sets.
        let ids = |repo: &Repository| {
            let mut v: Vec<String> = repo.all_credentials().iter().map(|c| c.id()).collect();
            v.sort();
            v.dedup();
            v
        };
        prop_assert_eq!(ids(&oracle_repo), ids(&rec_repo));
        prop_assert_eq!(oracle_bus.revoked_ids(), rec_bus.revoked_ids());

        // --- A writable reopen truncates the tail; the directory must
        // then verify clean. ---
        drop(DurableRepository::open(&dir, WalConfig::default()).unwrap());
        let v = wal::verify_dir(&dir).unwrap();
        prop_assert!(v.is_clean());
        prop_assert_eq!(v.truncated_bytes, 0);

        let _ = std::fs::remove_dir_all(&dir);
    }
}

// ------------------------------------- sharded repository differential --

/// One step of a random workload driven identically at a hash-sharded
/// repository and a single-map oracle.
#[derive(Debug, Clone)]
enum ShardStep {
    /// Publish `SD{domain}.R -> SU{user}` (fresh serial), optionally
    /// expiring at logical second `expires`, tagged per `tag` (mod 4).
    Publish {
        user: usize,
        domain: usize,
        expires: Option<u64>,
        tag: u8,
    },
    /// Revoke one of the previously issued credentials (modulo-indexed).
    Revoke { pick: usize },
    /// Purge everything expired as of logical second `now`.
    Purge { now: u64 },
    /// Directed tag lookup for one user's subject key.
    TagLookup { user: usize },
}

fn arb_shard_step() -> impl Strategy<Value = ShardStep> {
    prop_oneof![
        // Two publish arms bias the unweighted union toward growth.
        (
            0usize..16,
            0usize..8,
            proptest::option::of(1u64..64),
            any::<u8>()
        )
            .prop_map(|(user, domain, expires, tag)| ShardStep::Publish {
                user,
                domain,
                expires,
                tag,
            }),
        (
            0usize..16,
            0usize..8,
            proptest::option::of(1u64..64),
            any::<u8>()
        )
            .prop_map(|(user, domain, expires, tag)| ShardStep::Publish {
                user,
                domain,
                expires,
                tag,
            }),
        (0usize..32).prop_map(|pick| ShardStep::Revoke { pick }),
        (1u64..64).prop_map(|now| ShardStep::Purge { now }),
        (0usize..16).prop_map(|user| ShardStep::TagLookup { user }),
    ]
}

fn tag_of(seed: u8) -> psf_drbac::DiscoveryTag {
    use psf_drbac::DiscoveryTag::*;
    match seed % 4 {
        0 => SearchableFromSubject,
        1 => SearchableFromObject,
        2 => Both,
        _ => None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The hash-sharded repository must be observationally identical to a
    /// single-map store. Drive a random interleaving of publishes,
    /// revocations, purges, and directed tag lookups at both; every tag
    /// lookup, every purge count, the final credential set, and every
    /// prove / select_view decision over the user × role grid must be
    /// byte-identical.
    #[test]
    fn sharded_repository_matches_single_map_oracle(
        steps in proptest::collection::vec(arb_shard_step(), 1..32),
    ) {
        use psf_drbac::repository::subject_key;
        use psf_views::ViewAcl;

        let users: Vec<Entity> = (0..16)
            .map(|i| Entity::with_seed(format!("SU{i}"), b"shard-diff"))
            .collect();
        let domains: Vec<Entity> = (0..8)
            .map(|i| Entity::with_seed(format!("SD{i}"), b"shard-diff"))
            .collect();

        let sharded = Repository::new();
        let oracle = Repository::with_shard_count(1);
        let sharded_bus = RevocationBus::new();
        let oracle_bus = RevocationBus::new();
        let mut issued: Vec<String> = Vec::new();
        let mut serial = 0u64;

        let ids = |creds: Vec<std::sync::Arc<SignedDelegation>>| {
            let mut v: Vec<String> = creds.iter().map(|c| c.id()).collect();
            v.sort();
            v
        };

        for step in &steps {
            match step {
                ShardStep::Publish { user, domain, expires, tag } => {
                    let dom = &domains[*domain];
                    let mut b = DelegationBuilder::new(dom)
                        .subject_entity(&users[*user])
                        .role(dom.role("R"))
                        .serial(serial);
                    serial += 1;
                    if let Some(e) = expires {
                        b = b.expires(*e);
                    }
                    let cred = b.sign();
                    issued.push(cred.id());
                    sharded.publish(dom.name.clone(), cred.clone(), tag_of(*tag));
                    oracle.publish(dom.name.clone(), cred, tag_of(*tag));
                }
                ShardStep::Revoke { pick } => {
                    if !issued.is_empty() {
                        let id = &issued[pick % issued.len()];
                        sharded_bus.revoke(id);
                        oracle_bus.revoke(id);
                    }
                }
                ShardStep::Purge { now } => {
                    prop_assert_eq!(
                        sharded.purge_expired(*now),
                        oracle.purge_expired(*now),
                        "purge count divergence at now={}", now
                    );
                }
                ShardStep::TagLookup { user } => {
                    let key = subject_key(&users[*user].as_subject());
                    prop_assert_eq!(
                        ids(sharded.query_by_subject_key(&key)),
                        ids(oracle.query_by_subject_key(&key)),
                        "tag-lookup divergence for {}", key
                    );
                }
            }
        }

        // Byte-identical final credential sets, subject by subject and
        // in aggregate.
        prop_assert_eq!(sharded.len(), oracle.len());
        prop_assert_eq!(ids(sharded.all_credentials()), ids(oracle.all_credentials()));
        for u in &users {
            prop_assert_eq!(
                ids(sharded.query_by_subject(&u.as_subject())),
                ids(oracle.query_by_subject(&u.as_subject()))
            );
        }

        // Identical prove and select_view decisions over the full grid.
        let registry = EntityRegistry::new();
        for u in &users {
            registry.register(u);
        }
        for d in &domains {
            registry.register(d);
        }
        let sharded_engine = ProofEngine::new(&registry, &sharded, &sharded_bus, 0);
        let oracle_engine = ProofEngine::new(&registry, &oracle, &oracle_bus, 0);
        for u in &users {
            let subject = u.as_subject();
            for d in &domains {
                let role = d.role("R");
                prop_assert_eq!(
                    sharded_engine.check(&subject, &role, &[]),
                    oracle_engine.check(&subject, &role, &[]),
                    "prove divergence on {} -> {}", u.name.0, role
                );
                let acl = ViewAcl::new().rule(role.clone(), "FullView");
                prop_assert_eq!(
                    acl.authorize_once(&subject, &[], &registry, &sharded, &sharded_bus, 0)
                        .is_some(),
                    acl.authorize_once(&subject, &[], &registry, &oracle, &oracle_bus, 0)
                        .is_some(),
                    "select_view divergence on {} -> {}", u.name.0, role
                );
            }
        }
    }

    /// Crash injection for the sharded layout: run a random workload
    /// against a sharded durable repository, cut ONE shard's WAL at a
    /// random byte offset, recover, and require authorization state
    /// identical to an oracle built from the surviving records of every
    /// segment. A writable reopen must then heal the torn shard and
    /// leave every segment verifiably clean.
    #[test]
    fn sharded_recovery_after_torn_shard_matches_oracle(
        steps in proptest::collection::vec(arb_shard_step(), 1..24),
        cut_ratio in 0.0f64..1.0,
        shard_pick in 0usize..8,
    ) {
        use psf_drbac::wal::{self, FsyncPolicy, ShardedDurableRepository, WalConfig};

        const SHARDS: usize = 8;
        let dir = wal_tmpdir();
        let users: Vec<Entity> = (0..16)
            .map(|i| Entity::with_seed(format!("SU{i}"), b"shard-crash"))
            .collect();
        let domains: Vec<Entity> = (0..8)
            .map(|i| Entity::with_seed(format!("SD{i}"), b"shard-crash"))
            .collect();

        // --- Run the workload against the sharded durable repository. ---
        let mut issued: Vec<String> = Vec::new();
        let mut serial = 0u64;
        {
            let (d, _) = ShardedDurableRepository::open(
                &dir,
                SHARDS,
                WalConfig { fsync: FsyncPolicy::Never, auto_compact_appends: None },
            ).unwrap();
            for step in &steps {
                match step {
                    ShardStep::Publish { user, domain, expires, tag } => {
                        let dom = &domains[*domain];
                        let mut b = DelegationBuilder::new(dom)
                            .subject_entity(&users[*user])
                            .role(dom.role("R"))
                            .serial(serial);
                        serial += 1;
                        if let Some(e) = expires {
                            b = b.expires(*e);
                        }
                        let cred = b.sign();
                        issued.push(cred.id());
                        d.repository().publish(dom.name.clone(), cred, tag_of(*tag));
                    }
                    ShardStep::Revoke { pick } => {
                        if !issued.is_empty() {
                            d.bus().revoke(&issued[pick % issued.len()]);
                        }
                    }
                    ShardStep::Purge { now } => {
                        d.repository().purge_expired(*now);
                    }
                    ShardStep::TagLookup { user } => {
                        // Reads ride along untimed; they must never
                        // disturb the log.
                        let _ = d.repository().query_by_subject(&users[*user].as_subject());
                    }
                }
            }
            d.sync().unwrap();
            d.detach();
        }

        // --- Tear ONE shard's log at a random byte offset. ---
        let victim = (0..SHARDS)
            .map(|i| (shard_pick + i) % SHARDS)
            .find(|&s| {
                std::fs::metadata(dir.join(wal::shard_dir_name(s)).join(wal::LOG_FILE))
                    .map(|m| m.len() >= 2)
                    .unwrap_or(false)
            });
        // All-no-op workloads commit nothing to any shard.
        prop_assume!(victim.is_some());
        let victim = victim.unwrap();
        let log = dir.join(wal::shard_dir_name(victim)).join(wal::LOG_FILE);
        let full_len = std::fs::metadata(&log).unwrap().len();
        let cut = 1 + ((full_len - 1) as f64 * cut_ratio) as u64;
        std::fs::OpenOptions::new()
            .write(true)
            .open(&log)
            .unwrap()
            .set_len(cut)
            .unwrap();

        // --- Oracle: replay every segment's surviving records through
        // the public API. Purge records are replicated into every shard
        // segment and re-applied *shard-locally* at recovery, so the
        // oracle replays each segment into its own local store (a later
        // shard's purge copy must not delete another shard's credential
        // published after that purge) and merges the survivors. ---
        let oracle_repo = Repository::with_shard_count(1);
        let oracle_bus = RevocationBus::new();
        let mut replayable = 0usize;
        for s in 0..SHARDS {
            let image =
                std::fs::read(dir.join(wal::shard_dir_name(s)).join(wal::LOG_FILE)).unwrap();
            let local = Repository::with_shard_count(1);
            for rec in &wal::scan_log(&image).records {
                replayable += 1;
                match &rec.op {
                    wal::WalOp::Publish { home, tag, cred } => {
                        local.publish(home.clone(), cred.clone(), *tag)
                    }
                    wal::WalOp::PurgeExpired { now } => {
                        local.purge_expired(*now);
                    }
                    wal::WalOp::Revoke { .. } | wal::WalOp::RevokeBatch { .. } => {
                        panic!("revocations belong to the bus segment")
                    }
                }
            }
            for (home, tag, cred) in local.snapshot_entries() {
                oracle_repo.publish(home, (*cred).clone(), tag);
            }
        }
        let bus_image = std::fs::read(dir.join(wal::BUS_DIR).join(wal::LOG_FILE)).unwrap();
        for rec in &wal::scan_log(&bus_image).records {
            replayable += 1;
            match &rec.op {
                wal::WalOp::Revoke { id } => oracle_bus.revoke(id),
                wal::WalOp::RevokeBatch { ids } => {
                    for id in ids {
                        oracle_bus.revoke(id);
                    }
                }
                _ => panic!("bus segment only carries revocations"),
            }
        }

        // --- Recover and compare. ---
        let (rec_repo, rec_bus, report) = Repository::recover_sharded(&dir).unwrap();
        prop_assert_eq!(report.records_replayed, replayable);

        let registry = EntityRegistry::new();
        for u in &users {
            registry.register(u);
        }
        for d in &domains {
            registry.register(d);
        }
        // Replay dedups repeated publishes of the same credential, so
        // compare the distinct committed id sets.
        let ids = |repo: &Repository| {
            let mut v: Vec<String> = repo.all_credentials().iter().map(|c| c.id()).collect();
            v.sort();
            v.dedup();
            v
        };
        prop_assert_eq!(ids(&oracle_repo), ids(&rec_repo));
        prop_assert_eq!(oracle_bus.revoked_ids(), rec_bus.revoked_ids());
        let oracle_engine = ProofEngine::new(&registry, &oracle_repo, &oracle_bus, 0);
        let rec_engine = ProofEngine::new(&registry, &rec_repo, &rec_bus, 0);
        for u in &users {
            let subject = u.as_subject();
            for d in &domains {
                let role = d.role("R");
                let o = oracle_engine.check(&subject, &role, &[]);
                let r = rec_engine.check(&subject, &role, &[]);
                prop_assert_eq!(o, r, "decision divergence on {} -> {}", u.name.0, role);
            }
        }

        // --- A writable reopen heals the torn shard; every segment must
        // then verify clean and replay the same count. ---
        {
            let (d, rep2) = ShardedDurableRepository::open(&dir, SHARDS, WalConfig::default())
                .unwrap();
            prop_assert_eq!(rep2.records_replayed, report.records_replayed);
            d.detach();
        }
        let v = wal::verify_sharded_dir(&dir).unwrap();
        prop_assert!(v.is_clean(), "segments {:?} not clean after reopen", v.damaged());

        let _ = std::fs::remove_dir_all(&dir);
    }
}
