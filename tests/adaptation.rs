//! Cross-crate adaptation test: the monitoring module sees environment
//! changes, the planner produces a new deployment, and the deployer
//! realizes it — the full dynamic loop of §2.1 over the mail world.

use psf_core::{AdaptationLoop, Goal, PlannerConfig};
use psf_mail::{MailWorld, Message};

#[test]
fn degraded_wan_leads_to_cache_redeployment_and_service_continuity() {
    let w = MailWorld::build(2);
    let goal = Goal {
        iface: "MailI".into(),
        client_node: w.sites.sd[1],
        max_latency_ms: Some(60.0),
        require_privacy: false,
        require_plaintext_delivery: true,
    };

    let mut adapt = AdaptationLoop::start(
        &w.registrar,
        &w.sites.network,
        &w.oracle,
        PlannerConfig::default(),
        goal.clone(),
    );
    // Initially the 40 ms WAN is inside budget: direct access.
    let initial = adapt.current_plan().expect("initial plan").clone();
    assert_eq!(initial.deployments(), 0);
    let deployment = w.deployer.execute(&initial, &goal).unwrap();
    deployment
        .endpoint
        .call_remote(
            "send",
            &Message::new("bob", "alice", "before", "pre-degradation").to_bytes(),
        )
        .unwrap();

    // Every WAN path degrades.
    w.sites.network.set_latency(w.sites.wan_ny_sd, 300.0);
    w.sites.network.set_latency(w.sites.wan_sd_se, 300.0);
    w.sites.network.set_latency(w.sites.wan_ny_se, 300.0);

    let new_plan = match adapt.check() {
        psf_core::monitor::AdaptationOutcome::Replanned(p) => p,
        other => panic!("expected replan, got {other:?}"),
    };
    assert!(
        new_plan.deployments() >= 1,
        "cache needed: {}",
        new_plan.render()
    );

    // Redeploy and confirm continuity: old mail is still reachable via
    // the new (cached) path because coherence pulls from the origin.
    let redeployment = w.deployer.execute(&new_plan, &goal).unwrap();
    let inbox = Message::decode_list(
        &redeployment
            .endpoint
            .call_remote("fetch", b"alice")
            .unwrap(),
    )
    .unwrap();
    assert_eq!(inbox.len(), 1);
    assert_eq!(inbox[0].subject, "before");
}

#[test]
fn recovered_wan_reverts_to_direct_access() {
    let w = MailWorld::build(2);
    let goal = Goal {
        iface: "MailI".into(),
        client_node: w.sites.sd[0],
        max_latency_ms: Some(60.0),
        require_privacy: false,
        require_plaintext_delivery: true,
    };
    // Degrade first.
    w.sites.network.set_latency(w.sites.wan_ny_sd, 300.0);
    w.sites.network.set_latency(w.sites.wan_sd_se, 300.0);
    w.sites.network.set_latency(w.sites.wan_ny_se, 300.0);
    let mut adapt = AdaptationLoop::start(
        &w.registrar,
        &w.sites.network,
        &w.oracle,
        PlannerConfig::default(),
        goal,
    );
    assert!(adapt.current_plan().unwrap().deployments() >= 1);

    // The WAN recovers: the cheaper direct plan wins again.
    w.sites.network.set_latency(w.sites.wan_ny_sd, 40.0);
    match adapt.check() {
        psf_core::monitor::AdaptationOutcome::Replanned(p) => {
            assert_eq!(p.deployments(), 0, "direct again: {}", p.render())
        }
        other => panic!("expected replan, got {other:?}"),
    }
}

#[test]
fn teardown_releases_cpu_and_revokes_component_credentials() {
    let w = MailWorld::build(2);
    let node = w.sites.sd[1];
    let before = w.sites.network.node(node).unwrap().cpu_available();

    let goal = Goal {
        iface: "MailI".into(),
        client_node: node,
        max_latency_ms: Some(10.0),
        require_privacy: false,
        require_plaintext_delivery: true,
    };
    let (_plan, deployment) = w.deliver(&goal).unwrap();
    // The cache view reserved CPU on a SD node.
    assert!(!deployment.reservations.is_empty());
    let reserved_node = deployment.reservations[0].0;
    let during = w.sites.network.node(reserved_node).unwrap().cpu_available();
    assert!(during < w.sites.network.node(reserved_node).unwrap().cpu_capacity);

    let cred_ids: Vec<String> = deployment
        .issued_credentials
        .iter()
        .map(|c| c.id())
        .collect();
    deployment.teardown(Some(&w.sites.network), &w.ny_guard);

    // CPU restored.
    let after = w.sites.network.node(reserved_node).unwrap().cpu_available();
    assert_eq!(
        after,
        w.sites.network.node(reserved_node).unwrap().cpu_capacity
    );
    let _ = before;
    // Component credentials revoked: nothing lingers authorized.
    for id in cred_ids {
        assert!(w.bus.is_revoked(&id), "credential {id} must be revoked");
    }
}

#[test]
fn repeated_deployments_exhaust_then_recover_capacity() {
    let w = MailWorld::build(1);
    let goal = Goal {
        iface: "MailI".into(),
        client_node: w.sites.sd[0],
        max_latency_ms: Some(10.0),
        require_privacy: false,
        require_plaintext_delivery: true,
    };
    // Each cache deployment takes 20 CPU of the single 100-CPU SD node:
    // five fit, the sixth plan fails at planning (no capacity).
    let mut deployments = Vec::new();
    for i in 0..5 {
        let (_, d) = w
            .deliver(&goal)
            .unwrap_or_else(|e| panic!("deploy {i}: {e}"));
        deployments.push(d);
    }
    assert!(
        w.deliver(&goal).is_err(),
        "sixth cache must not fit in the remaining CPU"
    );
    // Tear one down: capacity returns and a new deployment fits.
    deployments
        .pop()
        .unwrap()
        .teardown(Some(&w.sites.network), &w.ny_guard);
    assert!(w.deliver(&goal).is_ok());
}
