//! Cross-crate adaptation test: the monitoring module sees environment
//! changes, the planner produces a new deployment, and the deployer
//! realizes it — the full dynamic loop of §2.1 over the mail world.

use psf_core::{
    AdaptationLoop, DeployFaultPlan, Goal, PlannerConfig, RetryPolicy, Supervisor, SupervisorState,
    TickOutcome,
};
use psf_mail::{MailWorld, Message};
use std::time::Duration;

#[test]
fn degraded_wan_leads_to_cache_redeployment_and_service_continuity() {
    let w = MailWorld::build(2);
    let goal = Goal {
        iface: "MailI".into(),
        client_node: w.sites.sd[1],
        max_latency_ms: Some(60.0),
        require_privacy: false,
        require_plaintext_delivery: true,
    };

    let mut adapt = AdaptationLoop::start(
        &w.registrar,
        &w.sites.network,
        &w.oracle,
        PlannerConfig::default(),
        goal.clone(),
    );
    // Initially the 40 ms WAN is inside budget: direct access.
    let initial = adapt.current_plan().expect("initial plan").clone();
    assert_eq!(initial.deployments(), 0);
    let deployment = w.deployer.execute(&initial, &goal).unwrap();
    deployment
        .endpoint
        .call_remote(
            "send",
            &Message::new("bob", "alice", "before", "pre-degradation").to_bytes(),
        )
        .unwrap();

    // Every WAN path degrades.
    w.sites.network.set_latency(w.sites.wan_ny_sd, 300.0);
    w.sites.network.set_latency(w.sites.wan_sd_se, 300.0);
    w.sites.network.set_latency(w.sites.wan_ny_se, 300.0);

    let new_plan = match adapt.check() {
        psf_core::monitor::AdaptationOutcome::Replanned(p) => p,
        other => panic!("expected replan, got {other:?}"),
    };
    assert!(
        new_plan.deployments() >= 1,
        "cache needed: {}",
        new_plan.render()
    );

    // Redeploy and confirm continuity: old mail is still reachable via
    // the new (cached) path because coherence pulls from the origin.
    let redeployment = w.deployer.execute(&new_plan, &goal).unwrap();
    let inbox = Message::decode_list(
        &redeployment
            .endpoint
            .call_remote("fetch", b"alice")
            .unwrap(),
    )
    .unwrap();
    assert_eq!(inbox.len(), 1);
    assert_eq!(inbox[0].subject, "before");
}

#[test]
fn recovered_wan_reverts_to_direct_access() {
    let w = MailWorld::build(2);
    let goal = Goal {
        iface: "MailI".into(),
        client_node: w.sites.sd[0],
        max_latency_ms: Some(60.0),
        require_privacy: false,
        require_plaintext_delivery: true,
    };
    // Degrade first.
    w.sites.network.set_latency(w.sites.wan_ny_sd, 300.0);
    w.sites.network.set_latency(w.sites.wan_sd_se, 300.0);
    w.sites.network.set_latency(w.sites.wan_ny_se, 300.0);
    let mut adapt = AdaptationLoop::start(
        &w.registrar,
        &w.sites.network,
        &w.oracle,
        PlannerConfig::default(),
        goal,
    );
    assert!(adapt.current_plan().unwrap().deployments() >= 1);

    // The WAN recovers: the cheaper direct plan wins again.
    w.sites.network.set_latency(w.sites.wan_ny_sd, 40.0);
    match adapt.check() {
        psf_core::monitor::AdaptationOutcome::Replanned(p) => {
            assert_eq!(p.deployments(), 0, "direct again: {}", p.render())
        }
        other => panic!("expected replan, got {other:?}"),
    }
}

#[test]
fn teardown_releases_cpu_and_revokes_component_credentials() {
    let w = MailWorld::build(2);
    let node = w.sites.sd[1];
    let before = w.sites.network.node(node).unwrap().cpu_available();

    let goal = Goal {
        iface: "MailI".into(),
        client_node: node,
        max_latency_ms: Some(10.0),
        require_privacy: false,
        require_plaintext_delivery: true,
    };
    let (_plan, deployment) = w.deliver(&goal).unwrap();
    // The cache view reserved CPU on a SD node.
    assert!(!deployment.reservations.is_empty());
    let reserved_node = deployment.reservations[0].0;
    let during = w.sites.network.node(reserved_node).unwrap().cpu_available();
    assert!(during < w.sites.network.node(reserved_node).unwrap().cpu_capacity);

    let cred_ids: Vec<String> = deployment
        .issued_credentials
        .iter()
        .map(|c| c.id())
        .collect();
    deployment.teardown(Some(&w.sites.network), &w.ny_guard);

    // CPU restored.
    let after = w.sites.network.node(reserved_node).unwrap().cpu_available();
    assert_eq!(
        after,
        w.sites.network.node(reserved_node).unwrap().cpu_capacity
    );
    let _ = before;
    // Component credentials revoked: nothing lingers authorized.
    for id in cred_ids {
        assert!(w.bus.is_revoked(&id), "credential {id} must be revoked");
    }
}

/// The acceptance scenario for the resilient runtime: a seeded chaos run
/// — link collapse + node failure + one injected deploy-step failure —
/// must end with the goal re-satisfied, the old deployment torn down,
/// its credentials revoked, and zero leaked CPU. Metrics are asserted as
/// deltas because counters are process-global across tests.
#[test]
fn seeded_chaos_run_recovers_end_to_end() {
    let reg = psf_telemetry::registry();
    let failovers_before = reg.counter_value("psf.supervisor.failovers");
    let rollbacks_before = reg.counter_value("psf.deploy.rollbacks");

    let w = MailWorld::build(2);
    let cpu_before: Vec<u32> = w
        .sites
        .network
        .node_ids()
        .iter()
        .map(|&n| w.sites.network.node(n).unwrap().cpu_available())
        .collect();

    // One injected deploy-step failure on the very first attempt; the
    // deterministic retry must absorb it.
    w.deployer
        .set_fault_plan(Some(DeployFaultPlan::fail_at(1, 1)));
    w.deployer.set_retry_policy(RetryPolicy {
        base_backoff: Duration::from_micros(100),
        jitter_seed: 7,
        ..RetryPolicy::default()
    });

    let goal = Goal {
        iface: "MailI".into(),
        client_node: w.sites.sd[1],
        max_latency_ms: Some(60.0),
        require_privacy: false,
        require_plaintext_delivery: true,
    };
    let mut sup = Supervisor::start(
        &w.registrar,
        &w.sites.network,
        &w.oracle,
        PlannerConfig::default(),
        goal,
        &w.deployer,
        w.ny_guard.clone(),
    )
    .expect("initial deployment recovers from the injected fault");
    let rollback = w.deployer.last_rollback().expect("the fault fired");
    assert_eq!(rollback.attempt, 1);
    for id in &rollback.revoked_credential_ids {
        assert!(w.bus.is_revoked(id), "rollback revokes {id}");
    }
    sup.endpoint()
        .unwrap()
        .call_remote(
            "send",
            &Message::new("bob", "alice", "chaos", "pre-collapse").to_bytes(),
        )
        .unwrap();
    let old_ids: Vec<String> = sup
        .deployment()
        .unwrap()
        .issued_credentials
        .iter()
        .map(|c| c.id())
        .collect();

    // Link collapse: every WAN degrades past the 60 ms bound.
    for wan in [w.sites.wan_ny_sd, w.sites.wan_ny_se, w.sites.wan_sd_se] {
        w.sites.network.set_latency(wan, 300.0);
    }
    match sup.tick() {
        TickOutcome::FailedOver { steps } => assert!(steps >= 3, "cache plan expected"),
        other => panic!("expected failover, got {other:?}"),
    }
    // The displaced deployment is gone: its credentials are revoked.
    for id in &old_ids {
        assert!(w.bus.is_revoked(id), "old deployment cred {id} revoked");
    }
    // Continuity through the cache: mail sent pre-collapse is readable.
    let inbox = Message::decode_list(
        &sup.endpoint()
            .unwrap()
            .call_remote("fetch", b"alice")
            .unwrap(),
    )
    .unwrap();
    assert_eq!(inbox.len(), 1);
    assert_eq!(inbox[0].subject, "chaos");

    // Node failure: sd-0 carries both WANs into San Diego, so the client
    // at sd-1 is isolated — the supervisor tears everything down.
    w.sites.network.fail_node(w.sites.sd[0]);
    match sup.tick() {
        TickOutcome::Degraded(_) => {}
        other => panic!("expected degraded, got {other:?}"),
    }
    assert!(sup.deployment().is_none());

    // Restore: the goal is re-satisfied end to end.
    w.sites.network.restore_node(w.sites.sd[0]);
    match sup.tick() {
        TickOutcome::Recovered => {}
        other => panic!("expected recovery, got {other:?}"),
    }
    assert_eq!(sup.state(), SupervisorState::Serving);
    assert!(sup
        .endpoint()
        .unwrap()
        .call_remote("fetch", b"alice")
        .is_ok());

    // Zero leaked CPU after shutdown, and the metrics moved.
    sup.shutdown();
    let cpu_after: Vec<u32> = w
        .sites
        .network
        .node_ids()
        .iter()
        .map(|&n| w.sites.network.node(n).unwrap().cpu_available())
        .collect();
    assert_eq!(cpu_before, cpu_after, "zero leaked CPU reservations");
    assert!(
        reg.counter_value("psf.supervisor.failovers") - failovers_before >= 2,
        "collapse + recovery each count a failover"
    );
    assert!(
        reg.counter_value("psf.deploy.rollbacks") - rollbacks_before >= 1,
        "the injected fault forced at least one rollback"
    );
}

#[test]
fn repeated_deployments_exhaust_then_recover_capacity() {
    let w = MailWorld::build(1);
    let goal = Goal {
        iface: "MailI".into(),
        client_node: w.sites.sd[0],
        max_latency_ms: Some(10.0),
        require_privacy: false,
        require_plaintext_delivery: true,
    };
    // Each cache deployment takes 20 CPU of the single 100-CPU SD node:
    // five fit, the sixth plan fails at planning (no capacity).
    let mut deployments = Vec::new();
    for i in 0..5 {
        let (_, d) = w
            .deliver(&goal)
            .unwrap_or_else(|e| panic!("deploy {i}: {e}"));
        deployments.push(d);
    }
    assert!(
        w.deliver(&goal).is_err(),
        "sixth cache must not fit in the remaining CPU"
    );
    // Tear one down: capacity returns and a new deployment fits.
    deployments
        .pop()
        .unwrap()
        .teardown(Some(&w.sites.network), &w.ny_guard);
    assert!(w.deliver(&goal).is_ok());
}
