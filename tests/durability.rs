//! End-to-end durability tests for the crash-safe credential repository:
//! committed state surviving repeated reopen cycles, torn tails, partial
//! compactions, and epoch monotonicity across restarts — exercised
//! through the same public surfaces the Supervisor and `psf repo` use.

use psf_drbac::entity::{Entity, EntityRegistry};
use psf_drbac::proof::ProofEngine;
use psf_drbac::repository::Repository;
use psf_drbac::wal::{self, DurableRepository, FsyncPolicy, WalConfig};
use psf_drbac::DelegationBuilder;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn tmpdir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let d = std::env::temp_dir().join(format!(
        "psf-durability-{}-{}-{}",
        std::process::id(),
        tag,
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn issue(dom: &Entity, user: &Entity, serial: u64) -> psf_drbac::SignedDelegation {
    DelegationBuilder::new(dom)
        .subject_entity(user)
        .role(dom.role("R"))
        .serial(serial)
        .sign()
}

/// Five open → publish → revoke → drop cycles; every cycle's committed
/// records are visible to the next, and the final read-only recovery sees
/// all of them.
#[test]
fn committed_state_survives_reopen_cycles() {
    let dir = tmpdir("cycles");
    let user = Entity::with_seed("User", b"durability");
    let dom = Entity::with_seed("Dom", b"durability");
    let mut revoked = Vec::new();
    for cycle in 0..5u64 {
        let (d, report) = DurableRepository::open(&dir, WalConfig::default()).unwrap();
        assert_eq!(
            d.repository().len(),
            (cycle * 10) as usize,
            "cycle {cycle} must see every earlier publish"
        );
        for i in 0..10u64 {
            let cred = issue(&dom, &user, cycle * 10 + i);
            if i == 0 {
                revoked.push(cred.id());
                d.repository().publish_at_issuer(cred);
                d.bus().revoke(revoked.last().unwrap());
            } else {
                d.repository().publish_at_issuer(cred);
            }
        }
        assert_eq!(report.revocations_restored as u64, cycle);
    }
    let (repo, bus, report) = Repository::recover(&dir).unwrap();
    assert_eq!(repo.len(), 50);
    assert_eq!(bus.revoked_count(), 5);
    assert_eq!(report.truncated_bytes, 0);
    for id in &revoked {
        assert!(bus.is_revoked(id));
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Garbage appended after the last committed record (a torn final write)
/// is truncated on the next writable open; every committed record and the
/// resulting authorization decision survive.
#[test]
fn torn_tail_loses_no_committed_record() {
    let dir = tmpdir("torn");
    let user = Entity::with_seed("User", b"durability");
    let dom = Entity::with_seed("Dom", b"durability");
    {
        let (d, _) = DurableRepository::open(
            &dir,
            WalConfig {
                fsync: FsyncPolicy::EveryN(4),
                auto_compact_appends: None,
            },
        )
        .unwrap();
        for i in 0..17u64 {
            d.repository().publish_at_issuer(issue(&dom, &user, i));
        }
        d.sync().unwrap();
    }
    // Simulate a crash mid-append: a length prefix promising more bytes
    // than were ever written.
    use std::io::Write as _;
    let log = dir.join(wal::LOG_FILE);
    let mut f = std::fs::OpenOptions::new().append(true).open(&log).unwrap();
    f.write_all(&[0x40, 0, 0, 0, 0xde, 0xad, 0xbe, 0xef, 1, 2, 3])
        .unwrap();
    drop(f);

    let (d, report) = DurableRepository::open(&dir, WalConfig::default()).unwrap();
    assert_eq!(report.publishes, 17);
    assert_eq!(report.truncated_bytes, 11);
    let registry = EntityRegistry::new();
    registry.register(&user);
    registry.register(&dom);
    let engine = ProofEngine::new(&registry, d.repository(), d.bus(), 0);
    assert!(engine.check(&user.as_subject(), &dom.role("R"), &[]));
    // The writable open physically dropped the tail.
    assert!(wal::verify_dir(&dir).unwrap().is_clean());
    let _ = std::fs::remove_dir_all(&dir);
}

/// A crash between snapshot rename and log truncation leaves the full log
/// alongside a snapshot that already contains it; recovery must
/// deduplicate rather than double-publish.
#[test]
fn interrupted_compaction_overlap_is_deduplicated() {
    let dir = tmpdir("overlap");
    let user = Entity::with_seed("User", b"durability");
    let dom = Entity::with_seed("Dom", b"durability");
    let pre_compact_log;
    {
        let (d, _) = DurableRepository::open(&dir, WalConfig::default()).unwrap();
        for i in 0..12u64 {
            d.repository().publish_at_issuer(issue(&dom, &user, i));
        }
        d.bus().revoke(&issue(&dom, &user, 0).id());
        pre_compact_log = std::fs::read(dir.join(wal::LOG_FILE)).unwrap();
        d.compact().unwrap();
    }
    // Put the pre-compaction log back: exactly the state left behind by a
    // crash after the snapshot rename but before the truncate.
    std::fs::write(dir.join(wal::LOG_FILE), &pre_compact_log).unwrap();

    let (repo, bus, report) = Repository::recover(&dir).unwrap();
    assert_eq!(report.snapshot_entries, 12);
    assert_eq!(report.duplicates_skipped, 12);
    assert_eq!(repo.len(), 12);
    assert_eq!(bus.revoked_count(), 1);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The repository epoch strictly increases across restarts, so any proof
/// cache keyed on a pre-crash epoch can never satisfy a post-crash query.
#[test]
fn epoch_is_strictly_monotonic_across_restarts() {
    let dir = tmpdir("epoch");
    let user = Entity::with_seed("User", b"durability");
    let dom = Entity::with_seed("Dom", b"durability");
    let mut last = 0u64;
    for i in 0..4u64 {
        let (d, report) = DurableRepository::open(&dir, WalConfig::default()).unwrap();
        assert!(
            report.epoch > last || (i == 0 && report.epoch == last),
            "restart {i}: epoch {} must exceed pre-crash epoch {last}",
            report.epoch
        );
        d.repository().publish_at_issuer(issue(&dom, &user, i));
        last = d.repository().epoch();
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Auto-compaction keeps the log bounded while never losing state, and
/// `WalStats` tracks the moving bytes.
#[test]
fn auto_compaction_preserves_state_and_bounds_log() {
    let dir = tmpdir("autocompact");
    let user = Entity::with_seed("User", b"durability");
    let dom = Entity::with_seed("Dom", b"durability");
    {
        let (d, _) = DurableRepository::open(
            &dir,
            WalConfig {
                fsync: FsyncPolicy::Never,
                auto_compact_appends: Some(16),
            },
        )
        .unwrap();
        for i in 0..100u64 {
            d.repository().publish_at_issuer(issue(&dom, &user, i));
        }
        let stats = d.stats();
        assert!(
            stats.compactions >= 5,
            "expected compactions, got {stats:?}"
        );
        assert!(stats.snapshot_bytes > 0);
    }
    let (repo, bus, report) = Repository::recover(&dir).unwrap();
    assert_eq!(repo.len(), 100);
    assert_eq!(bus.revoked_count(), 0);
    assert!(report.snapshot_entries > 0, "snapshot must carry the bulk");
    let _ = std::fs::remove_dir_all(&dir);
}
