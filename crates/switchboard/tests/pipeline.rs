//! Pipelined-RPC integration coverage: ordering and replay safety under
//! concurrent sliding-window senders (in-memory and real TCP), prompt
//! failure of in-flight calls on channel death, and µs-scale refusal of
//! pipelined traffic after mid-stream revocation.

use psf_drbac::entity::{Entity, EntityRegistry};
use psf_drbac::repository::Repository;
use psf_drbac::revocation::RevocationBus;
use psf_drbac::{DelegationBuilder, SignedDelegation};
use psf_switchboard::{
    pair_in_memory, pair_in_memory_plain, AuthSuite, Authorizer, ChannelConfig, ClockRef,
    SwitchboardError,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct TestWorld {
    registry: EntityRegistry,
    bus: RevocationBus,
    server: Entity,
    client: Entity,
    domain: Entity,
    client_cred: SignedDelegation,
    server_cred: SignedDelegation,
    repo: Repository,
    clock: ClockRef,
}

fn world() -> TestWorld {
    let registry = EntityRegistry::new();
    let repo = Repository::new();
    let bus = RevocationBus::new();
    let clock = ClockRef::new();
    let domain = Entity::with_seed("Comp.NY", b"pipeline-test");
    let server = Entity::with_seed("MailServer", b"pipeline-test");
    let client = Entity::with_seed("Bob", b"pipeline-test");
    for e in [&domain, &server, &client] {
        registry.register(e);
    }
    let client_cred = DelegationBuilder::new(&domain)
        .subject_entity(&client)
        .role(domain.role("Member"))
        .monitored()
        .sign();
    let server_cred = DelegationBuilder::new(&domain)
        .subject_entity(&server)
        .role(domain.role("Service"))
        .monitored()
        .sign();
    TestWorld {
        registry,
        bus,
        server,
        client,
        domain,
        client_cred,
        server_cred,
        repo,
        clock,
    }
}

impl TestWorld {
    fn suites(&self) -> (AuthSuite, AuthSuite) {
        let client_authorizer = Authorizer::new(
            self.registry.clone(),
            self.repo.clone(),
            self.bus.clone(),
            self.clock.clone(),
            self.domain.role("Service"),
        );
        let server_authorizer = Authorizer::new(
            self.registry.clone(),
            self.repo.clone(),
            self.bus.clone(),
            self.clock.clone(),
            self.domain.role("Member"),
        );
        (
            AuthSuite::new(
                self.client.clone(),
                vec![self.client_cred.clone()],
                client_authorizer,
            ),
            AuthSuite::new(
                self.server.clone(),
                vec![self.server_cred.clone()],
                server_authorizer,
            ),
        )
    }
}

fn quiet_config() -> ChannelConfig {
    ChannelConfig {
        heartbeat_interval: None,
        rpc_timeout: Duration::from_secs(10),
        ..Default::default()
    }
}

/// The echo-with-index handler used by the ordering tests: replies with
/// its argument, so a misrouted response is immediately visible.
fn install_echo(channel: &psf_switchboard::Channel) {
    channel.register_handler("echo", |args| Ok(args.to_vec()));
}

#[test]
fn pipelined_batch_preserves_order_secure_in_memory() {
    let w = world();
    let (cs, ss) = w.suites();
    let (client, server) = pair_in_memory(cs, ss, quiet_config()).unwrap();
    install_echo(&server);

    let payloads: Vec<Vec<u8>> = (0..256u32).map(|i| i.to_le_bytes().to_vec()).collect();
    let refs: Vec<&[u8]> = payloads.iter().map(|p| p.as_slice()).collect();
    let results = client.call_many("echo", &refs, 32);
    assert_eq!(results.len(), 256);
    for (i, r) in results.into_iter().enumerate() {
        assert_eq!(
            r.unwrap(),
            (i as u32).to_le_bytes().to_vec(),
            "response {i} out of order"
        );
    }
}

#[test]
fn pipelined_overlaps_instead_of_serializing() {
    // Serial calls pay a full request→wakeup→response→wakeup ping-pong
    // per call; a sliding window keeps the dispatch thread fed so the
    // per-call wait overlaps with in-flight work. With a trivial handler
    // the context-switch tax dominates, so the pipelined form must be
    // strictly faster over a large batch.
    let (client, server) = pair_in_memory_plain(quiet_config());
    install_echo(&server);
    let payloads: Vec<Vec<u8>> = (0..512u32).map(|i| i.to_le_bytes().to_vec()).collect();
    let refs: Vec<&[u8]> = payloads.iter().map(|p| p.as_slice()).collect();

    // Warm-up (thread spin-up, pool population) outside the timed region.
    for r in refs.iter().take(16) {
        client.call("echo", r).unwrap();
    }

    let start = Instant::now();
    for r in &refs {
        client.call("echo", r).unwrap();
    }
    let serial = start.elapsed();

    let start = Instant::now();
    let results = client.call_many("echo", &refs, 64);
    let pipelined = start.elapsed();
    assert!(results.iter().all(|r| r.is_ok()));

    assert!(
        pipelined < serial,
        "pipelined {pipelined:?} not faster than serial {serial:?}"
    );
}

#[test]
fn concurrent_pipelined_senders_multiplex_in_memory() {
    let w = world();
    let (cs, ss) = w.suites();
    let (client, server) = pair_in_memory(cs, ss, quiet_config()).unwrap();
    install_echo(&server);
    let client = Arc::new(client);

    // 8 threads, each keeping a sliding window of 8 requests in flight
    // over the same channel. The record layer's strict sequence check on
    // the peer breaks the channel if interleaved sends ever reorder, so
    // completing at all proves replay/ordering safety; the echoed bodies
    // prove responses route to the right callers.
    let mut joins = Vec::new();
    for t in 0..8u64 {
        let c = client.clone();
        joins.push(std::thread::spawn(move || {
            let payloads: Vec<Vec<u8>> = (0..64u64)
                .map(|i| (t << 32 | i).to_le_bytes().to_vec())
                .collect();
            let refs: Vec<&[u8]> = payloads.iter().map(|p| p.as_slice()).collect();
            let results = c.call_many("echo", &refs, 8);
            for (i, r) in results.into_iter().enumerate() {
                assert_eq!(r.unwrap(), payloads[i], "thread {t} call {i}");
            }
        }));
    }
    for j in joins {
        j.join().unwrap();
    }
    assert_eq!(client.status(), psf_switchboard::ChannelStatus::Healthy);
}

#[test]
fn concurrent_pipelined_senders_multiplex_over_tcp() {
    let w = world();
    let (cs, ss) = w.suites();
    let listener = psf_switchboard::listen_tcp("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let (ready_tx, ready_rx) = std::sync::mpsc::channel();
    let server_thread = std::thread::spawn(move || {
        let server = listener.accept(&ss, quiet_config()).unwrap();
        install_echo(&server);
        ready_tx.send(()).unwrap();
        server
    });
    let client =
        Arc::new(psf_switchboard::connect_tcp(&addr.to_string(), &cs, quiet_config()).unwrap());
    ready_rx.recv().unwrap();

    let mut joins = Vec::new();
    for t in 0..8u64 {
        let c = client.clone();
        joins.push(std::thread::spawn(move || {
            let payloads: Vec<Vec<u8>> = (0..32u64)
                .map(|i| (t << 32 | i).to_le_bytes().to_vec())
                .collect();
            let refs: Vec<&[u8]> = payloads.iter().map(|p| p.as_slice()).collect();
            let results = c.call_many("echo", &refs, 8);
            for (i, r) in results.into_iter().enumerate() {
                assert_eq!(r.unwrap(), payloads[i], "thread {t} call {i}");
            }
        }));
    }
    for j in joins {
        j.join().unwrap();
    }
    let _server = server_thread.join().unwrap();
}

#[test]
fn close_fails_pending_calls_promptly() {
    // Regression: a pending call must fail with `Closed` as soon as the
    // channel dies, not idle out the full RPC timeout (10 s here).
    let (client, server) = pair_in_memory_plain(quiet_config());
    let (block_tx, block_rx) = std::sync::mpsc::channel::<()>();
    let block_rx = std::sync::Mutex::new(block_rx);
    server.register_handler("hang", move |_| {
        // Park the server's dispatch thread so the response never comes.
        let _ = block_rx
            .lock()
            .unwrap()
            .recv_timeout(Duration::from_secs(5));
        Ok(vec![])
    });

    let start = Instant::now();
    let pending = client.call_pipelined("hang", b"").unwrap();
    let pending2 = client.call_pipelined("hang", b"").unwrap();
    std::thread::sleep(Duration::from_millis(20)); // let the request land
    client.close();
    let r1 = pending.wait();
    let r2 = pending2.wait();
    let elapsed = start.elapsed();
    let _ = block_tx.send(());

    assert!(
        matches!(r1, Err(SwitchboardError::Closed)),
        "expected Closed, got {r1:?}"
    );
    assert!(
        matches!(r2, Err(SwitchboardError::Closed)),
        "expected Closed, got {r2:?}"
    );
    assert!(
        elapsed < Duration::from_secs(2),
        "pending calls took {elapsed:?} to fail — leaked until rpc_timeout"
    );
}

#[test]
fn peer_death_fails_pending_calls_promptly() {
    // Same regression via the other death mode: the peer endpoint drops
    // (transport gone) rather than a local close().
    let (client, server) = pair_in_memory_plain(quiet_config());
    let (block_tx, block_rx) = std::sync::mpsc::channel::<()>();
    let block_rx = std::sync::Mutex::new(block_rx);
    server.register_handler("hang", move |_| {
        let _ = block_rx
            .lock()
            .unwrap()
            .recv_timeout(Duration::from_secs(5));
        Ok(vec![])
    });

    let start = Instant::now();
    let pending = client.call_pipelined("hang", b"").unwrap();
    std::thread::sleep(Duration::from_millis(20));
    drop(server); // Drop closes the channel, notifying the peer
    let r = pending.wait();
    let elapsed = start.elapsed();
    let _ = block_tx.send(());

    assert!(
        matches!(r, Err(SwitchboardError::Closed)),
        "expected Closed, got {r:?}"
    );
    assert!(
        elapsed < Duration::from_secs(2),
        "pending call took {elapsed:?} to fail after peer death"
    );
}

#[test]
fn revocation_mid_pipeline_refuses_promptly() {
    let w = world();
    let (cs, ss) = w.suites();
    let (client, server) = pair_in_memory(cs, ss, quiet_config()).unwrap();
    install_echo(&server);

    // Warm the pipeline while authorized.
    let payloads: Vec<Vec<u8>> = (0..32u8).map(|i| vec![i]).collect();
    let refs: Vec<&[u8]> = payloads.iter().map(|p| p.as_slice()).collect();
    assert!(client.call_many("echo", &refs, 8).iter().all(|r| r.is_ok()));

    // The server's credential is revoked mid-stream: the client's own
    // AuthorizationMonitor invalidates, so further pipelined issues are
    // refused locally — no round trip, no timeout.
    w.bus.revoke(&w.server_cred.id());

    let results = client.call_many("echo", &refs, 8);
    assert!(
        results
            .iter()
            .all(|r| matches!(r, Err(SwitchboardError::RevalidationRequired(_)))),
        "all post-revocation issues must be refused"
    );

    // The refusal is a local monitor check (two lock acquisitions), not a
    // network operation: its floor is microseconds. Use the minimum over
    // many probes so scheduler noise on shared CI cannot flake the bound.
    let mut best = Duration::from_secs(1);
    for _ in 0..100 {
        let t = Instant::now();
        let r = client.call_pipelined("echo", b"x");
        let dt = t.elapsed();
        assert!(matches!(r, Err(SwitchboardError::RevalidationRequired(_))));
        best = best.min(dt);
    }
    assert!(
        best <= Duration::from_micros(24),
        "fastest refusal {best:?} exceeds the ~24 µs local-check budget"
    );
}
