//! Integration tests for Switchboard channels: handshake, RPC,
//! encryption, heartbeats/RTT, and continuous authorization (F4
//! behaviours from DESIGN.md).

use psf_drbac::entity::{Entity, EntityRegistry};
use psf_drbac::repository::Repository;
use psf_drbac::revocation::RevocationBus;
use psf_drbac::{DelegationBuilder, SignedDelegation};
use psf_switchboard::{
    pair_in_memory, pair_in_memory_plain, AuthSuite, Authorizer, ChannelConfig, ChannelStatus,
    ClockRef, SwitchboardError,
};
use std::time::Duration;

struct TestWorld {
    registry: EntityRegistry,
    bus: RevocationBus,
    server: Entity,
    client: Entity,
    domain: Entity,
    client_cred: SignedDelegation,
    server_cred: SignedDelegation,
    repo: Repository,
    clock: ClockRef,
}

fn world() -> TestWorld {
    let registry = EntityRegistry::new();
    let repo = Repository::new();
    let bus = RevocationBus::new();
    let clock = ClockRef::new();
    let domain = Entity::with_seed("Comp.NY", b"swbd-test");
    let server = Entity::with_seed("MailServer", b"swbd-test");
    let client = Entity::with_seed("Bob", b"swbd-test");
    for e in [&domain, &server, &client] {
        registry.register(e);
    }
    let client_cred = DelegationBuilder::new(&domain)
        .subject_entity(&client)
        .role(domain.role("Member"))
        .monitored()
        .sign();
    let server_cred = DelegationBuilder::new(&domain)
        .subject_entity(&server)
        .role(domain.role("Service"))
        .monitored()
        .sign();
    TestWorld {
        registry,
        bus,
        server,
        client,
        domain,
        client_cred,
        server_cred,
        repo,
        clock,
    }
}

impl TestWorld {
    fn suites(&self) -> (AuthSuite, AuthSuite) {
        // Client requires the peer to be a Service; server requires Member.
        let client_authorizer = Authorizer::new(
            self.registry.clone(),
            self.repo.clone(),
            self.bus.clone(),
            self.clock.clone(),
            self.domain.role("Service"),
        );
        let server_authorizer = Authorizer::new(
            self.registry.clone(),
            self.repo.clone(),
            self.bus.clone(),
            self.clock.clone(),
            self.domain.role("Member"),
        );
        let client_suite = AuthSuite::new(
            self.client.clone(),
            vec![self.client_cred.clone()],
            client_authorizer,
        );
        let server_suite = AuthSuite::new(
            self.server.clone(),
            vec![self.server_cred.clone()],
            server_authorizer,
        );
        (client_suite, server_suite)
    }
}

fn quiet_config() -> ChannelConfig {
    ChannelConfig {
        heartbeat_interval: None,
        rpc_timeout: Duration::from_secs(5),
        ..Default::default()
    }
}

#[test]
fn secure_rpc_roundtrip_in_memory() {
    let w = world();
    let (cs, ss) = w.suites();
    let (client, server) = pair_in_memory(cs, ss, quiet_config()).unwrap();
    server.register_handler("getEmail", |args| {
        Ok(format!("{}@comp.example", String::from_utf8_lossy(args)).into_bytes())
    });
    let reply = client.call("getEmail", b"alice").unwrap();
    assert_eq!(reply, b"alice@comp.example");
    assert_eq!(client.status(), ChannelStatus::Healthy);
    assert_eq!(server.peer().unwrap().name.0, "Bob");
    assert_eq!(client.peer().unwrap().name.0, "MailServer");
}

#[test]
fn bidirectional_rpc() {
    let w = world();
    let (cs, ss) = w.suites();
    let (client, server) = pair_in_memory(cs, ss, quiet_config()).unwrap();
    server.register_handler("ping", |_| Ok(b"pong".to_vec()));
    client.register_handler("notify", |args| Ok(args.to_vec()));
    assert_eq!(client.call("ping", b"").unwrap(), b"pong");
    // The server can call back over the same channel (two-way RPC).
    assert_eq!(server.call("notify", b"new-mail").unwrap(), b"new-mail");
}

#[test]
fn handler_errors_propagate() {
    let w = world();
    let (cs, ss) = w.suites();
    let (client, server) = pair_in_memory(cs, ss, quiet_config()).unwrap();
    server.register_handler("boom", |_| Err("kaput".into()));
    match client.call("boom", b"") {
        Err(SwitchboardError::Remote(m)) => assert_eq!(m, "kaput"),
        other => panic!("expected Remote error, got {other:?}"),
    }
    match client.call("nope", b"") {
        Err(SwitchboardError::Remote(m)) => assert!(m.contains("no such method")),
        other => panic!("expected NoSuchMethod error, got {other:?}"),
    }
}

#[test]
fn unauthorized_peer_cannot_connect() {
    let w = world();
    let (mut cs, ss) = w.suites();
    cs.credentials.clear(); // client shows up with no credentials
    let err = pair_in_memory(cs, ss, quiet_config());
    assert!(err.is_err());
}

#[test]
fn stranger_with_own_key_rejected() {
    let w = world();
    let (mut cs, ss) = w.suites();
    // Mallory uses her own identity but presents Bob's credential.
    let mallory = Entity::with_seed("Mallory", b"elsewhere");
    w.registry.register(&mallory);
    cs.identity = mallory;
    let err = pair_in_memory(cs, ss, quiet_config());
    assert!(
        err.is_err(),
        "credential subject key must bind the channel identity"
    );
}

#[test]
fn revocation_mid_connection_blocks_requests_then_revalidation_restores() {
    let w = world();
    let (cs, ss) = w.suites();
    let (client, server) = pair_in_memory(cs, ss, quiet_config()).unwrap();
    server.register_handler("read", |_| Ok(b"mail".to_vec()));
    assert_eq!(client.call("read", b"").unwrap(), b"mail");

    // The client's credential is revoked mid-connection.
    w.bus.revoke(&w.client_cred.id());

    // The server now refuses service pending revalidation.
    match client.call("read", b"") {
        Err(SwitchboardError::RevalidationRequired(_)) => {}
        other => panic!("expected RevalidationRequired, got {other:?}"),
    }
    assert!(matches!(
        server.status(),
        ChannelStatus::RevalidationRequired(_)
    ));

    // The domain issues a fresh credential; the client re-validates.
    let fresh = DelegationBuilder::new(&w.domain)
        .subject_entity(&w.client)
        .role(w.domain.role("Member"))
        .monitored()
        .serial(2) // re-issue: distinct credential id
        .sign();
    let accepted = client
        .offer_revalidation(&[fresh], Duration::from_secs(5))
        .unwrap();
    assert!(accepted);
    assert_eq!(client.call("read", b"").unwrap(), b"mail");
    assert_eq!(server.status(), ChannelStatus::Healthy);
}

#[test]
fn revalidation_with_bad_credentials_is_refused() {
    let w = world();
    let (cs, ss) = w.suites();
    let (client, _server) = pair_in_memory(cs, ss, quiet_config()).unwrap();
    w.bus.revoke(&w.client_cred.id());
    // Offer an unrelated credential that proves nothing.
    let unrelated = DelegationBuilder::new(&w.domain)
        .subject_entity(&w.client)
        .role(w.domain.role("SomethingElse"))
        .sign();
    let accepted = client
        .offer_revalidation(&[unrelated], Duration::from_secs(5))
        .unwrap();
    assert!(!accepted);
}

#[test]
fn heartbeats_measure_rtt_and_liveness() {
    let w = world();
    let (cs, ss) = w.suites();
    let config = ChannelConfig {
        heartbeat_interval: Some(Duration::from_millis(20)),
        rpc_timeout: Duration::from_secs(5),
        ..Default::default()
    };
    let (client, server) = pair_in_memory(cs, ss, config).unwrap();
    std::thread::sleep(Duration::from_millis(150));
    assert!(
        client.last_rtt().is_some(),
        "client should have an RTT sample"
    );
    assert!(server.heartbeats_received() >= 2);
    assert!(client.is_alive(Duration::from_secs(1)));
    client.close();
    std::thread::sleep(Duration::from_millis(50));
    assert!(!client.is_alive(Duration::from_secs(1)));
}

#[test]
fn plain_mode_carries_rpc_without_auth() {
    let (a, b) = pair_in_memory_plain(quiet_config());
    b.register_handler("echo", |args| Ok(args.to_vec()));
    assert_eq!(a.call("echo", b"rmi-style").unwrap(), b"rmi-style");
    assert!(a.peer().is_none());
}

#[test]
fn close_propagates() {
    let w = world();
    let (cs, ss) = w.suites();
    let (client, server) = pair_in_memory(cs, ss, quiet_config()).unwrap();
    server.register_handler("x", |_| Ok(vec![]));
    client.close();
    std::thread::sleep(Duration::from_millis(50));
    assert_eq!(server.status(), ChannelStatus::Closed);
    assert!(matches!(
        server.call("x", b""),
        Err(SwitchboardError::Closed) | Err(SwitchboardError::Io(_))
    ));
}

#[test]
fn on_close_watchers_fire_exactly_once() {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    let (a, b) = pair_in_memory_plain(quiet_config());
    let fired = Arc::new(AtomicUsize::new(0));
    let f = fired.clone();
    a.on_close(move || {
        f.fetch_add(1, Ordering::SeqCst);
    });
    assert_eq!(fired.load(Ordering::SeqCst), 0, "not fired while healthy");
    b.close();
    std::thread::sleep(Duration::from_millis(50));
    assert_eq!(a.status(), ChannelStatus::Closed);
    assert_eq!(fired.load(Ordering::SeqCst), 1, "fires on peer close");
    a.close(); // double close must not re-fire drained watchers
    assert_eq!(fired.load(Ordering::SeqCst), 1);

    // Registering on an already-closed channel fires immediately.
    let late = Arc::new(AtomicUsize::new(0));
    let l = late.clone();
    a.on_close(move || {
        l.fetch_add(1, Ordering::SeqCst);
    });
    assert_eq!(late.load(Ordering::SeqCst), 1);
}

#[test]
fn secure_rpc_over_real_tcp() {
    let w = world();
    let (cs, ss) = w.suites();
    let listener = psf_switchboard::listen_tcp("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    // The first call races the server thread's handler registration, so
    // the server signals readiness after registering.
    let (ready_tx, ready_rx) = std::sync::mpsc::channel();
    let server_thread = std::thread::spawn(move || {
        let server = listener.accept(&ss, quiet_config()).unwrap();
        server.register_handler("getPhone", |args| {
            Ok(format!("+1-212-{}", String::from_utf8_lossy(args)).into_bytes())
        });
        ready_tx.send(()).unwrap();
        server
    });
    let client = psf_switchboard::connect_tcp(&addr.to_string(), &cs, quiet_config()).unwrap();
    ready_rx.recv().unwrap();
    let phone = client.call("getPhone", b"5551212").unwrap();
    assert_eq!(phone, b"+1-212-5551212");
    let _server = server_thread.join().unwrap();
}

#[test]
fn concurrent_calls_multiplex() {
    let w = world();
    let (cs, ss) = w.suites();
    let (client, server) = pair_in_memory(cs, ss, quiet_config()).unwrap();
    server.register_handler("double", |args| {
        let n: u64 = String::from_utf8_lossy(args).parse().map_err(|_| "nan")?;
        Ok((n * 2).to_string().into_bytes())
    });
    let client = std::sync::Arc::new(client);
    let mut joins = Vec::new();
    for i in 0..16u64 {
        let c = client.clone();
        joins.push(std::thread::spawn(move || {
            let reply = c.call("double", i.to_string().as_bytes()).unwrap();
            assert_eq!(reply, (i * 2).to_string().into_bytes());
        }));
    }
    for j in joins {
        j.join().unwrap();
    }
}

#[test]
fn large_payload_roundtrip() {
    let w = world();
    let (cs, ss) = w.suites();
    let (client, server) = pair_in_memory(cs, ss, quiet_config()).unwrap();
    server.register_handler("sum", |args| {
        let s: u64 = args.iter().map(|&b| b as u64).sum();
        Ok(s.to_le_bytes().to_vec())
    });
    let big = vec![7u8; 1 << 20]; // 1 MiB through the AEAD record layer
    let reply = client.call("sum", &big).unwrap();
    assert_eq!(u64::from_le_bytes(reply.try_into().unwrap()), 7 << 20);
}

#[test]
fn expired_credentials_rejected_at_handshake() {
    let w = world();
    let (mut cs, ss) = w.suites();
    let expired = DelegationBuilder::new(&w.domain)
        .subject_entity(&w.client)
        .role(w.domain.role("Member"))
        .expires(10)
        .sign();
    cs.credentials = vec![expired];
    w.clock.set(100); // both suites share the clock
    assert!(pair_in_memory(cs, ss, quiet_config()).is_err());
}

#[test]
fn traffic_counters_track_both_directions() {
    let w = world();
    let (cs, ss) = w.suites();
    let (client, server) = pair_in_memory(cs, ss, quiet_config()).unwrap();
    server.register_handler("echo", |a| Ok(a.to_vec()));
    let before = client.traffic();
    client.call("echo", &[0u8; 1000]).unwrap();
    let after = client.traffic();
    assert_eq!(after.frames_sent, before.frames_sent + 1);
    assert_eq!(after.frames_received, before.frames_received + 1);
    assert!(after.bytes_sent >= before.bytes_sent + 1000);
    assert!(after.bytes_received >= before.bytes_received + 1000);
    // The server saw the mirror image.
    let sv = server.traffic();
    assert_eq!(sv.frames_received, after.frames_sent);
    assert_eq!(sv.frames_sent, after.frames_received);
}

#[test]
fn expired_peer_lapses_mid_connection() {
    // §3.1 "continuously over some duration": advance the shared clock
    // past the client credential's expiry — the server refuses service
    // with no revocation involved.
    let w = world();
    let (mut cs, ss) = w.suites();
    let expiring = psf_drbac::DelegationBuilder::new(&w.domain)
        .subject_entity(&w.client)
        .role(w.domain.role("Member"))
        .expires(1000)
        .sign();
    cs.credentials = vec![expiring];
    let (client, server) = pair_in_memory(cs, ss, quiet_config()).unwrap();
    server.register_handler("read", |_| Ok(b"ok".to_vec()));
    assert_eq!(client.call("read", b"").unwrap(), b"ok");
    w.clock.set(1000);
    match client.call("read", b"") {
        Err(SwitchboardError::RevalidationRequired(_)) => {}
        other => panic!("expected expiry-driven refusal, got {other:?}"),
    }
}
