//! Reactor torture coverage: the `tests/pipeline.rs` scenarios replayed
//! over reactor-backed TCP channels (epoll shards, zero threads per
//! channel), plus timer-wheel heartbeat integration — coalesced groups,
//! liveness, RTT — and prompt in-flight failure on close with a
//! mixed-backend (reactor client, threaded server) pair.

use psf_drbac::entity::{Entity, EntityRegistry};
use psf_drbac::repository::Repository;
use psf_drbac::revocation::RevocationBus;
use psf_drbac::{DelegationBuilder, SignedDelegation};
use psf_switchboard::{
    connect_tcp, listen_tcp, AuthSuite, Authorizer, ChannelBackend, ChannelConfig, ClockRef,
    SwitchboardError,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct TestWorld {
    registry: EntityRegistry,
    bus: RevocationBus,
    server: Entity,
    client: Entity,
    domain: Entity,
    client_cred: SignedDelegation,
    server_cred: SignedDelegation,
    repo: Repository,
    clock: ClockRef,
}

fn world() -> TestWorld {
    let registry = EntityRegistry::new();
    let repo = Repository::new();
    let bus = RevocationBus::new();
    let clock = ClockRef::new();
    let domain = Entity::with_seed("Comp.NY", b"reactor-test");
    let server = Entity::with_seed("MailServer", b"reactor-test");
    let client = Entity::with_seed("Bob", b"reactor-test");
    for e in [&domain, &server, &client] {
        registry.register(e);
    }
    let client_cred = DelegationBuilder::new(&domain)
        .subject_entity(&client)
        .role(domain.role("Member"))
        .monitored()
        .sign();
    let server_cred = DelegationBuilder::new(&domain)
        .subject_entity(&server)
        .role(domain.role("Service"))
        .monitored()
        .sign();
    TestWorld {
        registry,
        bus,
        server,
        client,
        domain,
        client_cred,
        server_cred,
        repo,
        clock,
    }
}

impl TestWorld {
    fn suites(&self) -> (AuthSuite, AuthSuite) {
        let client_authorizer = Authorizer::new(
            self.registry.clone(),
            self.repo.clone(),
            self.bus.clone(),
            self.clock.clone(),
            self.domain.role("Service"),
        );
        let server_authorizer = Authorizer::new(
            self.registry.clone(),
            self.repo.clone(),
            self.bus.clone(),
            self.clock.clone(),
            self.domain.role("Member"),
        );
        (
            AuthSuite::new(
                self.client.clone(),
                vec![self.client_cred.clone()],
                client_authorizer,
            ),
            AuthSuite::new(
                self.server.clone(),
                vec![self.server_cred.clone()],
                server_authorizer,
            ),
        )
    }
}

fn reactor_config(heartbeat: Option<Duration>) -> ChannelConfig {
    ChannelConfig {
        heartbeat_interval: heartbeat,
        rpc_timeout: Duration::from_secs(10),
        backend: ChannelBackend::Reactor,
    }
}

fn threaded_config() -> ChannelConfig {
    ChannelConfig {
        heartbeat_interval: None,
        rpc_timeout: Duration::from_secs(10),
        backend: ChannelBackend::Threaded,
    }
}

fn install_echo(channel: &psf_switchboard::Channel) {
    channel.register_handler("echo", |args| Ok(args.to_vec()));
}

/// Live threads of this process, from /proc/self/status.
fn thread_count() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("Threads:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|n| n.parse().ok())
        })
        .unwrap_or(0)
}

#[test]
fn torture_concurrent_pipelined_senders_over_reactor_tcp() {
    let w = world();
    let (cs, ss) = w.suites();
    let listener = listen_tcp("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let (ready_tx, ready_rx) = std::sync::mpsc::channel();
    let server_thread = std::thread::spawn(move || {
        let server = listener.accept(&ss, reactor_config(None)).unwrap();
        install_echo(&server);
        ready_tx.send(()).unwrap();
        server
    });
    let client = Arc::new(connect_tcp(&addr.to_string(), &cs, reactor_config(None)).unwrap());
    ready_rx.recv().unwrap();

    // 8 threads, each keeping a sliding window of 8 requests in flight
    // over one reactor-serviced channel. The peer's strict record-layer
    // sequence check breaks the channel if the shard's edge-triggered
    // reads or the vectored flushes ever reorder frames, so completing
    // at all proves ordering; the echoed bodies prove responses route to
    // the right callers.
    let mut joins = Vec::new();
    for t in 0..8u64 {
        let c = client.clone();
        joins.push(std::thread::spawn(move || {
            let payloads: Vec<Vec<u8>> = (0..32u64)
                .map(|i| (t << 32 | i).to_le_bytes().to_vec())
                .collect();
            let refs: Vec<&[u8]> = payloads.iter().map(|p| p.as_slice()).collect();
            let results = c.call_many("echo", &refs, 8);
            for (i, r) in results.into_iter().enumerate() {
                assert_eq!(r.unwrap(), payloads[i], "thread {t} call {i}");
            }
        }));
    }
    for j in joins {
        j.join().unwrap();
    }
    assert_eq!(client.status(), psf_switchboard::ChannelStatus::Healthy);
    let _server = server_thread.join().unwrap();
}

#[test]
fn revocation_mid_stream_refuses_pipelined_senders_over_reactor_tcp() {
    let w = world();
    let (cs, ss) = w.suites();
    let listener = listen_tcp("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let (ready_tx, ready_rx) = std::sync::mpsc::channel();
    let server_thread = std::thread::spawn(move || {
        let server = listener.accept(&ss, reactor_config(None)).unwrap();
        install_echo(&server);
        ready_tx.send(()).unwrap();
        server
    });
    let client = Arc::new(connect_tcp(&addr.to_string(), &cs, reactor_config(None)).unwrap());
    ready_rx.recv().unwrap();

    // Phase 1: 8 pipelined senders run clean while authorized.
    let mut joins = Vec::new();
    for t in 0..8u64 {
        let c = client.clone();
        joins.push(std::thread::spawn(move || {
            let payloads: Vec<Vec<u8>> = (0..32u64)
                .map(|i| (t << 32 | i).to_le_bytes().to_vec())
                .collect();
            let refs: Vec<&[u8]> = payloads.iter().map(|p| p.as_slice()).collect();
            assert!(c.call_many("echo", &refs, 8).iter().all(|r| r.is_ok()));
        }));
    }
    for j in joins {
        j.join().unwrap();
    }

    // Mid-stream revocation: the server's credential dies, the client's
    // own AuthorizationMonitor invalidates, and every subsequent
    // pipelined issue from every thread is refused locally.
    w.bus.revoke(&w.server_cred.id());

    let mut joins = Vec::new();
    for _ in 0..8u64 {
        let c = client.clone();
        joins.push(std::thread::spawn(move || {
            let payloads: Vec<Vec<u8>> = (0..16u64).map(|i| i.to_le_bytes().to_vec()).collect();
            let refs: Vec<&[u8]> = payloads.iter().map(|p| p.as_slice()).collect();
            assert!(
                c.call_many("echo", &refs, 8)
                    .iter()
                    .all(|r| matches!(r, Err(SwitchboardError::RevalidationRequired(_)))),
                "post-revocation issues must be refused"
            );
        }));
    }
    for j in joins {
        j.join().unwrap();
    }

    // The refusal is a local monitor check, not a round trip: µs floor.
    let mut best = Duration::from_secs(1);
    for _ in 0..100 {
        let t = Instant::now();
        let r = client.call_pipelined("echo", b"x");
        let dt = t.elapsed();
        assert!(matches!(r, Err(SwitchboardError::RevalidationRequired(_))));
        best = best.min(dt);
    }
    assert!(
        best <= Duration::from_micros(24),
        "fastest refusal {best:?} exceeds the ~24 µs local-check budget"
    );
    let _server = server_thread.join().unwrap();
}

#[test]
fn close_fails_pending_calls_promptly_over_reactor_tcp() {
    // Mixed backends: reactor client, threaded server — the hanging
    // handler parks the server's reader thread, never a reactor shard,
    // so the test isolates the client-side close path.
    let w = world();
    let (cs, ss) = w.suites();
    let listener = listen_tcp("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let (ready_tx, ready_rx) = std::sync::mpsc::channel();
    let (block_tx, block_rx) = std::sync::mpsc::channel::<()>();
    let server_thread = std::thread::spawn(move || {
        let server = listener.accept(&ss, threaded_config()).unwrap();
        let block_rx = std::sync::Mutex::new(block_rx);
        server.register_handler("hang", move |_| {
            let _ = block_rx
                .lock()
                .unwrap()
                .recv_timeout(Duration::from_secs(5));
            Ok(vec![])
        });
        ready_tx.send(()).unwrap();
        server
    });
    let client = connect_tcp(&addr.to_string(), &cs, reactor_config(None)).unwrap();
    ready_rx.recv().unwrap();

    let start = Instant::now();
    let pending = client.call_pipelined("hang", b"").unwrap();
    let pending2 = client.call_pipelined("hang", b"").unwrap();
    std::thread::sleep(Duration::from_millis(20)); // let the requests land
    client.close();
    let r1 = pending.wait();
    let r2 = pending2.wait();
    let elapsed = start.elapsed();
    let _ = block_tx.send(());

    assert!(
        matches!(r1, Err(SwitchboardError::Closed)),
        "expected Closed, got {r1:?}"
    );
    assert!(
        matches!(r2, Err(SwitchboardError::Closed)),
        "expected Closed, got {r2:?}"
    );
    assert!(
        elapsed < Duration::from_secs(2),
        "pending calls took {elapsed:?} to fail — leaked until rpc_timeout"
    );
    let _server = server_thread.join().unwrap();
}

#[test]
fn peer_death_fails_pending_calls_promptly_over_reactor_tcp() {
    // The threaded server's reader thread parks in a hanging handler;
    // dropping the server closes the channel (FT_CLOSE + fd teardown) and
    // the reactor-backed client must fail its in-flight calls promptly.
    let w = world();
    let (cs, ss) = w.suites();
    let listener = listen_tcp("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let (ready_tx, ready_rx) = std::sync::mpsc::channel();
    let (block_tx, block_rx) = std::sync::mpsc::channel::<()>();
    let server_thread = std::thread::spawn(move || {
        let server = listener.accept(&ss, threaded_config()).unwrap();
        let block_rx = std::sync::Mutex::new(block_rx);
        server.register_handler("hang", move |_| {
            let _ = block_rx
                .lock()
                .unwrap()
                .recv_timeout(Duration::from_secs(5));
            Ok(vec![])
        });
        ready_tx.send(()).unwrap();
        server
    });
    let client = connect_tcp(&addr.to_string(), &cs, reactor_config(None)).unwrap();
    ready_rx.recv().unwrap();

    let start = Instant::now();
    let pending = client.call_pipelined("hang", b"").unwrap();
    std::thread::sleep(Duration::from_millis(20));
    drop(server_thread.join().unwrap()); // peer endpoint dies
    let r = pending.wait();
    let elapsed = start.elapsed();
    let _ = block_tx.send(());

    assert!(
        matches!(r, Err(SwitchboardError::Closed)),
        "expected Closed, got {r:?}"
    );
    assert!(
        elapsed < Duration::from_secs(2),
        "pending call took {elapsed:?} to fail after peer death"
    );
}

#[test]
fn timer_wheel_heartbeats_coalesce_across_reactor_channels() {
    let w = world();
    const CHANNELS: usize = 24;
    let interval = Duration::from_millis(20);

    let listener = listen_tcp("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let threads_before = thread_count();

    let fires_before = psf_telemetry::registry()
        .counter("psf.switchboard.reactor.timer_fires")
        .get();
    let coalesced_before = psf_telemetry::registry()
        .counter("psf.switchboard.reactor.coalesced_heartbeats")
        .get();

    // All channels share a host pair and interval, so their heartbeats
    // land in shared wheel groups — one timer fire serves many channels.
    let mut clients = Vec::new();
    let mut servers = Vec::new();
    for _ in 0..CHANNELS {
        let (cs, ss) = w.suites();
        let connect = std::thread::spawn({
            let addr = addr.to_string();
            let cfg = reactor_config(Some(interval));
            move || connect_tcp(&addr, &cs, cfg).unwrap()
        });
        servers.push(
            listener
                .accept(&ss, reactor_config(Some(interval)))
                .unwrap(),
        );
        clients.push(connect.join().unwrap());
    }

    let threads_after = thread_count();
    // Thread-per-connection would add 2 threads per endpoint (reader +
    // heartbeat) × 2 endpoints × CHANNELS ≈ 96 threads. The reactor adds
    // only its fixed shard pool (plus unrelated test-runner noise).
    assert!(
        threads_after.saturating_sub(threads_before) < CHANNELS,
        "reactor channels must not cost threads: {threads_before} -> {threads_after}"
    );

    // Several heartbeat intervals of wall time.
    std::thread::sleep(Duration::from_millis(300));

    for (i, c) in clients.iter().enumerate() {
        assert!(
            c.heartbeats_received() >= 2,
            "client {i} received {} heartbeats",
            c.heartbeats_received()
        );
        assert!(c.is_alive(Duration::from_millis(150)), "client {i} stale");
        assert!(c.last_rtt().is_some(), "client {i} never measured RTT");
    }

    let fires = psf_telemetry::registry()
        .counter("psf.switchboard.reactor.timer_fires")
        .get()
        - fires_before;
    let coalesced = psf_telemetry::registry()
        .counter("psf.switchboard.reactor.coalesced_heartbeats")
        .get()
        - coalesced_before;
    assert!(fires > 0, "timer wheel never fired");
    assert!(
        coalesced > 0,
        "channels sharing a host pair must coalesce heartbeats"
    );

    for c in &clients {
        c.close();
    }
}
