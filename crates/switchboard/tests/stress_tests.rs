//! Concurrency stress: heartbeats, concurrent RPC, and revalidation all
//! racing on one channel — guards the sequence-number/transmission
//! atomicity invariant of the record layer.

use psf_drbac::entity::{Entity, EntityRegistry};
use psf_drbac::repository::Repository;
use psf_drbac::revocation::RevocationBus;
use psf_drbac::DelegationBuilder;
use psf_switchboard::{
    connect_tcp, listen_tcp, AuthSuite, Authorizer, ChannelConfig, ChannelStatus, ClockRef,
};
use std::sync::Arc;
use std::time::Duration;

#[test]
fn heartbeats_rpc_and_revalidation_race_safely_over_tcp() {
    let registry = EntityRegistry::new();
    let repository = Repository::new();
    let bus = RevocationBus::new();
    let clock = ClockRef::new();
    let domain = Entity::with_seed("Dom", b"stress");
    let server_id = Entity::with_seed("Srv", b"stress");
    let client_id = Entity::with_seed("Cli", b"stress");
    for e in [&domain, &server_id, &client_id] {
        registry.register(e);
    }
    let client_cred = DelegationBuilder::new(&domain)
        .subject_entity(&client_id)
        .role(domain.role("Member"))
        .monitored()
        .sign();
    let server_cred = DelegationBuilder::new(&domain)
        .subject_entity(&server_id)
        .role(domain.role("Service"))
        .sign();
    let auth = |role: &str| {
        Authorizer::new(
            registry.clone(),
            repository.clone(),
            bus.clone(),
            clock.clone(),
            domain.role(role),
        )
    };
    let client_suite = AuthSuite::new(
        client_id.clone(),
        vec![client_cred.clone()],
        auth("Service"),
    );
    let server_suite = AuthSuite::new(server_id, vec![server_cred], auth("Member"));

    // Aggressive heartbeats to maximize interleaving.
    let config = ChannelConfig {
        heartbeat_interval: Some(Duration::from_millis(1)),
        rpc_timeout: Duration::from_secs(10),
        ..Default::default()
    };

    let listener = listen_tcp("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let cfg = config.clone();
    let server_thread = std::thread::spawn(move || {
        let channel = listener.accept(&server_suite, cfg).unwrap();
        channel.register_handler("work", |args| Ok(args.to_vec()));
        channel
    });
    let channel = Arc::new(connect_tcp(&addr, &client_suite, config).unwrap());
    let server = server_thread.join().unwrap();

    // 8 caller threads × 50 calls each, racing the 1 ms heartbeats from
    // both sides, plus a revocation/revalidation cycle in the middle.
    let mut joins = Vec::new();
    for t in 0..8u64 {
        let ch = channel.clone();
        joins.push(std::thread::spawn(move || {
            for i in 0..50u64 {
                let payload = format!("{t}:{i}");
                loop {
                    match ch.call("work", payload.as_bytes()) {
                        Ok(echo) => {
                            assert_eq!(echo, payload.as_bytes());
                            break;
                        }
                        Err(psf_switchboard::SwitchboardError::RevalidationRequired(_)) => {
                            // Mid-revocation window: retry shortly.
                            std::thread::sleep(Duration::from_millis(2));
                        }
                        Err(other) => panic!("channel broke: {other}"),
                    }
                }
            }
        }));
    }
    // Revoke + revalidate while the callers hammer.
    std::thread::sleep(Duration::from_millis(20));
    bus.revoke(&client_cred.id());
    std::thread::sleep(Duration::from_millis(10));
    let fresh = DelegationBuilder::new(&domain)
        .subject_entity(&client_id)
        .role(domain.role("Member"))
        .monitored()
        .serial(7)
        .sign();
    let accepted = channel
        .offer_revalidation(&[fresh], Duration::from_secs(5))
        .unwrap();
    assert!(accepted);

    for j in joins {
        j.join().unwrap();
    }
    assert_eq!(channel.status(), ChannelStatus::Healthy);
    assert!(server.heartbeats_received() > 0);
    channel.close();
}
