//! Connection establishment: mutual identity proof, key exchange,
//! credential exchange, and partner authorization.
//!
//! Protocol (secure mode):
//!
//! 1. Both sides send `H1 = "SWBD1" ‖ role ‖ name ‖ ed25519-pub ‖
//!    x25519-eph-pub ‖ nonce₁₆`.
//! 2. Both sides sign `transcript = H1ᵢ ‖ H1ₐ` with their identity key
//!    and send `H2 = signature ‖ credentials`; each verifies the peer's
//!    signature, binding the ephemeral DH key to the PKI identity.
//! 3. Record keys derive via `HKDF(salt = nonceᵢ ‖ nonceₐ, ikm =
//!    X25519(eph, eph-peer), info = "swbd-keys")` — one key per
//!    direction.
//! 4. Each side evaluates the peer's credentials with its `Authorizer`
//!    and sends an accept/reject verdict; on mutual accept the channel
//!    opens with an `AuthorizationMonitor` watching the peer's proof.

use crate::channel::{Channel, ChannelConfig, Mode, PeerInfo};
use crate::suite::AuthSuite;
use crate::transport::{MemTransport, TcpTransport, Transport};
use crate::SwitchboardError;
use psf_crypto::aead::ChaCha20Poly1305;
use psf_crypto::ed25519::{Signature, VerifyingKey};
use psf_crypto::hmac::hkdf;
use psf_crypto::x25519::{x25519, x25519_base};
use psf_drbac::entity::EntityName;
use psf_drbac::wire;
use rand::Rng;

const MAGIC: &[u8; 5] = b"SWBD1";

struct Hello {
    raw: Vec<u8>,
    name: EntityName,
    identity: VerifyingKey,
    eph: [u8; 32],
}

fn build_hello(suite: &AuthSuite, initiator: bool, eph_pub: &[u8; 32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(96);
    out.extend_from_slice(MAGIC);
    out.push(initiator as u8);
    let name = suite.identity.name.0.as_bytes();
    out.extend_from_slice(&(name.len() as u32).to_le_bytes());
    out.extend_from_slice(name);
    out.extend_from_slice(suite.identity.public_key().as_bytes());
    out.extend_from_slice(eph_pub);
    let mut nonce = [0u8; 16];
    rand::rng().fill_bytes(&mut nonce);
    out.extend_from_slice(&nonce);
    out
}

fn parse_hello(raw: Vec<u8>, expect_initiator: bool) -> Result<Hello, SwitchboardError> {
    let fail = |m: &str| SwitchboardError::Handshake(m.to_string());
    if raw.len() < 5 + 1 + 4 {
        return Err(fail("hello too short"));
    }
    if &raw[..5] != MAGIC {
        return Err(fail("bad magic"));
    }
    if (raw[5] == 1) != expect_initiator {
        return Err(fail("role mismatch (both sides same role?)"));
    }
    let name_len = u32::from_le_bytes(raw[6..10].try_into().unwrap()) as usize;
    if name_len > 1024 || raw.len() != 10 + name_len + 32 + 32 + 16 {
        return Err(fail("malformed hello"));
    }
    let name =
        String::from_utf8(raw[10..10 + name_len].to_vec()).map_err(|_| fail("bad peer name"))?;
    let mut identity = [0u8; 32];
    identity.copy_from_slice(&raw[10 + name_len..10 + name_len + 32]);
    let mut eph = [0u8; 32];
    eph.copy_from_slice(&raw[10 + name_len + 32..10 + name_len + 64]);
    Ok(Hello {
        raw,
        name: EntityName(name),
        identity: VerifyingKey(identity),
        eph,
    })
}

/// Run the secure handshake over a transport and return the live channel.
pub fn establish_secure(
    transport: Box<dyn Transport>,
    suite: &AuthSuite,
    initiator: bool,
    config: ChannelConfig,
) -> Result<Channel, SwitchboardError> {
    let mut hs_span = psf_telemetry::span("psf.swbd", "handshake");
    hs_span
        .field("role", if initiator { "initiator" } else { "acceptor" })
        .field("entity", &suite.identity.name.0);
    let hs_start = std::time::Instant::now();
    let (mut tx, mut rx) = transport.split();

    // Ephemeral X25519 key pair.
    let mut eph_secret = [0u8; 32];
    rand::rng().fill_bytes(&mut eph_secret);
    let eph_pub = x25519_base(&eph_secret);

    // H1 exchange.
    let my_hello = build_hello(suite, initiator, &eph_pub);
    tx.send(&my_hello)?;
    let peer_hello = parse_hello(rx.recv()?, !initiator)?;

    // Transcript: initiator's hello first.
    let mut transcript = Vec::with_capacity(my_hello.len() + peer_hello.raw.len());
    if initiator {
        transcript.extend_from_slice(&my_hello);
        transcript.extend_from_slice(&peer_hello.raw);
    } else {
        transcript.extend_from_slice(&peer_hello.raw);
        transcript.extend_from_slice(&my_hello);
    }

    // H2: signature ‖ credentials.
    let sig = suite.identity.sign(&transcript);
    let mut h2 = Vec::with_capacity(64 + 256);
    h2.extend_from_slice(&sig.to_bytes());
    h2.extend_from_slice(&wire::encode_credentials(&suite.credentials));
    tx.send(&h2)?;
    let peer_h2 = rx.recv()?;
    if peer_h2.len() < 64 {
        return Err(SwitchboardError::Handshake("short H2".into()));
    }
    let peer_sig = Signature::from_bytes(&peer_h2[..64])?;
    peer_hello
        .identity
        .verify(&transcript, &peer_sig)
        .map_err(|_| SwitchboardError::Handshake("peer identity proof failed".into()))?;
    let peer_creds = wire::decode_credentials(&peer_h2[64..])
        .map_err(|e| SwitchboardError::Handshake(format!("bad peer credentials: {e}")))?;

    // Key schedule.
    let shared = x25519(&eph_secret, &peer_hello.eph);
    if shared == [0u8; 32] {
        return Err(SwitchboardError::Handshake("degenerate DH share".into()));
    }
    let my_nonce = &my_hello[my_hello.len() - 16..];
    let peer_nonce = &peer_hello.raw[peer_hello.raw.len() - 16..];
    let mut salt = Vec::with_capacity(32);
    if initiator {
        salt.extend_from_slice(my_nonce);
        salt.extend_from_slice(peer_nonce);
    } else {
        salt.extend_from_slice(peer_nonce);
        salt.extend_from_slice(my_nonce);
    }
    let mut okm = [0u8; 64];
    hkdf(&salt, &shared, b"swbd-keys", &mut okm);
    let mut key_i2a = [0u8; 32];
    key_i2a.copy_from_slice(&okm[..32]);
    let mut key_a2i = [0u8; 32];
    key_a2i.copy_from_slice(&okm[32..]);
    let (send_key, recv_key, send_dir, recv_dir) = if initiator {
        (key_i2a, key_a2i, 0u8, 1u8)
    } else {
        (key_a2i, key_i2a, 1u8, 0u8)
    };

    // Partner authorization.
    let auth_result =
        suite
            .authorizer
            .authorize(&peer_hello.name, &peer_hello.identity, &peer_creds);
    let verdict: u8 = auth_result.is_ok() as u8;
    let reason = match &auth_result {
        Ok(_) => String::new(),
        Err(e) => e.clone(),
    };
    let mut h3 = vec![verdict];
    h3.extend_from_slice(reason.as_bytes());
    tx.send(&h3)?;
    let peer_h3 = rx.recv()?;
    let peer_accepts = peer_h3.first() == Some(&1);

    let monitor = match auth_result {
        Ok(m) => m,
        Err(e) => {
            psf_telemetry::counter!("psf.swbd.handshake.rejected").inc();
            return Err(SwitchboardError::Unauthorized(e));
        }
    };
    if !peer_accepts {
        psf_telemetry::counter!("psf.swbd.handshake.rejected").inc();
        let reason = String::from_utf8_lossy(peer_h3.get(1..).unwrap_or(&[])).into_owned();
        return Err(SwitchboardError::Unauthorized(format!(
            "peer rejected our credentials: {reason}"
        )));
    }

    psf_telemetry::counter!("psf.swbd.handshake.ok").inc();
    psf_telemetry::histogram!("psf.swbd.handshake.us").record_duration(hs_start.elapsed());
    hs_span.field("peer", &peer_hello.name.0);

    Ok(Channel::start(
        tx,
        rx,
        Mode::Secure {
            send: ChaCha20Poly1305::new(send_key),
            recv: ChaCha20Poly1305::new(recv_key),
            send_dir,
            recv_dir,
        },
        Some(PeerInfo {
            name: peer_hello.name,
            key: peer_hello.identity,
        }),
        Some(monitor),
        Some(suite.authorizer.clone()),
        config,
    ))
}

/// Open a plaintext channel (the `rmi` exposure type): no identities, no
/// encryption, no monitoring.
pub fn establish_plain(transport: Box<dyn Transport>, config: ChannelConfig) -> Channel {
    let (tx, rx) = transport.split();
    Channel::start(tx, rx, Mode::Plain, None, None, None, config)
}

/// Create a connected in-memory secure channel pair (deterministic
/// simulation path). Runs the two handshakes concurrently.
pub fn pair_in_memory(
    suite_a: AuthSuite,
    suite_b: AuthSuite,
    config: ChannelConfig,
) -> Result<(Channel, Channel), SwitchboardError> {
    let (ta, tb) = MemTransport::pair();
    let cfg_b = config.clone();
    // The acceptor-side handshake (and the proof search inside its
    // authorizer) must join the caller's trace, not start an orphan tree
    // on the helper thread.
    let ctx = psf_telemetry::TraceContext::current();
    let handle = std::thread::spawn(move || {
        let _trace = ctx.map(psf_telemetry::TraceContext::attach);
        establish_secure(Box::new(tb), &suite_b, false, cfg_b)
    });
    let a = establish_secure(Box::new(ta), &suite_a, true, config);
    let b = handle.join().expect("acceptor thread panicked");
    Ok((a?, b?))
}

/// Create a connected in-memory *plaintext* channel pair.
pub fn pair_in_memory_plain(config: ChannelConfig) -> (Channel, Channel) {
    let (ta, tb) = MemTransport::pair();
    (
        establish_plain(Box::new(ta), config.clone()),
        establish_plain(Box::new(tb), config),
    )
}

/// A TCP listener for Switchboard connections.
pub struct Listener {
    listener: std::net::TcpListener,
}

/// Bind a TCP listener.
pub fn listen_tcp(addr: &str) -> Result<Listener, SwitchboardError> {
    Ok(Listener {
        listener: std::net::TcpListener::bind(addr)?,
    })
}

impl Listener {
    /// The bound local address.
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Accept one connection and run the acceptor-side handshake.
    pub fn accept(
        &self,
        suite: &AuthSuite,
        config: ChannelConfig,
    ) -> Result<Channel, SwitchboardError> {
        let (stream, _) = self.listener.accept()?;
        let transport = Box::new(TcpTransport::new(stream)?);
        establish_secure(transport, suite, false, config)
    }
}

/// Connect to a Switchboard listener and run the initiator-side
/// handshake.
pub fn connect_tcp(
    addr: &str,
    suite: &AuthSuite,
    config: ChannelConfig,
) -> Result<Channel, SwitchboardError> {
    let stream = std::net::TcpStream::connect(addr)?;
    let transport = Box::new(TcpTransport::new(stream)?);
    establish_secure(transport, suite, true, config)
}
