//! Non-Linux stand-in for the [reactor](crate::reactor): the epoll/
//! eventfd syscall shim is Linux ABI, so other unix targets compile this
//! stub instead and every channel runs on the threaded backend
//! (`Channel::start` never takes the reactor path off Linux). The timer
//! wheel is pure std and stays available for its unit tests.
//!
//! The API mirrors the real module exactly; the registration functions
//! are unreachable because channel construction routes around the
//! reactor on these targets.

#[path = "reactor/wheel.rs"]
pub mod wheel;

use crate::channel::ChannelInner;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

/// Placeholder for the reactor-shard link; never constructed off Linux.
pub(crate) struct Registration {}

/// Number of reactor shards — always zero without a reactor.
pub fn shard_count() -> usize {
    0
}

/// No portable rlimit shim here: report the conventional default soft
/// limit so benches size themselves conservatively.
pub fn raise_nofile_limit() -> (u64, u64) {
    (1024, 1024)
}

pub(crate) fn register_connection(
    _stream: TcpStream,
    _inner: &Arc<ChannelInner>,
    _heartbeat: Option<Duration>,
) {
    unreachable!("reactor backend is Linux-only; channels degrade to threaded")
}

pub(crate) fn register_heartbeat(_inner: &Arc<ChannelInner>, _interval: Duration) {
    unreachable!("reactor backend is Linux-only; channels degrade to threaded")
}

pub(crate) fn deregister(_reg: Registration) {}
