//! The Switchboard channel: sequence-numbered (replay-rejecting) AEAD
//! records, heartbeats with RTT tracking, continuous authorization, and
//! the two-way RPC interface.

use crate::rpc::{self, RpcStatus};
use crate::suite::{AuthorizationMonitor, Authorizer};
use crate::transport::{FrameReceiver, FrameSender};
use crate::SwitchboardError;
use crossbeam::channel::{bounded, Sender};
use parking_lot::{Mutex, RwLock};
use psf_crypto::aead::ChaCha20Poly1305;
use psf_crypto::ed25519::VerifyingKey;
use psf_drbac::entity::EntityName;
use psf_drbac::wire;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Inner frame types.
pub(crate) const FT_RPC_REQ: u8 = 0;
pub(crate) const FT_RPC_RESP: u8 = 1;
pub(crate) const FT_HEARTBEAT: u8 = 2;
pub(crate) const FT_HB_ACK: u8 = 3;
pub(crate) const FT_REAUTH_OFFER: u8 = 4;
pub(crate) const FT_REAUTH_RESULT: u8 = 5;
pub(crate) const FT_CLOSE: u8 = 6;

/// Channel security mode.
pub enum Mode {
    /// Unauthenticated plaintext — models the paper's `rmi` exposure type.
    Plain,
    /// Encrypted + authenticated + continuously authorized (`switchboard`
    /// exposure type).
    Secure {
        /// AEAD for outgoing records.
        send: ChaCha20Poly1305,
        /// AEAD for incoming records.
        recv: ChaCha20Poly1305,
        /// Nonce direction byte for outgoing records.
        send_dir: u8,
        /// Nonce direction byte for incoming records.
        recv_dir: u8,
    },
}

/// User-facing channel configuration.
#[derive(Clone, Debug)]
pub struct ChannelConfig {
    /// Period of automatic heartbeats; `None` disables the heartbeat
    /// thread (tests then call [`Channel::send_heartbeat`] manually).
    pub heartbeat_interval: Option<Duration>,
    /// Default timeout for [`Channel::call`].
    pub rpc_timeout: Duration,
}

impl Default for ChannelConfig {
    fn default() -> Self {
        ChannelConfig {
            heartbeat_interval: Some(Duration::from_millis(200)),
            rpc_timeout: Duration::from_secs(10),
        }
    }
}

/// Current trust state of the channel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChannelStatus {
    /// Traffic flows.
    Healthy,
    /// The peer's authorization was invalidated (credential id recorded);
    /// application traffic is refused until re-validation succeeds.
    RevalidationRequired(String),
    /// Closed (by either side or transport loss).
    Closed,
}

/// Wire traffic counters for one channel endpoint.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct TrafficStats {
    /// Frames written to the transport.
    pub frames_sent: u64,
    /// Frames accepted from the transport.
    pub frames_received: u64,
    /// Bytes written (record layer included).
    pub bytes_sent: u64,
    /// Bytes accepted (record layer included).
    pub bytes_received: u64,
}

/// One-call observability snapshot of a channel endpoint: liveness,
/// round-trip time, heartbeat count, wire traffic, and uptime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelStats {
    /// Most recent heartbeat round-trip time, if one was measured.
    pub last_rtt: Option<Duration>,
    /// Heartbeats received from the peer.
    pub heartbeats_received: u64,
    /// Heartbeats sent to the peer.
    pub heartbeats_sent: u64,
    /// Wire traffic counters (record-layer overhead included).
    pub traffic: TrafficStats,
    /// Time since the channel was established.
    pub uptime: Duration,
    /// Current trust status.
    pub status: ChannelStatus,
}

/// Information about the authenticated peer (absent in plain mode).
#[derive(Clone)]
pub struct PeerInfo {
    /// The peer's claimed (and credential-bound) entity name.
    pub name: EntityName,
    /// The peer's identity key.
    pub key: VerifyingKey,
}

type Handler = Arc<dyn Fn(&[u8]) -> Result<Vec<u8>, String> + Send + Sync>;
type DefaultHandler = Arc<dyn Fn(&str, &[u8]) -> Result<Vec<u8>, String> + Send + Sync>;
type PendingMap = HashMap<u64, Sender<Result<Vec<u8>, SwitchboardError>>>;
type CloseWatcher = Box<dyn FnOnce() + Send>;

pub(crate) struct ChannelInner {
    sender: Mutex<Box<dyn FrameSender>>,
    mode: Mode,
    send_seq: AtomicU64,
    recv_seq: AtomicU64,
    status: RwLock<ChannelStatus>,
    peer: Option<PeerInfo>,
    monitor: Mutex<Option<AuthorizationMonitor>>,
    authorizer: Option<Authorizer>,
    pending: Mutex<PendingMap>,
    reauth_waiters: Mutex<Vec<Sender<bool>>>,
    next_rpc_id: AtomicU64,
    handlers: RwLock<HashMap<String, Handler>>,
    default_handler: RwLock<Option<DefaultHandler>>,
    start: Instant,
    last_heard_us: AtomicU64,
    last_rtt_us: AtomicU64,
    hb_send_seq: AtomicU64,
    hb_recv_seq: AtomicU64,
    heartbeats_received: AtomicU64,
    bytes_sent: AtomicU64,
    bytes_received: AtomicU64,
    frames_sent: AtomicU64,
    frames_received: AtomicU64,
    closed: AtomicBool,
    close_watchers: Mutex<Vec<CloseWatcher>>,
    config: ChannelConfig,
}

/// A live Switchboard channel endpoint.
pub struct Channel {
    pub(crate) inner: Arc<ChannelInner>,
}

impl Channel {
    /// Assemble a channel over split transport halves; spawns the reader
    /// (and heartbeat) threads. Called by the handshake module.
    pub(crate) fn start(
        sender: Box<dyn FrameSender>,
        receiver: Box<dyn FrameReceiver>,
        mode: Mode,
        peer: Option<PeerInfo>,
        monitor: Option<AuthorizationMonitor>,
        authorizer: Option<Authorizer>,
        config: ChannelConfig,
    ) -> Channel {
        let inner = Arc::new(ChannelInner {
            sender: Mutex::new(sender),
            mode,
            send_seq: AtomicU64::new(0),
            recv_seq: AtomicU64::new(0),
            status: RwLock::new(ChannelStatus::Healthy),
            peer,
            monitor: Mutex::new(monitor),
            authorizer,
            pending: Mutex::new(HashMap::new()),
            reauth_waiters: Mutex::new(Vec::new()),
            next_rpc_id: AtomicU64::new(1),
            handlers: RwLock::new(HashMap::new()),
            default_handler: RwLock::new(None),
            start: Instant::now(),
            last_heard_us: AtomicU64::new(0),
            last_rtt_us: AtomicU64::new(0),
            hb_send_seq: AtomicU64::new(0),
            hb_recv_seq: AtomicU64::new(0),
            heartbeats_received: AtomicU64::new(0),
            bytes_sent: AtomicU64::new(0),
            bytes_received: AtomicU64::new(0),
            frames_sent: AtomicU64::new(0),
            frames_received: AtomicU64::new(0),
            closed: AtomicBool::new(false),
            close_watchers: Mutex::new(Vec::new()),
            config,
        });

        // Reader thread.
        {
            let inner = inner.clone();
            std::thread::Builder::new()
                .name("swbd-reader".into())
                .spawn(move || reader_loop(inner, receiver))
                .expect("spawn reader");
        }
        // Heartbeat thread.
        if let Some(interval) = inner.config.heartbeat_interval {
            let inner = inner.clone();
            std::thread::Builder::new()
                .name("swbd-heartbeat".into())
                .spawn(move || {
                    while !inner.closed.load(Ordering::SeqCst) {
                        std::thread::sleep(interval);
                        if inner.closed.load(Ordering::SeqCst) {
                            break;
                        }
                        let _ = send_heartbeat_frame(&inner);
                    }
                })
                .expect("spawn heartbeat");
        }
        Channel { inner }
    }

    /// The authenticated peer (None in plain mode).
    pub fn peer(&self) -> Option<PeerInfo> {
        self.inner.peer.clone()
    }

    /// Current trust status.
    pub fn status(&self) -> ChannelStatus {
        self.inner.status.read().clone()
    }

    /// Most recent measured round-trip time, if any heartbeat has been
    /// acknowledged.
    pub fn last_rtt(&self) -> Option<Duration> {
        match self.inner.last_rtt_us.load(Ordering::SeqCst) {
            0 => None,
            us => Some(Duration::from_micros(us)),
        }
    }

    /// Whether the peer has been heard from within `window`.
    pub fn is_alive(&self, window: Duration) -> bool {
        if self.inner.closed.load(Ordering::SeqCst) {
            return false;
        }
        let last = self.inner.last_heard_us.load(Ordering::SeqCst);
        let now = self.inner.start.elapsed().as_micros() as u64;
        now.saturating_sub(last) <= window.as_micros() as u64
    }

    /// Heartbeats received from the peer so far.
    pub fn heartbeats_received(&self) -> u64 {
        self.inner.heartbeats_received.load(Ordering::SeqCst)
    }

    /// Wire traffic counters (frames and bytes in each direction,
    /// including record-layer overhead).
    pub fn traffic(&self) -> TrafficStats {
        TrafficStats {
            frames_sent: self.inner.frames_sent.load(Ordering::SeqCst),
            frames_received: self.inner.frames_received.load(Ordering::SeqCst),
            bytes_sent: self.inner.bytes_sent.load(Ordering::SeqCst),
            bytes_received: self.inner.bytes_received.load(Ordering::SeqCst),
        }
    }

    /// Full observability snapshot (RTT, heartbeats, traffic, uptime).
    /// Cheap: a handful of atomic loads.
    pub fn stats(&self) -> ChannelStats {
        ChannelStats {
            last_rtt: self.last_rtt(),
            heartbeats_received: self.heartbeats_received(),
            heartbeats_sent: self.inner.hb_send_seq.load(Ordering::SeqCst),
            traffic: self.traffic(),
            uptime: self.inner.start.elapsed(),
            status: self.status(),
        }
    }

    /// Register a handler for incoming RPC requests.
    pub fn register_handler<F>(&self, method: impl Into<String>, f: F)
    where
        F: Fn(&[u8]) -> Result<Vec<u8>, String> + Send + Sync + 'static,
    {
        self.inner
            .handlers
            .write()
            .insert(method.into(), Arc::new(f));
    }

    /// Register a catch-all handler invoked (with the method name) when no
    /// per-method handler matches — used to serve whole component
    /// endpoints over one channel.
    pub fn register_default_handler<F>(&self, f: F)
    where
        F: Fn(&str, &[u8]) -> Result<Vec<u8>, String> + Send + Sync + 'static,
    {
        *self.inner.default_handler.write() = Some(Arc::new(f));
    }

    /// Invoke a remote method and await its response (uses the configured
    /// RPC timeout).
    pub fn call(&self, method: &str, args: &[u8]) -> Result<Vec<u8>, SwitchboardError> {
        self.call_timeout(method, args, self.inner.config.rpc_timeout)
    }

    /// Invoke a remote method with an explicit timeout.
    pub fn call_timeout(
        &self,
        method: &str,
        args: &[u8],
        timeout: Duration,
    ) -> Result<Vec<u8>, SwitchboardError> {
        self.check_traffic_allowed()?;
        let rpc_start = Instant::now();
        let id = self.inner.next_rpc_id.fetch_add(1, Ordering::SeqCst);
        let (tx, rx) = bounded(1);
        self.inner.pending.lock().insert(id, tx);
        let body = rpc::encode_request(id, method, args);
        if let Err(e) = send_frame(&self.inner, FT_RPC_REQ, &body) {
            self.inner.pending.lock().remove(&id);
            return Err(e);
        }
        match rx.recv_timeout(timeout) {
            Ok(result) => {
                psf_telemetry::counter!("psf.swbd.rpc.calls").inc();
                psf_telemetry::histogram!("psf.swbd.rpc.us").record_duration(rpc_start.elapsed());
                result
            }
            Err(_) => {
                psf_telemetry::counter!("psf.swbd.rpc.timeouts").inc();
                self.inner.pending.lock().remove(&id);
                if self.inner.closed.load(Ordering::SeqCst) {
                    Err(SwitchboardError::Closed)
                } else {
                    Err(SwitchboardError::Timeout)
                }
            }
        }
    }

    /// Send one heartbeat now (used when the automatic thread is
    /// disabled).
    pub fn send_heartbeat(&self) -> Result<(), SwitchboardError> {
        send_heartbeat_frame(&self.inner)
    }

    /// Offer fresh credentials to the peer to re-validate this endpoint
    /// after a revocation. Returns whether the peer accepted.
    pub fn offer_revalidation(
        &self,
        credentials: &[psf_drbac::SignedDelegation],
        timeout: Duration,
    ) -> Result<bool, SwitchboardError> {
        let (tx, rx) = bounded(1);
        self.inner.reauth_waiters.lock().push(tx);
        let body = wire::encode_credentials(credentials);
        send_frame(&self.inner, FT_REAUTH_OFFER, &body)?;
        rx.recv_timeout(timeout)
            .map_err(|_| SwitchboardError::Timeout)
    }

    /// Register a callback fired exactly once when this endpoint dies —
    /// local close, peer close, transport loss, or protocol failure. If
    /// the channel is already closed, the callback fires immediately.
    /// Supervisors use this as the channel-death signal that triggers
    /// failover without polling.
    pub fn on_close<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'static,
    {
        if self.inner.closed.load(Ordering::SeqCst) {
            f();
        } else {
            self.inner.close_watchers.lock().push(Box::new(f));
        }
    }

    /// Close the channel, notifying the peer.
    pub fn close(&self) {
        if !self.inner.closed.swap(true, Ordering::SeqCst) {
            let _ = send_frame_raw(&self.inner, FT_CLOSE, &[]);
            mark_closed(&self.inner);
        }
    }

    fn check_traffic_allowed(&self) -> Result<(), SwitchboardError> {
        if self.inner.closed.load(Ordering::SeqCst) {
            return Err(SwitchboardError::Closed);
        }
        // Continuous authorization: our monitor watches the peer.
        let monitor = self.inner.monitor.lock();
        if let Some(m) = monitor.as_ref() {
            if !m.is_valid() {
                let id = m
                    .revocation_notice()
                    .unwrap_or_else(|| "unknown credential".into());
                *self.inner.status.write() = ChannelStatus::RevalidationRequired(id.clone());
                psf_telemetry::counter!("psf.swbd.authz.refused").inc();
                psf_telemetry::event(
                    "psf.swbd",
                    "authz.refused",
                    vec![("credential", id.clone())],
                );
                return Err(SwitchboardError::RevalidationRequired(id));
            }
        }
        Ok(())
    }
}

impl Drop for Channel {
    fn drop(&mut self) {
        self.close();
    }
}

// ------------------------------------------------------------ framing --

fn seal_nonce(dir: u8, seq: u64) -> [u8; 12] {
    let mut n = [0u8; 12];
    n[0] = dir;
    n[4..12].copy_from_slice(&seq.to_le_bytes());
    n
}

fn send_frame(inner: &Arc<ChannelInner>, ft: u8, body: &[u8]) -> Result<(), SwitchboardError> {
    if inner.closed.load(Ordering::SeqCst) && ft != FT_CLOSE {
        return Err(SwitchboardError::Closed);
    }
    send_frame_raw(inner, ft, body)
}

fn send_frame_raw(inner: &Arc<ChannelInner>, ft: u8, body: &[u8]) -> Result<(), SwitchboardError> {
    let mut inner_frame = Vec::with_capacity(1 + body.len());
    inner_frame.push(ft);
    inner_frame.extend_from_slice(body);

    // Sequence allocation and transmission must be atomic together: the
    // receiver enforces strictly increasing sequence numbers (replay
    // rejection), so a frame numbered later must never hit the wire
    // earlier.
    let mut sender = inner.sender.lock();
    let seq = inner.send_seq.fetch_add(1, Ordering::SeqCst);
    let mut wire_frame = Vec::with_capacity(8 + inner_frame.len() + 16);
    wire_frame.extend_from_slice(&seq.to_le_bytes());
    match &inner.mode {
        Mode::Plain => wire_frame.extend_from_slice(&inner_frame),
        Mode::Secure { send, send_dir, .. } => {
            let nonce = seal_nonce(*send_dir, seq);
            wire_frame.extend_from_slice(&send.seal(&nonce, b"swbd-record", &inner_frame));
        }
    }
    // Count before transmitting (still under the sender lock) so a peer
    // that observes the frame — and anything downstream of it — also
    // observes the updated counters; rolled back on transport failure.
    inner.frames_sent.fetch_add(1, Ordering::Relaxed);
    inner
        .bytes_sent
        .fetch_add(wire_frame.len() as u64, Ordering::Relaxed);
    psf_telemetry::counter!("psf.swbd.frames.sent").inc();
    psf_telemetry::counter!("psf.swbd.bytes.sent").add(wire_frame.len() as u64);
    if let Err(e) = sender.send(&wire_frame) {
        inner.frames_sent.fetch_sub(1, Ordering::Relaxed);
        inner
            .bytes_sent
            .fetch_sub(wire_frame.len() as u64, Ordering::Relaxed);
        return Err(e.into());
    }
    Ok(())
}

fn send_heartbeat_frame(inner: &Arc<ChannelInner>) -> Result<(), SwitchboardError> {
    let hb_seq = inner.hb_send_seq.fetch_add(1, Ordering::SeqCst) + 1;
    let t_us = inner.start.elapsed().as_micros() as u64;
    let mut body = Vec::with_capacity(16);
    body.extend_from_slice(&hb_seq.to_le_bytes());
    body.extend_from_slice(&t_us.to_le_bytes());
    send_frame(inner, FT_HEARTBEAT, &body)
}

fn mark_closed(inner: &Arc<ChannelInner>) {
    inner.closed.store(true, Ordering::SeqCst);
    *inner.status.write() = ChannelStatus::Closed;
    // Fail all pending RPCs.
    let pending: Vec<_> = inner.pending.lock().drain().collect();
    for (_, tx) in pending {
        let _ = tx.send(Err(SwitchboardError::Closed));
    }
    // Notify death watchers (drained, so double-close fires them once).
    let watchers: Vec<CloseWatcher> = inner.close_watchers.lock().drain(..).collect();
    for w in watchers {
        w();
    }
}

// ------------------------------------------------------------- reader --

fn reader_loop(inner: Arc<ChannelInner>, mut receiver: Box<dyn FrameReceiver>) {
    while let Ok(frame) = receiver.recv() {
        if frame.len() < 8 {
            break; // protocol violation
        }
        inner.frames_received.fetch_add(1, Ordering::Relaxed);
        inner
            .bytes_received
            .fetch_add(frame.len() as u64, Ordering::Relaxed);
        let seq = u64::from_le_bytes(frame[..8].try_into().unwrap());
        let expected = inner.recv_seq.load(Ordering::SeqCst);
        if seq != expected {
            // Replay or reorder: hard protocol failure.
            break;
        }
        inner.recv_seq.store(expected + 1, Ordering::SeqCst);

        let inner_frame = match &inner.mode {
            Mode::Plain => frame[8..].to_vec(),
            Mode::Secure { recv, recv_dir, .. } => {
                let nonce = seal_nonce(*recv_dir, seq);
                match recv.open(&nonce, b"swbd-record", &frame[8..]) {
                    Ok(p) => p,
                    Err(_) => break, // forged/replayed record
                }
            }
        };
        if inner_frame.is_empty() {
            break;
        }
        inner
            .last_heard_us
            .store(inner.start.elapsed().as_micros() as u64, Ordering::SeqCst);

        let (ft, body) = (inner_frame[0], &inner_frame[1..]);
        match ft {
            FT_RPC_REQ => handle_request(&inner, body),
            FT_RPC_RESP => handle_response(&inner, body),
            FT_HEARTBEAT => handle_heartbeat(&inner, body),
            FT_HB_ACK => handle_hb_ack(&inner, body),
            FT_REAUTH_OFFER => handle_reauth_offer(&inner, body),
            FT_REAUTH_RESULT => {
                let ok = body.first() == Some(&1);
                for tx in inner.reauth_waiters.lock().drain(..) {
                    let _ = tx.send(ok);
                }
            }
            FT_CLOSE => break,
            _ => break,
        }
    }
    mark_closed(&inner);
}

fn handle_request(inner: &Arc<ChannelInner>, body: &[u8]) {
    let Some((id, method, args)) = rpc::decode_request(body) else {
        return;
    };
    // Continuous authorization: refuse service while the peer's proof is
    // invalid.
    let monitor_ok = {
        let monitor = inner.monitor.lock();
        monitor.as_ref().map(|m| m.is_valid()).unwrap_or(true)
    };
    let (status, payload) = if !monitor_ok {
        {
            let m = inner.monitor.lock();
            if let Some(m) = m.as_ref() {
                if let Some(cred) = m.revocation_notice() {
                    *inner.status.write() = ChannelStatus::RevalidationRequired(cred);
                } else if !matches!(*inner.status.read(), ChannelStatus::RevalidationRequired(_)) {
                    *inner.status.write() = ChannelStatus::RevalidationRequired("revoked".into());
                }
            }
        }
        psf_telemetry::counter!("psf.swbd.authz.refused").inc();
        (RpcStatus::RevalidationRequired, Vec::new())
    } else {
        let handler = inner.handlers.read().get(&method).cloned();
        match handler {
            Some(h) => match h(&args) {
                Ok(out) => (RpcStatus::Ok, out),
                Err(msg) => (RpcStatus::Error, msg.into_bytes()),
            },
            None => {
                let fallback = inner.default_handler.read().clone();
                match fallback {
                    Some(h) => match h(&method, &args) {
                        Ok(out) => (RpcStatus::Ok, out),
                        Err(msg) => (RpcStatus::Error, msg.into_bytes()),
                    },
                    None => (RpcStatus::NoSuchMethod, method.into_bytes()),
                }
            }
        }
    };
    let resp = rpc::encode_response(id, status, &payload);
    let _ = send_frame(inner, FT_RPC_RESP, &resp);
}

fn handle_response(inner: &Arc<ChannelInner>, body: &[u8]) {
    let Some((id, status, payload)) = rpc::decode_response(body) else {
        return;
    };
    if let Some(tx) = inner.pending.lock().remove(&id) {
        let result = match status {
            RpcStatus::Ok => Ok(payload),
            RpcStatus::Error => Err(SwitchboardError::Remote(
                String::from_utf8_lossy(&payload).into_owned(),
            )),
            RpcStatus::RevalidationRequired => Err(SwitchboardError::RevalidationRequired(
                "peer refused service pending revalidation".into(),
            )),
            RpcStatus::NoSuchMethod => Err(SwitchboardError::Remote(format!(
                "no such method: {}",
                String::from_utf8_lossy(&payload)
            ))),
        };
        let _ = tx.send(result);
    }
}

fn handle_heartbeat(inner: &Arc<ChannelInner>, body: &[u8]) {
    if body.len() < 16 {
        return;
    }
    let hb_seq = u64::from_le_bytes(body[..8].try_into().unwrap());
    // Replay resistance: heartbeat sequence numbers must strictly
    // increase (the record layer already rejects replays; this guards the
    // semantic layer too).
    let last = inner.hb_recv_seq.load(Ordering::SeqCst);
    if hb_seq <= last {
        return;
    }
    inner.hb_recv_seq.store(hb_seq, Ordering::SeqCst);
    inner.heartbeats_received.fetch_add(1, Ordering::SeqCst);
    psf_telemetry::counter!("psf.swbd.hb.received").inc();
    // Echo for RTT measurement.
    let _ = send_frame(inner, FT_HB_ACK, body);
}

fn handle_hb_ack(inner: &Arc<ChannelInner>, body: &[u8]) {
    if body.len() < 16 {
        return;
    }
    let t_us = u64::from_le_bytes(body[8..16].try_into().unwrap());
    let now_us = inner.start.elapsed().as_micros() as u64;
    let rtt = now_us.saturating_sub(t_us).max(1);
    inner.last_rtt_us.store(rtt, Ordering::SeqCst);
    psf_telemetry::histogram!("psf.swbd.hb.rtt.us").record(rtt);
}

fn handle_reauth_offer(inner: &Arc<ChannelInner>, body: &[u8]) {
    let ok = (|| -> bool {
        let Ok(creds) = wire::decode_credentials(body) else {
            return false;
        };
        let (Some(authorizer), Some(peer)) = (&inner.authorizer, &inner.peer) else {
            return false;
        };
        match authorizer.authorize(&peer.name, &peer.key, &creds) {
            Ok(new_monitor) => {
                *inner.monitor.lock() = Some(new_monitor);
                *inner.status.write() = ChannelStatus::Healthy;
                true
            }
            Err(_) => false,
        }
    })();
    // Conditional metric name: go through the registry rather than the
    // per-call-site `counter!` cache (which memoizes a single name).
    psf_telemetry::registry()
        .counter(if ok {
            "psf.swbd.reauth.accepted"
        } else {
            "psf.swbd.reauth.rejected"
        })
        .inc();
    let _ = send_frame(inner, FT_REAUTH_RESULT, &[ok as u8]);
}
