//! The Switchboard channel: sequence-numbered (replay-rejecting) AEAD
//! records, heartbeats with RTT tracking, continuous authorization, and
//! the two-way RPC interface.
//!
//! ## Data plane
//!
//! Frames are staged in buffers from a per-channel [`FramePool`]: the
//! 8-byte sequence header is reserved up front and secure mode seals the
//! payload **in place** (`seal_in_place` appends the tag into the same
//! buffer), so a steady-state send performs zero allocations. Receive
//! decrypts in place and dispatches on borrowed slices. RPC waiters live
//! in a sharded pending table keyed by call id, each a small
//! mutex+condvar slot, so [`Channel::call_pipelined`] can keep a sliding
//! window of requests in flight without a per-call channel allocation or
//! a single contended map lock.

use crate::pool::{FramePool, PooledBuf, DEFAULT_POOL_SLOTS};
use crate::rpc::{self, RpcStatus};
use crate::suite::{AuthorizationMonitor, Authorizer};
use crate::transport::{FrameReceiver, FrameSender};
use crate::SwitchboardError;
use crossbeam::channel::{bounded, Sender};
use parking_lot::{Condvar, Mutex, RwLock};
use psf_crypto::aead::ChaCha20Poly1305;
use psf_crypto::ed25519::VerifyingKey;
use psf_drbac::entity::EntityName;
use psf_drbac::wire;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Inner frame types.
pub(crate) const FT_RPC_REQ: u8 = 0;
pub(crate) const FT_RPC_RESP: u8 = 1;
pub(crate) const FT_HEARTBEAT: u8 = 2;
pub(crate) const FT_HB_ACK: u8 = 3;
pub(crate) const FT_REAUTH_OFFER: u8 = 4;
pub(crate) const FT_REAUTH_RESULT: u8 = 5;
pub(crate) const FT_CLOSE: u8 = 6;

/// Channel security mode.
pub enum Mode {
    /// Unauthenticated plaintext — models the paper's `rmi` exposure type.
    Plain,
    /// Encrypted + authenticated + continuously authorized (`switchboard`
    /// exposure type).
    Secure {
        /// AEAD for outgoing records.
        send: ChaCha20Poly1305,
        /// AEAD for incoming records.
        recv: ChaCha20Poly1305,
        /// Nonce direction byte for outgoing records.
        send_dir: u8,
        /// Nonce direction byte for incoming records.
        recv_dir: u8,
    },
}

/// How a channel's receive path and heartbeats are driven.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChannelBackend {
    /// Readiness-driven: TCP channels register with the shared epoll
    /// [reactor](crate::reactor) (no per-channel threads); in-memory
    /// channels keep their reader thread but heartbeat from the
    /// reactor's timer wheel. The default on Linux; on other targets
    /// (no epoll) this degrades to [`Threaded`](ChannelBackend::Threaded).
    Reactor,
    /// Legacy thread-per-connection: one reader thread plus (if
    /// heartbeats are enabled) one heartbeat thread per channel. Kept as
    /// the baseline the `channels_scaling` bench measures against.
    Threaded,
}

/// User-facing channel configuration.
#[derive(Clone, Debug)]
pub struct ChannelConfig {
    /// Period of automatic heartbeats; `None` disables automatic
    /// heartbeats (tests then call [`Channel::send_heartbeat`] manually).
    pub heartbeat_interval: Option<Duration>,
    /// Default timeout for [`Channel::call`].
    pub rpc_timeout: Duration,
    /// Receive-path engine (reactor vs legacy threads).
    pub backend: ChannelBackend,
}

impl Default for ChannelConfig {
    fn default() -> Self {
        ChannelConfig {
            heartbeat_interval: Some(Duration::from_millis(200)),
            rpc_timeout: Duration::from_secs(10),
            backend: if cfg!(target_os = "linux") {
                ChannelBackend::Reactor
            } else {
                ChannelBackend::Threaded
            },
        }
    }
}

/// Current trust state of the channel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChannelStatus {
    /// Traffic flows.
    Healthy,
    /// The peer's authorization was invalidated (credential id recorded);
    /// application traffic is refused until re-validation succeeds.
    RevalidationRequired(String),
    /// Closed (by either side or transport loss).
    Closed,
}

/// Wire traffic counters for one channel endpoint.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct TrafficStats {
    /// Frames written to the transport.
    pub frames_sent: u64,
    /// Frames accepted from the transport.
    pub frames_received: u64,
    /// Bytes written (record layer included).
    pub bytes_sent: u64,
    /// Bytes accepted (record layer included).
    pub bytes_received: u64,
}

/// One-call observability snapshot of a channel endpoint: liveness,
/// round-trip time, heartbeat count, wire traffic, and uptime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelStats {
    /// Most recent heartbeat round-trip time, if one was measured.
    pub last_rtt: Option<Duration>,
    /// Heartbeats received from the peer.
    pub heartbeats_received: u64,
    /// Heartbeats sent to the peer.
    pub heartbeats_sent: u64,
    /// Wire traffic counters (record-layer overhead included).
    pub traffic: TrafficStats,
    /// Time since the channel was established.
    pub uptime: Duration,
    /// Current trust status.
    pub status: ChannelStatus,
}

/// Information about the authenticated peer (absent in plain mode).
#[derive(Clone)]
pub struct PeerInfo {
    /// The peer's claimed (and credential-bound) entity name.
    pub name: EntityName,
    /// The peer's identity key.
    pub key: VerifyingKey,
}

type Handler = Arc<dyn Fn(&[u8]) -> Result<Vec<u8>, String> + Send + Sync>;
type DefaultHandler = Arc<dyn Fn(&str, &[u8]) -> Result<Vec<u8>, String> + Send + Sync>;
type CloseWatcher = Box<dyn FnOnce() + Send>;

// --------------------------------------------------------- RPC waiters --

/// One in-flight RPC waiter: a mutex'd result cell plus a condvar. The
/// caller parks on the condvar; the reader thread (or `mark_closed`)
/// completes the slot and wakes it.
struct CallSlot {
    result: Mutex<Option<Result<Vec<u8>, SwitchboardError>>>,
    ready: Condvar,
}

impl CallSlot {
    fn new() -> Arc<CallSlot> {
        Arc::new(CallSlot {
            result: Mutex::new(None),
            ready: Condvar::new(),
        })
    }

    fn complete(&self, r: Result<Vec<u8>, SwitchboardError>) {
        let mut slot = self.result.lock();
        if slot.is_none() {
            *slot = Some(r);
            self.ready.notify_all();
        }
    }

    /// Block until completed or the deadline passes.
    fn wait_deadline(&self, deadline: Instant) -> Option<Result<Vec<u8>, SwitchboardError>> {
        let mut slot = self.result.lock();
        while slot.is_none() {
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let timed_out = self.ready.wait_for(&mut slot, deadline - now).timed_out();
            if timed_out && slot.is_none() {
                return None;
            }
        }
        slot.take()
    }
}

/// Sharded id → waiter map. Pipelined callers and the reader thread touch
/// disjoint shards most of the time, so completion of one call never
/// serializes behind registration of another.
const PENDING_SHARDS: usize = 16;

struct PendingTable {
    shards: Vec<Mutex<HashMap<u64, Arc<CallSlot>>>>,
}

impl PendingTable {
    fn new() -> PendingTable {
        PendingTable {
            shards: (0..PENDING_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
        }
    }

    #[inline]
    fn shard(&self, id: u64) -> &Mutex<HashMap<u64, Arc<CallSlot>>> {
        &self.shards[(id as usize) % PENDING_SHARDS]
    }

    fn insert(&self, id: u64, slot: Arc<CallSlot>) {
        self.shard(id).lock().insert(id, slot);
    }

    fn remove(&self, id: u64) -> Option<Arc<CallSlot>> {
        self.shard(id).lock().remove(&id)
    }

    fn drain(&self) -> Vec<Arc<CallSlot>> {
        let mut all = Vec::new();
        for shard in &self.shards {
            all.extend(shard.lock().drain().map(|(_, slot)| slot));
        }
        all
    }
}

pub(crate) struct ChannelInner {
    sender: Mutex<Box<dyn FrameSender>>,
    mode: Mode,
    send_seq: AtomicU64,
    recv_seq: AtomicU64,
    status: RwLock<ChannelStatus>,
    peer: Option<PeerInfo>,
    monitor: Mutex<Option<AuthorizationMonitor>>,
    authorizer: Option<Authorizer>,
    pending: PendingTable,
    pool: Arc<FramePool>,
    reauth_waiters: Mutex<Vec<Sender<bool>>>,
    next_rpc_id: AtomicU64,
    handlers: RwLock<HashMap<String, Handler>>,
    default_handler: RwLock<Option<DefaultHandler>>,
    start: Instant,
    last_heard_us: AtomicU64,
    last_rtt_us: AtomicU64,
    hb_send_seq: AtomicU64,
    hb_recv_seq: AtomicU64,
    heartbeats_received: AtomicU64,
    bytes_sent: AtomicU64,
    bytes_received: AtomicU64,
    frames_sent: AtomicU64,
    frames_received: AtomicU64,
    /// Deliberately SeqCst everywhere: `call_pipelined` relies on a
    /// Dekker-style protocol (insert slot, then check `closed`) against
    /// `mark_closed` (store `closed`, then drain slots) — both sides need
    /// a total order or a call inserted concurrently with close could
    /// miss both the drain and the re-check and idle out its timeout.
    closed: AtomicBool,
    close_watchers: Mutex<Vec<CloseWatcher>>,
    /// Link back to the reactor shard servicing this channel (TCP
    /// connection and/or wheel heartbeat); taken exactly once at close.
    reactor_reg: Mutex<Option<crate::reactor::Registration>>,
    config: ChannelConfig,
}

impl ChannelInner {
    pub(crate) fn is_closed(&self) -> bool {
        self.closed.load(Ordering::SeqCst)
    }

    pub(crate) fn set_reactor_registration(&self, reg: crate::reactor::Registration) {
        *self.reactor_reg.lock() = Some(reg);
    }
}

/// A live Switchboard channel endpoint.
pub struct Channel {
    pub(crate) inner: Arc<ChannelInner>,
}

impl Channel {
    /// Assemble a channel over split transport halves. With the
    /// [`Reactor`](ChannelBackend::Reactor) backend a TCP channel hands
    /// its stream to the epoll reactor and owns **zero** threads; other
    /// transports keep a reader thread but heartbeat from the reactor's
    /// timer wheel. The [`Threaded`](ChannelBackend::Threaded) backend
    /// reproduces the legacy reader + heartbeat thread pair. Called by
    /// the handshake module.
    pub(crate) fn start(
        sender: Box<dyn FrameSender>,
        mut receiver: Box<dyn FrameReceiver>,
        mode: Mode,
        peer: Option<PeerInfo>,
        monitor: Option<AuthorizationMonitor>,
        authorizer: Option<Authorizer>,
        config: ChannelConfig,
    ) -> Channel {
        let inner = Arc::new(ChannelInner {
            sender: Mutex::new(sender),
            mode,
            send_seq: AtomicU64::new(0),
            recv_seq: AtomicU64::new(0),
            status: RwLock::new(ChannelStatus::Healthy),
            peer,
            monitor: Mutex::new(monitor),
            authorizer,
            pending: PendingTable::new(),
            pool: FramePool::new(DEFAULT_POOL_SLOTS),
            reauth_waiters: Mutex::new(Vec::new()),
            next_rpc_id: AtomicU64::new(1),
            handlers: RwLock::new(HashMap::new()),
            default_handler: RwLock::new(None),
            start: Instant::now(),
            last_heard_us: AtomicU64::new(0),
            last_rtt_us: AtomicU64::new(0),
            hb_send_seq: AtomicU64::new(0),
            hb_recv_seq: AtomicU64::new(0),
            heartbeats_received: AtomicU64::new(0),
            bytes_sent: AtomicU64::new(0),
            bytes_received: AtomicU64::new(0),
            frames_sent: AtomicU64::new(0),
            frames_received: AtomicU64::new(0),
            closed: AtomicBool::new(false),
            close_watchers: Mutex::new(Vec::new()),
            reactor_reg: Mutex::new(None),
            config,
        });

        let heartbeat = inner.config.heartbeat_interval;
        // Off Linux there is no epoll shim: an explicit Reactor request
        // degrades to the threaded backend rather than failing.
        if cfg!(target_os = "linux") && inner.config.backend == ChannelBackend::Reactor {
            if let Some(stream) = receiver.take_stream() {
                // TCP under the reactor: the channel owns no threads at
                // all. Flipping the (shared) file description nonblocking
                // also covers the sender half, whose vectored writes
                // absorb `EWOULDBLOCK` by queueing the unsent tail in a
                // bounded backlog the reactor flushes on writable edges —
                // no send path ever blocks a reactor shard.
                stream.set_nonblocking(true).expect("set_nonblocking");
                crate::reactor::register_connection(stream, &inner, heartbeat);
                return Channel { inner };
            }
            // Non-TCP (in-memory) transport: blocking reads stay on a
            // reader thread, but heartbeats come from the timer wheel
            // instead of a dedicated thread.
            if let Some(interval) = heartbeat {
                crate::reactor::register_heartbeat(&inner, interval);
            }
            let reader = inner.clone();
            std::thread::Builder::new()
                .name("swbd-reader".into())
                .spawn(move || reader_loop(reader, receiver))
                .expect("spawn reader");
            return Channel { inner };
        }

        // Legacy thread-per-connection backend.
        {
            let inner = inner.clone();
            std::thread::Builder::new()
                .name("swbd-reader".into())
                .spawn(move || reader_loop(inner, receiver))
                .expect("spawn reader");
        }
        if let Some(interval) = heartbeat {
            let inner = inner.clone();
            std::thread::Builder::new()
                .name("swbd-heartbeat".into())
                .spawn(move || {
                    while !inner.closed.load(Ordering::SeqCst) {
                        std::thread::sleep(interval);
                        if inner.closed.load(Ordering::SeqCst) {
                            break;
                        }
                        let _ = send_heartbeat_frame(&inner);
                    }
                })
                .expect("spawn heartbeat");
        }
        Channel { inner }
    }

    /// The authenticated peer (None in plain mode).
    pub fn peer(&self) -> Option<PeerInfo> {
        self.inner.peer.clone()
    }

    /// Current trust status.
    pub fn status(&self) -> ChannelStatus {
        self.inner.status.read().clone()
    }

    /// Most recent measured round-trip time, if any heartbeat has been
    /// acknowledged.
    pub fn last_rtt(&self) -> Option<Duration> {
        // Relaxed: stats-only — a momentarily stale RTT is as meaningful
        // as a fresh one; nothing is ordered against this load.
        match self.inner.last_rtt_us.load(Ordering::Relaxed) {
            0 => None,
            us => Some(Duration::from_micros(us)),
        }
    }

    /// Whether the peer has been heard from within `window`.
    pub fn is_alive(&self, window: Duration) -> bool {
        if self.inner.closed.load(Ordering::SeqCst) {
            return false;
        }
        // Relaxed: liveness is inherently a racy read of a monotonically
        // advancing timestamp; staleness only errs toward "not alive".
        let last = self.inner.last_heard_us.load(Ordering::Relaxed);
        let now = self.inner.start.elapsed().as_micros() as u64;
        now.saturating_sub(last) <= window.as_micros() as u64
    }

    /// Heartbeats received from the peer so far.
    pub fn heartbeats_received(&self) -> u64 {
        // Relaxed: a pure statistic; no other state is published under it.
        self.inner.heartbeats_received.load(Ordering::Relaxed)
    }

    /// Wire traffic counters (frames and bytes in each direction,
    /// including record-layer overhead).
    pub fn traffic(&self) -> TrafficStats {
        // Relaxed: the four counters are independent statistics — a
        // snapshot need not be mutually consistent across them.
        TrafficStats {
            frames_sent: self.inner.frames_sent.load(Ordering::Relaxed),
            frames_received: self.inner.frames_received.load(Ordering::Relaxed),
            bytes_sent: self.inner.bytes_sent.load(Ordering::Relaxed),
            bytes_received: self.inner.bytes_received.load(Ordering::Relaxed),
        }
    }

    /// Full observability snapshot (RTT, heartbeats, traffic, uptime).
    /// Cheap: a handful of atomic loads.
    pub fn stats(&self) -> ChannelStats {
        ChannelStats {
            last_rtt: self.last_rtt(),
            heartbeats_received: self.heartbeats_received(),
            heartbeats_sent: self.inner.hb_send_seq.load(Ordering::Relaxed),
            traffic: self.traffic(),
            uptime: self.inner.start.elapsed(),
            status: self.status(),
        }
    }

    /// Register a handler for incoming RPC requests.
    pub fn register_handler<F>(&self, method: impl Into<String>, f: F)
    where
        F: Fn(&[u8]) -> Result<Vec<u8>, String> + Send + Sync + 'static,
    {
        self.inner
            .handlers
            .write()
            .insert(method.into(), Arc::new(f));
    }

    /// Register a catch-all handler invoked (with the method name) when no
    /// per-method handler matches — used to serve whole component
    /// endpoints over one channel.
    pub fn register_default_handler<F>(&self, f: F)
    where
        F: Fn(&str, &[u8]) -> Result<Vec<u8>, String> + Send + Sync + 'static,
    {
        *self.inner.default_handler.write() = Some(Arc::new(f));
    }

    /// Invoke a remote method and await its response (uses the configured
    /// RPC timeout).
    pub fn call(&self, method: &str, args: &[u8]) -> Result<Vec<u8>, SwitchboardError> {
        self.call_timeout(method, args, self.inner.config.rpc_timeout)
    }

    /// Invoke a remote method with an explicit timeout.
    pub fn call_timeout(
        &self,
        method: &str,
        args: &[u8],
        timeout: Duration,
    ) -> Result<Vec<u8>, SwitchboardError> {
        // Only traced work pays for a per-call span: when the caller has a
        // live trace, the call gets its own span (whose context then rides
        // the request envelope); untraced traffic skips straight through.
        let _span = psf_telemetry::current_trace_id()
            .is_some()
            .then(|| psf_telemetry::span("psf.swbd", "rpc.call"));
        self.call_pipelined(method, args)?.wait_timeout(timeout)
    }

    /// Issue a request without waiting: the frame is on the wire when this
    /// returns, and the response is claimed later via
    /// [`PendingCall::wait`]. Overlapping several of these keeps the
    /// channel's full round trip busy instead of idling between request
    /// and response.
    pub fn call_pipelined(
        &self,
        method: &str,
        args: &[u8],
    ) -> Result<PendingCall, SwitchboardError> {
        self.check_traffic_allowed()?;
        let start = Instant::now();
        let ctx = psf_telemetry::TraceContext::current();
        // Relaxed: pure unique-id allocation; the id is published to the
        // reader through the pending table's shard mutex, not this atomic.
        let id = self.inner.next_rpc_id.fetch_add(1, Ordering::Relaxed);
        let slot = CallSlot::new();
        self.inner.pending.insert(id, slot.clone());

        let mut buf = self
            .inner
            .pool
            .take(8 + 1 + rpc::REQ_HEADER_LEN + method.len() + args.len() + 17);
        buf.extend_from_slice(&[0u8; 8]); // sequence header, filled at send
        buf.push(FT_RPC_REQ);
        rpc::encode_request_into(&mut buf, id, method, args, ctx);
        if let Err(e) = send_pooled_frame(&self.inner, buf) {
            self.inner.pending.remove(id);
            return Err(e);
        }
        // `mark_closed` may have drained the table before our insert (its
        // drain and our insert race when the transport dies concurrently);
        // re-checking after the insert guarantees the slot cannot be left
        // to idle out the full RPC timeout.
        if self.inner.closed.load(Ordering::SeqCst) {
            self.inner.pending.remove(id);
            slot.complete(Err(SwitchboardError::Closed));
        }
        psf_telemetry::gauge!("psf.switchboard.pipeline.inflight").add(1);
        Ok(PendingCall {
            inner: self.inner.clone(),
            slot,
            id,
            start,
            default_timeout: self.inner.config.rpc_timeout,
            claimed: false,
        })
    }

    /// Issue one request per element of `chunk` as a single coalesced
    /// transport write. Sequence numbers are allocated contiguously under
    /// one sender-lock acquisition and the frames leave in one
    /// [`send_many`](crate::transport::FrameSender::send_many), so the
    /// peer's reader wakes once per chunk instead of once per call.
    fn call_pipelined_batch(
        &self,
        method: &str,
        chunk: &[&[u8]],
    ) -> Result<Vec<PendingCall>, SwitchboardError> {
        self.check_traffic_allowed()?;
        let start = Instant::now();
        let ctx = psf_telemetry::TraceContext::current();
        let mut ids = Vec::with_capacity(chunk.len());
        let mut slots = Vec::with_capacity(chunk.len());
        let mut bufs = Vec::with_capacity(chunk.len());
        for args in chunk {
            let id = self.inner.next_rpc_id.fetch_add(1, Ordering::Relaxed);
            let slot = CallSlot::new();
            self.inner.pending.insert(id, slot.clone());
            let mut buf = self
                .inner
                .pool
                .take(8 + 1 + rpc::REQ_HEADER_LEN + method.len() + args.len() + 17);
            buf.extend_from_slice(&[0u8; 8]); // sequence header, filled at send
            buf.push(FT_RPC_REQ);
            rpc::encode_request_into(&mut buf, id, method, args, ctx);
            ids.push(id);
            slots.push(slot);
            bufs.push(buf);
        }
        if let Err(e) = send_pooled_frames(&self.inner, &mut bufs) {
            for id in &ids {
                self.inner.pending.remove(*id);
            }
            return Err(e);
        }
        // Same close race as `call_pipelined`: re-check after the inserts.
        if self.inner.closed.load(Ordering::SeqCst) {
            for (id, slot) in ids.iter().zip(&slots) {
                self.inner.pending.remove(*id);
                slot.complete(Err(SwitchboardError::Closed));
            }
        }
        psf_telemetry::gauge!("psf.switchboard.pipeline.inflight").add(chunk.len() as i64);
        Ok(ids
            .into_iter()
            .zip(slots)
            .map(|(id, slot)| PendingCall {
                inner: self.inner.clone(),
                slot,
                id,
                start,
                default_timeout: self.inner.config.rpc_timeout,
                claimed: false,
            })
            .collect())
    }

    /// Invoke `method` once per element of `batch`, keeping up to `window`
    /// requests in flight. Results are returned in batch order; individual
    /// failures surface per element.
    pub fn call_many(
        &self,
        method: &str,
        batch: &[&[u8]],
        window: usize,
    ) -> Vec<Result<Vec<u8>, SwitchboardError>> {
        let window = window.max(1);
        let mut results = Vec::with_capacity(batch.len());
        let mut in_flight = std::collections::VecDeque::with_capacity(window);
        let mut next = 0;
        while next < batch.len() {
            if in_flight.len() == window {
                // Drain half the window with blocking waits: responses
                // arrive in issue order as a coalesced burst, so the first
                // wait absorbs the scheduler round trip and the rest
                // mostly return instantly. The refill below then
                // re-issues the freed half as one coalesced write,
                // keeping burst sizes stable along the whole loop instead
                // of degenerating to one-frame chunks.
                for _ in 0..window.div_ceil(2) {
                    let call: PendingCall = in_flight.pop_front().expect("non-empty window");
                    results.push(call.wait());
                }
                while in_flight.front().is_some_and(PendingCall::is_complete) {
                    let call: PendingCall = in_flight.pop_front().expect("checked front");
                    results.push(call.wait());
                }
            }
            let room = window - in_flight.len();
            let chunk = &batch[next..(next + room).min(batch.len())];
            match self.call_pipelined_batch(method, chunk) {
                Ok(calls) => in_flight.extend(calls),
                Err(e) => {
                    // Keep batch order: earlier in-flight results precede
                    // the failed chunk's errors (the chunk failed before
                    // any of its frames hit the wire).
                    for call in in_flight.drain(..) {
                        results.push(call.wait());
                    }
                    for _ in chunk {
                        results.push(Err(e.clone()));
                    }
                }
            }
            next += chunk.len();
        }
        for call in in_flight {
            results.push(call.wait());
        }
        results
    }

    /// Send one heartbeat now (used when the automatic thread is
    /// disabled).
    pub fn send_heartbeat(&self) -> Result<(), SwitchboardError> {
        send_heartbeat_frame(&self.inner)
    }

    /// Offer fresh credentials to the peer to re-validate this endpoint
    /// after a revocation. Returns whether the peer accepted.
    pub fn offer_revalidation(
        &self,
        credentials: &[psf_drbac::SignedDelegation],
        timeout: Duration,
    ) -> Result<bool, SwitchboardError> {
        let (tx, rx) = bounded(1);
        self.inner.reauth_waiters.lock().push(tx);
        let body = wire::encode_credentials(credentials);
        send_frame(&self.inner, FT_REAUTH_OFFER, &[&body])?;
        rx.recv_timeout(timeout)
            .map_err(|_| SwitchboardError::Timeout)
    }

    /// Register a callback fired exactly once when this endpoint dies —
    /// local close, peer close, transport loss, or protocol failure. If
    /// the channel is already closed, the callback fires immediately.
    /// Supervisors use this as the channel-death signal that triggers
    /// failover without polling.
    pub fn on_close<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'static,
    {
        if self.inner.closed.load(Ordering::SeqCst) {
            f();
        } else {
            self.inner.close_watchers.lock().push(Box::new(f));
        }
    }

    /// Close the channel, notifying the peer.
    pub fn close(&self) {
        if !self.inner.closed.swap(true, Ordering::SeqCst) {
            let _ = send_frame(&self.inner, FT_CLOSE, &[]);
            mark_closed(&self.inner);
        }
    }

    fn check_traffic_allowed(&self) -> Result<(), SwitchboardError> {
        if self.inner.closed.load(Ordering::SeqCst) {
            return Err(SwitchboardError::Closed);
        }
        // Continuous authorization: our monitor watches the peer.
        let mut monitor = self.inner.monitor.lock();
        if let Some(m) = monitor.as_mut() {
            if !m.is_valid() {
                let id = m
                    .revocation_notice()
                    .unwrap_or_else(|| "unknown credential".into());
                // Re-validate via the admission certificate, checker-only:
                // the independent checker replays the certificate against
                // live registry/revocation state — no repository access,
                // no proof search. One shot per invalidation; the audited
                // verdict carries the certificate digest. If the
                // certificate still replays (the notice did not concern
                // the admitted chain), trust holds and traffic continues.
                if m.take_recheck() {
                    if let (Some(auth), Some(cert)) = (&self.inner.authorizer, m.certificate()) {
                        psf_telemetry::counter!("psf.swbd.authz.cert_rechecks").inc();
                        if auth.recheck_certificate(&cert).is_ok() {
                            return Ok(());
                        }
                    }
                }
                *self.inner.status.write() = ChannelStatus::RevalidationRequired(id.clone());
                psf_telemetry::counter!("psf.swbd.authz.refused").inc();
                psf_telemetry::event(
                    "psf.swbd",
                    "authz.refused",
                    vec![("credential", id.clone())],
                );
                return Err(SwitchboardError::RevalidationRequired(id));
            }
        }
        Ok(())
    }
}

impl Drop for Channel {
    fn drop(&mut self) {
        self.close();
    }
}

/// A request already on the wire whose response has not been claimed.
/// Obtained from [`Channel::call_pipelined`]; consumed by
/// [`PendingCall::wait`] / [`PendingCall::wait_timeout`]. Dropping it
/// abandons the call (a late response is discarded).
pub struct PendingCall {
    inner: Arc<ChannelInner>,
    slot: Arc<CallSlot>,
    id: u64,
    start: Instant,
    default_timeout: Duration,
    claimed: bool,
}

impl PendingCall {
    /// Whether the response has already arrived, i.e. a subsequent
    /// [`wait`](PendingCall::wait) will return without blocking.
    pub fn is_complete(&self) -> bool {
        self.slot.result.lock().is_some()
    }

    /// Await the response with the channel's configured RPC timeout.
    pub fn wait(self) -> Result<Vec<u8>, SwitchboardError> {
        let timeout = self.default_timeout;
        self.wait_timeout(timeout)
    }

    /// Await the response; the timeout is measured from issue time.
    pub fn wait_timeout(mut self, timeout: Duration) -> Result<Vec<u8>, SwitchboardError> {
        self.claimed = true;
        psf_telemetry::gauge!("psf.switchboard.pipeline.inflight").add(-1);
        match self.slot.wait_deadline(self.start + timeout) {
            Some(result) => {
                psf_telemetry::counter!("psf.swbd.rpc.calls").inc();
                psf_telemetry::histogram!("psf.swbd.rpc.us").record_duration(self.start.elapsed());
                result
            }
            None => {
                psf_telemetry::counter!("psf.swbd.rpc.timeouts").inc();
                self.inner.pending.remove(self.id);
                if self.inner.closed.load(Ordering::SeqCst) {
                    Err(SwitchboardError::Closed)
                } else {
                    Err(SwitchboardError::Timeout)
                }
            }
        }
    }
}

impl Drop for PendingCall {
    fn drop(&mut self) {
        if !self.claimed {
            self.inner.pending.remove(self.id);
            psf_telemetry::gauge!("psf.switchboard.pipeline.inflight").add(-1);
        }
    }
}

// ------------------------------------------------------------ framing --

fn seal_nonce(dir: u8, seq: u64) -> [u8; 12] {
    let mut n = [0u8; 12];
    n[0] = dir;
    n[4..12].copy_from_slice(&seq.to_le_bytes());
    n
}

/// Stage `ft || body parts` into a pooled, header-reserved buffer and
/// transmit it.
fn send_frame(inner: &Arc<ChannelInner>, ft: u8, parts: &[&[u8]]) -> Result<(), SwitchboardError> {
    if inner.closed.load(Ordering::SeqCst) && ft != FT_CLOSE {
        return Err(SwitchboardError::Closed);
    }
    let body_len: usize = parts.iter().map(|p| p.len()).sum();
    let mut buf = inner.pool.take(8 + 1 + body_len + 16);
    buf.extend_from_slice(&[0u8; 8]); // sequence header, filled at send
    buf.push(ft);
    for part in parts {
        buf.extend_from_slice(part);
    }
    send_pooled_frame(inner, buf)
}

/// Transmit an assembled frame: `buf` holds `zeros(8) || ft || body`. The
/// 8-byte header receives the sequence number and secure mode seals the
/// payload **in place** (tag appended into the same buffer), so the only
/// allocation on a steady-state send is none at all — the buffer came
/// from the pool and returns to it on drop.
fn send_pooled_frame(
    inner: &Arc<ChannelInner>,
    mut buf: PooledBuf,
) -> Result<(), SwitchboardError> {
    // Sequence allocation and transmission must be atomic together: the
    // receiver enforces strictly increasing sequence numbers (replay
    // rejection), so a frame numbered later must never hit the wire
    // earlier. The sender mutex provides that ordering — the fetch_add
    // itself can be Relaxed because it only ever runs under the lock.
    let mut sender = inner.sender.lock();
    let seq = inner.send_seq.fetch_add(1, Ordering::Relaxed);
    buf[..8].copy_from_slice(&seq.to_le_bytes());
    if let Mode::Secure { send, send_dir, .. } = &inner.mode {
        let nonce = seal_nonce(*send_dir, seq);
        send.seal_in_place(&nonce, b"swbd-record", &mut buf, 8);
    }
    // Count before transmitting (still under the sender lock) so a peer
    // that observes the frame — and anything downstream of it — also
    // observes the updated counters; rolled back on transport failure.
    inner.frames_sent.fetch_add(1, Ordering::Relaxed);
    inner
        .bytes_sent
        .fetch_add(buf.len() as u64, Ordering::Relaxed);
    psf_telemetry::counter!("psf.swbd.frames.sent").inc();
    psf_telemetry::counter!("psf.swbd.bytes.sent").add(buf.len() as u64);
    psf_telemetry::counter!("psf.switchboard.bytes.tx").add(buf.len() as u64);
    if let Err(e) = sender.send(&buf) {
        inner.frames_sent.fetch_sub(1, Ordering::Relaxed);
        inner
            .bytes_sent
            .fetch_sub(buf.len() as u64, Ordering::Relaxed);
        return Err(e.into());
    }
    Ok(())
}

/// Multi-frame variant of [`send_pooled_frame`]: sequence numbers for the
/// whole group are allocated contiguously under a single sender-lock
/// acquisition, each frame is sealed in place, and the group leaves in
/// one coalesced transport write.
pub(crate) fn send_pooled_frames(
    inner: &Arc<ChannelInner>,
    bufs: &mut [PooledBuf],
) -> Result<(), SwitchboardError> {
    let mut sender = inner.sender.lock();
    let mut total = 0u64;
    for buf in bufs.iter_mut() {
        // Relaxed: see `send_pooled_frame` — ordered by the sender mutex.
        let seq = inner.send_seq.fetch_add(1, Ordering::Relaxed);
        buf[..8].copy_from_slice(&seq.to_le_bytes());
        if let Mode::Secure { send, send_dir, .. } = &inner.mode {
            let nonce = seal_nonce(*send_dir, seq);
            send.seal_in_place(&nonce, b"swbd-record", buf, 8);
        }
        total += buf.len() as u64;
    }
    inner
        .frames_sent
        .fetch_add(bufs.len() as u64, Ordering::Relaxed);
    inner.bytes_sent.fetch_add(total, Ordering::Relaxed);
    psf_telemetry::counter!("psf.swbd.frames.sent").add(bufs.len() as u64);
    psf_telemetry::counter!("psf.swbd.bytes.sent").add(total);
    psf_telemetry::counter!("psf.switchboard.bytes.tx").add(total);
    let frames: Vec<&[u8]> = bufs.iter().map(|b| &b[..]).collect();
    if let Err(e) = sender.send_many(&frames) {
        inner
            .frames_sent
            .fetch_sub(bufs.len() as u64, Ordering::Relaxed);
        inner.bytes_sent.fetch_sub(total, Ordering::Relaxed);
        return Err(e.into());
    }
    Ok(())
}

pub(crate) fn send_heartbeat_frame(inner: &Arc<ChannelInner>) -> Result<(), SwitchboardError> {
    // Relaxed: the counter only needs unique, roughly-monotonic values;
    // wire ordering is enforced by the record layer's sequence numbers,
    // not by this fetch_add.
    let hb_seq = inner.hb_send_seq.fetch_add(1, Ordering::Relaxed) + 1;
    let t_us = inner.start.elapsed().as_micros() as u64;
    send_frame(
        inner,
        FT_HEARTBEAT,
        &[&hb_seq.to_le_bytes(), &t_us.to_le_bytes()],
    )
}

/// Flush a connection's buffered outbound bytes without blocking — the
/// reactor calls this on writable edges. Returns whether backlog remains.
pub(crate) fn flush_outbound(inner: &Arc<ChannelInner>) -> std::io::Result<bool> {
    inner.sender.lock().flush_backlog()
}

pub(crate) fn mark_closed(inner: &Arc<ChannelInner>) {
    inner.closed.store(true, Ordering::SeqCst);
    *inner.status.write() = ChannelStatus::Closed;
    // Retire the reactor registration (fd, timers, heartbeat group
    // membership). Taken exactly once, so the shard's own close path
    // calling back into `mark_closed` terminates.
    if let Some(reg) = inner.reactor_reg.lock().take() {
        crate::reactor::deregister(reg);
    }
    // Fail all pending RPCs promptly — in-flight callers must not idle out
    // their full RPC timeout when the channel dies under them.
    for slot in inner.pending.drain() {
        slot.complete(Err(SwitchboardError::Closed));
    }
    // Notify death watchers (drained, so double-close fires them once).
    let watchers: Vec<CloseWatcher> = inner.close_watchers.lock().drain(..).collect();
    for w in watchers {
        w();
    }
}

// ------------------------------------------------------------- reader --

fn reader_loop(inner: Arc<ChannelInner>, mut receiver: Box<dyn FrameReceiver>) {
    // Take a whole burst per wakeup and stage the burst's RPC responses
    // for one coalesced write: with a pipelined peer this keeps every hop
    // of the request/response loop batch-coherent (one scheduler round
    // trip per window, not per call).
    while let Ok(batch) = receiver.recv_many() {
        let mut responses: Vec<PooledBuf> = Vec::with_capacity(batch.len());
        let mut alive = true;
        for frame in batch {
            if !process_frame(&inner, frame, &mut responses) {
                alive = false;
                break;
            }
        }
        if !responses.is_empty() && send_pooled_frames(&inner, &mut responses).is_err() {
            break;
        }
        if !alive {
            break;
        }
    }
    mark_closed(&inner);
}

/// Handle one wire frame. Returns `false` when the channel must close
/// (protocol violation, forged record, or an orderly `FT_CLOSE`). RPC
/// responses are staged into `responses` rather than sent, so a burst of
/// requests answers with one transport write.
pub(crate) fn process_frame(
    inner: &Arc<ChannelInner>,
    mut frame: Vec<u8>,
    responses: &mut Vec<PooledBuf>,
) -> bool {
    if frame.len() < 8 {
        return false; // protocol violation
    }
    inner.frames_received.fetch_add(1, Ordering::Relaxed);
    inner
        .bytes_received
        .fetch_add(frame.len() as u64, Ordering::Relaxed);
    psf_telemetry::counter!("psf.switchboard.bytes.rx").add(frame.len() as u64);
    let seq = u64::from_le_bytes(frame[..8].try_into().unwrap());
    // Relaxed: `recv_seq` is only ever touched by the single receive
    // context (the reader thread, or the one reactor shard this
    // connection is pinned to), so there is no concurrent access to
    // order against.
    let expected = inner.recv_seq.load(Ordering::Relaxed);
    if seq != expected {
        // Replay or reorder: hard protocol failure.
        return false;
    }
    inner.recv_seq.store(expected + 1, Ordering::Relaxed);

    // Borrow (plain) or decrypt in place (secure): either way the
    // inner frame is a slice of the transport buffer — no copy.
    let inner_frame: &[u8] = match &inner.mode {
        Mode::Plain => &frame[8..],
        Mode::Secure { recv, recv_dir, .. } => {
            let nonce = seal_nonce(*recv_dir, seq);
            match recv.open_in_place(&nonce, b"swbd-record", &mut frame[8..]) {
                Ok(n) => &frame[8..8 + n],
                Err(_) => return false, // forged/replayed record
            }
        }
    };
    if inner_frame.is_empty() {
        return false;
    }
    inner
        .last_heard_us
        .store(inner.start.elapsed().as_micros() as u64, Ordering::Relaxed);

    let (ft, body) = (inner_frame[0], &inner_frame[1..]);
    match ft {
        FT_RPC_REQ => handle_request(inner, body, responses),
        FT_RPC_RESP => handle_response(inner, body),
        FT_HEARTBEAT => handle_heartbeat(inner, body),
        FT_HB_ACK => handle_hb_ack(inner, body),
        FT_REAUTH_OFFER => handle_reauth_offer(inner, body),
        FT_REAUTH_RESULT => {
            let ok = body.first() == Some(&1);
            for tx in inner.reauth_waiters.lock().drain(..) {
                let _ = tx.send(ok);
            }
        }
        FT_CLOSE => return false,
        _ => return false,
    }
    true
}

fn handle_request(inner: &Arc<ChannelInner>, body: &[u8], responses: &mut Vec<PooledBuf>) {
    let Some((id, ctx, method, args)) = rpc::decode_request(body) else {
        return;
    };
    // Join the caller's causal tree: the dispatch span (and anything the
    // handler opens under it — proof searches, view selection) is parented
    // under the client's call span carried in the request envelope.
    // Untraced requests (all-zero header) skip span bookkeeping entirely.
    let mut dispatch = ctx.map(|c| psf_telemetry::span_with_context("psf.swbd", "rpc.dispatch", c));
    if let Some(s) = dispatch.as_mut() {
        s.field("method", method);
    }
    // Continuous authorization: refuse service while the peer's proof is
    // invalid.
    let monitor_ok = {
        let monitor = inner.monitor.lock();
        monitor.as_ref().map(|m| m.is_valid()).unwrap_or(true)
    };
    let (status, payload) = if !monitor_ok {
        {
            let m = inner.monitor.lock();
            if let Some(m) = m.as_ref() {
                if let Some(cred) = m.revocation_notice() {
                    *inner.status.write() = ChannelStatus::RevalidationRequired(cred);
                } else if !matches!(*inner.status.read(), ChannelStatus::RevalidationRequired(_)) {
                    *inner.status.write() = ChannelStatus::RevalidationRequired("revoked".into());
                }
            }
        }
        psf_telemetry::counter!("psf.swbd.authz.refused").inc();
        (RpcStatus::RevalidationRequired, Vec::new())
    } else {
        let handler = inner.handlers.read().get(method).cloned();
        match handler {
            Some(h) => match h(args) {
                Ok(out) => (RpcStatus::Ok, out),
                Err(msg) => (RpcStatus::Error, msg.into_bytes()),
            },
            None => {
                let fallback = inner.default_handler.read().clone();
                match fallback {
                    Some(h) => match h(method, args) {
                        Ok(out) => (RpcStatus::Ok, out),
                        Err(msg) => (RpcStatus::Error, msg.into_bytes()),
                    },
                    None => (RpcStatus::NoSuchMethod, method.as_bytes().to_vec()),
                }
            }
        }
    };
    // Response assembled directly into a pooled wire frame — no
    // intermediate encode allocation — and staged so the reader answers a
    // whole request burst with one coalesced write.
    let mut buf = inner.pool.take(8 + 1 + 9 + payload.len() + 16);
    buf.extend_from_slice(&[0u8; 8]); // sequence header, filled at send
    buf.push(FT_RPC_RESP);
    buf.extend_from_slice(&id.to_le_bytes());
    buf.push(status.to_u8());
    buf.extend_from_slice(&payload);
    responses.push(buf);
}

fn handle_response(inner: &Arc<ChannelInner>, body: &[u8]) {
    let Some((id, status, payload)) = rpc::decode_response(body) else {
        return;
    };
    if let Some(slot) = inner.pending.remove(id) {
        let result = match status {
            RpcStatus::Ok => Ok(payload.to_vec()),
            RpcStatus::Error => Err(SwitchboardError::Remote(
                String::from_utf8_lossy(payload).into_owned(),
            )),
            RpcStatus::RevalidationRequired => Err(SwitchboardError::RevalidationRequired(
                "peer refused service pending revalidation".into(),
            )),
            RpcStatus::NoSuchMethod => Err(SwitchboardError::Remote(format!(
                "no such method: {}",
                String::from_utf8_lossy(payload)
            ))),
        };
        slot.complete(result);
    }
}

fn handle_heartbeat(inner: &Arc<ChannelInner>, body: &[u8]) {
    if body.len() < 16 {
        return;
    }
    let hb_seq = u64::from_le_bytes(body[..8].try_into().unwrap());
    // Replay resistance: heartbeat sequence numbers must strictly
    // increase (the record layer already rejects replays; this guards the
    // semantic layer too). Relaxed: like `recv_seq`, only the single
    // receive context touches `hb_recv_seq`.
    let last = inner.hb_recv_seq.load(Ordering::Relaxed);
    if hb_seq <= last {
        // Surface the rejection so chaos runs can assert on it instead
        // of the drop being silent.
        psf_telemetry::counter!("psf.switchboard.heartbeat.replays_rejected").inc();
        return;
    }
    inner.hb_recv_seq.store(hb_seq, Ordering::Relaxed);
    inner.heartbeats_received.fetch_add(1, Ordering::Relaxed);
    psf_telemetry::counter!("psf.swbd.hb.received").inc();
    // Echo for RTT measurement.
    let _ = send_frame(inner, FT_HB_ACK, &[body]);
}

fn handle_hb_ack(inner: &Arc<ChannelInner>, body: &[u8]) {
    if body.len() < 16 {
        return;
    }
    let t_us = u64::from_le_bytes(body[8..16].try_into().unwrap());
    let now_us = inner.start.elapsed().as_micros() as u64;
    let rtt = now_us.saturating_sub(t_us).max(1);
    inner.last_rtt_us.store(rtt, Ordering::Relaxed);
    psf_telemetry::histogram!("psf.swbd.hb.rtt.us").record(rtt);
}

fn handle_reauth_offer(inner: &Arc<ChannelInner>, body: &[u8]) {
    let ok = (|| -> bool {
        let Ok(creds) = wire::decode_credentials(body) else {
            return false;
        };
        let (Some(authorizer), Some(peer)) = (&inner.authorizer, &inner.peer) else {
            return false;
        };
        match authorizer.authorize(&peer.name, &peer.key, &creds) {
            Ok(new_monitor) => {
                *inner.monitor.lock() = Some(new_monitor);
                *inner.status.write() = ChannelStatus::Healthy;
                true
            }
            Err(_) => false,
        }
    })();
    // Conditional metric name: go through the registry rather than the
    // per-call-site `counter!` cache (which memoizes a single name).
    psf_telemetry::registry()
        .counter(if ok {
            "psf.swbd.reauth.accepted"
        } else {
            "psf.swbd.reauth.rejected"
        })
        .inc();
    let _ = send_frame(inner, FT_REAUTH_RESULT, &[&[ok as u8]]);
}
