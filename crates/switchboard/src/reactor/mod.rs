//! Readiness-driven connection engine: epoll shards + timer-wheel
//! heartbeats.
//!
//! The thread-per-connection model costs two threads and two stacks per
//! channel; at 100k channels that is 200k stacks before a byte moves.
//! The reactor replaces it with a fixed set of shard threads (one per
//! core, capped), each owning an epoll instance, the connections
//! hash-pinned to it, and a hashed [timer wheel](wheel) driving
//! heartbeats. Per-channel steady-state cost drops to one table entry
//! plus a timer-slot share.
//!
//! * **Sharding** — a connection's token picks its shard once at
//!   registration; all its readiness handling, timer state, and
//!   heartbeat grouping live on that shard. The hot path never takes a
//!   cross-shard lock (the only shared mutable state is each shard's
//!   command queue, touched at registration/close).
//! * **Edge-triggered reads, budgeted** — shards read until
//!   `EWOULDBLOCK` or a per-pass byte budget, re-framing the byte stream
//!   and feeding complete records to the existing `process_frame` path
//!   (pooled buffers, in-place AEAD open). A connection that exhausts
//!   its budget is requeued for the next loop pass instead of
//!   monopolizing the shard, so one fast sender cannot starve its
//!   neighbours or delay timer fires. Responses staged by a burst leave
//!   in one vectored write.
//! * **Nonblocking writes** — the shard thread never parks inside a
//!   send: bytes a full socket refuses are queued in the sender's
//!   bounded backlog and flushed on the connection's `EPOLLOUT` edge.
//!   (A blocking send here would let one stalled peer freeze every
//!   connection on the shard — and deadlock outright when both ends of
//!   a connection share a shard.) A peer that stops draining past the
//!   backlog cap fails sends, which closes the channel.
//! * **Heartbeat coalescing** — channels sharing a peer host and
//!   interval join one *group* with a single wheel entry (capped at
//!   [`HB_GROUP_CAP`] members), so 100k channels to the same host cost
//!   hundreds of timer fires per interval, not 100k. Group phases are
//!   hash-staggered to avoid synchronized bursts.
//! * **Unsafe boundary** — every raw syscall lives in [`sys`], the one
//!   module outside `crates/crypto` that CI's unsafe_code audit
//!   permits; everything here is safe Rust over its owning types.
//!
//! The in-memory `MemTransport` path keeps its blocking reader thread
//! (deterministic for tests and netsim), but its heartbeats also route
//! through the wheel, so even mem channels stop paying a heartbeat
//! thread.

#[allow(unsafe_code)]
pub(crate) mod sys;
pub mod wheel;

use crate::channel::{
    flush_outbound, mark_closed, process_frame, send_heartbeat_frame, send_pooled_frames,
    ChannelInner,
};
use crate::pool::PooledBuf;
use crate::transport::MAX_FRAME;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::Read;
use std::net::{IpAddr, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, Weak};
use std::time::{Duration, Instant};
use wheel::{TimerId, TimerWheel, DEFAULT_SLOTS, DEFAULT_TICK};

pub use sys::raise_nofile_limit;

/// Event-buffer token reserved for each shard's eventfd wakeup.
const WAKE_TOKEN: u64 = u64::MAX;

/// Heartbeat groups stop absorbing members past this size, bounding the
/// work (and the wire burst) a single timer fire can generate.
pub const HB_GROUP_CAP: usize = 256;

/// Per-shard read buffer: one edge-triggered drain reads in chunks of
/// this size into the connection's reassembly buffer.
const READ_CHUNK: usize = 64 * 1024;

/// Fairness bound: bytes one connection may consume per service pass. A
/// peer streaming fast enough to keep its socket buffer non-empty gets
/// requeued for the next loop pass once it burns this much, so other
/// connections and the timer wheel keep their latency.
const READ_PASS_BUDGET: usize = 4 * READ_CHUNK;

/// A channel's link back to its reactor shard, stored on `ChannelInner`
/// and redeemed (once) at close to retire the connection and its timers.
pub(crate) struct Registration {
    shard: usize,
    token: u64,
}

enum Command {
    Register {
        token: u64,
        stream: TcpStream,
        inner: Arc<ChannelInner>,
    },
    Heartbeat {
        token: u64,
        inner: Weak<ChannelInner>,
        interval: Duration,
        peer: Option<IpAddr>,
    },
    Close {
        token: u64,
    },
}

struct ShardHandle {
    queue: Mutex<Vec<Command>>,
    wake: sys::WakeFd,
}

impl ShardHandle {
    fn push(&self, cmd: Command) {
        self.queue.lock().push(cmd);
        self.wake.wake();
    }
}

struct Reactor {
    shards: Vec<Arc<ShardHandle>>,
}

static REACTOR: OnceLock<Reactor> = OnceLock::new();
static NEXT_TOKEN: AtomicU64 = AtomicU64::new(0);

fn shard_count_config() -> usize {
    if let Ok(v) = std::env::var("PSF_REACTOR_SHARDS") {
        if let Ok(n) = v.parse::<usize>() {
            return n.clamp(1, 64);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
}

fn global() -> &'static Reactor {
    REACTOR.get_or_init(|| {
        let count = shard_count_config();
        psf_telemetry::gauge!("psf.switchboard.reactor.shards").set(count as i64);
        let mut shards = Vec::with_capacity(count);
        for id in 0..count {
            let epoll = sys::Epoll::new().expect("epoll_create1");
            let wake = sys::WakeFd::new().expect("eventfd");
            epoll
                .add(wake.raw(), WAKE_TOKEN, sys::EPOLLIN)
                .expect("register wakeup fd");
            let handle = Arc::new(ShardHandle {
                queue: Mutex::new(Vec::new()),
                wake,
            });
            let thread_handle = handle.clone();
            std::thread::Builder::new()
                .name(format!("swbd-reactor-{id}"))
                .spawn(move || shard_loop(thread_handle, epoll))
                .expect("spawn reactor shard");
            shards.push(handle);
        }
        Reactor { shards }
    })
}

/// Number of reactor shards (spins the reactor up on first call).
pub fn shard_count() -> usize {
    global().shards.len()
}

fn alloc_token(reactor: &Reactor) -> (usize, u64) {
    // Unique-id allocation only: Relaxed suffices, nothing is published
    // under this counter.
    let token = NEXT_TOKEN.fetch_add(1, Ordering::Relaxed);
    ((token % reactor.shards.len() as u64) as usize, token)
}

/// Hand a connected (handshake-complete) TCP stream to the reactor: the
/// channel stops owning threads and is serviced by its shard from now
/// on. The stream must already be nonblocking.
pub(crate) fn register_connection(
    stream: TcpStream,
    inner: &Arc<ChannelInner>,
    heartbeat: Option<Duration>,
) {
    let reactor = global();
    let (shard_idx, token) = alloc_token(reactor);
    inner.set_reactor_registration(Registration {
        shard: shard_idx,
        token,
    });
    let peer = stream.peer_addr().ok().map(|a| a.ip());
    let shard = &reactor.shards[shard_idx];
    {
        let mut q = shard.queue.lock();
        q.push(Command::Register {
            token,
            stream,
            inner: inner.clone(),
        });
        if let Some(interval) = heartbeat {
            q.push(Command::Heartbeat {
                token,
                inner: Arc::downgrade(inner),
                interval,
                peer,
            });
        }
    }
    shard.wake.wake();
}

/// Drive a channel's heartbeats from the timer wheel without routing its
/// reads through epoll (the in-memory transport path: reads stay on the
/// blocking reader thread, the heartbeat thread is replaced).
pub(crate) fn register_heartbeat(inner: &Arc<ChannelInner>, interval: Duration) {
    let reactor = global();
    let (shard_idx, token) = alloc_token(reactor);
    inner.set_reactor_registration(Registration {
        shard: shard_idx,
        token,
    });
    reactor.shards[shard_idx].push(Command::Heartbeat {
        token,
        inner: Arc::downgrade(inner),
        interval,
        peer: None,
    });
}

/// Retire a registration: drop the connection from its shard's tables,
/// deregister the fd, and cancel heartbeat membership. Idempotent by
/// construction — the caller obtained `reg` by `take`ing it.
pub(crate) fn deregister(reg: Registration) {
    if let Some(reactor) = REACTOR.get() {
        reactor.shards[reg.shard].push(Command::Close { token: reg.token });
    }
}

// ------------------------------------------------------- shard state --

#[derive(Clone, PartialEq, Eq, Hash)]
enum GroupKey {
    /// TCP channels sharing a peer host and interval coalesce.
    Host {
        ip: IpAddr,
        interval_us: u64,
        bucket: u64,
    },
    /// Channels with no peer address (in-memory) keep private timers.
    Solo { token: u64 },
}

struct Group {
    timer: TimerId,
    interval: Duration,
    members: Vec<(u64, Weak<ChannelInner>)>,
}

struct Conn {
    stream: TcpStream,
    inner: Arc<ChannelInner>,
    /// Reassembly buffer: bytes read past the last complete frame.
    partial: Vec<u8>,
}

struct ShardState {
    epoll: sys::Epoll,
    conns: HashMap<u64, Conn>,
    wheel: TimerWheel<GroupKey>,
    groups: HashMap<GroupKey, Group>,
    /// Currently-filling bucket index per (peer, interval), so groups
    /// fill to [`HB_GROUP_CAP`] before a new one opens.
    group_cursor: HashMap<(IpAddr, u64), u64>,
    /// token → its heartbeat group, for cancel-on-close.
    hb_index: HashMap<u64, GroupKey>,
    scratch: Vec<u8>,
}

fn shard_loop(handle: Arc<ShardHandle>, epoll: sys::Epoll) {
    let mut st = ShardState {
        epoll,
        conns: HashMap::new(),
        wheel: TimerWheel::new(DEFAULT_SLOTS, DEFAULT_TICK, Instant::now()),
        groups: HashMap::new(),
        group_cursor: HashMap::new(),
        hb_index: HashMap::new(),
        scratch: vec![0u8; READ_CHUNK],
    };
    let mut events: Vec<(u64, u32)> = Vec::with_capacity(1024);
    let mut fired: Vec<GroupKey> = Vec::new();
    // Connections that exhausted their read budget last pass: their
    // sockets hold more data but (being edge-triggered) will produce no
    // new edge for it, so the loop must revisit them itself.
    let mut again: Vec<u64> = Vec::new();
    loop {
        let timeout_ms = if !again.is_empty() {
            0 // budget-paused connections have data waiting right now
        } else {
            match st.wheel.next_deadline() {
                None => -1,
                Some(deadline) => {
                    let now = Instant::now();
                    if deadline <= now {
                        0
                    } else {
                        // +1 rounds up so we never wake a hair early and spin.
                        (deadline.duration_since(now).as_millis().min(60_000) as i32) + 1
                    }
                }
            }
        };
        events.clear();
        if st.epoll.wait(&mut events, timeout_ms).is_err() {
            // Pathological (EBADF/ENOMEM): back off instead of spinning.
            std::thread::sleep(Duration::from_millis(10));
            continue;
        }
        psf_telemetry::counter!("psf.switchboard.reactor.wakeups").inc();
        // Commands before readiness: a `Register` must be in the table
        // before its socket's first readable edge is serviced.
        let cmds: Vec<Command> = std::mem::take(&mut *handle.queue.lock());
        for cmd in cmds {
            apply_command(&mut st, cmd, &mut again);
        }
        // Give budget-paused connections their next slice before fresh
        // events, so arrival order cannot starve a paused connection.
        let paused: Vec<u64> = std::mem::take(&mut again);
        for token in paused {
            service_conn(&mut st, token, &mut again);
        }
        for &(token, ev) in &events {
            if token == WAKE_TOKEN {
                handle.wake.drain();
                continue;
            }
            if ev & sys::EPOLLOUT != 0 {
                // The socket drained: push out backlogged sends. Failure
                // here is a dead transport.
                if let Some(Err(_)) = st.conns.get(&token).map(|c| flush_outbound(&c.inner)) {
                    close_token(&mut st, token);
                    continue;
                }
            }
            // RDHUP without IN still needs a service pass: the drain is
            // what observes EOF and retires the connection.
            if ev & (sys::EPOLLIN | sys::EPOLLRDHUP) != 0 {
                service_conn(&mut st, token, &mut again);
            }
            // A pure error/hangup edge may carry no readable data at all;
            // retire the connection rather than wait for a read to fail.
            if ev & (sys::EPOLLERR | sys::EPOLLHUP) != 0 {
                close_token(&mut st, token);
            }
        }
        fired.clear();
        st.wheel.advance(Instant::now(), &mut fired);
        for key in fired.drain(..) {
            fire_group(&mut st, key);
        }
    }
}

fn apply_command(st: &mut ShardState, cmd: Command, again: &mut Vec<u64>) {
    match cmd {
        Command::Register {
            token,
            stream,
            inner,
        } => {
            // The channel may have been closed while this command sat in
            // the queue; registering it would leak the fd forever.
            if inner.is_closed() {
                mark_closed(&inner);
                return;
            }
            if st
                .epoll
                .add(
                    stream.as_raw_fd(),
                    token,
                    sys::EPOLLIN | sys::EPOLLOUT | sys::EPOLLET | sys::EPOLLRDHUP,
                )
                .is_err()
            {
                mark_closed(&inner);
                return;
            }
            st.conns.insert(
                token,
                Conn {
                    stream,
                    inner,
                    partial: Vec::new(),
                },
            );
            // Bytes that raced registration produce an edge on ADD, but
            // drain once explicitly to stay independent of that timing.
            service_conn(st, token, again);
        }
        Command::Heartbeat {
            token,
            inner,
            interval,
            peer,
        } => add_heartbeat(st, token, inner, interval, peer),
        Command::Close { token } => close_token(st, token),
    }
}

// --------------------------------------------------------- heartbeats --

/// Deterministic per-token phase inside the interval (splitmix64), so
/// group timers spread over the interval instead of firing in lockstep.
fn stagger(token: u64, interval: Duration) -> Duration {
    let mut z = token.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    Duration::from_micros(z % interval.as_micros().max(1) as u64)
}

fn add_heartbeat(
    st: &mut ShardState,
    token: u64,
    inner: Weak<ChannelInner>,
    interval: Duration,
    peer: Option<IpAddr>,
) {
    let key = match peer {
        Some(ip) => {
            let interval_us = interval.as_micros() as u64;
            let cursor = st.group_cursor.entry((ip, interval_us)).or_insert(0);
            let mut key = GroupKey::Host {
                ip,
                interval_us,
                bucket: *cursor,
            };
            if st
                .groups
                .get(&key)
                .is_some_and(|g| g.members.len() >= HB_GROUP_CAP)
            {
                *cursor += 1;
                key = GroupKey::Host {
                    ip,
                    interval_us,
                    bucket: *cursor,
                };
            }
            key
        }
        None => GroupKey::Solo { token },
    };
    st.hb_index.insert(token, key.clone());
    if let Some(group) = st.groups.get_mut(&key) {
        group.members.push((token, inner));
        return;
    }
    let timer = st
        .wheel
        .schedule_at(Instant::now() + stagger(token, interval), key.clone());
    st.groups.insert(
        key,
        Group {
            timer,
            interval,
            members: vec![(token, inner)],
        },
    );
}

fn fire_group(st: &mut ShardState, key: GroupKey) {
    let Some(mut group) = st.groups.remove(&key) else {
        return;
    };
    psf_telemetry::counter!("psf.switchboard.reactor.timer_fires").inc();
    let mut dead: Vec<u64> = Vec::new();
    group.members.retain(|(token, weak)| match weak.upgrade() {
        Some(inner) if !inner.is_closed() => {
            if send_heartbeat_frame(&inner).is_ok() {
                true
            } else {
                // Sends are nonblocking and buffered, so a failure means
                // the transport is dead or its backlog is over cap (peer
                // stopped draining). Close the channel so the member
                // leaves the wheel instead of firing forever.
                mark_closed(&inner);
                dead.push(*token);
                false
            }
        }
        _ => {
            dead.push(*token);
            false
        }
    });
    for token in dead {
        st.hb_index.remove(&token);
    }
    if group.members.is_empty() {
        return; // group dissolves; timer already consumed by firing
    }
    if group.members.len() > 1 {
        psf_telemetry::counter!("psf.switchboard.reactor.coalesced_heartbeats")
            .add(group.members.len() as u64 - 1);
    }
    group.timer = st
        .wheel
        .schedule_at(Instant::now() + group.interval, key.clone());
    st.groups.insert(key, group);
}

// ---------------------------------------------------------- data path --

fn close_token(st: &mut ShardState, token: u64) {
    if let Some(conn) = st.conns.remove(&token) {
        let _ = st.epoll.del(conn.stream.as_raw_fd());
        mark_closed(&conn.inner);
    }
    if let Some(key) = st.hb_index.remove(&token) {
        let emptied = match st.groups.get_mut(&key) {
            Some(group) => {
                group.members.retain(|(t, _)| *t != token);
                group.members.is_empty()
            }
            None => false,
        };
        if emptied {
            // Cancel-on-close: the last member leaving tears the group's
            // wheel entry down instead of letting it fire into nothing.
            if let Some(group) = st.groups.remove(&key) {
                st.wheel.cancel(group.timer);
            }
        }
    }
}

/// Outcome of one budgeted service pass over a connection.
enum ServiceOutcome {
    /// Socket drained to `EWOULDBLOCK`; the next edge re-arms it.
    Idle,
    /// Read budget exhausted with data (possibly) still queued: the
    /// caller must revisit this token without waiting for an edge.
    Again,
    /// EOF, transport error, or protocol violation: close.
    Dead,
}

fn service_conn(st: &mut ShardState, token: u64, again: &mut Vec<u64>) {
    let outcome = {
        let ShardState { conns, scratch, .. } = st;
        let Some(conn) = conns.get_mut(&token) else {
            return;
        };
        drain_readable(conn, scratch)
    };
    match outcome {
        ServiceOutcome::Idle => {}
        ServiceOutcome::Again => again.push(token),
        ServiceOutcome::Dead => close_token(st, token),
    }
}

/// Edge-triggered service: read until `EWOULDBLOCK` or the per-pass
/// budget, reassemble length-prefixed frames, dispatch them, and flush
/// every response the burst staged in one vectored write.
fn drain_readable(conn: &mut Conn, scratch: &mut [u8]) -> ServiceOutcome {
    let mut responses: Vec<PooledBuf> = Vec::new();
    let mut consumed = 0usize;
    let mut outcome = ServiceOutcome::Idle;
    loop {
        if consumed >= READ_PASS_BUDGET {
            // Fairness cap: yield the shard to its other connections and
            // timers; the loop revisits this token next pass.
            outcome = ServiceOutcome::Again;
            break;
        }
        match conn.stream.read(scratch) {
            Ok(0) => {
                outcome = ServiceOutcome::Dead;
                break;
            }
            Ok(n) => {
                consumed += n;
                conn.partial.extend_from_slice(&scratch[..n]);
                if !drain_frames(conn, &mut responses) {
                    outcome = ServiceOutcome::Dead;
                    break;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                outcome = ServiceOutcome::Dead;
                break;
            }
        }
    }
    if !responses.is_empty() && send_pooled_frames(&conn.inner, &mut responses).is_err() {
        outcome = ServiceOutcome::Dead;
    }
    outcome
}

fn drain_frames(conn: &mut Conn, responses: &mut Vec<PooledBuf>) -> bool {
    let mut off = 0usize;
    let mut ok = true;
    while conn.partial.len() - off >= 4 {
        let len = u32::from_le_bytes(conn.partial[off..off + 4].try_into().unwrap()) as usize;
        if len > MAX_FRAME {
            ok = false;
            break;
        }
        if conn.partial.len() - off - 4 < len {
            break; // frame still arriving
        }
        let frame = conn.partial[off + 4..off + 4 + len].to_vec();
        off += 4 + len;
        if !process_frame(&conn.inner, frame, responses) {
            ok = false;
            break;
        }
    }
    if off > 0 {
        conn.partial.drain(..off);
    }
    // An idle connection must not pin a burst-sized reassembly buffer.
    if conn.partial.is_empty() && conn.partial.capacity() > READ_CHUNK {
        conn.partial = Vec::new();
    }
    ok
}
