//! The audited unsafe boundary of the reactor: raw syscall bindings for
//! `epoll_create1`/`epoll_ctl`/`epoll_wait`, `eventfd`, and
//! `getrlimit`/`setrlimit`, wrapped in safe owning types. Linux-only by
//! construction (epoll, eventfd, and the `RLIMIT_NOFILE` constant are
//! Linux ABI); the module is compiled solely on `target_os = "linux"`
//! and other platforms fall back to the threaded backend.
//!
//! This is the **only** module in the workspace outside `crates/crypto`
//! permitted to contain `unsafe` (CI greps for violations). The rules
//! that keep it auditable:
//!
//! * Every `unsafe` block is a single FFI call whose arguments are
//!   constructed immediately above it from owned stack data — no
//!   pointer arithmetic, no lifetimes crossing the boundary.
//! * File descriptors are owned by [`Epoll`]/[`WakeFd`] and closed
//!   exactly once in `Drop`; raw fds borrowed from `std` types
//!   (`TcpStream::as_raw_fd`) are never stored here.
//! * No allocation is handed to or received from the kernel beyond the
//!   caller-provided event buffer, whose length is passed explicitly.
//!
//! The symbols are declared `extern "C"` against libc, which `std`
//! already links — no external crate is involved.

use std::io;
use std::os::fd::RawFd;

// ---------------------------------------------------------- constants --

/// Readable event (level or edge).
pub const EPOLLIN: u32 = 0x001;
/// Writable event — with `EPOLLET`, an edge fires when a previously full
/// socket buffer drains, which is when send backlogs flush.
pub const EPOLLOUT: u32 = 0x004;
/// Error condition on the fd.
pub const EPOLLERR: u32 = 0x008;
/// Hang-up (peer closed both directions).
pub const EPOLLHUP: u32 = 0x010;
/// Peer shut down its writing half.
pub const EPOLLRDHUP: u32 = 0x2000;
/// Edge-triggered delivery.
pub const EPOLLET: u32 = 1 << 31;

const EPOLL_CLOEXEC: i32 = 0o2000000;
const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;

const EFD_CLOEXEC: i32 = 0o2000000;
const EFD_NONBLOCK: i32 = 0o4000;

const RLIMIT_NOFILE: i32 = 7;

// ------------------------------------------------------- declarations --

/// `struct epoll_event`. Packed on x86_64 (the kernel ABI there); the
/// natural `repr(C)` layout matches every other architecture.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

#[repr(C)]
struct Rlimit {
    cur: u64,
    max: u64,
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    fn eventfd(initval: u32, flags: i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    fn close(fd: i32) -> i32;
    fn getrlimit(resource: i32, rlim: *mut Rlimit) -> i32;
    fn setrlimit(resource: i32, rlim: *const Rlimit) -> i32;
}

// ------------------------------------------------------------- epoll --

/// An owned epoll instance.
pub struct Epoll {
    fd: RawFd,
}

impl Epoll {
    /// Create a close-on-exec epoll instance.
    pub fn new() -> io::Result<Epoll> {
        // SAFETY: no pointers; returns a new fd or -1.
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Epoll { fd })
    }

    /// Register `fd` for `events`, tagging readiness reports with `token`.
    pub fn add(&self, fd: RawFd, token: u64, events: u32) -> io::Result<()> {
        let mut ev = EpollEvent {
            events,
            data: token,
        };
        // SAFETY: `ev` is a live stack value for the duration of the call.
        let rc = unsafe { epoll_ctl(self.fd, EPOLL_CTL_ADD, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Deregister `fd`. Failure is reported but harmless if the fd was
    /// already closed (the kernel removes closed fds automatically).
    pub fn del(&self, fd: RawFd) -> io::Result<()> {
        let mut ev = EpollEvent { events: 0, data: 0 };
        // SAFETY: `ev` is a live stack value (required pre-2.6.9, ignored
        // since).
        let rc = unsafe { epoll_ctl(self.fd, EPOLL_CTL_DEL, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Wait up to `timeout_ms` (−1 = forever) and append `(token, events)`
    /// pairs to `out`. `EINTR` reports zero events.
    pub fn wait(&self, out: &mut Vec<(u64, u32)>, timeout_ms: i32) -> io::Result<usize> {
        const MAX_EVENTS: usize = 1024;
        let mut buf = [EpollEvent { events: 0, data: 0 }; MAX_EVENTS];
        // SAFETY: `buf` is a live stack array and its length is passed.
        let n = unsafe { epoll_wait(self.fd, buf.as_mut_ptr(), MAX_EVENTS as i32, timeout_ms) };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(err);
        }
        for ev in buf.iter().take(n as usize) {
            // Copy out of the (possibly packed) struct by value.
            let (data, events) = (ev.data, ev.events);
            out.push((data, events));
        }
        Ok(n as usize)
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        // SAFETY: `self.fd` is owned and closed exactly once.
        unsafe { close(self.fd) };
    }
}

// ----------------------------------------------------------- eventfd --

/// An owned nonblocking eventfd used to interrupt `epoll_wait` from
/// other threads.
pub struct WakeFd {
    fd: RawFd,
}

impl WakeFd {
    /// Create a nonblocking, close-on-exec eventfd.
    pub fn new() -> io::Result<WakeFd> {
        // SAFETY: no pointers; returns a new fd or -1.
        let fd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(WakeFd { fd })
    }

    /// The raw fd, for epoll registration. The fd remains owned by
    /// `self`.
    pub fn raw(&self) -> RawFd {
        self.fd
    }

    /// Signal the reactor. Errors are ignored: `EAGAIN` means the
    /// counter is already saturated, i.e. a wakeup is already pending.
    pub fn wake(&self) {
        let one: u64 = 1;
        let buf = one.to_ne_bytes();
        // SAFETY: `buf` is a live 8-byte stack array and its length is
        // passed.
        unsafe { write(self.fd, buf.as_ptr(), buf.len()) };
    }

    /// Consume pending wakeups (one nonblocking read resets the eventfd
    /// counter to zero).
    pub fn drain(&self) {
        let mut buf = [0u8; 8];
        // SAFETY: `buf` is a live 8-byte stack array and its length is
        // passed.
        unsafe { read(self.fd, buf.as_mut_ptr(), buf.len()) };
    }
}

impl Drop for WakeFd {
    fn drop(&mut self) {
        // SAFETY: `self.fd` is owned and closed exactly once.
        unsafe { close(self.fd) };
    }
}

// ------------------------------------------------------------ rlimit --

/// Raise the soft `RLIMIT_NOFILE` to the hard limit and return the
/// effective `(soft, hard)` pair. Benches use this to size their channel
/// counts to what the environment actually permits.
pub fn raise_nofile_limit() -> (u64, u64) {
    let mut lim = Rlimit { cur: 0, max: 0 };
    // SAFETY: `lim` is a live stack value.
    if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } != 0 {
        return (1024, 1024);
    }
    if lim.cur < lim.max {
        let want = Rlimit {
            cur: lim.max,
            max: lim.max,
        };
        // SAFETY: `want` is a live stack value.
        if unsafe { setrlimit(RLIMIT_NOFILE, &want) } == 0 {
            lim.cur = lim.max;
        }
    }
    (lim.cur, lim.max)
}
