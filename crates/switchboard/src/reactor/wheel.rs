//! Hashed timer wheel driving reactor heartbeats: one wheel per shard
//! replaces the per-channel `swbd-heartbeat` threads.
//!
//! Deadlines quantize (rounding **up**, so nothing fires early) onto a
//! ring of tick-wide slots. Scheduling and cancelling are O(1)-ish
//! (cancel scans one slot); advancing visits only the slots whose ticks
//! have elapsed. Entries whose deadline lies one or more full rotations
//! in the future simply stay in their slot until a visit finds their
//! tick reached — the classic "cascade by retention" hashed-wheel
//! scheme, which never migrates entries between slots.
//!
//! The wheel is purely a data structure over explicit `Instant`s — no
//! clock reads, no threads — so tests drive it deterministically with a
//! synthetic timeline.

use std::time::{Duration, Instant};

/// Default slot count: 512 × 10 ms tick ≈ 5 s horizon before any entry
/// needs to cascade.
pub const DEFAULT_SLOTS: usize = 512;

/// Default tick width. Must stay at or below the shortest heartbeat
/// interval tests rely on (20 ms) so quantization cannot starve them.
pub const DEFAULT_TICK: Duration = Duration::from_millis(10);

/// Handle for cancelling a scheduled timer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimerId {
    id: u64,
    slot: u32,
}

struct Entry<T> {
    id: u64,
    deadline_tick: u64,
    payload: T,
}

/// A hashed timer wheel holding payloads of type `T`.
pub struct TimerWheel<T> {
    slots: Vec<Vec<Entry<T>>>,
    tick: Duration,
    epoch: Instant,
    /// First tick index not yet processed by [`TimerWheel::advance`].
    next_tick: u64,
    live: usize,
    next_id: u64,
}

impl<T> TimerWheel<T> {
    /// Create a wheel of `slots` slots of `tick` width, with tick 0 at
    /// `epoch`.
    pub fn new(slots: usize, tick: Duration, epoch: Instant) -> TimerWheel<T> {
        assert!(slots > 0 && !tick.is_zero());
        TimerWheel {
            slots: (0..slots).map(|_| Vec::new()).collect(),
            tick,
            epoch,
            next_tick: 0,
            live: 0,
            next_id: 0,
        }
    }

    /// The wheel's tick width.
    pub fn tick(&self) -> Duration {
        self.tick
    }

    /// Live (scheduled, not yet fired or cancelled) entries.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no entries are scheduled.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Quantize `deadline` to a tick index, rounding up and clamping to
    /// the first unprocessed tick (a deadline in the past fires on the
    /// next advance, never retroactively).
    fn tick_of(&self, deadline: Instant) -> u64 {
        let offset = deadline.saturating_duration_since(self.epoch);
        let ticks = offset.as_nanos().div_ceil(self.tick.as_nanos().max(1)) as u64;
        ticks.max(self.next_tick)
    }

    /// Schedule `payload` to fire at `deadline`.
    pub fn schedule_at(&mut self, deadline: Instant, payload: T) -> TimerId {
        let deadline_tick = self.tick_of(deadline);
        let slot = (deadline_tick % self.slots.len() as u64) as u32;
        let id = self.next_id;
        self.next_id += 1;
        self.slots[slot as usize].push(Entry {
            id,
            deadline_tick,
            payload,
        });
        self.live += 1;
        TimerId { id, slot }
    }

    /// Cancel a scheduled timer. Returns whether it was still pending.
    pub fn cancel(&mut self, timer: TimerId) -> bool {
        let slot = &mut self.slots[timer.slot as usize];
        if let Some(pos) = slot.iter().position(|e| e.id == timer.id) {
            slot.swap_remove(pos);
            self.live -= 1;
            true
        } else {
            false
        }
    }

    /// The earliest pending deadline, if any. O(live) — shards hold one
    /// entry per heartbeat *group*, so this stays tiny even at 100k
    /// channels.
    pub fn next_deadline(&self) -> Option<Instant> {
        let tick = self
            .slots
            .iter()
            .flat_map(|s| s.iter().map(|e| e.deadline_tick))
            .min()?;
        // Multiply in u64 nanoseconds: `self.tick * tick as u32` would
        // truncate the tick index and wrap after 2^32 ticks (~497 days at
        // the 10 ms default), yielding a past deadline and a busy-spinning
        // shard loop. Saturation caps the offset at ~584 years.
        let offset = (self.tick.as_nanos() as u64).saturating_mul(tick);
        Some(self.epoch + Duration::from_nanos(offset))
    }

    /// Fire every entry whose deadline tick has been reached by `now`,
    /// pushing payloads into `fired` (order within a batch is
    /// unspecified). Entries in visited slots whose deadline lies a full
    /// rotation ahead are retained — the cascade.
    pub fn advance(&mut self, now: Instant, fired: &mut Vec<T>) {
        let elapsed = now.saturating_duration_since(self.epoch);
        let now_tick = (elapsed.as_nanos() / self.tick.as_nanos().max(1)) as u64;
        if now_tick < self.next_tick {
            return;
        }
        let n = self.slots.len() as u64;
        // Visiting more than one full rotation is redundant — every slot
        // has been examined once by then.
        let span = (now_tick - self.next_tick + 1).min(n);
        for i in 0..span {
            let slot = ((self.next_tick + i) % n) as usize;
            let entries = &mut self.slots[slot];
            let mut j = 0;
            while j < entries.len() {
                if entries[j].deadline_tick <= now_tick {
                    let e = entries.swap_remove(j);
                    self.live -= 1;
                    fired.push(e.payload);
                } else {
                    j += 1;
                }
            }
        }
        self.next_tick = now_tick + 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wheel(slots: usize, tick_ms: u64) -> (TimerWheel<&'static str>, Instant) {
        let epoch = Instant::now();
        (
            TimerWheel::new(slots, Duration::from_millis(tick_ms), epoch),
            epoch,
        )
    }

    #[test]
    fn fires_at_quantized_deadline_never_early() {
        let (mut w, epoch) = wheel(8, 10);
        w.schedule_at(epoch + Duration::from_millis(15), "a"); // rounds up to tick 2
        let mut fired = Vec::new();
        w.advance(epoch + Duration::from_millis(10), &mut fired);
        assert!(fired.is_empty(), "must not fire before its quantized tick");
        w.advance(epoch + Duration::from_millis(20), &mut fired);
        assert_eq!(fired, vec!["a"]);
        assert!(w.is_empty());
    }

    #[test]
    fn cascade_entries_survive_full_rotations() {
        // 4 slots × 10 ms = 40 ms horizon; a 95 ms deadline shares slot
        // (tick 10 % 4 == 2) with a 25 ms one (tick 3... no: tick 3 % 4
        // == 3). Pick deadlines landing in the same slot: ticks 2 and 10.
        let (mut w, epoch) = wheel(4, 10);
        w.schedule_at(epoch + Duration::from_millis(20), "near"); // tick 2
        w.schedule_at(epoch + Duration::from_millis(100), "far"); // tick 10, same slot
        let mut fired = Vec::new();
        w.advance(epoch + Duration::from_millis(20), &mut fired);
        assert_eq!(fired, vec!["near"], "far entry must cascade, not fire");
        assert_eq!(w.len(), 1);
        // A sweep past several rotations reaches it exactly once.
        fired.clear();
        w.advance(epoch + Duration::from_millis(100), &mut fired);
        assert_eq!(fired, vec!["far"]);
        fired.clear();
        w.advance(epoch + Duration::from_millis(200), &mut fired);
        assert!(fired.is_empty());
    }

    #[test]
    fn coalescing_window_groups_same_tick() {
        // Entries whose raw deadlines differ by less than a tick quantize
        // to the same tick and fire in one advance — the coalescing
        // window the heartbeat groups build on.
        let (mut w, epoch) = wheel(16, 10);
        w.schedule_at(epoch + Duration::from_millis(11), "a");
        w.schedule_at(epoch + Duration::from_millis(15), "b");
        w.schedule_at(epoch + Duration::from_millis(19), "c");
        w.schedule_at(epoch + Duration::from_millis(21), "later");
        let mut fired = Vec::new();
        w.advance(epoch + Duration::from_millis(20), &mut fired);
        fired.sort_unstable();
        assert_eq!(fired, vec!["a", "b", "c"], "one wakeup serves the window");
        fired.clear();
        w.advance(epoch + Duration::from_millis(30), &mut fired);
        assert_eq!(fired, vec!["later"]);
    }

    #[test]
    fn cancel_on_close_removes_pending_entry() {
        let (mut w, epoch) = wheel(8, 10);
        let keep = w.schedule_at(epoch + Duration::from_millis(10), "keep");
        let gone = w.schedule_at(epoch + Duration::from_millis(10), "gone");
        assert!(w.cancel(gone));
        assert!(!w.cancel(gone), "double cancel reports not-pending");
        let mut fired = Vec::new();
        w.advance(epoch + Duration::from_millis(50), &mut fired);
        assert_eq!(fired, vec!["keep"]);
        assert!(!w.cancel(keep), "fired entries are no longer cancellable");
        assert!(w.is_empty());
    }

    #[test]
    fn past_deadlines_fire_on_next_advance() {
        let (mut w, epoch) = wheel(8, 10);
        let mut fired = Vec::new();
        w.advance(epoch + Duration::from_millis(500), &mut fired); // next_tick = 51
        w.schedule_at(epoch, "stale"); // clamped forward to tick 51
        assert!(w.next_deadline().is_some());
        w.advance(epoch + Duration::from_millis(510), &mut fired);
        assert_eq!(fired, vec!["stale"]);
    }

    #[test]
    fn next_deadline_survives_past_u32_ticks() {
        // A deadline more than 2^32 ticks out (≈497 days at 10 ms) must
        // not wrap into the past — the regression was a u32 truncation of
        // the tick index in the deadline computation.
        let (mut w, epoch) = wheel(8, 10);
        let far = epoch + Duration::from_secs(60 * 60 * 24 * 500); // 500 days
        w.schedule_at(far, "eventual");
        let deadline = w.next_deadline().expect("entry pending");
        assert!(
            deadline >= far,
            "deadline wrapped into the past: {deadline:?} < {far:?}"
        );
    }

    #[test]
    fn next_deadline_tracks_minimum() {
        let (mut w, epoch) = wheel(8, 10);
        assert!(w.next_deadline().is_none());
        w.schedule_at(epoch + Duration::from_millis(70), "late");
        let id = w.schedule_at(epoch + Duration::from_millis(30), "soon");
        assert_eq!(w.next_deadline(), Some(epoch + Duration::from_millis(30)));
        w.cancel(id);
        assert_eq!(w.next_deadline(), Some(epoch + Duration::from_millis(70)));
    }
}
