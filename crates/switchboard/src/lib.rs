//! # psf-switchboard
//!
//! **Switchboard** (HPDC'03 §4.3): "a novel communication abstraction …
//! which permits the establishment of secure, authenticated, and
//! *continuously* authorized and monitored connections between a pair of
//! components. The latter property distinguishes Switchboard from
//! abstractions like SSL/TLS."
//!
//! The pieces, mapped to the paper:
//!
//! * **Authorization suites** ([`suite`]) — "the components at either end
//!   provide their authorization suites — PKI identities (including
//!   private keys for authentication), dRBAC credentials to be supplied to
//!   the partner, and `Authorizer` objects for evaluating the partner's
//!   credentials. Authorizers generate `AuthorizationMonitor`s, which
//!   inform either partner when the trust relationship changes."
//! * **Handshake** ([`handshake`]) — mutual Ed25519 identity proof bound
//!   to an X25519 key exchange; ChaCha20-Poly1305 record keys derived via
//!   HKDF; credential sets exchanged and evaluated before the channel
//!   opens.
//! * **Channel** ([`channel`]) — sequence-numbered AEAD records (replay
//!   rejection by construction), "replay-resistant heartbeats that
//!   indicate liveness and round-trip latency", and revocation-driven
//!   re-validation: when the dRBAC proof underlying the peer's
//!   authorization is invalidated, the `AuthorizationMonitor` fires, the
//!   channel refuses further application traffic, and the peer may present
//!   fresh credentials to re-validate.
//! * **RPC** ([`rpc`]) — "a two-way procedure-call (RPC) interface" on
//!   which the views runtime routes remote method invocations.
//! * **Transports** ([`transport`]) — real TCP (loopback or otherwise) and
//!   an in-memory pair for deterministic tests and simulation. A
//!   `Plain` mode models the paper's unauthenticated `rmi` exposure type.
//! * **Streams** ([`stream`]) — SwitchboardStream-style bulk transfer:
//!   ordered chunks with an end-to-end digest, inheriting the channel's
//!   encryption and continuous authorization.

// `deny` rather than `forbid`: the reactor's audited sys layer
// (`reactor::sys`, the one module CI's unsafe_code audit permits
// outside `crates/crypto`) opts back in with a scoped `allow`.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod fault;
pub mod handshake;
pub mod pool;
// The reactor's syscall shim is Linux ABI (epoll, eventfd, packed
// x86_64 epoll_event, RLIMIT_NOFILE=7); elsewhere a stub module keeps
// the API surface and channels degrade to the threaded backend.
#[cfg(target_os = "linux")]
pub mod reactor;
#[cfg(not(target_os = "linux"))]
#[path = "reactor_fallback.rs"]
pub mod reactor;
pub mod rpc;
pub mod stream;
pub mod suite;
pub mod transport;

pub use channel::{
    Channel, ChannelBackend, ChannelConfig, ChannelStatus, Mode, PendingCall, TrafficStats,
};
pub use fault::{Fault, FaultLog, FaultyTransport};
pub use handshake::{
    connect_tcp, establish_plain, establish_secure, listen_tcp, pair_in_memory,
    pair_in_memory_plain, Listener,
};
pub use pool::{FramePool, PooledBuf};
pub use stream::{send_stream, serve_streams, StreamRegistry, StreamWriter};
pub use suite::{AuthSuite, AuthorizationMonitor, Authorizer, ClockRef};
pub use transport::{MemTransport, TcpTransport, Transport};

/// Errors surfaced by Switchboard operations.
#[derive(Debug)]
pub enum SwitchboardError {
    /// Underlying socket/transport failure.
    Io(std::io::Error),
    /// Cryptographic failure (bad tag, bad signature, bad point).
    Crypto(psf_crypto::CryptoError),
    /// Handshake protocol violation.
    Handshake(String),
    /// The peer's credentials did not authorize the required role.
    Unauthorized(String),
    /// The peer's authorization was revoked mid-connection; the channel
    /// requires re-validation before passing further traffic.
    RevalidationRequired(String),
    /// The channel is closed.
    Closed,
    /// An RPC timed out.
    Timeout,
    /// Malformed frame or protocol state violation.
    Protocol(String),
    /// The remote handler reported an application error.
    Remote(String),
}

impl Clone for SwitchboardError {
    fn clone(&self) -> Self {
        match self {
            // io::Error is not Clone; preserve kind + message.
            SwitchboardError::Io(e) => {
                SwitchboardError::Io(std::io::Error::new(e.kind(), e.to_string()))
            }
            SwitchboardError::Crypto(e) => SwitchboardError::Crypto(*e),
            SwitchboardError::Handshake(m) => SwitchboardError::Handshake(m.clone()),
            SwitchboardError::Unauthorized(m) => SwitchboardError::Unauthorized(m.clone()),
            SwitchboardError::RevalidationRequired(m) => {
                SwitchboardError::RevalidationRequired(m.clone())
            }
            SwitchboardError::Closed => SwitchboardError::Closed,
            SwitchboardError::Timeout => SwitchboardError::Timeout,
            SwitchboardError::Protocol(m) => SwitchboardError::Protocol(m.clone()),
            SwitchboardError::Remote(m) => SwitchboardError::Remote(m.clone()),
        }
    }
}

impl core::fmt::Display for SwitchboardError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SwitchboardError::Io(e) => write!(f, "transport error: {e}"),
            SwitchboardError::Crypto(e) => write!(f, "crypto error: {e}"),
            SwitchboardError::Handshake(m) => write!(f, "handshake failed: {m}"),
            SwitchboardError::Unauthorized(m) => write!(f, "peer unauthorized: {m}"),
            SwitchboardError::RevalidationRequired(m) => {
                write!(f, "authorization revoked, revalidation required: {m}")
            }
            SwitchboardError::Closed => write!(f, "channel closed"),
            SwitchboardError::Timeout => write!(f, "operation timed out"),
            SwitchboardError::Protocol(m) => write!(f, "protocol violation: {m}"),
            SwitchboardError::Remote(m) => write!(f, "remote error: {m}"),
        }
    }
}

impl std::error::Error for SwitchboardError {}

impl From<std::io::Error> for SwitchboardError {
    fn from(e: std::io::Error) -> Self {
        SwitchboardError::Io(e)
    }
}

impl From<psf_crypto::CryptoError> for SwitchboardError {
    fn from(e: psf_crypto::CryptoError) -> Self {
        SwitchboardError::Crypto(e)
    }
}
