//! Reusable frame buffers for the channel data plane.
//!
//! Every outgoing record used to allocate two fresh `Vec<u8>`s (inner
//! frame, then wire frame) and every secure seal a third; under load that
//! is pure allocator churn. A [`FramePool`] keeps a small stack of retired
//! buffers and hands them back out with capacity intact, so steady-state
//! traffic reuses the same allocations. Buffers return to the pool on
//! [`PooledBuf`] drop; the pool is bounded, so bursts simply fall back to
//! the allocator and the surplus is freed on return.

use parking_lot::Mutex;
use std::sync::Arc;

/// Default bound on pooled buffers per channel endpoint: enough for the
/// send path plus a full pipeline window of responses.
pub(crate) const DEFAULT_POOL_SLOTS: usize = 64;

/// Buffers with more capacity than this are not retained (a single 16 MiB
/// frame must not pin 16 MiB forever).
const MAX_RETAINED_CAPACITY: usize = 256 * 1024;

/// A bounded stack of reusable `Vec<u8>` frame buffers.
pub struct FramePool {
    slots: Mutex<Vec<Vec<u8>>>,
    max_slots: usize,
}

impl FramePool {
    /// Create a pool retaining at most `max_slots` buffers. The slot
    /// stack itself grows lazily: at 100k reactor channels an eagerly
    /// sized stack would burn `max_slots × 24 B` per channel on pools
    /// that mostly idle.
    pub fn new(max_slots: usize) -> Arc<FramePool> {
        Arc::new(FramePool {
            slots: Mutex::new(Vec::new()),
            max_slots,
        })
    }

    /// Take a cleared buffer with at least `capacity_hint` capacity,
    /// reusing a retired one when available.
    pub fn take(self: &Arc<FramePool>, capacity_hint: usize) -> PooledBuf {
        let reused = self.slots.lock().pop();
        let buf = match reused {
            Some(mut buf) => {
                psf_telemetry::counter!("psf.switchboard.pool.reuse").inc();
                buf.clear();
                if buf.capacity() < capacity_hint {
                    buf.reserve(capacity_hint);
                }
                buf
            }
            None => {
                psf_telemetry::counter!("psf.switchboard.pool.alloc").inc();
                Vec::with_capacity(capacity_hint)
            }
        };
        PooledBuf {
            buf,
            pool: Arc::downgrade(self),
        }
    }

    /// Buffers currently resting in the pool (diagnostics/tests).
    pub fn idle(&self) -> usize {
        self.slots.lock().len()
    }

    fn put_back(&self, buf: Vec<u8>) {
        if buf.capacity() == 0 || buf.capacity() > MAX_RETAINED_CAPACITY {
            return;
        }
        let mut slots = self.slots.lock();
        if slots.len() < self.max_slots {
            slots.push(buf);
        }
    }
}

/// A frame buffer on loan from a [`FramePool`]; dereferences to `Vec<u8>`
/// and returns to the pool when dropped.
pub struct PooledBuf {
    buf: Vec<u8>,
    pool: std::sync::Weak<FramePool>,
}

impl PooledBuf {
    /// Detach the buffer from the pool (it will not be returned).
    pub fn into_vec(mut self) -> Vec<u8> {
        std::mem::take(&mut self.buf)
    }
}

impl std::ops::Deref for PooledBuf {
    type Target = Vec<u8>;
    fn deref(&self) -> &Vec<u8> {
        &self.buf
    }
}

impl std::ops::DerefMut for PooledBuf {
    fn deref_mut(&mut self) -> &mut Vec<u8> {
        &mut self.buf
    }
}

impl Drop for PooledBuf {
    fn drop(&mut self) {
        if let Some(pool) = self.pool.upgrade() {
            pool.put_back(std::mem::take(&mut self.buf));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reuses_returned_buffers() {
        let pool = FramePool::new(4);
        let ptr = {
            let mut b = pool.take(128);
            b.extend_from_slice(b"hello");
            b.as_ptr() as usize
        }; // dropped -> returned
        assert_eq!(pool.idle(), 1);
        let b = pool.take(64);
        assert_eq!(b.len(), 0, "reused buffer is cleared");
        assert_eq!(b.as_ptr() as usize, ptr, "same allocation reused");
        assert_eq!(pool.idle(), 0);
    }

    #[test]
    fn bounded_retention() {
        let pool = FramePool::new(2);
        let bufs: Vec<_> = (0..5).map(|_| pool.take(32)).collect();
        drop(bufs);
        assert_eq!(pool.idle(), 2, "pool keeps at most max_slots buffers");
    }

    #[test]
    fn oversized_buffers_not_retained() {
        let pool = FramePool::new(4);
        {
            let mut b = pool.take(16);
            b.resize(MAX_RETAINED_CAPACITY + 1, 0);
        }
        assert_eq!(pool.idle(), 0);
    }

    #[test]
    fn into_vec_detaches() {
        let pool = FramePool::new(4);
        let mut b = pool.take(16);
        b.extend_from_slice(b"data");
        let v = b.into_vec();
        assert_eq!(v, b"data");
        assert_eq!(pool.idle(), 0);
    }

    #[test]
    fn outlives_pool_gracefully() {
        let pool = FramePool::new(4);
        let b = pool.take(16);
        drop(pool);
        drop(b); // weak upgrade fails; no panic, buffer simply freed
    }
}
