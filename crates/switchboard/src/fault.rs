//! Failure injection: a transport wrapper that corrupts, drops, or
//! duplicates frames per a deterministic schedule. Used to demonstrate
//! that the channel **fails closed**: a tampered or replayed record never
//! surfaces as wrong data — the AEAD/sequence checks kill the channel and
//! pending RPCs resolve to errors.

use crate::transport::{FrameReceiver, FrameSender, Transport};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// What to do to the nth frame (0-indexed) crossing the wrapped sender.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Flip one bit in the frame body.
    CorruptBit {
        /// Which frame to corrupt.
        frame: u64,
        /// Byte offset (mod frame length).
        byte: usize,
    },
    /// Silently drop the frame.
    Drop {
        /// Which frame to drop.
        frame: u64,
    },
    /// Send the frame twice (replay attempt).
    Duplicate {
        /// Which frame to duplicate.
        frame: u64,
    },
}

/// Shared, cloneable record of the faults that actually fired. Obtain it
/// from [`FaultyTransport::log_handle`] *before* the transport is consumed
/// by a handshake; it stays live for the lifetime of the sender.
#[derive(Clone, Default)]
pub struct FaultLog(Arc<Mutex<Vec<Fault>>>);

impl FaultLog {
    /// Snapshot of the faults injected so far, in firing order.
    pub fn injected(&self) -> Vec<Fault> {
        self.0.lock().clone()
    }

    /// Number of faults injected so far.
    pub fn count(&self) -> usize {
        self.0.lock().len()
    }

    fn record(&self, fault: Fault) {
        self.0.lock().push(fault);
    }
}

/// A transport whose *send* side injects the configured faults.
pub struct FaultyTransport<T: Transport> {
    inner: T,
    faults: Arc<Vec<Fault>>,
    log: FaultLog,
}

impl<T: Transport> FaultyTransport<T> {
    /// Wrap a transport with a fault schedule.
    pub fn new(inner: T, faults: Vec<Fault>) -> FaultyTransport<T> {
        FaultyTransport {
            inner,
            faults: Arc::new(faults),
            log: FaultLog::default(),
        }
    }

    /// Faults that have fired so far (empty before the transport is used).
    pub fn injected(&self) -> Vec<Fault> {
        self.log.injected()
    }

    /// A handle to the fault log that survives `split()` — capture it
    /// before handing the transport to a handshake, then assert on which
    /// faults actually fired.
    pub fn log_handle(&self) -> FaultLog {
        self.log.clone()
    }
}

struct FaultySender {
    inner: Box<dyn FrameSender>,
    faults: Arc<Vec<Fault>>,
    counter: AtomicU64,
    log: FaultLog,
}

impl FrameSender for FaultySender {
    fn send(&mut self, frame: &[u8]) -> std::io::Result<()> {
        let n = self.counter.fetch_add(1, Ordering::SeqCst);
        for fault in self.faults.iter() {
            match *fault {
                Fault::CorruptBit { frame: f, byte } if f == n => {
                    let mut tampered = frame.to_vec();
                    if !tampered.is_empty() {
                        let idx = byte % tampered.len();
                        tampered[idx] ^= 0x01;
                    }
                    self.log.record(*fault);
                    return self.inner.send(&tampered);
                }
                Fault::Drop { frame: f } if f == n => {
                    self.log.record(*fault);
                    return Ok(()); // swallowed
                }
                Fault::Duplicate { frame: f } if f == n => {
                    self.log.record(*fault);
                    self.inner.send(frame)?;
                    return self.inner.send(frame);
                }
                _ => {}
            }
        }
        self.inner.send(frame)
    }
}

impl<T: Transport> Transport for FaultyTransport<T> {
    fn split(self: Box<Self>) -> (Box<dyn FrameSender>, Box<dyn FrameReceiver>) {
        let (tx, rx) = Box::new(self.inner).split();
        (
            Box::new(FaultySender {
                inner: tx,
                faults: self.faults,
                counter: AtomicU64::new(0),
                log: self.log,
            }),
            rx,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::{ChannelConfig, ChannelStatus};
    use crate::handshake::{establish_plain, establish_secure};
    use crate::suite::{AuthSuite, Authorizer, ClockRef};
    use crate::transport::MemTransport;
    use crate::SwitchboardError;
    use psf_drbac::entity::{Entity, EntityRegistry};
    use psf_drbac::repository::Repository;
    use psf_drbac::revocation::RevocationBus;
    use psf_drbac::DelegationBuilder;
    use std::time::Duration;

    fn quiet() -> ChannelConfig {
        ChannelConfig {
            heartbeat_interval: None,
            rpc_timeout: Duration::from_millis(500),
            ..Default::default()
        }
    }

    fn suites() -> (AuthSuite, AuthSuite, RevocationBus) {
        let registry = EntityRegistry::new();
        let repo = Repository::new();
        let bus = RevocationBus::new();
        let clock = ClockRef::new();
        let domain = Entity::with_seed("Dom", b"fault");
        let a = Entity::with_seed("A", b"fault");
        let b = Entity::with_seed("B", b"fault");
        for e in [&domain, &a, &b] {
            registry.register(e);
        }
        let ca = DelegationBuilder::new(&domain)
            .subject_entity(&a)
            .role(domain.role("Peer"))
            .sign();
        let cb = DelegationBuilder::new(&domain)
            .subject_entity(&b)
            .role(domain.role("Peer"))
            .sign();
        let auth = || {
            Authorizer::new(
                registry.clone(),
                repo.clone(),
                bus.clone(),
                clock.clone(),
                domain.role("Peer"),
            )
        };
        (
            AuthSuite::new(a, vec![ca], auth()),
            AuthSuite::new(b, vec![cb], auth()),
            bus,
        )
    }

    /// Handshake uses 3 frames per direction (H1, H2, H3); data frames
    /// start at index 3 on each sender.
    const FIRST_DATA_FRAME: u64 = 3;

    #[test]
    fn corrupted_secure_record_fails_closed() {
        let (sa, sb, _bus) = suites();
        let (ta, tb) = MemTransport::pair();
        // Corrupt the client's first data record (the RPC request).
        let fault = Fault::CorruptBit {
            frame: FIRST_DATA_FRAME,
            byte: 20,
        };
        let faulty = FaultyTransport::new(ta, vec![fault]);
        let log = faulty.log_handle();
        assert!(faulty.injected().is_empty(), "nothing fired yet");
        let handle =
            std::thread::spawn(move || establish_secure(Box::new(tb), &sb, false, quiet()));
        let client = establish_secure(Box::new(faulty), &sa, true, quiet()).unwrap();
        let server = handle.join().unwrap().unwrap();
        server.register_handler("x", |_| Ok(b"data".to_vec()));

        // The tampered request kills the server's reader (AEAD failure);
        // the client sees an error — never bogus data.
        let result = client.call("x", b"payload");
        assert!(result.is_err(), "tampered record must not succeed");
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(server.status(), ChannelStatus::Closed);
        // The fault verifiably fired (and only once).
        assert_eq!(log.injected(), vec![fault]);
    }

    #[test]
    fn duplicated_record_is_rejected_as_replay() {
        let (sa, sb, _bus) = suites();
        let (ta, tb) = MemTransport::pair();
        let fault = Fault::Duplicate {
            frame: FIRST_DATA_FRAME,
        };
        let faulty = FaultyTransport::new(ta, vec![fault]);
        let log = faulty.log_handle();
        let handle =
            std::thread::spawn(move || establish_secure(Box::new(tb), &sb, false, quiet()));
        let client = establish_secure(Box::new(faulty), &sa, true, quiet()).unwrap();
        let server = handle.join().unwrap().unwrap();
        server.register_handler("x", |_| Ok(b"ok".to_vec()));

        // First copy may be served; the replayed copy must kill the
        // channel (sequence check), and no second response is produced.
        let _ = client.call("x", b"p");
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(server.status(), ChannelStatus::Closed);
        assert_eq!(log.injected(), vec![fault]);
    }

    #[test]
    fn dropped_frame_times_out_cleanly() {
        // Plain mode so we exercise the sequence check rather than AEAD.
        let (ta, tb) = MemTransport::pair();
        let faulty = FaultyTransport::new(ta, vec![Fault::Drop { frame: 0 }]);
        let log = faulty.log_handle();
        let client = establish_plain(Box::new(faulty), quiet());
        let server = establish_plain(Box::new(tb), quiet());
        server.register_handler("x", |_| Ok(vec![]));
        // The request vanished: the call times out; nothing panics.
        match client.call("x", b"") {
            Err(SwitchboardError::Timeout) | Err(SwitchboardError::Closed) => {}
            other => panic!("expected timeout, got {other:?}"),
        }
        assert_eq!(log.injected(), vec![Fault::Drop { frame: 0 }]);
    }

    #[test]
    fn faults_on_later_frames_leave_earlier_traffic_intact() {
        let (sa, sb, _bus) = suites();
        let (ta, tb) = MemTransport::pair();
        let faulty = FaultyTransport::new(
            ta,
            vec![Fault::CorruptBit {
                frame: FIRST_DATA_FRAME + 2,
                byte: 5,
            }],
        );
        let log = faulty.log_handle();
        let handle =
            std::thread::spawn(move || establish_secure(Box::new(tb), &sb, false, quiet()));
        let client = establish_secure(Box::new(faulty), &sa, true, quiet()).unwrap();
        let server = handle.join().unwrap().unwrap();
        server.register_handler("x", |a| Ok(a.to_vec()));
        // Two clean calls succeed — no fault has fired yet…
        assert_eq!(client.call("x", b"one").unwrap(), b"one");
        assert_eq!(client.call("x", b"two").unwrap(), b"two");
        assert_eq!(log.count(), 0, "clean traffic must not log faults");
        // …the third is the corrupted frame.
        assert!(client.call("x", b"three").is_err());
        assert_eq!(log.count(), 1);
    }
}
