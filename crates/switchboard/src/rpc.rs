//! RPC frame encoding (requests/responses multiplexed over a channel).

/// Status byte on RPC responses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RpcStatus {
    /// Handler succeeded.
    Ok,
    /// Handler returned an application error (body = message).
    Error,
    /// The server refuses service until the client re-validates
    /// (continuous-authorization enforcement).
    RevalidationRequired,
    /// No handler registered for the method.
    NoSuchMethod,
}

impl RpcStatus {
    pub(crate) fn to_u8(self) -> u8 {
        match self {
            RpcStatus::Ok => 0,
            RpcStatus::Error => 1,
            RpcStatus::RevalidationRequired => 2,
            RpcStatus::NoSuchMethod => 3,
        }
    }

    pub(crate) fn from_u8(v: u8) -> Option<RpcStatus> {
        Some(match v {
            0 => RpcStatus::Ok,
            1 => RpcStatus::Error,
            2 => RpcStatus::RevalidationRequired,
            3 => RpcStatus::NoSuchMethod,
            _ => return None,
        })
    }
}

/// Encode an RPC request body: `id(8) || method_len(2) || method || args`.
#[cfg(test)]
pub(crate) fn encode_request(id: u64, method: &str, args: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    encode_request_into(&mut out, id, method, args);
    out
}

/// Borrowed request decode: method and args reference the frame buffer,
/// so dispatch allocates nothing.
pub(crate) fn decode_request(body: &[u8]) -> Option<(u64, &str, &[u8])> {
    if body.len() < 10 {
        return None;
    }
    let id = u64::from_le_bytes(body[..8].try_into().unwrap());
    let mlen = u16::from_le_bytes(body[8..10].try_into().unwrap()) as usize;
    if body.len() < 10 + mlen {
        return None;
    }
    let method = std::str::from_utf8(&body[10..10 + mlen]).ok()?;
    Some((id, method, &body[10 + mlen..]))
}

/// Encode an RPC response body: `id(8) || status(1) || payload`.
#[cfg(test)]
pub(crate) fn encode_response(id: u64, status: RpcStatus, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(9 + payload.len());
    out.extend_from_slice(&id.to_le_bytes());
    out.push(status.to_u8());
    out.extend_from_slice(payload);
    out
}

/// Borrowed response decode; the waiter copies the payload exactly once,
/// into the buffer it hands to the caller.
pub(crate) fn decode_response(body: &[u8]) -> Option<(u64, RpcStatus, &[u8])> {
    if body.len() < 9 {
        return None;
    }
    let id = u64::from_le_bytes(body[..8].try_into().unwrap());
    let status = RpcStatus::from_u8(body[8])?;
    Some((id, status, &body[9..]))
}

/// Append an RPC request body (`id(8) || method_len(2) || method || args`)
/// to an existing (typically pooled, header-reserved) buffer.
pub(crate) fn encode_request_into(out: &mut Vec<u8>, id: u64, method: &str, args: &[u8]) {
    out.reserve(10 + method.len() + args.len());
    out.extend_from_slice(&id.to_le_bytes());
    out.extend_from_slice(&(method.len() as u16).to_le_bytes());
    out.extend_from_slice(method.as_bytes());
    out.extend_from_slice(args);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let body = encode_request(42, "getPhone", b"Alice");
        let (id, m, args) = decode_request(&body).unwrap();
        assert_eq!((id, m, args), (42, "getPhone", &b"Alice"[..]));
    }

    #[test]
    fn response_roundtrip() {
        for status in [
            RpcStatus::Ok,
            RpcStatus::Error,
            RpcStatus::RevalidationRequired,
            RpcStatus::NoSuchMethod,
        ] {
            let body = encode_response(7, status, b"x");
            let (id, s, payload) = decode_response(&body).unwrap();
            assert_eq!((id, s, payload), (7, status, &b"x"[..]));
        }
    }

    #[test]
    fn malformed_rejected() {
        assert!(decode_request(&[0; 5]).is_none());
        assert!(decode_response(&[0; 3]).is_none());
        // Method length overruns the buffer.
        let mut bad = encode_request(1, "m", b"");
        bad[8] = 0xff;
        assert!(decode_request(&bad).is_none());
        // Unknown status byte.
        let mut bad = encode_response(1, RpcStatus::Ok, b"");
        bad[8] = 99;
        assert!(decode_response(&bad).is_none());
    }

    #[test]
    fn empty_method_and_args() {
        let body = encode_request(0, "", b"");
        let (id, m, args) = decode_request(&body).unwrap();
        assert_eq!(id, 0);
        assert!(m.is_empty());
        assert!(args.is_empty());
    }
}
