//! RPC frame encoding (requests/responses multiplexed over a channel).
//!
//! Requests carry a compact trace-context header — 16-byte trace id plus
//! 8-byte parent span id, all-zero when the caller has no live trace — so
//! the server can parent its dispatch span under the caller's span and one
//! request yields one causal tree across both processes. The header sits
//! inside the frame body and is therefore sealed (encrypted and
//! authenticated) with the rest of the frame on secure channels, on both
//! the plain and pipelined RPC paths.

use psf_telemetry::{TraceContext, TraceId};

/// Status byte on RPC responses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RpcStatus {
    /// Handler succeeded.
    Ok,
    /// Handler returned an application error (body = message).
    Error,
    /// The server refuses service until the client re-validates
    /// (continuous-authorization enforcement).
    RevalidationRequired,
    /// No handler registered for the method.
    NoSuchMethod,
}

impl RpcStatus {
    pub(crate) fn to_u8(self) -> u8 {
        match self {
            RpcStatus::Ok => 0,
            RpcStatus::Error => 1,
            RpcStatus::RevalidationRequired => 2,
            RpcStatus::NoSuchMethod => 3,
        }
    }

    pub(crate) fn from_u8(v: u8) -> Option<RpcStatus> {
        Some(match v {
            0 => RpcStatus::Ok,
            1 => RpcStatus::Error,
            2 => RpcStatus::RevalidationRequired,
            3 => RpcStatus::NoSuchMethod,
            _ => return None,
        })
    }
}

/// Bytes of the fixed request header before the method:
/// `id(8) || trace(16) || parent_span(8) || method_len(2)`.
pub(crate) const REQ_HEADER_LEN: usize = 8 + 16 + 8 + 2;

/// Encode an RPC request body (see [`encode_request_into`]).
#[cfg(test)]
pub(crate) fn encode_request(
    id: u64,
    method: &str,
    args: &[u8],
    ctx: Option<TraceContext>,
) -> Vec<u8> {
    let mut out = Vec::new();
    encode_request_into(&mut out, id, method, args, ctx);
    out
}

/// Borrowed request decode: method and args reference the frame buffer,
/// so dispatch allocates nothing. The trace context is `None` when the
/// header's trace id is all-zero (caller had no live trace).
pub(crate) fn decode_request(body: &[u8]) -> Option<(u64, Option<TraceContext>, &str, &[u8])> {
    if body.len() < REQ_HEADER_LEN {
        return None;
    }
    let id = u64::from_le_bytes(body[..8].try_into().unwrap());
    let ctx = TraceId::from_bytes(body[8..24].try_into().unwrap()).map(|trace| {
        let parent = u64::from_le_bytes(body[24..32].try_into().unwrap());
        TraceContext {
            trace,
            parent: (parent != 0).then_some(parent),
        }
    });
    let mlen = u16::from_le_bytes(body[32..34].try_into().unwrap()) as usize;
    if body.len() < REQ_HEADER_LEN + mlen {
        return None;
    }
    let method = std::str::from_utf8(&body[REQ_HEADER_LEN..REQ_HEADER_LEN + mlen]).ok()?;
    Some((id, ctx, method, &body[REQ_HEADER_LEN + mlen..]))
}

/// Encode an RPC response body: `id(8) || status(1) || payload`.
#[cfg(test)]
pub(crate) fn encode_response(id: u64, status: RpcStatus, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(9 + payload.len());
    out.extend_from_slice(&id.to_le_bytes());
    out.push(status.to_u8());
    out.extend_from_slice(payload);
    out
}

/// Borrowed response decode; the waiter copies the payload exactly once,
/// into the buffer it hands to the caller.
pub(crate) fn decode_response(body: &[u8]) -> Option<(u64, RpcStatus, &[u8])> {
    if body.len() < 9 {
        return None;
    }
    let id = u64::from_le_bytes(body[..8].try_into().unwrap());
    let status = RpcStatus::from_u8(body[8])?;
    Some((id, status, &body[9..]))
}

/// Append an RPC request body
/// (`id(8) || trace(16) || parent_span(8) || method_len(2) || method || args`)
/// to an existing (typically pooled, header-reserved) buffer.
pub(crate) fn encode_request_into(
    out: &mut Vec<u8>,
    id: u64,
    method: &str,
    args: &[u8],
    ctx: Option<TraceContext>,
) {
    out.reserve(REQ_HEADER_LEN + method.len() + args.len());
    out.extend_from_slice(&id.to_le_bytes());
    match ctx {
        Some(c) => {
            out.extend_from_slice(&c.trace.to_bytes());
            out.extend_from_slice(&c.parent.unwrap_or(0).to_le_bytes());
        }
        None => out.extend_from_slice(&[0u8; 24]),
    }
    out.extend_from_slice(&(method.len() as u16).to_le_bytes());
    out.extend_from_slice(method.as_bytes());
    out.extend_from_slice(args);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let body = encode_request(42, "getPhone", b"Alice", None);
        let (id, ctx, m, args) = decode_request(&body).unwrap();
        assert_eq!((id, m, args), (42, "getPhone", &b"Alice"[..]));
        assert_eq!(ctx, None);
    }

    #[test]
    fn request_roundtrip_with_trace_context() {
        let ctx = TraceContext {
            trace: TraceId::fresh(),
            parent: Some(77),
        };
        let body = encode_request(42, "getPhone", b"Alice", Some(ctx));
        let (id, decoded, m, args) = decode_request(&body).unwrap();
        assert_eq!((id, m, args), (42, "getPhone", &b"Alice"[..]));
        assert_eq!(decoded, Some(ctx));

        // A context without a parent span round-trips too.
        let root_ctx = TraceContext {
            trace: TraceId::fresh(),
            parent: None,
        };
        let body = encode_request(1, "m", b"", Some(root_ctx));
        let (_, decoded, _, _) = decode_request(&body).unwrap();
        assert_eq!(decoded, Some(root_ctx));
    }

    #[test]
    fn response_roundtrip() {
        for status in [
            RpcStatus::Ok,
            RpcStatus::Error,
            RpcStatus::RevalidationRequired,
            RpcStatus::NoSuchMethod,
        ] {
            let body = encode_response(7, status, b"x");
            let (id, s, payload) = decode_response(&body).unwrap();
            assert_eq!((id, s, payload), (7, status, &b"x"[..]));
        }
    }

    #[test]
    fn malformed_rejected() {
        assert!(decode_request(&[0; 5]).is_none());
        assert!(decode_request(&[0; REQ_HEADER_LEN - 1]).is_none());
        assert!(decode_response(&[0; 3]).is_none());
        // Method length overruns the buffer.
        let mut bad = encode_request(1, "m", b"", None);
        bad[32] = 0xff;
        assert!(decode_request(&bad).is_none());
        // Unknown status byte.
        let mut bad = encode_response(1, RpcStatus::Ok, b"");
        bad[8] = 99;
        assert!(decode_response(&bad).is_none());
    }

    #[test]
    fn empty_method_and_args() {
        let body = encode_request(0, "", b"", None);
        let (id, ctx, m, args) = decode_request(&body).unwrap();
        assert_eq!(id, 0);
        assert_eq!(ctx, None);
        assert!(m.is_empty());
        assert!(args.is_empty());
    }
}
