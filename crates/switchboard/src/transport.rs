//! Framed byte transports: real TCP and an in-memory pair.

use std::io::{Read, Write};
use std::net::TcpStream;

/// Maximum accepted frame size (16 MiB) — guards against hostile length
/// prefixes.
pub const MAX_FRAME: usize = 16 << 20;

/// Sending half of a transport.
pub trait FrameSender: Send {
    /// Send one frame.
    fn send(&mut self, frame: &[u8]) -> std::io::Result<()>;
}

/// Receiving half of a transport.
pub trait FrameReceiver: Send {
    /// Receive one frame, blocking. Returns `UnexpectedEof` when the peer
    /// is gone.
    fn recv(&mut self) -> std::io::Result<Vec<u8>>;
}

/// A bidirectional framed transport that can be split into halves.
pub trait Transport: Send {
    /// Split into independently usable send/recv halves.
    fn split(self: Box<Self>) -> (Box<dyn FrameSender>, Box<dyn FrameReceiver>);
}

// ---------------------------------------------------------------- TCP --

/// Length-prefixed frames over a [`TcpStream`].
pub struct TcpTransport {
    stream: TcpStream,
}

impl TcpTransport {
    /// Wrap a connected stream (sets `TCP_NODELAY` for latency-sensitive
    /// RPC and heartbeats).
    pub fn new(stream: TcpStream) -> std::io::Result<TcpTransport> {
        stream.set_nodelay(true)?;
        Ok(TcpTransport { stream })
    }
}

struct TcpSender(TcpStream);
struct TcpReceiver(TcpStream);

impl Transport for TcpTransport {
    fn split(self: Box<Self>) -> (Box<dyn FrameSender>, Box<dyn FrameReceiver>) {
        let reader = self.stream.try_clone().expect("tcp clone");
        (
            Box::new(TcpSender(self.stream)),
            Box::new(TcpReceiver(reader)),
        )
    }
}

impl FrameSender for TcpSender {
    fn send(&mut self, frame: &[u8]) -> std::io::Result<()> {
        let len = (frame.len() as u32).to_le_bytes();
        self.0.write_all(&len)?;
        self.0.write_all(frame)?;
        Ok(())
    }
}

impl FrameReceiver for TcpReceiver {
    fn recv(&mut self) -> std::io::Result<Vec<u8>> {
        let mut len_buf = [0u8; 4];
        self.0.read_exact(&mut len_buf)?;
        let len = u32::from_le_bytes(len_buf) as usize;
        if len > MAX_FRAME {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "frame exceeds MAX_FRAME",
            ));
        }
        let mut buf = vec![0u8; len];
        self.0.read_exact(&mut buf)?;
        Ok(buf)
    }
}

// ------------------------------------------------------------ in-mem --

/// In-memory transport: a pair of crossbeam channels. Deterministic and
/// fast; used by tests, benches, and the netsim-backed deployments.
pub struct MemTransport {
    tx: crossbeam::channel::Sender<Vec<u8>>,
    rx: crossbeam::channel::Receiver<Vec<u8>>,
}

impl MemTransport {
    /// Create a connected pair.
    pub fn pair() -> (MemTransport, MemTransport) {
        let (tx_ab, rx_ab) = crossbeam::channel::unbounded();
        let (tx_ba, rx_ba) = crossbeam::channel::unbounded();
        (
            MemTransport {
                tx: tx_ab,
                rx: rx_ba,
            },
            MemTransport {
                tx: tx_ba,
                rx: rx_ab,
            },
        )
    }
}

struct MemSender(crossbeam::channel::Sender<Vec<u8>>);
struct MemReceiver(crossbeam::channel::Receiver<Vec<u8>>);

impl Transport for MemTransport {
    fn split(self: Box<Self>) -> (Box<dyn FrameSender>, Box<dyn FrameReceiver>) {
        (Box::new(MemSender(self.tx)), Box::new(MemReceiver(self.rx)))
    }
}

impl FrameSender for MemSender {
    fn send(&mut self, frame: &[u8]) -> std::io::Result<()> {
        self.0
            .send(frame.to_vec())
            .map_err(|_| std::io::Error::new(std::io::ErrorKind::BrokenPipe, "peer gone"))
    }
}

impl FrameReceiver for MemReceiver {
    fn recv(&mut self) -> std::io::Result<Vec<u8>> {
        self.0
            .recv()
            .map_err(|_| std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "peer gone"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_pair_roundtrip() {
        let (a, b) = MemTransport::pair();
        let (mut atx, _arx) = Box::new(a).split();
        let (_btx, mut brx) = Box::new(b).split();
        atx.send(b"hello").unwrap();
        atx.send(b"world").unwrap();
        assert_eq!(brx.recv().unwrap(), b"hello");
        assert_eq!(brx.recv().unwrap(), b"world");
    }

    #[test]
    fn mem_eof_on_drop() {
        let (a, b) = MemTransport::pair();
        let (atx, arx) = Box::new(a).split();
        drop(atx);
        drop(arx);
        let (_btx, mut brx) = Box::new(b).split();
        assert!(brx.recv().is_err());
    }

    #[test]
    fn tcp_roundtrip() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let join = std::thread::spawn(move || {
            let (s, _) = listener.accept().unwrap();
            let t = Box::new(TcpTransport::new(s).unwrap());
            let (mut tx, mut rx) = t.split();
            let got = rx.recv().unwrap();
            tx.send(&got).unwrap(); // echo
        });
        let t = Box::new(TcpTransport::new(TcpStream::connect(addr).unwrap()).unwrap());
        let (mut tx, mut rx) = t.split();
        tx.send(b"ping over real tcp").unwrap();
        assert_eq!(rx.recv().unwrap(), b"ping over real tcp");
        join.join().unwrap();
    }

    #[test]
    fn tcp_rejects_oversized_frame() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let join = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            // Hostile 1 GiB length prefix.
            use std::io::Write;
            s.write_all(&(1u32 << 30).to_le_bytes()).unwrap();
        });
        let t = Box::new(TcpTransport::new(TcpStream::connect(addr).unwrap()).unwrap());
        let (_tx, mut rx) = t.split();
        assert!(rx.recv().is_err());
        join.join().unwrap();
    }
}
