//! Framed byte transports: real TCP and an in-memory pair.

use std::io::{Read, Write};
use std::net::TcpStream;

/// Maximum accepted frame size (16 MiB) — guards against hostile length
/// prefixes.
pub const MAX_FRAME: usize = 16 << 20;

/// Sending half of a transport.
pub trait FrameSender: Send {
    /// Send one frame.
    fn send(&mut self, frame: &[u8]) -> std::io::Result<()>;

    /// Send a batch of frames, coalescing them into one transport push
    /// where the transport supports it (TCP writes one gathered buffer
    /// instead of a syscall pair per frame). The default forwards to
    /// [`FrameSender::send`] per frame, so wrappers that intercept `send`
    /// (fault injection) still see every frame.
    fn send_many(&mut self, frames: &[&[u8]]) -> std::io::Result<()> {
        for frame in frames {
            self.send(frame)?;
        }
        Ok(())
    }
}

/// Receiving half of a transport.
pub trait FrameReceiver: Send {
    /// Receive one frame, blocking. Returns `UnexpectedEof` when the peer
    /// is gone.
    fn recv(&mut self) -> std::io::Result<Vec<u8>>;

    /// Receive at least one frame, blocking, plus any further frames the
    /// transport already holds. Lets the reader thread process a
    /// coalesced burst per wakeup instead of re-entering the scheduler
    /// once per frame. The default returns a single frame.
    fn recv_many(&mut self) -> std::io::Result<Vec<Vec<u8>>> {
        self.recv().map(|frame| vec![frame])
    }
}

/// A bidirectional framed transport that can be split into halves.
pub trait Transport: Send {
    /// Split into independently usable send/recv halves.
    fn split(self: Box<Self>) -> (Box<dyn FrameSender>, Box<dyn FrameReceiver>);
}

// ---------------------------------------------------------------- TCP --

/// Length-prefixed frames over a [`TcpStream`].
pub struct TcpTransport {
    stream: TcpStream,
}

impl TcpTransport {
    /// Wrap a connected stream (sets `TCP_NODELAY` for latency-sensitive
    /// RPC and heartbeats).
    pub fn new(stream: TcpStream) -> std::io::Result<TcpTransport> {
        stream.set_nodelay(true)?;
        Ok(TcpTransport { stream })
    }
}

struct TcpSender {
    stream: TcpStream,
    /// Reused gather buffer: length prefix + frame (or a whole batch) are
    /// staged here so each `send`/`send_many` is one `write_all` — one
    /// syscall and, with `TCP_NODELAY`, one segment instead of two.
    scratch: Vec<u8>,
}

struct TcpReceiver(TcpStream);

impl Transport for TcpTransport {
    fn split(self: Box<Self>) -> (Box<dyn FrameSender>, Box<dyn FrameReceiver>) {
        let reader = self.stream.try_clone().expect("tcp clone");
        (
            Box::new(TcpSender {
                stream: self.stream,
                scratch: Vec::new(),
            }),
            Box::new(TcpReceiver(reader)),
        )
    }
}

impl FrameSender for TcpSender {
    fn send(&mut self, frame: &[u8]) -> std::io::Result<()> {
        self.scratch.clear();
        self.scratch
            .extend_from_slice(&(frame.len() as u32).to_le_bytes());
        self.scratch.extend_from_slice(frame);
        self.stream.write_all(&self.scratch)
    }

    fn send_many(&mut self, frames: &[&[u8]]) -> std::io::Result<()> {
        self.scratch.clear();
        for frame in frames {
            self.scratch
                .extend_from_slice(&(frame.len() as u32).to_le_bytes());
            self.scratch.extend_from_slice(frame);
        }
        let result = self.stream.write_all(&self.scratch);
        // A huge batch must not pin its gather buffer forever.
        if self.scratch.capacity() > 1 << 20 {
            self.scratch = Vec::new();
        }
        result
    }
}

impl FrameReceiver for TcpReceiver {
    fn recv(&mut self) -> std::io::Result<Vec<u8>> {
        let mut len_buf = [0u8; 4];
        self.0.read_exact(&mut len_buf)?;
        let len = u32::from_le_bytes(len_buf) as usize;
        if len > MAX_FRAME {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "frame exceeds MAX_FRAME",
            ));
        }
        let mut buf = vec![0u8; len];
        self.0.read_exact(&mut buf)?;
        Ok(buf)
    }
}

// ------------------------------------------------------------ in-mem --

/// In-memory transport: a pair of crossbeam channels. Deterministic and
/// fast; used by tests, benches, and the netsim-backed deployments.
///
/// The channels carry frame *batches* so a coalesced
/// [`send_many`](FrameSender::send_many) costs one channel send — and
/// therefore at most one receiver wakeup — per batch, mirroring the
/// single `write_all` of the TCP sender.
pub struct MemTransport {
    tx: crossbeam::channel::Sender<Vec<Vec<u8>>>,
    rx: crossbeam::channel::Receiver<Vec<Vec<u8>>>,
}

impl MemTransport {
    /// Create a connected pair.
    pub fn pair() -> (MemTransport, MemTransport) {
        let (tx_ab, rx_ab) = crossbeam::channel::unbounded();
        let (tx_ba, rx_ba) = crossbeam::channel::unbounded();
        (
            MemTransport {
                tx: tx_ab,
                rx: rx_ba,
            },
            MemTransport {
                tx: tx_ba,
                rx: rx_ab,
            },
        )
    }
}

struct MemSender(crossbeam::channel::Sender<Vec<Vec<u8>>>);
struct MemReceiver {
    rx: crossbeam::channel::Receiver<Vec<Vec<u8>>>,
    queued: std::collections::VecDeque<Vec<u8>>,
}

impl Transport for MemTransport {
    fn split(self: Box<Self>) -> (Box<dyn FrameSender>, Box<dyn FrameReceiver>) {
        (
            Box::new(MemSender(self.tx)),
            Box::new(MemReceiver {
                rx: self.rx,
                queued: std::collections::VecDeque::new(),
            }),
        )
    }
}

impl FrameSender for MemSender {
    fn send(&mut self, frame: &[u8]) -> std::io::Result<()> {
        self.0
            .send(vec![frame.to_vec()])
            .map_err(|_| std::io::Error::new(std::io::ErrorKind::BrokenPipe, "peer gone"))
    }

    fn send_many(&mut self, frames: &[&[u8]]) -> std::io::Result<()> {
        self.0
            .send(frames.iter().map(|f| f.to_vec()).collect())
            .map_err(|_| std::io::Error::new(std::io::ErrorKind::BrokenPipe, "peer gone"))
    }
}

impl FrameReceiver for MemReceiver {
    fn recv(&mut self) -> std::io::Result<Vec<u8>> {
        loop {
            if let Some(frame) = self.queued.pop_front() {
                return Ok(frame);
            }
            let batch = self
                .rx
                .recv()
                .map_err(|_| std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "peer gone"))?;
            self.queued.extend(batch);
        }
    }

    fn recv_many(&mut self) -> std::io::Result<Vec<Vec<u8>>> {
        let mut batch: Vec<Vec<u8>> = if self.queued.is_empty() {
            self.rx
                .recv()
                .map_err(|_| std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "peer gone"))?
        } else {
            self.queued.drain(..).collect()
        };
        // Opportunistically fold in batches that arrived meanwhile, bounded
        // so a fast sender cannot grow the burst without limit.
        while batch.len() < 64 {
            match self.rx.try_recv() {
                Ok(more) => batch.extend(more),
                Err(_) => break,
            }
        }
        Ok(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_pair_roundtrip() {
        let (a, b) = MemTransport::pair();
        let (mut atx, _arx) = Box::new(a).split();
        let (_btx, mut brx) = Box::new(b).split();
        atx.send(b"hello").unwrap();
        atx.send(b"world").unwrap();
        assert_eq!(brx.recv().unwrap(), b"hello");
        assert_eq!(brx.recv().unwrap(), b"world");
    }

    #[test]
    fn mem_eof_on_drop() {
        let (a, b) = MemTransport::pair();
        let (atx, arx) = Box::new(a).split();
        drop(atx);
        drop(arx);
        let (_btx, mut brx) = Box::new(b).split();
        assert!(brx.recv().is_err());
    }

    #[test]
    fn tcp_roundtrip() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let join = std::thread::spawn(move || {
            let (s, _) = listener.accept().unwrap();
            let t = Box::new(TcpTransport::new(s).unwrap());
            let (mut tx, mut rx) = t.split();
            let got = rx.recv().unwrap();
            tx.send(&got).unwrap(); // echo
        });
        let t = Box::new(TcpTransport::new(TcpStream::connect(addr).unwrap()).unwrap());
        let (mut tx, mut rx) = t.split();
        tx.send(b"ping over real tcp").unwrap();
        assert_eq!(rx.recv().unwrap(), b"ping over real tcp");
        join.join().unwrap();
    }

    #[test]
    fn send_many_coalesces_into_distinct_frames() {
        // Over TCP: the gathered write must still arrive as individually
        // framed messages.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let join = std::thread::spawn(move || {
            let (s, _) = listener.accept().unwrap();
            let t = Box::new(TcpTransport::new(s).unwrap());
            let (_tx, mut rx) = t.split();
            (rx.recv().unwrap(), rx.recv().unwrap(), rx.recv().unwrap())
        });
        let t = Box::new(TcpTransport::new(TcpStream::connect(addr).unwrap()).unwrap());
        let (mut tx, _rx) = t.split();
        tx.send_many(&[b"one", b"", b"three"]).unwrap();
        let (a, b, c) = join.join().unwrap();
        assert_eq!(
            (&a[..], &b[..], &c[..]),
            (&b"one"[..], &b""[..], &b"three"[..])
        );

        // Over the in-mem pair: default per-frame forwarding.
        let (ma, mb) = MemTransport::pair();
        let (mut mtx, _) = Box::new(ma).split();
        let (_, mut mrx) = Box::new(mb).split();
        mtx.send_many(&[b"x", b"y"]).unwrap();
        assert_eq!(mrx.recv().unwrap(), b"x");
        assert_eq!(mrx.recv().unwrap(), b"y");
    }

    #[test]
    fn tcp_rejects_oversized_frame() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let join = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            // Hostile 1 GiB length prefix.
            use std::io::Write;
            s.write_all(&(1u32 << 30).to_le_bytes()).unwrap();
        });
        let t = Box::new(TcpTransport::new(TcpStream::connect(addr).unwrap()).unwrap());
        let (_tx, mut rx) = t.split();
        assert!(rx.recv().is_err());
        join.join().unwrap();
    }
}
