//! Framed byte transports: real TCP and an in-memory pair.

use std::io::{IoSlice, Read, Write};
use std::net::TcpStream;

/// Maximum accepted frame size (16 MiB) — guards against hostile length
/// prefixes.
pub const MAX_FRAME: usize = 16 << 20;

/// Sending half of a transport.
pub trait FrameSender: Send {
    /// Send one frame.
    fn send(&mut self, frame: &[u8]) -> std::io::Result<()>;

    /// Send a batch of frames, coalescing them into one transport push
    /// where the transport supports it (TCP writes one gathered buffer
    /// instead of a syscall pair per frame). The default forwards to
    /// [`FrameSender::send`] per frame, so wrappers that intercept `send`
    /// (fault injection) still see every frame.
    fn send_many(&mut self, frames: &[&[u8]]) -> std::io::Result<()> {
        for frame in frames {
            self.send(frame)?;
        }
        Ok(())
    }

    /// Flush bytes a nonblocking transport buffered because the socket
    /// refused them, without blocking. Returns whether unsent bytes
    /// remain queued. The reactor calls this on writable edges; senders
    /// that never buffer (the default) report none.
    fn flush_backlog(&mut self) -> std::io::Result<bool> {
        Ok(false)
    }
}

/// Receiving half of a transport.
pub trait FrameReceiver: Send {
    /// Receive one frame, blocking. Returns `UnexpectedEof` when the peer
    /// is gone.
    fn recv(&mut self) -> std::io::Result<Vec<u8>>;

    /// Receive at least one frame, blocking, plus any further frames the
    /// transport already holds. Lets the reader thread process a
    /// coalesced burst per wakeup instead of re-entering the scheduler
    /// once per frame. The default returns a single frame.
    fn recv_many(&mut self) -> std::io::Result<Vec<Vec<u8>>> {
        self.recv().map(|frame| vec![frame])
    }

    /// Surrender the underlying TCP stream, if this receiver directly
    /// owns one, so the reactor can service it with epoll instead of a
    /// blocking reader thread. After a `Some` return, `recv` must not be
    /// called again. Non-TCP transports — and wrappers that need to
    /// intercept `recv` (fault injection) — return `None` (the default),
    /// which keeps the channel on its reader thread.
    fn take_stream(&mut self) -> Option<TcpStream> {
        None
    }
}

/// A bidirectional framed transport that can be split into halves.
pub trait Transport: Send {
    /// Split into independently usable send/recv halves.
    fn split(self: Box<Self>) -> (Box<dyn FrameSender>, Box<dyn FrameReceiver>);
}

// ---------------------------------------------------------------- TCP --

/// Length-prefixed frames over a [`TcpStream`].
pub struct TcpTransport {
    stream: TcpStream,
}

impl TcpTransport {
    /// Wrap a connected stream (sets `TCP_NODELAY` for latency-sensitive
    /// RPC and heartbeats).
    pub fn new(stream: TcpStream) -> std::io::Result<TcpTransport> {
        stream.set_nodelay(true)?;
        Ok(TcpTransport { stream })
    }
}

struct TcpSender {
    stream: TcpStream,
    /// Reused length-prefix storage for `send_many`: prefixes must
    /// outlive the gather list that borrows them.
    prefixes: Vec<[u8; 4]>,
    /// Bytes the nonblocking socket refused, queued in wire order. The
    /// reactor flushes this on writable edges; meanwhile new sends append
    /// behind it so the byte stream never reorders.
    backlog: Vec<u8>,
}

struct TcpReceiver {
    /// `None` once [`FrameReceiver::take_stream`] has surrendered the
    /// stream to the reactor.
    stream: Option<TcpStream>,
}

impl Transport for TcpTransport {
    fn split(self: Box<Self>) -> (Box<dyn FrameSender>, Box<dyn FrameReceiver>) {
        let reader = self.stream.try_clone().expect("tcp clone");
        (
            Box::new(TcpSender {
                stream: self.stream,
                prefixes: Vec::new(),
                backlog: Vec::new(),
            }),
            Box::new(TcpReceiver {
                stream: Some(reader),
            }),
        )
    }
}

/// Bound on gather-list length per `writev` — the portable `IOV_MAX`
/// floor.
const MAX_IOV: usize = 1024;

/// Backpressure bound on buffered-but-unsent bytes per connection. A
/// peer that stops reading long enough for this much backlog to pile up
/// gets its sends failed (and, through the heartbeat path, its channel
/// closed) instead of growing the queue without bound. One frame may
/// exceed the cap transiently — the check runs before appending — so
/// worst-case memory is `SEND_BACKLOG_CAP + MAX_FRAME` per connection.
const SEND_BACKLOG_CAP: usize = 8 << 20;

/// Send the logical concatenation of `parts` without ever blocking on
/// a full socket: bytes the kernel refuses are queued in `backlog`
/// and flushed later (next send, or the reactor's writable edge). On
/// a blocking stream (threaded backend, handshake) `write_vectored`
/// itself blocks and the backlog stays empty, preserving the legacy
/// blocking-send semantics. A reactor shard therefore never parks
/// inside a send — the failure mode that could deadlock a shard when
/// both endpoints of a connection land on it.
fn send_parts(
    stream: &mut TcpStream,
    backlog: &mut Vec<u8>,
    parts: &[&[u8]],
) -> std::io::Result<()> {
    if !backlog.is_empty() {
        try_flush(stream, backlog)?;
        if !backlog.is_empty() {
            // Socket still full: queue behind the existing backlog
            // (order preserved) unless the peer has stopped draining.
            if backlog.len() > SEND_BACKLOG_CAP {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::WouldBlock,
                    "send backlog over cap: peer not draining",
                ));
            }
            for part in parts {
                backlog.extend_from_slice(part);
            }
            return Ok(());
        }
    }
    let total: usize = parts.iter().map(|p| p.len()).sum();
    let mut written = 0usize;
    let mut slices: Vec<IoSlice<'_>> = Vec::with_capacity(parts.len().min(MAX_IOV));
    while written < total {
        slices.clear();
        let mut skip = written;
        for part in parts {
            if slices.len() == MAX_IOV {
                break;
            }
            // Also skips empty parts (skip 0 >= len 0), which some
            // kernels reject in iovecs.
            if skip >= part.len() {
                skip -= part.len();
                continue;
            }
            slices.push(IoSlice::new(&part[skip..]));
            skip = 0;
        }
        match stream.write_vectored(&slices) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::WriteZero,
                    "tcp write returned zero",
                ))
            }
            Ok(n) => written += n,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                // Stash the unsent tail; a writable edge flushes it.
                let mut skip = written;
                for part in parts {
                    if skip >= part.len() {
                        skip -= part.len();
                        continue;
                    }
                    backlog.extend_from_slice(&part[skip..]);
                    skip = 0;
                }
                return Ok(());
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Write as much backlog as the socket accepts right now.
fn try_flush(stream: &mut TcpStream, backlog: &mut Vec<u8>) -> std::io::Result<()> {
    let mut off = 0usize;
    let result = loop {
        if off >= backlog.len() {
            break Ok(());
        }
        match stream.write(&backlog[off..]) {
            Ok(0) => {
                break Err(std::io::Error::new(
                    std::io::ErrorKind::WriteZero,
                    "tcp write returned zero",
                ))
            }
            Ok(n) => off += n,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => break Err(e),
        }
    };
    backlog.drain(..off);
    // An idle connection must not pin a burst-sized backlog buffer.
    if backlog.is_empty() && backlog.capacity() > 1 << 16 {
        *backlog = Vec::new();
    }
    result
}

impl FrameSender for TcpSender {
    fn send(&mut self, frame: &[u8]) -> std::io::Result<()> {
        let prefix = (frame.len() as u32).to_le_bytes();
        // One gathered write: prefix + frame leave as a single syscall
        // and, with `TCP_NODELAY`, one segment.
        send_parts(&mut self.stream, &mut self.backlog, &[&prefix, frame])
    }

    fn send_many(&mut self, frames: &[&[u8]]) -> std::io::Result<()> {
        self.prefixes.clear();
        self.prefixes
            .extend(frames.iter().map(|f| (f.len() as u32).to_le_bytes()));
        let mut parts: Vec<&[u8]> = Vec::with_capacity(frames.len() * 2);
        for (prefix, frame) in self.prefixes.iter().zip(frames) {
            parts.push(&prefix[..]);
            parts.push(frame);
        }
        let result = send_parts(&mut self.stream, &mut self.backlog, &parts);
        // A huge batch must not pin its prefix buffer forever.
        if self.prefixes.capacity() > 1 << 16 {
            self.prefixes = Vec::new();
        }
        result
    }

    fn flush_backlog(&mut self) -> std::io::Result<bool> {
        try_flush(&mut self.stream, &mut self.backlog)?;
        Ok(!self.backlog.is_empty())
    }
}

impl FrameReceiver for TcpReceiver {
    fn recv(&mut self) -> std::io::Result<Vec<u8>> {
        let stream = self.stream.as_mut().ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::NotConnected,
                "stream surrendered to reactor",
            )
        })?;
        let mut len_buf = [0u8; 4];
        stream.read_exact(&mut len_buf)?;
        let len = u32::from_le_bytes(len_buf) as usize;
        if len > MAX_FRAME {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "frame exceeds MAX_FRAME",
            ));
        }
        let mut buf = vec![0u8; len];
        stream.read_exact(&mut buf)?;
        Ok(buf)
    }

    fn take_stream(&mut self) -> Option<TcpStream> {
        self.stream.take()
    }
}

// ------------------------------------------------------------ in-mem --

/// In-memory transport: a pair of crossbeam channels. Deterministic and
/// fast; used by tests, benches, and the netsim-backed deployments.
///
/// The channels carry frame *batches* so a coalesced
/// [`send_many`](FrameSender::send_many) costs one channel send — and
/// therefore at most one receiver wakeup — per batch, mirroring the
/// single `write_all` of the TCP sender.
pub struct MemTransport {
    tx: crossbeam::channel::Sender<Vec<Vec<u8>>>,
    rx: crossbeam::channel::Receiver<Vec<Vec<u8>>>,
}

impl MemTransport {
    /// Create a connected pair.
    pub fn pair() -> (MemTransport, MemTransport) {
        let (tx_ab, rx_ab) = crossbeam::channel::unbounded();
        let (tx_ba, rx_ba) = crossbeam::channel::unbounded();
        (
            MemTransport {
                tx: tx_ab,
                rx: rx_ba,
            },
            MemTransport {
                tx: tx_ba,
                rx: rx_ab,
            },
        )
    }
}

struct MemSender(crossbeam::channel::Sender<Vec<Vec<u8>>>);
struct MemReceiver {
    rx: crossbeam::channel::Receiver<Vec<Vec<u8>>>,
    queued: std::collections::VecDeque<Vec<u8>>,
}

impl Transport for MemTransport {
    fn split(self: Box<Self>) -> (Box<dyn FrameSender>, Box<dyn FrameReceiver>) {
        (
            Box::new(MemSender(self.tx)),
            Box::new(MemReceiver {
                rx: self.rx,
                queued: std::collections::VecDeque::new(),
            }),
        )
    }
}

impl FrameSender for MemSender {
    fn send(&mut self, frame: &[u8]) -> std::io::Result<()> {
        self.0
            .send(vec![frame.to_vec()])
            .map_err(|_| std::io::Error::new(std::io::ErrorKind::BrokenPipe, "peer gone"))
    }

    fn send_many(&mut self, frames: &[&[u8]]) -> std::io::Result<()> {
        self.0
            .send(frames.iter().map(|f| f.to_vec()).collect())
            .map_err(|_| std::io::Error::new(std::io::ErrorKind::BrokenPipe, "peer gone"))
    }
}

impl FrameReceiver for MemReceiver {
    fn recv(&mut self) -> std::io::Result<Vec<u8>> {
        loop {
            if let Some(frame) = self.queued.pop_front() {
                return Ok(frame);
            }
            let batch = self
                .rx
                .recv()
                .map_err(|_| std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "peer gone"))?;
            self.queued.extend(batch);
        }
    }

    fn recv_many(&mut self) -> std::io::Result<Vec<Vec<u8>>> {
        let mut batch: Vec<Vec<u8>> = if self.queued.is_empty() {
            self.rx
                .recv()
                .map_err(|_| std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "peer gone"))?
        } else {
            self.queued.drain(..).collect()
        };
        // Opportunistically fold in batches that arrived meanwhile, bounded
        // so a fast sender cannot grow the burst without limit.
        while batch.len() < 64 {
            match self.rx.try_recv() {
                Ok(more) => batch.extend(more),
                Err(_) => break,
            }
        }
        Ok(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_pair_roundtrip() {
        let (a, b) = MemTransport::pair();
        let (mut atx, _arx) = Box::new(a).split();
        let (_btx, mut brx) = Box::new(b).split();
        atx.send(b"hello").unwrap();
        atx.send(b"world").unwrap();
        assert_eq!(brx.recv().unwrap(), b"hello");
        assert_eq!(brx.recv().unwrap(), b"world");
    }

    #[test]
    fn mem_eof_on_drop() {
        let (a, b) = MemTransport::pair();
        let (atx, arx) = Box::new(a).split();
        drop(atx);
        drop(arx);
        let (_btx, mut brx) = Box::new(b).split();
        assert!(brx.recv().is_err());
    }

    #[test]
    fn tcp_roundtrip() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let join = std::thread::spawn(move || {
            let (s, _) = listener.accept().unwrap();
            let t = Box::new(TcpTransport::new(s).unwrap());
            let (mut tx, mut rx) = t.split();
            let got = rx.recv().unwrap();
            tx.send(&got).unwrap(); // echo
        });
        let t = Box::new(TcpTransport::new(TcpStream::connect(addr).unwrap()).unwrap());
        let (mut tx, mut rx) = t.split();
        tx.send(b"ping over real tcp").unwrap();
        assert_eq!(rx.recv().unwrap(), b"ping over real tcp");
        join.join().unwrap();
    }

    #[test]
    fn send_many_coalesces_into_distinct_frames() {
        // Over TCP: the gathered write must still arrive as individually
        // framed messages.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let join = std::thread::spawn(move || {
            let (s, _) = listener.accept().unwrap();
            let t = Box::new(TcpTransport::new(s).unwrap());
            let (_tx, mut rx) = t.split();
            (rx.recv().unwrap(), rx.recv().unwrap(), rx.recv().unwrap())
        });
        let t = Box::new(TcpTransport::new(TcpStream::connect(addr).unwrap()).unwrap());
        let (mut tx, _rx) = t.split();
        tx.send_many(&[b"one", b"", b"three"]).unwrap();
        let (a, b, c) = join.join().unwrap();
        assert_eq!(
            (&a[..], &b[..], &c[..]),
            (&b"one"[..], &b""[..], &b"three"[..])
        );

        // Over the in-mem pair: default per-frame forwarding.
        let (ma, mb) = MemTransport::pair();
        let (mut mtx, _) = Box::new(ma).split();
        let (_, mut mrx) = Box::new(mb).split();
        mtx.send_many(&[b"x", b"y"]).unwrap();
        assert_eq!(mrx.recv().unwrap(), b"x");
        assert_eq!(mrx.recv().unwrap(), b"y");
    }

    #[test]
    fn nonblocking_sender_backlogs_instead_of_blocking() {
        // Regression for the reactor-shard deadlock: a nonblocking sender
        // whose peer stops reading must (a) return instead of parking in
        // an unbounded writable-poll, (b) fail sends once the backlog cap
        // is hit, and (c) deliver every accepted byte intact once the
        // peer drains and the backlog is flushed.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let peer = std::thread::spawn(move || listener.accept().unwrap().0);
        let stream = TcpStream::connect(addr).unwrap();
        stream.set_nonblocking(true).unwrap();
        let peer = peer.join().unwrap(); // accepted but never read from (yet)
        let t = Box::new(TcpTransport::new(stream).unwrap());
        let (mut tx, _rx) = t.split();

        // Flood 1 MiB frames. The socket buffers absorb a few, the
        // backlog absorbs SEND_BACKLOG_CAP more, then sends must fail.
        // (With the old blocking poll this loop would hang forever.)
        let frame_len = 1 << 20;
        let mut accepted = 0usize;
        let mut overflowed = false;
        for i in 0..64usize {
            let frame = vec![i as u8; frame_len];
            match tx.send(&frame) {
                Ok(()) => accepted += 1,
                Err(e) => {
                    assert_eq!(e.kind(), std::io::ErrorKind::WouldBlock, "{e}");
                    overflowed = true;
                    break;
                }
            }
        }
        assert!(overflowed, "backlog must be bounded: 64 MiB all accepted");
        assert!(accepted >= 8, "cap kicked in below SEND_BACKLOG_CAP");

        // Peer drains; flushing writable edges empties the backlog and
        // every accepted frame arrives in order, bytes intact.
        let reader = std::thread::spawn(move || {
            let t = Box::new(TcpTransport::new(peer).unwrap());
            let (_tx, mut rx) = t.split();
            for i in 0..accepted {
                let frame = rx.recv().unwrap();
                assert_eq!(frame.len(), frame_len, "frame {i} truncated");
                assert!(
                    frame.iter().all(|b| *b == i as u8),
                    "frame {i} corrupted in backlog handoff"
                );
            }
        });
        let flush_start = std::time::Instant::now();
        while tx.flush_backlog().unwrap() {
            assert!(
                flush_start.elapsed() < std::time::Duration::from_secs(30),
                "backlog never drained"
            );
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        reader.join().unwrap();

        // With the backlog drained the sender accepts traffic again.
        tx.send(b"recovered").unwrap();
    }

    #[test]
    fn tcp_rejects_oversized_frame() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let join = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            // Hostile 1 GiB length prefix.
            use std::io::Write;
            s.write_all(&(1u32 << 30).to_le_bytes()).unwrap();
        });
        let t = Box::new(TcpTransport::new(TcpStream::connect(addr).unwrap()).unwrap());
        let (_tx, mut rx) = t.split();
        assert!(rx.recv().is_err());
        join.join().unwrap();
    }
}
