//! **SwitchboardStream** — bulk transfer over a channel (the paper cites
//! "a previous version of SwitchboardStream that provides secure and
//! monitored transport" [Freudenthal et al., RESH'02]).
//!
//! A stream rides the ordinary RPC layer as a sequence of chunks, so it
//! inherits every channel property: encryption, replay rejection,
//! continuous authorization (a revoked peer's stream is refused
//! mid-flight), and heartbeat liveness. An end-to-end SHA-256 over the
//! assembled payload guards against application-level reassembly bugs on
//! top of the per-record AEAD.
//!
//! Protocol (all via reserved RPC methods):
//!
//! * `__stream_open(name)` → stream id
//! * `__stream_chunk(id ‖ seq ‖ bytes)` — strictly ordered
//! * `__stream_close(id ‖ sha256)` → the registered sink's response

use crate::channel::{Channel, PendingCall};
use crate::SwitchboardError;
use parking_lot::Mutex;
use psf_crypto::sha256;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Reserved method: open a stream.
pub const STREAM_OPEN: &str = "__stream_open";
/// Reserved method: append a chunk.
pub const STREAM_CHUNK: &str = "__stream_chunk";
/// Reserved method: finish and dispatch to the sink.
pub const STREAM_CLOSE: &str = "__stream_close";

type Sink = Arc<dyn Fn(&[u8]) -> Result<Vec<u8>, String> + Send + Sync>;

struct Partial {
    name: String,
    data: Vec<u8>,
    next_seq: u64,
}

/// Server-side registry of named stream sinks.
#[derive(Clone, Default)]
pub struct StreamRegistry {
    sinks: Arc<Mutex<HashMap<String, Sink>>>,
    open: Arc<Mutex<HashMap<u64, Partial>>>,
    next_id: Arc<AtomicU64>,
    /// Maximum accepted assembled size (default 64 MiB).
    max_bytes: Arc<AtomicU64>,
}

impl StreamRegistry {
    /// New registry with the default size cap.
    pub fn new() -> StreamRegistry {
        let r = StreamRegistry::default();
        r.max_bytes.store(64 << 20, Ordering::SeqCst);
        r
    }

    /// Register a sink: called with the fully assembled payload; its
    /// return value becomes the sender's `finish()` result.
    pub fn sink<F>(&self, name: impl Into<String>, f: F)
    where
        F: Fn(&[u8]) -> Result<Vec<u8>, String> + Send + Sync + 'static,
    {
        self.sinks.lock().insert(name.into(), Arc::new(f));
    }

    /// Lower the acceptance cap (tests).
    pub fn set_max_bytes(&self, max: u64) {
        self.max_bytes.store(max, Ordering::SeqCst);
    }

    /// Streams currently open (diagnostics).
    pub fn open_count(&self) -> usize {
        self.open.lock().len()
    }
}

/// Install the stream protocol handlers on a channel.
pub fn serve_streams(channel: &Channel, registry: StreamRegistry) {
    {
        let reg = registry.clone();
        channel.register_handler(STREAM_OPEN, move |args| {
            let name = String::from_utf8(args.to_vec()).map_err(|_| "bad stream name")?;
            if !reg.sinks.lock().contains_key(&name) {
                return Err(format!("no stream sink registered for '{name}'"));
            }
            let id = reg.next_id.fetch_add(1, Ordering::SeqCst) + 1;
            reg.open.lock().insert(
                id,
                Partial {
                    name,
                    data: Vec::new(),
                    next_seq: 0,
                },
            );
            Ok(id.to_le_bytes().to_vec())
        });
    }
    {
        let reg = registry.clone();
        channel.register_handler(STREAM_CHUNK, move |args| {
            if args.len() < 16 {
                return Err("short chunk frame".into());
            }
            let id = u64::from_le_bytes(args[..8].try_into().unwrap());
            let seq = u64::from_le_bytes(args[8..16].try_into().unwrap());
            let mut open = reg.open.lock();
            let partial = open.get_mut(&id).ok_or("unknown stream id")?;
            if seq != partial.next_seq {
                let msg = format!(
                    "out-of-order chunk: got {seq}, expected {}",
                    partial.next_seq
                );
                open.remove(&id); // poison the stream
                return Err(msg);
            }
            let cap = reg.max_bytes.load(Ordering::SeqCst);
            if (partial.data.len() + args.len() - 16) as u64 > cap {
                open.remove(&id);
                return Err("stream exceeds size cap".into());
            }
            partial.data.extend_from_slice(&args[16..]);
            partial.next_seq += 1;
            Ok(vec![])
        });
    }
    {
        let reg = registry;
        channel.register_handler(STREAM_CLOSE, move |args| {
            if args.len() < 40 {
                return Err("short close frame".into());
            }
            let id = u64::from_le_bytes(args[..8].try_into().unwrap());
            let claimed: [u8; 32] = args[8..40].try_into().unwrap();
            let partial = reg.open.lock().remove(&id).ok_or("unknown stream id")?;
            if sha256(&partial.data) != claimed {
                return Err("stream integrity check failed".into());
            }
            let sink = reg
                .sinks
                .lock()
                .get(&partial.name)
                .cloned()
                .ok_or("sink vanished")?;
            sink(&partial.data)
        });
    }
}

/// Chunk acknowledgements kept in flight per stream: the writer pipelines
/// uploads behind a sliding window instead of stalling a full RTT per
/// chunk. Ordering is preserved by the channel's sequenced record layer
/// and the receiver's strict `next_seq` check.
const STREAM_WINDOW: usize = 8;

/// A client-side stream writer.
pub struct StreamWriter<'a> {
    channel: &'a Channel,
    id: u64,
    seq: u64,
    hasher: psf_crypto::Sha256,
    chunk_size: usize,
    buffer: Vec<u8>,
    in_flight: VecDeque<PendingCall>,
    finished: bool,
}

impl<'a> StreamWriter<'a> {
    /// Open a stream toward the peer's sink `name`.
    pub fn open(
        channel: &'a Channel,
        name: &str,
        chunk_size: usize,
    ) -> Result<StreamWriter<'a>, SwitchboardError> {
        assert!(chunk_size > 0);
        let reply = channel.call(STREAM_OPEN, name.as_bytes())?;
        if reply.len() != 8 {
            return Err(SwitchboardError::Protocol("bad stream id".into()));
        }
        Ok(StreamWriter {
            channel,
            id: u64::from_le_bytes(reply.try_into().unwrap()),
            seq: 0,
            hasher: psf_crypto::Sha256::new(),
            chunk_size,
            buffer: Vec::new(),
            in_flight: VecDeque::with_capacity(STREAM_WINDOW),
            finished: false,
        })
    }

    /// Append payload bytes (buffered into chunks).
    pub fn write(&mut self, data: &[u8]) -> Result<(), SwitchboardError> {
        assert!(!self.finished, "write after finish");
        self.hasher.update(data);
        self.buffer.extend_from_slice(data);
        while self.buffer.len() >= self.chunk_size {
            let rest = self.buffer.split_off(self.chunk_size);
            let chunk = std::mem::replace(&mut self.buffer, rest);
            self.send_chunk(&chunk)?;
        }
        Ok(())
    }

    fn send_chunk(&mut self, chunk: &[u8]) -> Result<(), SwitchboardError> {
        // Window full: wait for the oldest outstanding chunk ack before
        // issuing another. An error (out-of-order poison, revocation,
        // channel death) aborts the stream immediately.
        while self.in_flight.len() >= STREAM_WINDOW {
            self.in_flight.pop_front().unwrap().wait()?;
        }
        let mut frame = Vec::with_capacity(16 + chunk.len());
        frame.extend_from_slice(&self.id.to_le_bytes());
        frame.extend_from_slice(&self.seq.to_le_bytes());
        frame.extend_from_slice(chunk);
        let pending = self.channel.call_pipelined(STREAM_CHUNK, &frame)?;
        self.in_flight.push_back(pending);
        self.seq += 1;
        Ok(())
    }

    /// Flush the tail, close the stream, and return the sink's response.
    pub fn finish(mut self) -> Result<Vec<u8>, SwitchboardError> {
        if !self.buffer.is_empty() {
            let tail = std::mem::take(&mut self.buffer);
            self.send_chunk(&tail)?;
        }
        self.finished = true;
        // Drain the pipeline: every chunk must be acknowledged before the
        // close digest is meaningful.
        while let Some(pending) = self.in_flight.pop_front() {
            pending.wait()?;
        }
        let digest = self.hasher.clone().finalize();
        let mut frame = Vec::with_capacity(40);
        frame.extend_from_slice(&self.id.to_le_bytes());
        frame.extend_from_slice(&digest);
        self.channel.call(STREAM_CLOSE, &frame)
    }
}

/// One-call convenience: stream `data` to the peer's sink `name`.
pub fn send_stream(
    channel: &Channel,
    name: &str,
    data: &[u8],
    chunk_size: usize,
) -> Result<Vec<u8>, SwitchboardError> {
    let mut w = StreamWriter::open(channel, name, chunk_size)?;
    w.write(data)?;
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::handshake::pair_in_memory_plain;
    use crate::ChannelConfig;
    use std::time::Duration;

    fn pair() -> (Channel, Channel) {
        pair_in_memory_plain(ChannelConfig {
            heartbeat_interval: None,
            rpc_timeout: Duration::from_secs(5),
            ..Default::default()
        })
    }

    #[test]
    fn stream_roundtrip_multi_chunk() {
        let (client, server) = pair();
        let registry = StreamRegistry::new();
        let received = Arc::new(Mutex::new(Vec::new()));
        let sink_copy = received.clone();
        registry.sink("upload", move |data| {
            *sink_copy.lock() = data.to_vec();
            Ok(format!("got {} bytes", data.len()).into_bytes())
        });
        serve_streams(&server, registry.clone());

        let payload: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        let reply = send_stream(&client, "upload", &payload, 4096).unwrap();
        assert_eq!(reply, b"got 100000 bytes");
        assert_eq!(*received.lock(), payload);
        assert_eq!(registry.open_count(), 0, "stream state cleaned up");
    }

    #[test]
    fn empty_stream_ok() {
        let (client, server) = pair();
        let registry = StreamRegistry::new();
        registry.sink("empty", |d| Ok(d.len().to_string().into_bytes()));
        serve_streams(&server, registry);
        assert_eq!(send_stream(&client, "empty", b"", 16).unwrap(), b"0");
    }

    #[test]
    fn unknown_sink_rejected_at_open() {
        let (client, server) = pair();
        serve_streams(&server, StreamRegistry::new());
        let err = StreamWriter::open(&client, "nope", 16);
        assert!(err.is_err());
    }

    #[test]
    fn out_of_order_chunk_poisons_stream() {
        let (client, server) = pair();
        let registry = StreamRegistry::new();
        registry.sink("s", |_| Ok(vec![]));
        serve_streams(&server, registry.clone());
        let reply = client.call(STREAM_OPEN, b"s").unwrap();
        let id = u64::from_le_bytes(reply.try_into().unwrap());
        // Send seq 1 first (expected 0).
        let mut frame = Vec::new();
        frame.extend_from_slice(&id.to_le_bytes());
        frame.extend_from_slice(&1u64.to_le_bytes());
        frame.extend_from_slice(b"data");
        let err = client.call(STREAM_CHUNK, &frame).unwrap_err();
        assert!(err.to_string().contains("out-of-order"));
        assert_eq!(registry.open_count(), 0);
    }

    #[test]
    fn integrity_mismatch_rejected() {
        let (client, server) = pair();
        let registry = StreamRegistry::new();
        registry.sink("s", |_| Ok(vec![]));
        serve_streams(&server, registry);
        let reply = client.call(STREAM_OPEN, b"s").unwrap();
        let id = u64::from_le_bytes(reply.try_into().unwrap());
        let mut chunk = Vec::new();
        chunk.extend_from_slice(&id.to_le_bytes());
        chunk.extend_from_slice(&0u64.to_le_bytes());
        chunk.extend_from_slice(b"real data");
        client.call(STREAM_CHUNK, &chunk).unwrap();
        // Close with a digest of different data.
        let mut close = Vec::new();
        close.extend_from_slice(&id.to_le_bytes());
        close.extend_from_slice(&sha256(b"forged data"));
        let err = client.call(STREAM_CLOSE, &close).unwrap_err();
        assert!(err.to_string().contains("integrity"));
    }

    #[test]
    fn size_cap_enforced() {
        let (client, server) = pair();
        let registry = StreamRegistry::new();
        registry.set_max_bytes(1000);
        registry.sink("s", |_| Ok(vec![]));
        serve_streams(&server, registry);
        let big = vec![0u8; 5000];
        assert!(send_stream(&client, "s", &big, 512).is_err());
    }

    #[test]
    fn concurrent_streams_do_not_interleave() {
        let (client, server) = pair();
        let registry = StreamRegistry::new();
        registry.sink("s", |data| Ok(sha256(data).to_vec()));
        serve_streams(&server, registry);
        let client = Arc::new(client);
        let mut joins = Vec::new();
        for t in 0..4u8 {
            let c = client.clone();
            joins.push(std::thread::spawn(move || {
                let payload = vec![t; 10_000];
                let reply = send_stream(&c, "s", &payload, 1024).unwrap();
                assert_eq!(reply, sha256(&payload).to_vec());
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
    }

    #[test]
    fn sink_errors_propagate_to_sender() {
        let (client, server) = pair();
        let registry = StreamRegistry::new();
        registry.sink("picky", |data| {
            if data.starts_with(b"ok") {
                Ok(b"accepted".to_vec())
            } else {
                Err("payload rejected by sink".into())
            }
        });
        serve_streams(&server, registry);
        assert_eq!(
            send_stream(&client, "picky", b"ok then", 4).unwrap(),
            b"accepted"
        );
        let err = send_stream(&client, "picky", b"bad", 4).unwrap_err();
        assert!(err.to_string().contains("rejected"));
    }
}
