//! Authorization suites, Authorizers, and AuthorizationMonitors
//! (paper §4.3).

use psf_cert::{AuthCertificate, CertError, CertKind, CertSubject};
use psf_crypto::ed25519::VerifyingKey;
use psf_drbac::certify::{attrs_to_cert, check_certificate_memo};
use psf_drbac::entity::{Entity, EntityName, EntityRegistry, Subject};
use psf_drbac::proof::{Proof, ProofEngine};
use psf_drbac::repository::{CredentialSource, Repository};
use psf_drbac::revocation::{RevocationBus, ValidityMonitor};
use psf_drbac::{AttrSet, AuthCache, RoleName, SignedDelegation};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A shared logical clock source for credential expiry evaluation. The
/// framework advances it from its simulation clock; real deployments
/// would feed wall time.
#[derive(Clone, Default)]
pub struct ClockRef(Arc<AtomicU64>);

impl ClockRef {
    /// New clock at zero.
    pub fn new() -> ClockRef {
        ClockRef::default()
    }

    /// Current logical seconds.
    pub fn now(&self) -> u64 {
        self.0.load(Ordering::SeqCst)
    }

    /// Advance to an absolute time.
    pub fn set(&self, secs: u64) {
        self.0.store(secs, Ordering::SeqCst);
    }
}

/// Evaluates a partner's credentials against a required dRBAC role
/// and generates [`AuthorizationMonitor`]s.
#[derive(Clone)]
pub struct Authorizer {
    registry: EntityRegistry,
    repository: Repository,
    bus: RevocationBus,
    clock: ClockRef,
    /// Fast path for repeat authorizations (handshakes, rekeys,
    /// continuous re-validation); shared across clones.
    cache: AuthCache,
    /// Checker memo: re-checking the same certificate after a revocation
    /// event replays only the environment half (revocation, expiry, the
    /// epoch window, key bindings) instead of re-deriving signatures.
    memo: Arc<psf_cert::CheckMemo>,
    /// The role the partner must prove.
    pub required_role: RoleName,
    /// Attributes the partner's proof must satisfy.
    pub required_attrs: AttrSet,
}

impl Authorizer {
    /// Create an authorizer requiring `required_role` of the partner.
    pub fn new(
        registry: EntityRegistry,
        repository: Repository,
        bus: RevocationBus,
        clock: ClockRef,
        required_role: RoleName,
    ) -> Authorizer {
        Authorizer {
            registry,
            repository,
            bus,
            clock,
            cache: AuthCache::new(),
            memo: Arc::new(psf_cert::CheckMemo::new(4096)),
            required_role,
            required_attrs: AttrSet::new(),
        }
    }

    /// The authorizer's proof/credential cache.
    pub fn auth_cache(&self) -> &AuthCache {
        &self.cache
    }

    /// Require attributes on the partner's proof.
    pub fn with_attrs(mut self, attrs: AttrSet) -> Authorizer {
        self.required_attrs = attrs;
        self
    }

    /// Evaluate the partner: build a dRBAC proof from its presented
    /// credentials, and spawn the monitor that watches every credential in
    /// the proof.
    pub fn authorize(
        &self,
        peer_name: &EntityName,
        peer_key: &VerifyingKey,
        presented: &[SignedDelegation],
    ) -> Result<AuthorizationMonitor, String> {
        let subject = Subject::Entity {
            name: peer_name.clone(),
            key: *peer_key,
        };
        let engine = ProofEngine::with_cache(
            &self.registry,
            &self.repository,
            &self.bus,
            self.clock.now(),
            &self.cache,
        );
        let result = engine.prove_with_certified(
            &subject,
            &self.required_role,
            &self.required_attrs,
            presented,
        );
        // Channel admission is an authorize decision in its own right (the
        // underlying proof search audits itself as `prove`).
        {
            use psf_telemetry::audit::{self, Decision, Verdict};
            let rec = audit::record(
                Decision::Authorize,
                peer_name.to_string(),
                self.required_role.to_string(),
                match result {
                    Ok(_) => Verdict::Allow,
                    Err(_) => Verdict::Deny,
                },
            )
            .detail("switchboard admission");
            match &result {
                Ok((proof, cert, _)) => rec
                    .chain(&proof.credential_ids())
                    .cert(cert.digest_hex())
                    .commit(),
                Err(e) => rec.detail(format!("switchboard admission: {e}")).commit(),
            }
        }
        let (proof, cert, _stats) = result.map_err(|e| e.to_string())?;
        let monitor = self.bus.monitor(proof.credential_ids());
        // "…continuously over some duration": the authorization holds
        // until the earliest expiry of any credential in the proof.
        let valid_until = proof
            .edges
            .iter()
            .filter_map(|e| e.credential.body.expires)
            .min();
        Ok(AuthorizationMonitor {
            proof: Some(proof),
            certificate: Some(cert),
            monitor,
            valid_until,
            clock: self.clock.clone(),
            rechecked: false,
        })
    }

    /// Re-validate a previously emitted certificate with the **independent
    /// checker**: signatures, chain rules, attenuation, expiry, and the
    /// epoch window are re-derived from the certificate bytes against live
    /// registry and revocation state. No repository access and no proof
    /// search happen here — this is the continuous-authorization fast path
    /// the channel runs when a RevocationBus event invalidates a monitor.
    /// The decision is audited under cache provenance `cert-verified`
    /// with the certificate digest.
    pub fn recheck_certificate(&self, cert: &AuthCertificate) -> Result<(), CertError> {
        let result = check_certificate_memo(
            cert,
            &self.registry,
            &self.bus,
            self.clock.now(),
            self.repository.version(),
            Some(&self.memo),
        );
        use psf_telemetry::audit::{self, CacheOutcome, Decision, Verdict};
        let rec = audit::record(
            Decision::Authorize,
            cert.subject.render(),
            cert.role.clone(),
            match &result {
                Ok(()) => Verdict::Allow,
                Err(CertError::Revoked(_)) => Verdict::Revoked,
                Err(_) => Verdict::Deny,
            },
        )
        .chain(&cert.chain_ids())
        .cache(CacheOutcome::CertVerified, cert.repo_epoch)
        .cert(cert.digest_hex());
        match &result {
            Ok(()) => rec.detail("certificate re-check").commit(),
            Err(e) => rec.detail(format!("certificate re-check: {e}")).commit(),
        }
        result
    }

    /// Admit a peer from a presented certificate alone. The independent
    /// checker validates the certificate and this authorizer's policy is
    /// matched against what it *claims* (subject identity = the
    /// authenticated peer, role = the required role, attributes satisfy
    /// the requirement). No repository access and no proof search happen
    /// on this path; the resulting monitor watches the certificate's
    /// watch set, so continuous authorization covers the same chain the
    /// checker accepted.
    pub fn admit_certificate(
        &self,
        peer_name: &EntityName,
        peer_key: &VerifyingKey,
        cert: Arc<AuthCertificate>,
    ) -> Result<AuthorizationMonitor, String> {
        let identity_ok = matches!(
            &cert.subject,
            CertSubject::Entity { name, key } if *name == peer_name.0 && *key == peer_key.0
        );
        if !identity_ok {
            return Err("certificate subject is not the authenticated peer".into());
        }
        if cert.kind != CertKind::Membership {
            return Err("certificate does not prove role membership".into());
        }
        if cert.role != self.required_role.to_string() {
            return Err(format!(
                "certificate proves '{}', required '{}'",
                cert.role, self.required_role
            ));
        }
        if !cert.attrs.satisfies(&attrs_to_cert(&self.required_attrs)) {
            return Err("certificate attributes do not satisfy the requirement".into());
        }
        self.recheck_certificate(&cert).map_err(|e| e.to_string())?;
        let monitor = self.bus.monitor(cert.watch.clone());
        let valid_until = cert.min_expiry();
        Ok(AuthorizationMonitor {
            proof: None,
            certificate: Some(cert),
            monitor,
            valid_until,
            clock: self.clock.clone(),
            rechecked: false,
        })
    }

    /// The revocation bus this authorizer watches.
    pub fn bus(&self) -> &RevocationBus {
        &self.bus
    }
}

/// "Authorizers generate AuthorizationMonitors, which inform either
/// partner when the trust relationship changes." Wraps the dRBAC proof of
/// the partner's authorization and the validity monitor over its
/// credentials.
pub struct AuthorizationMonitor {
    /// The proof under which the partner was admitted (`None` when
    /// admission was checker-only from a presented certificate).
    pub proof: Option<Proof>,
    /// The certificate carrying the admission's evidence (emitted by the
    /// engine, or presented by the peer and validated by the checker).
    certificate: Option<Arc<AuthCertificate>>,
    monitor: ValidityMonitor,
    valid_until: Option<u64>,
    clock: ClockRef,
    /// One-shot latch: the channel re-checks the certificate once per
    /// invalidation, not once per refused packet.
    rechecked: bool,
}

impl AuthorizationMonitor {
    /// The admission certificate, if one was emitted or presented.
    pub fn certificate(&self) -> Option<Arc<AuthCertificate>> {
        self.certificate.clone()
    }

    /// Claim the one-shot certificate re-check for the current
    /// invalidation. Returns true exactly once per monitor.
    pub(crate) fn take_recheck(&mut self) -> bool {
        !std::mem::replace(&mut self.rechecked, true)
    }

    /// Whether the trust relationship still holds: no revocation and no
    /// credential in the proof has expired.
    pub fn is_valid(&self) -> bool {
        if let Some(t) = self.valid_until {
            if self.clock.now() >= t {
                return false;
            }
        }
        self.monitor.is_valid()
    }

    /// When the authorization lapses by expiry, if bounded.
    pub fn valid_until(&self) -> Option<u64> {
        self.valid_until
    }

    /// Which credential was revoked, if any notice is pending.
    pub fn revocation_notice(&self) -> Option<String> {
        self.monitor.try_notice().map(|n| n.credential_id)
    }

    /// Credential ids under watch.
    pub fn watched_ids(&self) -> &[String] {
        self.monitor.watched_ids()
    }
}

/// Everything one endpoint brings to a Switchboard connection: "PKI
/// identities (including private keys for authentication), dRBAC
/// credentials to be supplied to the partner, and Authorizer objects for
/// evaluating the partner's credentials."
#[derive(Clone)]
pub struct AuthSuite {
    /// This endpoint's keyed identity.
    pub identity: Entity,
    /// Credentials to present to the partner.
    pub credentials: Vec<SignedDelegation>,
    /// Evaluates the partner.
    pub authorizer: Authorizer,
}

impl AuthSuite {
    /// Bundle an identity, its credentials, and an authorizer.
    pub fn new(
        identity: Entity,
        credentials: Vec<SignedDelegation>,
        authorizer: Authorizer,
    ) -> AuthSuite {
        AuthSuite {
            identity,
            credentials,
            authorizer,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psf_drbac::DelegationBuilder;

    fn setup() -> (
        EntityRegistry,
        Repository,
        RevocationBus,
        ClockRef,
        Entity,
        Entity,
    ) {
        let registry = EntityRegistry::new();
        let repo = Repository::new();
        let bus = RevocationBus::new();
        let clock = ClockRef::new();
        let ny = Entity::with_seed("Comp.NY", b"suite");
        let bob = Entity::with_seed("Bob", b"suite");
        registry.register(&ny);
        registry.register(&bob);
        (registry, repo, bus, clock, ny, bob)
    }

    #[test]
    fn authorize_success_and_monitoring() {
        let (registry, repo, bus, clock, ny, bob) = setup();
        let cred = DelegationBuilder::new(&ny)
            .subject_entity(&bob)
            .role(ny.role("Member"))
            .monitored()
            .sign();
        let auth = Authorizer::new(registry, repo, bus.clone(), clock, ny.role("Member"));
        let monitor = auth
            .authorize(&bob.name, &bob.public_key(), std::slice::from_ref(&cred))
            .unwrap();
        assert!(monitor.is_valid());
        bus.revoke(&cred.id());
        assert!(!monitor.is_valid());
        assert_eq!(monitor.revocation_notice(), Some(cred.id()));
    }

    #[test]
    fn authorize_rejects_without_proof() {
        let (registry, repo, bus, clock, ny, bob) = setup();
        let auth = Authorizer::new(registry, repo, bus, clock, ny.role("Member"));
        assert!(auth.authorize(&bob.name, &bob.public_key(), &[]).is_err());
    }

    #[test]
    fn authorize_rejects_stolen_credentials() {
        let (registry, repo, bus, clock, ny, bob) = setup();
        let mallory = Entity::with_seed("Mallory", b"suite");
        registry.register(&mallory);
        // Bob's credential presented under Mallory's identity/key.
        let cred = DelegationBuilder::new(&ny)
            .subject_entity(&bob)
            .role(ny.role("Member"))
            .sign();
        let auth = Authorizer::new(registry, repo, bus, clock, ny.role("Member"));
        assert!(auth
            .authorize(&mallory.name, &mallory.public_key(), &[cred])
            .is_err());
    }

    #[test]
    fn expiry_lapses_mid_connection() {
        // The §3.1 "continuously over some duration" property: an
        // authorization granted from an expiring credential lapses when
        // the clock passes the expiry, with no revocation involved.
        let (registry, repo, bus, clock, ny, bob) = setup();
        let cred = DelegationBuilder::new(&ny)
            .subject_entity(&bob)
            .role(ny.role("Member"))
            .expires(100)
            .sign();
        let auth = Authorizer::new(registry, repo, bus, clock.clone(), ny.role("Member"));
        let monitor = auth
            .authorize(&bob.name, &bob.public_key(), &[cred])
            .unwrap();
        assert!(monitor.is_valid());
        assert_eq!(monitor.valid_until(), Some(100));
        clock.set(99);
        assert!(monitor.is_valid());
        clock.set(100);
        assert!(!monitor.is_valid());
    }

    #[test]
    fn admit_certificate_checker_only() {
        let (registry, repo, bus, clock, ny, bob) = setup();
        let cred = DelegationBuilder::new(&ny)
            .subject_entity(&bob)
            .role(ny.role("Member"))
            .sign();
        let auth = Authorizer::new(registry, repo, bus.clone(), clock, ny.role("Member"));
        // Emit a certificate via the engine, then admit from it alone.
        let first = auth
            .authorize(&bob.name, &bob.public_key(), &[cred])
            .unwrap();
        let cert = first.certificate().expect("admission emits a certificate");
        let monitor = auth
            .admit_certificate(&bob.name, &bob.public_key(), cert.clone())
            .unwrap();
        assert!(monitor.proof.is_none(), "no proof search ran");
        assert!(monitor.is_valid());
        assert_eq!(monitor.watched_ids(), &cert.watch[..]);
        // Revocation of a chain edge invalidates both the monitor and the
        // certificate itself.
        bus.revoke(&cert.watch[0]);
        assert!(!monitor.is_valid());
        assert!(matches!(
            auth.recheck_certificate(&cert),
            Err(CertError::Revoked(_))
        ));
    }

    #[test]
    fn admit_certificate_enforces_policy() {
        let (registry, repo, bus, clock, ny, bob) = setup();
        let mallory = Entity::with_seed("Mallory", b"suite");
        registry.register(&mallory);
        let cred = DelegationBuilder::new(&ny)
            .subject_entity(&bob)
            .role(ny.role("Member"))
            .sign();
        let auth = Authorizer::new(registry, repo, bus, clock, ny.role("Member"));
        let cert = auth
            .authorize(&bob.name, &bob.public_key(), &[cred])
            .unwrap()
            .certificate()
            .unwrap();
        // Bob's certificate does not admit Mallory.
        assert!(auth
            .admit_certificate(&mallory.name, &mallory.public_key(), cert.clone())
            .is_err());
        // A different required role refuses it too.
        let other = Authorizer::new(
            auth.registry.clone(),
            auth.repository.clone(),
            auth.bus.clone(),
            auth.clock.clone(),
            ny.role("Admin"),
        );
        assert!(other
            .admit_certificate(&bob.name, &bob.public_key(), cert)
            .is_err());
    }

    #[test]
    fn clock_gates_expiry() {
        let (registry, repo, bus, clock, ny, bob) = setup();
        let cred = DelegationBuilder::new(&ny)
            .subject_entity(&bob)
            .role(ny.role("Member"))
            .expires(100)
            .sign();
        let auth = Authorizer::new(registry, repo, bus, clock.clone(), ny.role("Member"));
        assert!(auth
            .authorize(&bob.name, &bob.public_key(), std::slice::from_ref(&cred))
            .is_ok());
        clock.set(200);
        assert!(auth
            .authorize(&bob.name, &bob.public_key(), &[cred])
            .is_err());
    }
}
