//! Pretty-printing XML writer.

use crate::Element;

/// Serialize an element tree to a pretty-printed string.
pub fn write(root: &Element) -> String {
    let mut out = String::new();
    write_el(root, 0, &mut out);
    out
}

fn write_el(el: &Element, depth: usize, out: &mut String) {
    let indent = "  ".repeat(depth);
    out.push_str(&indent);
    out.push('<');
    out.push_str(&el.name);
    for (k, v) in &el.attrs {
        out.push(' ');
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(&escape_attr(v));
        out.push('"');
    }
    if el.children.is_empty() && el.text.is_empty() {
        out.push_str("/>\n");
        return;
    }
    out.push('>');
    if el.children.is_empty() {
        // Text-only element on one line.
        out.push_str(&escape_text(&el.text));
        out.push_str("</");
        out.push_str(&el.name);
        out.push_str(">\n");
        return;
    }
    out.push('\n');
    if !el.text.is_empty() {
        out.push_str(&"  ".repeat(depth + 1));
        out.push_str(&escape_text(&el.text));
        out.push('\n');
    }
    for child in &el.children {
        write_el(child, depth + 1, out);
    }
    out.push_str(&indent);
    out.push_str("</");
    out.push_str(&el.name);
    out.push_str(">\n");
}

fn escape_text(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

fn escape_attr(s: &str) -> String {
    escape_text(s).replace('"', "&quot;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn writes_self_closing() {
        assert_eq!(write(&Element::new("a")), "<a/>\n");
    }

    #[test]
    fn escapes_special_chars() {
        let e = Element::new("a").attr("k", "a\"b<c").with_text("x & y < z");
        let s = write(&e);
        assert!(s.contains("&quot;"));
        assert!(s.contains("&amp;"));
        assert!(s.contains("&lt;"));
        assert_eq!(parse(&s).unwrap(), e);
    }

    #[test]
    fn nested_pretty_printed() {
        let e = Element::new("View")
            .attr("name", "V")
            .child(Element::new("Restricts").child(Element::new("Interface").attr("name", "I")));
        let s = write(&e);
        assert!(s.contains("\n  <Restricts>"));
        assert!(s.contains("\n    <Interface"));
        assert_eq!(parse(&s).unwrap(), e);
    }
}
