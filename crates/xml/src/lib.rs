//! # psf-xml
//!
//! A minimal, dependency-free XML reader/writer sufficient for the view
//! definition files of the HPDC'03 paper (Table 3b) and for PSF component
//! descriptors. Supports:
//!
//! * elements with attributes (quoted with `"` or `'`),
//! * nested children and text content (mixed content is concatenated),
//! * self-closing tags, comments (`<!-- -->`), XML declarations and
//!   processing instructions (skipped),
//! * the five standard entities plus decimal/hex character references,
//! * CDATA sections.
//!
//! It intentionally does **not** implement namespaces, DTDs, or external
//! entities (no XXE surface by construction).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod parser;
mod writer;

pub use parser::{parse, ParseError, MAX_DEPTH};
pub use writer::write;

/// An XML element: name, attributes (in document order), children, and the
/// concatenated text content of its direct text/CDATA nodes.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Element {
    /// Tag name.
    pub name: String,
    /// Attributes in document order.
    pub attrs: Vec<(String, String)>,
    /// Child elements in document order.
    pub children: Vec<Element>,
    /// Concatenated direct text content (entity-decoded, whitespace
    /// preserved except leading/trailing trim).
    pub text: String,
}

impl Element {
    /// Create a new element with the given name.
    pub fn new(name: impl Into<String>) -> Element {
        Element {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Builder: add an attribute.
    pub fn attr(mut self, key: impl Into<String>, value: impl Into<String>) -> Element {
        self.attrs.push((key.into(), value.into()));
        self
    }

    /// Builder: add a child element.
    pub fn child(mut self, child: Element) -> Element {
        self.children.push(child);
        self
    }

    /// Builder: set text content.
    pub fn with_text(mut self, text: impl Into<String>) -> Element {
        self.text = text.into();
        self
    }

    /// Look up an attribute value by name.
    pub fn get_attr(&self, key: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// First child with the given tag name.
    pub fn find(&self, name: &str) -> Option<&Element> {
        self.children.iter().find(|c| c.name == name)
    }

    /// All children with the given tag name.
    pub fn find_all<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Element> + 'a {
        self.children.iter().filter(move |c| c.name == name)
    }

    /// Serialize to an XML string (pretty-printed, 2-space indent).
    pub fn to_xml(&self) -> String {
        writer::write(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_lookup() {
        let e = Element::new("View")
            .attr("name", "ViewMailClient_Partner")
            .child(Element::new("Represents").attr("name", "MailClient"));
        assert_eq!(e.get_attr("name"), Some("ViewMailClient_Partner"));
        assert_eq!(
            e.find("Represents").unwrap().get_attr("name"),
            Some("MailClient")
        );
        assert!(e.find("Missing").is_none());
    }

    #[test]
    fn roundtrip_through_text() {
        let e = Element::new("a")
            .attr("k", "v with \"quotes\" & <angles>")
            .child(Element::new("b").with_text("hello & <world>"))
            .child(Element::new("c"));
        let xml = e.to_xml();
        let back = parse(&xml).unwrap();
        assert_eq!(back.name, "a");
        assert_eq!(back.get_attr("k"), Some("v with \"quotes\" & <angles>"));
        assert_eq!(back.find("b").unwrap().text, "hello & <world>");
        assert!(back.find("c").is_some());
    }
}
