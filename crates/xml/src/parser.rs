//! Recursive-descent XML parser.

use crate::Element;

/// Parse error with byte offset and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset where the error occurred.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl core::fmt::Display for ParseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "XML parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}
impl std::error::Error for ParseError {}

/// Maximum element nesting depth. Deeper documents are rejected rather
/// than risking stack exhaustion in the recursive-descent parser —
/// every legitimate PSF document (view specs, scenarios, wire frames)
/// is a handful of levels deep.
pub const MAX_DEPTH: usize = 128;

/// Parse a document and return its root element.
pub fn parse(input: &str) -> Result<Element, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_misc();
    let root = p.parse_element()?;
    p.skip_misc();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content after document element"));
    }
    Ok(root)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            message: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.bytes[self.pos..].starts_with(s.as_bytes())
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    /// Skip whitespace, comments, XML declarations, and PIs.
    fn skip_misc(&mut self) {
        loop {
            self.skip_ws();
            if self.starts_with("<!--") {
                match find(self.bytes, self.pos + 4, b"-->") {
                    Some(end) => self.pos = end + 3,
                    None => {
                        self.pos = self.bytes.len();
                        return;
                    }
                }
            } else if self.starts_with("<?") {
                match find(self.bytes, self.pos + 2, b"?>") {
                    Some(end) => self.pos = end + 2,
                    None => {
                        self.pos = self.bytes.len();
                        return;
                    }
                }
            } else if self.starts_with("<!DOCTYPE") {
                // Skip to the matching '>' (no internal-subset support).
                while let Some(c) = self.peek() {
                    self.pos += 1;
                    if c == b'>' {
                        break;
                    }
                }
            } else {
                return;
            }
        }
    }

    fn parse_name(&mut self) -> Result<String, ParseError> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            let ok = c.is_ascii_alphanumeric() || matches!(c, b'_' | b'-' | b'.' | b':');
            if !ok {
                break;
            }
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected a name"));
        }
        Ok(String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned())
    }

    fn parse_element(&mut self) -> Result<Element, ParseError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err(format!("element nesting exceeds {MAX_DEPTH} levels")));
        }
        self.depth += 1;
        let result = self.parse_element_inner();
        self.depth -= 1;
        result
    }

    fn parse_element_inner(&mut self) -> Result<Element, ParseError> {
        if self.peek() != Some(b'<') {
            return Err(self.err("expected '<'"));
        }
        self.pos += 1;
        let name = self.parse_name()?;
        let mut el = Element::new(name);

        // Attributes.
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(b'/') => {
                    self.pos += 1;
                    if self.peek() != Some(b'>') {
                        return Err(self.err("expected '>' after '/'"));
                    }
                    self.pos += 1;
                    return Ok(el); // self-closing
                }
                Some(_) => {
                    let key = self.parse_name()?;
                    self.skip_ws();
                    if self.peek() != Some(b'=') {
                        return Err(self.err(format!("expected '=' after attribute '{key}'")));
                    }
                    self.pos += 1;
                    self.skip_ws();
                    let quote = match self.peek() {
                        Some(q @ (b'"' | b'\'')) => q,
                        _ => return Err(self.err("expected quoted attribute value")),
                    };
                    self.pos += 1;
                    let start = self.pos;
                    while self.peek().is_some_and(|c| c != quote) {
                        self.pos += 1;
                    }
                    if self.peek() != Some(quote) {
                        return Err(self.err("unterminated attribute value"));
                    }
                    let raw = &self.bytes[start..self.pos];
                    self.pos += 1;
                    if el.attrs.iter().any(|(k, _)| k == &key) {
                        return Err(
                            self.err(format!("duplicate attribute '{key}' on <{}>", el.name))
                        );
                    }
                    el.attrs.push((key, decode_entities(raw, start)?));
                }
                None => return Err(self.err("unexpected end of input in tag")),
            }
        }

        // Content.
        let mut text = String::new();
        loop {
            if self.starts_with("</") {
                self.pos += 2;
                let close = self.parse_name()?;
                if close != el.name {
                    return Err(self.err(format!(
                        "mismatched closing tag: expected </{}>, found </{close}>",
                        el.name
                    )));
                }
                self.skip_ws();
                if self.peek() != Some(b'>') {
                    return Err(self.err("expected '>' in closing tag"));
                }
                self.pos += 1;
                el.text = text.trim().to_string();
                return Ok(el);
            } else if self.starts_with("<!--") {
                match find(self.bytes, self.pos + 4, b"-->") {
                    Some(end) => self.pos = end + 3,
                    None => return Err(self.err("unterminated comment")),
                }
            } else if self.starts_with("<![CDATA[") {
                let start = self.pos + 9;
                match find(self.bytes, start, b"]]>") {
                    Some(end) => {
                        text.push_str(&String::from_utf8_lossy(&self.bytes[start..end]));
                        self.pos = end + 3;
                    }
                    None => return Err(self.err("unterminated CDATA section")),
                }
            } else if self.starts_with("<?") {
                match find(self.bytes, self.pos + 2, b"?>") {
                    Some(end) => self.pos = end + 2,
                    None => return Err(self.err("unterminated processing instruction")),
                }
            } else if self.peek() == Some(b'<') {
                el.children.push(self.parse_element()?);
            } else if self.peek().is_some() {
                let start = self.pos;
                while self.peek().is_some_and(|c| c != b'<') {
                    self.pos += 1;
                }
                text.push_str(&decode_entities(&self.bytes[start..self.pos], start)?);
            } else {
                return Err(self.err(format!("unexpected end of input inside <{}>", el.name)));
            }
        }
    }
}

fn find(haystack: &[u8], from: usize, needle: &[u8]) -> Option<usize> {
    if from > haystack.len() {
        return None;
    }
    haystack[from..]
        .windows(needle.len())
        .position(|w| w == needle)
        .map(|i| i + from)
}

fn decode_entities(raw: &[u8], base_offset: usize) -> Result<String, ParseError> {
    let s = String::from_utf8_lossy(raw);
    if !s.contains('&') {
        return Ok(s.into_owned());
    }
    let mut out = String::with_capacity(s.len());
    let mut rest = s.as_ref();
    while let Some(amp) = rest.find('&') {
        out.push_str(&rest[..amp]);
        let tail = &rest[amp..];
        let semi = tail.find(';').ok_or(ParseError {
            offset: base_offset,
            message: "unterminated entity reference".into(),
        })?;
        let entity = &tail[1..semi];
        match entity {
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "amp" => out.push('&'),
            "quot" => out.push('"'),
            "apos" => out.push('\''),
            _ if entity.starts_with("#x") || entity.starts_with("#X") => {
                let code = u32::from_str_radix(&entity[2..], 16).map_err(|_| ParseError {
                    offset: base_offset,
                    message: format!("bad character reference '&{entity};'"),
                })?;
                out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
            }
            _ if entity.starts_with('#') => {
                let code: u32 = entity[1..].parse().map_err(|_| ParseError {
                    offset: base_offset,
                    message: format!("bad character reference '&{entity};'"),
                })?;
                out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
            }
            _ => {
                return Err(ParseError {
                    offset: base_offset,
                    message: format!("unknown entity '&{entity};'"),
                })
            }
        }
        rest = &tail[semi + 1..];
    }
    out.push_str(rest);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_element() {
        let e = parse("<a/>").unwrap();
        assert_eq!(e.name, "a");
        assert!(e.children.is_empty());
    }

    #[test]
    fn nested_with_attrs() {
        let e = parse(r#"<View name="V"><Represents name="MailClient"/></View>"#).unwrap();
        assert_eq!(e.get_attr("name"), Some("V"));
        assert_eq!(e.children.len(), 1);
        assert_eq!(e.children[0].get_attr("name"), Some("MailClient"));
    }

    #[test]
    fn text_content() {
        let e = parse("<MSign>  void mergeImageIntoView(byte[])  </MSign>").unwrap();
        assert_eq!(e.text, "void mergeImageIntoView(byte[])");
    }

    #[test]
    fn entities_decoded() {
        let e = parse("<m>a &lt; b &amp;&amp; c &gt; d &#65;&#x42;</m>").unwrap();
        assert_eq!(e.text, "a < b && c > d AB");
    }

    #[test]
    fn cdata() {
        let e = parse("<code><![CDATA[ if (a < b && c > d) { } ]]></code>").unwrap();
        assert_eq!(e.text, "if (a < b && c > d) { }");
    }

    #[test]
    fn comments_skipped() {
        let e = parse("<!-- header --><a><!-- inner --><b/></a><!-- trailer -->").unwrap();
        assert_eq!(e.children.len(), 1);
    }

    #[test]
    fn xml_declaration_skipped() {
        let e = parse("<?xml version=\"1.0\"?>\n<a/>").unwrap();
        assert_eq!(e.name, "a");
    }

    #[test]
    fn mismatched_close_rejected() {
        let err = parse("<a><b></a></b>").unwrap_err();
        assert!(err.message.contains("mismatched"));
    }

    #[test]
    fn unterminated_rejected() {
        assert!(parse("<a><b>").is_err());
        assert!(parse("<a attr=>").is_err());
        assert!(parse("<a attr='x>").is_err());
    }

    #[test]
    fn unknown_entity_rejected() {
        assert!(parse("<a>&bogus;</a>").is_err());
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse("<a/><b/>").is_err());
    }

    #[test]
    fn single_quoted_attrs() {
        let e = parse("<a k='v1' j=\"v2\"/>").unwrap();
        assert_eq!(e.get_attr("k"), Some("v1"));
        assert_eq!(e.get_attr("j"), Some("v2"));
    }

    #[test]
    fn mixed_content_concatenates() {
        let e = parse("<a>one<b/>two</a>").unwrap();
        assert_eq!(e.text, "onetwo");
        assert_eq!(e.children.len(), 1);
    }

    #[test]
    fn doctype_skipped() {
        let e = parse("<!DOCTYPE view><a/>").unwrap();
        assert_eq!(e.name, "a");
    }

    #[test]
    fn duplicate_attribute_rejected() {
        let err = parse(r#"<a k="1" k="2"/>"#).unwrap_err();
        assert!(err.message.contains("duplicate attribute 'k'"), "{err}");
        // Distinct keys still fine.
        assert!(parse(r#"<a k="1" j="2"/>"#).is_ok());
    }

    #[test]
    fn nesting_depth_capped() {
        let deep_ok = format!(
            "{}x{}",
            "<a>".repeat(MAX_DEPTH - 1),
            "</a>".repeat(MAX_DEPTH - 1)
        );
        assert!(parse(&deep_ok).is_ok());
        let too_deep = format!(
            "{}x{}",
            "<a>".repeat(MAX_DEPTH + 1),
            "</a>".repeat(MAX_DEPTH + 1)
        );
        let err = parse(&too_deep).unwrap_err();
        assert!(err.message.contains("nesting exceeds"), "{err}");
    }
}
