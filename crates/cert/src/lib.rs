//! # psf-cert — proof-carrying authorization certificates
//!
//! "Untrusted engines compute; a small trusted checker verifies."
//! `ProofEngine::prove` is a breadth-first search over a mutable,
//! distributed credential repository — thousands of lines of engine,
//! cache, and sharding code sit between a delegation and a verdict. This
//! crate is the other half of that bargain: a **certificate** is the exact
//! evidence the engine found (the delegation chain, its third-party
//! assignment supports, and the attribute-attenuation trace), carried as
//! the *literal signed bytes* of every credential, and a **checker** is a
//! few hundred lines of straight-line code that re-validates the evidence
//! with no repository access and no search:
//!
//! * Ed25519 signature checks over the embedded canonical bytes,
//! * chain-rule application (subject linkage, issuer authorization via
//!   assignment chains terminating at the role owner),
//! * attenuation monotonicity (ranges/sets intersect, capacities take the
//!   minimum — a chain can only narrow),
//! * expiry windows at the caller's clock and revocation via a caller
//!   -supplied probe,
//! * an epoch window against the repository version the certificate
//!   pinned.
//!
//! The checker is deny-by-default: an unknown tag, a truncated field, a
//! trailing byte, an oversized count, a digest mismatch — anything it does
//! not positively recognize — is a typed [`CertError`], never an accept
//! and never a panic.
//!
//! ## Trusted-base argument
//!
//! This crate depends on `psf-crypto` only. It has **no** access to the
//! repository, the proof engine, or the caches; it re-implements
//! delegation parsing and attribute attenuation from the canonical wire
//! encoding rather than importing them, so a bug in the engine cannot
//! silently become a bug in the checker. The environment the caller must
//! supply is three small facts: a name → key directory
//! ([`KeyDirectory`]), a revocation predicate ([`RevocationProbe`]), and
//! the current logical time.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use psf_crypto::ed25519::{Signature, VerifyingKey};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Magic prefix of the certificate wire encoding.
pub const CERT_MAGIC: &[u8; 15] = b"PSF-authcert-v1";
/// The (only) supported certificate format version.
pub const CERT_VERSION: u8 = 1;
/// Hard cap on the certificate wire size the checker will even look at.
pub const MAX_WIRE: usize = 1 << 20;
/// Magic prefix of the embedded canonical delegation encoding.
const DELEGATION_MAGIC: &[u8; 19] = b"dRBAC-delegation-v1";

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Every way a certificate can fail to check. The variants are stable:
/// tests (and callers that branch on them) rely on a given tampering
/// producing the same typed reason across releases.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CertError {
    /// The wire bytes do not start with [`CERT_MAGIC`].
    BadMagic,
    /// The version byte is not [`CERT_VERSION`].
    UnsupportedVersion(u8),
    /// The wire bytes end before a declared field does.
    Truncated,
    /// Bytes remain after the last declared field.
    TrailingBytes,
    /// A structural rule of the encoding was violated (unknown tag,
    /// non-UTF-8 string, oversized input, malformed role name, …).
    Malformed(&'static str),
    /// The integrity digest over the payload does not match: the bytes
    /// were corrupted or tampered after emission.
    DigestMismatch,
    /// The certificate pins a repository epoch later than the one the
    /// verifier observes — it claims evidence from the future.
    EpochAhead {
        /// Epoch pinned inside the certificate.
        pinned: u64,
        /// Epoch the verifier currently observes.
        current: u64,
    },
    /// A membership certificate with no edges proves nothing.
    EmptyChain,
    /// An edge's Ed25519 signature does not verify under its issuer key.
    BadSignature {
        /// Credential id of the offending edge.
        edge: String,
    },
    /// An edge's issuer is not in the verifier's key directory.
    UnknownIssuer(String),
    /// An edge is expired at the verifier's clock.
    Expired {
        /// Credential id of the expired edge.
        edge: String,
    },
    /// An edge's credential id is revoked.
    Revoked(String),
    /// A self-certifying edge was not issued by its role's owner.
    NotOwner {
        /// Credential id of the offending edge.
        edge: String,
    },
    /// An edge's subject does not follow the previous edge's object role
    /// (or the claimed subject, for the first edge).
    BrokenLink {
        /// Credential id of the offending edge.
        edge: String,
    },
    /// An edge has the wrong delegation kind for its position (assignment
    /// edge in a membership chain, or vice versa).
    WrongKind {
        /// Credential id of the offending edge.
        edge: String,
    },
    /// A third-party edge carries no assignment-right support chain.
    MissingSupport {
        /// Credential id of the offending edge.
        edge: String,
    },
    /// A support edge does not belong to its membership edge's assignment
    /// chain (wrong object role, or the chain does not reach the owner).
    SupportMismatch {
        /// Credential id of the offending edge.
        edge: String,
    },
    /// Attribute attenuation along the chain annihilated (an empty
    /// intersection), so the chain conveys nothing.
    AttrAnnihilation {
        /// Credential id of the edge at which attributes annihilated.
        edge: String,
    },
    /// The chain does not end at the role the certificate claims.
    WrongTarget,
    /// The attributes the certificate claims are not what the chain
    /// actually conveys.
    AttrMismatch,
    /// A chain edge is missing from the certificate's watch set, so a
    /// revocation monitor built from the certificate would not cover it.
    UnwatchedEdge(String),
    /// The zero-edge assignment certificate's subject key does not match
    /// the directory key for the role owner.
    OwnerKeyMismatch,
}

impl fmt::Display for CertError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CertError::BadMagic => write!(f, "not an authorization certificate"),
            CertError::UnsupportedVersion(v) => write!(f, "unsupported certificate version {v}"),
            CertError::Truncated => write!(f, "certificate truncated"),
            CertError::TrailingBytes => write!(f, "trailing bytes after certificate"),
            CertError::Malformed(what) => write!(f, "malformed certificate: {what}"),
            CertError::DigestMismatch => write!(f, "certificate integrity digest mismatch"),
            CertError::EpochAhead { pinned, current } => write!(
                f,
                "certificate pins repository epoch {pinned} ahead of current {current}"
            ),
            CertError::EmptyChain => write!(f, "membership certificate has no edges"),
            CertError::BadSignature { edge } => write!(f, "edge {edge}: signature check failed"),
            CertError::UnknownIssuer(name) => write!(f, "unknown issuer '{name}'"),
            CertError::Expired { edge } => write!(f, "edge {edge}: credential expired"),
            CertError::Revoked(id) => write!(f, "edge {id}: credential revoked"),
            CertError::NotOwner { edge } => {
                write!(
                    f,
                    "edge {edge}: self-certifying but not issued by role owner"
                )
            }
            CertError::BrokenLink { edge } => {
                write!(f, "edge {edge}: subject does not follow the chain")
            }
            CertError::WrongKind { edge } => {
                write!(f, "edge {edge}: wrong delegation kind for its position")
            }
            CertError::MissingSupport { edge } => {
                write!(
                    f,
                    "edge {edge}: third-party delegation without support chain"
                )
            }
            CertError::SupportMismatch { edge } => {
                write!(
                    f,
                    "edge {edge}: support chain does not authorize its issuer"
                )
            }
            CertError::AttrAnnihilation { edge } => {
                write!(f, "edge {edge}: attributes annihilate")
            }
            CertError::WrongTarget => write!(f, "chain does not end at the claimed role"),
            CertError::AttrMismatch => {
                write!(f, "claimed attributes do not match the chain")
            }
            CertError::UnwatchedEdge(id) => {
                write!(f, "chain edge {id} missing from the watch set")
            }
            CertError::OwnerKeyMismatch => {
                write!(f, "owner key mismatch in assignment certificate")
            }
        }
    }
}

impl std::error::Error for CertError {}

// ---------------------------------------------------------------------------
// Verifier environment
// ---------------------------------------------------------------------------

/// Name → Ed25519 public key directory (the verifier's PKI stand-in).
pub trait KeyDirectory {
    /// The 32-byte public key registered for `name`, if any.
    fn key_of(&self, name: &str) -> Option<[u8; 32]>;
}

impl KeyDirectory for BTreeMap<String, [u8; 32]> {
    fn key_of(&self, name: &str) -> Option<[u8; 32]> {
        self.get(name).copied()
    }
}

impl KeyDirectory for std::collections::HashMap<String, [u8; 32]> {
    fn key_of(&self, name: &str) -> Option<[u8; 32]> {
        self.get(name).copied()
    }
}

/// Revocation predicate over credential ids.
pub trait RevocationProbe {
    /// True if the credential with this id has been revoked.
    fn is_revoked(&self, id: &str) -> bool;
}

impl RevocationProbe for BTreeSet<String> {
    fn is_revoked(&self, id: &str) -> bool {
        self.contains(id)
    }
}

impl RevocationProbe for std::collections::HashSet<String> {
    fn is_revoked(&self, id: &str) -> bool {
        self.contains(id)
    }
}

/// Memo of certificates this checker has already structurally verified.
///
/// Continuous authorization re-runs the checker on the *same* certificate
/// every time a watched credential is revoked or a validity horizon
/// passes. A certificate's *structural* validity — signatures over the
/// embedded bytes, chain linkage, issuer authorization, attenuation
/// monotonicity, target and watch coverage — is a pure function of the
/// certificate payload and the key directory, so re-deriving it on
/// identical inputs proves nothing new. After each fully **successful**
/// check the memo records, keyed by the payload's SHA-256 digest:
///
/// * every `(name, key)` the key directory was consulted for, and
/// * every chain edge's `(id, expiry)` in traversal order.
///
/// A later check of the same payload replays only the *environment*: the
/// epoch window, the recorded key bindings against the live directory
/// (any drift falls back to the full check), and expiry/revocation of
/// every recorded edge at the caller's clock — so a hit can never mask a
/// revocation, an expiry, or a re-keyed issuer. Failed checks are never
/// recorded: a forged certificate pays the full check on every attempt.
///
/// The memo is bounded: at `cap` entries it resets rather than evicting,
/// keeping the worst case simple and the structure small.
pub struct CheckMemo {
    entries: std::sync::Mutex<std::collections::HashMap<[u8; 32], std::sync::Arc<MemoEntry>>>,
    cap: usize,
}

/// What a successful full check recorded (see [`CheckMemo`]).
struct MemoEntry {
    /// Every key-directory consultation the check made, in order.
    consulted: Vec<(String, [u8; 32])>,
    /// `(credential id, expiry)` of every chain edge, traversal order.
    facts: Vec<(String, Option<u64>)>,
}

impl CheckMemo {
    /// A memo holding at most `cap` verified certificates.
    pub fn new(cap: usize) -> CheckMemo {
        CheckMemo {
            entries: std::sync::Mutex::new(std::collections::HashMap::new()),
            cap: cap.max(1),
        }
    }

    /// Number of certificates currently memoized.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("check memo poisoned").len()
    }

    /// True when nothing has been memoized yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn lookup(&self, digest: &[u8; 32]) -> Option<std::sync::Arc<MemoEntry>> {
        self.entries
            .lock()
            .expect("check memo poisoned")
            .get(digest)
            .cloned()
    }

    fn insert(&self, digest: [u8; 32], entry: MemoEntry) {
        let mut entries = self.entries.lock().expect("check memo poisoned");
        if entries.len() >= self.cap && !entries.contains_key(&digest) {
            entries.clear();
        }
        entries.insert(digest, std::sync::Arc::new(entry));
    }
}

/// [`KeyDirectory`] adapter that logs every successful consultation, so
/// the memo can re-validate exactly the bindings a check depended on.
struct RecordingKeys<'a> {
    inner: &'a dyn KeyDirectory,
    log: std::cell::RefCell<Vec<(String, [u8; 32])>>,
}

impl KeyDirectory for RecordingKeys<'_> {
    fn key_of(&self, name: &str) -> Option<[u8; 32]> {
        let r = self.inner.key_of(name);
        if let Some(k) = r {
            self.log.borrow_mut().push((name.to_string(), k));
        }
        r
    }
}

/// Everything the checker needs from its environment: keys, revocations,
/// the clock, and (optionally) the repository epoch currently observed.
pub struct CheckContext<'a> {
    /// Issuer name → public key directory.
    pub keys: &'a dyn KeyDirectory,
    /// Revocation predicate.
    pub revoked: &'a dyn RevocationProbe,
    /// Logical time at which validity is evaluated.
    pub now: u64,
    /// The repository epoch the verifier currently observes, if it knows
    /// one. A certificate pinning a *later* epoch is rejected
    /// ([`CertError::EpochAhead`]); an earlier pin is fine — positive
    /// proofs are monotone under publishes, and revocation/expiry are
    /// re-checked live.
    pub repo_epoch: Option<u64>,
    /// Optional [`CheckMemo`] so repeated checks of the same certificate
    /// (the continuous-authorization re-check path) skip re-deriving the
    /// structural verdict. `None` re-derives everything in full.
    pub memo: Option<&'a CheckMemo>,
}

// ---------------------------------------------------------------------------
// Certificate data model
// ---------------------------------------------------------------------------

/// Whether the certificate proves role membership or the assignment right.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CertKind {
    /// Subject holds the role.
    Membership,
    /// Subject holds the *right of assignment* for the role.
    Assignment,
}

/// The subject a certificate speaks for: a keyed entity or a role.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CertSubject {
    /// A keyed principal.
    Entity {
        /// The entity's name.
        name: String,
        /// Its Ed25519 public key.
        key: [u8; 32],
    },
    /// A role (`Owner.Role`), for role→role chains.
    Role(String),
}

impl CertSubject {
    /// Display string (bare names, like the paper syntax).
    pub fn render(&self) -> String {
        match self {
            CertSubject::Entity { name, .. } => name.clone(),
            CertSubject::Role(r) => r.clone(),
        }
    }
}

/// One attribute value; attenuation semantics mirror the engine exactly:
/// capacities take the minimum, ranges and sets intersect, a capacity
/// meets a range as `[0, cap]`, and a set never meets a numeric kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CertAttr {
    /// Capacity-style number; attenuates by minimum.
    Capacity(i64),
    /// Inclusive numeric range; attenuates by intersection.
    Range(i64, i64),
    /// Admissible symbolic values; attenuates by intersection.
    Set(BTreeSet<String>),
}

impl CertAttr {
    fn attenuate(&self, other: &CertAttr) -> Option<CertAttr> {
        match (self, other) {
            (CertAttr::Capacity(a), CertAttr::Capacity(b)) => Some(CertAttr::Capacity(*a.min(b))),
            (CertAttr::Range(lo1, hi1), CertAttr::Range(lo2, hi2)) => {
                let lo = *lo1.max(lo2);
                let hi = *hi1.min(hi2);
                if lo <= hi {
                    Some(CertAttr::Range(lo, hi))
                } else {
                    None
                }
            }
            (CertAttr::Set(a), CertAttr::Set(b)) => {
                let i: BTreeSet<String> = a.intersection(b).cloned().collect();
                if i.is_empty() {
                    None
                } else {
                    Some(CertAttr::Set(i))
                }
            }
            (CertAttr::Capacity(a), CertAttr::Range(lo, hi))
            | (CertAttr::Range(lo, hi), CertAttr::Capacity(a)) => {
                CertAttr::Range(0, *a).attenuate(&CertAttr::Range(*lo, *hi))
            }
            _ => None,
        }
    }

    fn satisfies(&self, required: &CertAttr) -> bool {
        match (self, required) {
            (CertAttr::Capacity(have), CertAttr::Capacity(need)) => have >= need,
            (CertAttr::Range(_, hi), CertAttr::Capacity(need)) => hi >= need,
            _ => self.attenuate(required).is_some(),
        }
    }

    fn render(&self) -> String {
        match self {
            CertAttr::Capacity(v) => v.to_string(),
            CertAttr::Range(lo, hi) => format!("({lo},{hi})"),
            CertAttr::Set(s) => {
                let items: Vec<&str> = s.iter().map(String::as_str).collect();
                format!("{{{}}}", items.join(","))
            }
        }
    }
}

/// An ordered attribute map, canonical under its BTree ordering.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CertAttrs(pub BTreeMap<String, CertAttr>);

impl CertAttrs {
    /// The empty attribute set.
    pub fn new() -> CertAttrs {
        CertAttrs::default()
    }

    /// Attenuate by the next hop: shared keys must intersect non-emptily,
    /// unshared keys carry over.
    pub fn attenuate(&self, next: &CertAttrs) -> Option<CertAttrs> {
        let mut out = self.0.clone();
        for (k, v) in &next.0 {
            match out.get(k) {
                Some(existing) => {
                    let narrowed = existing.attenuate(v)?;
                    out.insert(k.clone(), narrowed);
                }
                None => {
                    out.insert(k.clone(), v.clone());
                }
            }
        }
        Some(CertAttrs(out))
    }

    /// Whether every required attribute is present and compatible.
    pub fn satisfies(&self, required: &CertAttrs) -> bool {
        required.0.iter().all(|(k, req)| {
            self.0
                .get(k)
                .map(|have| have.satisfies(req))
                .unwrap_or(false)
        })
    }

    /// Paper-syntax rendering (`" with CPU=100 Trust=(0,10)"`).
    pub fn render(&self) -> String {
        if self.0.is_empty() {
            return String::new();
        }
        let parts: Vec<String> = self
            .0
            .iter()
            .map(|(k, v)| format!("{k}={}", v.render()))
            .collect();
        format!(" with {}", parts.join(" "))
    }
}

/// A support edge: one assignment delegation of a third-party edge's
/// authorization chain — the literal signed bytes plus the signature.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SupportEdge {
    /// The canonical delegation encoding the issuer signed.
    pub signed: Vec<u8>,
    /// The issuer's Ed25519 signature over `signed`.
    pub signature: [u8; 64],
}

impl SupportEdge {
    /// Stable credential id (same derivation the engine uses).
    pub fn id(&self) -> String {
        edge_id(&self.signed, &self.signature)
    }
}

/// One edge of the certified chain: the credential's signed bytes, its
/// signature, and — for third-party delegations — the assignment-right
/// chain authorizing its issuer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CertEdge {
    /// The canonical delegation encoding the issuer signed.
    pub signed: Vec<u8>,
    /// The issuer's Ed25519 signature over `signed`.
    pub signature: [u8; 64],
    /// Assignment chain authorizing this edge's issuer (third-party
    /// edges). `Some(vec![])` means "the issuer *is* the role owner".
    pub support: Option<Vec<SupportEdge>>,
}

impl CertEdge {
    /// Stable credential id (same derivation the engine uses).
    pub fn id(&self) -> String {
        edge_id(&self.signed, &self.signature)
    }
}

/// A proof-carrying authorization certificate: everything needed to
/// re-validate an engine verdict with no repository and no search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuthCertificate {
    /// Membership or assignment-right.
    pub kind: CertKind,
    /// The subject the verdict authorizes.
    pub subject: CertSubject,
    /// The role proven (`Owner.Role`).
    pub role: String,
    /// The attributes the chain conveys after attenuation.
    pub attrs: CertAttrs,
    /// Repository epoch the proof search was computed against, if the
    /// source was versioned.
    pub repo_epoch: Option<u64>,
    /// Registry epoch at emission time.
    pub registry_epoch: u64,
    /// The delegation chain, subject-side first.
    pub edges: Vec<CertEdge>,
    /// Revocation frontier: every credential id whose revocation must
    /// invalidate this certificate (a superset of the chain ids).
    pub watch: Vec<String>,
}

impl AuthCertificate {
    /// Canonical wire encoding: payload followed by a 32-byte SHA-256
    /// integrity digest. The digest is tamper-*evidence*, not a
    /// signature — unforgeability comes from the per-edge Ed25519
    /// signatures the checker verifies.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = self.encode_payload();
        let digest = psf_crypto::sha256(&out);
        out.extend_from_slice(&digest);
        out
    }

    fn encode_payload(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(256);
        out.extend_from_slice(CERT_MAGIC);
        out.push(CERT_VERSION);
        out.push(match self.kind {
            CertKind::Membership => 0,
            CertKind::Assignment => 1,
        });
        match &self.subject {
            CertSubject::Entity { name, key } => {
                out.push(0);
                put_str(&mut out, name);
                out.extend_from_slice(key);
            }
            CertSubject::Role(r) => {
                out.push(1);
                put_str(&mut out, r);
            }
        }
        put_str(&mut out, &self.role);
        encode_attrs(&self.attrs, &mut out);
        match self.repo_epoch {
            Some(e) => {
                out.push(1);
                out.extend_from_slice(&e.to_le_bytes());
            }
            None => out.push(0),
        }
        out.extend_from_slice(&self.registry_epoch.to_le_bytes());
        out.extend_from_slice(&(self.edges.len() as u32).to_le_bytes());
        for e in &self.edges {
            put_bytes(&mut out, &e.signed);
            out.extend_from_slice(&e.signature);
            match &e.support {
                Some(chain) => {
                    out.push(1);
                    out.extend_from_slice(&(chain.len() as u32).to_le_bytes());
                    for s in chain {
                        put_bytes(&mut out, &s.signed);
                        out.extend_from_slice(&s.signature);
                    }
                }
                None => out.push(0),
            }
        }
        out.extend_from_slice(&(self.watch.len() as u32).to_le_bytes());
        for id in &self.watch {
            put_str(&mut out, id);
        }
        out
    }

    /// Strict decode of [`encode`](Self::encode) output: integrity digest
    /// first, then every field, with anything unrecognized rejected.
    pub fn decode(bytes: &[u8]) -> Result<AuthCertificate, CertError> {
        if bytes.len() > MAX_WIRE {
            return Err(CertError::Malformed("oversized certificate"));
        }
        if bytes.len() < CERT_MAGIC.len() + 1 + 32 {
            return Err(CertError::Truncated);
        }
        let (payload, digest) = bytes.split_at(bytes.len() - 32);
        if psf_crypto::sha256(payload) != digest {
            return Err(CertError::DigestMismatch);
        }
        let mut r = Reader::new(payload);
        if r.take(CERT_MAGIC.len())? != CERT_MAGIC {
            return Err(CertError::BadMagic);
        }
        let version = r.u8()?;
        if version != CERT_VERSION {
            return Err(CertError::UnsupportedVersion(version));
        }
        let kind = match r.u8()? {
            0 => CertKind::Membership,
            1 => CertKind::Assignment,
            _ => return Err(CertError::Malformed("certificate kind tag")),
        };
        let subject = read_subject(&mut r)?;
        let role = r.str()?;
        let attrs = read_attrs(&mut r)?;
        let repo_epoch = match r.u8()? {
            0 => None,
            1 => Some(r.u64()?),
            _ => return Err(CertError::Malformed("epoch option tag")),
        };
        let registry_epoch = r.u64()?;
        let n_edges = r.u32()? as usize;
        let mut edges = Vec::new();
        for _ in 0..n_edges {
            let signed = r.bytes()?;
            let signature = r.sig()?;
            let support = match r.u8()? {
                0 => None,
                1 => {
                    let n = r.u32()? as usize;
                    let mut chain = Vec::new();
                    for _ in 0..n {
                        let s_signed = r.bytes()?;
                        let s_sig = r.sig()?;
                        chain.push(SupportEdge {
                            signed: s_signed,
                            signature: s_sig,
                        });
                    }
                    Some(chain)
                }
                _ => return Err(CertError::Malformed("support option tag")),
            };
            edges.push(CertEdge {
                signed,
                signature,
                support,
            });
        }
        let n_watch = r.u32()? as usize;
        let mut watch = Vec::new();
        for _ in 0..n_watch {
            watch.push(r.str()?);
        }
        r.finish()?;
        Ok(AuthCertificate {
            kind,
            subject,
            role,
            attrs,
            repo_epoch,
            registry_epoch,
            edges,
            watch,
        })
    }

    /// Full SHA-256 integrity digest of the payload.
    pub fn digest(&self) -> [u8; 32] {
        psf_crypto::sha256(&self.encode_payload())
    }

    /// Truncated hex digest (16 chars), the form audit records carry.
    pub fn digest_hex(&self) -> String {
        self.digest()[..8]
            .iter()
            .map(|b| format!("{b:02x}"))
            .collect()
    }

    /// Credential ids of every edge, supports included, chain order.
    pub fn chain_ids(&self) -> Vec<String> {
        let mut out = Vec::new();
        for e in &self.edges {
            out.push(e.id());
            if let Some(chain) = &e.support {
                for s in chain {
                    out.push(s.id());
                }
            }
        }
        out
    }

    /// Total number of edges including supports.
    pub fn total_edges(&self) -> usize {
        self.edges
            .iter()
            .map(|e| 1 + e.support.as_ref().map_or(0, Vec::len))
            .sum()
    }

    /// Earliest expiry among all edges (best effort: unparseable edges
    /// contribute nothing; [`check`] is the authority on validity).
    pub fn min_expiry(&self) -> Option<u64> {
        let mut min: Option<u64> = None;
        let mut note = |signed: &[u8]| {
            if let Ok(p) = parse_delegation(signed) {
                if let Some(e) = p.expires {
                    min = Some(min.map_or(e, |m: u64| m.min(e)));
                }
            }
        };
        for e in &self.edges {
            note(&e.signed);
            if let Some(chain) = &e.support {
                for s in chain {
                    note(&s.signed);
                }
            }
        }
        min
    }

    /// Human-readable summary for CLI output.
    pub fn render(&self) -> String {
        let kind = match self.kind {
            CertKind::Membership => "membership",
            CertKind::Assignment => "assignment-right",
        };
        let mut out = format!(
            "certificate {} ({kind}) that {} holds {}{}\n",
            self.digest_hex(),
            self.subject.render(),
            self.role,
            self.attrs.render()
        );
        out.push_str(&format!(
            "  epochs: repo={} registry={}  edges={}  watch={}\n",
            self.repo_epoch
                .map_or_else(|| "-".to_string(), |e| e.to_string()),
            self.registry_epoch,
            self.total_edges(),
            self.watch.len()
        ));
        for (i, e) in self.edges.iter().enumerate() {
            let line = match parse_delegation(&e.signed) {
                Ok(p) => p.render(),
                Err(_) => "<unparseable delegation>".to_string(),
            };
            out.push_str(&format!("  ({}) {} [{}]\n", i + 1, line, e.id()));
            if let Some(chain) = &e.support {
                for s in chain {
                    let line = match parse_delegation(&s.signed) {
                        Ok(p) => p.render(),
                        Err(_) => "<unparseable delegation>".to_string(),
                    };
                    out.push_str(&format!("      | {} [{}]\n", line, s.id()));
                }
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Embedded delegation parsing
// ---------------------------------------------------------------------------

/// Delegation kind byte, as parsed from the canonical encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DelegationClass {
    /// Issued by the role owner directly.
    SelfCertifying,
    /// Issued by a third party holding the assignment right.
    ThirdParty,
    /// Grants the right of assignment.
    Assignment,
}

/// A delegation decoded from its canonical signed bytes — the checker's
/// independent view of what the issuer actually signed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedDelegation {
    /// Who receives the rights.
    pub subject: CertSubject,
    /// The role conveyed (`Owner.Role`).
    pub object: String,
    /// Which of the three delegation forms this is.
    pub kind: DelegationClass,
    /// The issuer's name.
    pub issuer: String,
    /// Attribute attenuations on this edge.
    pub attrs: CertAttrs,
    /// Optional expiry (logical seconds).
    pub expires: Option<u64>,
    /// Whether online validity monitoring was requested.
    pub monitored: bool,
    /// Issuer-chosen serial.
    pub serial: u64,
}

impl ParsedDelegation {
    /// Paper bracket-syntax rendering.
    pub fn render(&self) -> String {
        let prime = if self.kind == DelegationClass::Assignment {
            " '"
        } else {
            ""
        };
        format!(
            "[ {} -> {}{} ] {}{}",
            self.subject.render(),
            self.object,
            prime,
            self.issuer,
            self.attrs.render()
        )
    }
}

/// Strictly parse a canonical delegation encoding. Every byte must be
/// accounted for; unknown tags reject.
pub fn parse_delegation(bytes: &[u8]) -> Result<ParsedDelegation, CertError> {
    let mut r = Reader::new(bytes);
    if r.take(DELEGATION_MAGIC.len())? != DELEGATION_MAGIC {
        return Err(CertError::Malformed("delegation magic"));
    }
    let subject = read_subject(&mut r)?;
    let object = r.str()?;
    let kind = match r.u8()? {
        0 => DelegationClass::SelfCertifying,
        1 => DelegationClass::ThirdParty,
        2 => DelegationClass::Assignment,
        _ => return Err(CertError::Malformed("delegation kind tag")),
    };
    let issuer = r.str()?;
    let attrs = read_attrs(&mut r)?;
    let expires = match r.u8()? {
        0 => None,
        1 => Some(r.u64()?),
        _ => return Err(CertError::Malformed("expiry option tag")),
    };
    let monitored = match r.u8()? {
        0 => false,
        1 => true,
        _ => return Err(CertError::Malformed("monitored flag")),
    };
    let serial = r.u64()?;
    r.finish()?;
    Ok(ParsedDelegation {
        subject,
        object,
        kind,
        issuer,
        attrs,
        expires,
        monitored,
        serial,
    })
}

/// `Owner` of an `Owner.Role` string (rightmost dot splits).
fn role_owner(role: &str) -> Result<&str, CertError> {
    match role.rsplit_once('.') {
        Some((owner, r)) if !owner.is_empty() && !r.is_empty() => Ok(owner),
        _ => Err(CertError::Malformed("role name")),
    }
}

/// Stable credential id: hex SHA-256 (truncated) of signed bytes plus
/// signature — byte-identical to the engine's `SignedDelegation::id`.
fn edge_id(signed: &[u8], sig: &[u8; 64]) -> String {
    let mut data = Vec::with_capacity(signed.len() + 64);
    data.extend_from_slice(signed);
    data.extend_from_slice(sig);
    let digest = psf_crypto::sha256(&data);
    digest[..8].iter().map(|b| format!("{b:02x}")).collect()
}

// ---------------------------------------------------------------------------
// The checker
// ---------------------------------------------------------------------------

/// Decode and fully check certificate wire bytes.
pub fn check_bytes(bytes: &[u8], ctx: &CheckContext<'_>) -> Result<AuthCertificate, CertError> {
    let cert = AuthCertificate::decode(bytes)?;
    check(&cert, ctx)?;
    Ok(cert)
}

/// Check a certificate against the verifier's environment: the epoch
/// window, every signature over the embedded bytes, chain-rule linkage,
/// issuer authorization (assignment chains to the owner), attenuation
/// monotonicity, expiry at `ctx.now`, and revocation of every edge.
///
/// Accepts exactly when the engine's own `Proof::verify` would accept the
/// underlying proof — the differential property the test suite pins.
///
/// With a [`CheckMemo`] in the context, a certificate whose payload was
/// already fully verified replays only the environment-dependent half
/// (epoch window, key bindings, expiry, revocation); see [`CheckMemo`]
/// for the soundness argument.
pub fn check(cert: &AuthCertificate, ctx: &CheckContext<'_>) -> Result<(), CertError> {
    let Some(memo) = ctx.memo else {
        return check_full(cert, ctx);
    };
    let digest = cert.digest();
    if let Some(entry) = memo.lookup(&digest) {
        // The structural verdict holds as long as every key binding the
        // check consulted is unchanged; any drift (re-keyed or dropped
        // issuer) falls back to the full check below.
        if entry
            .consulted
            .iter()
            .all(|(name, key)| ctx.keys.key_of(name) == Some(*key))
        {
            return check_recorded(&entry, cert, ctx);
        }
    }
    let recorder = RecordingKeys {
        inner: ctx.keys,
        log: std::cell::RefCell::new(Vec::new()),
    };
    let full_ctx = CheckContext {
        keys: &recorder,
        revoked: ctx.revoked,
        now: ctx.now,
        repo_epoch: ctx.repo_epoch,
        memo: None,
    };
    check_full(cert, &full_ctx)?;
    memo.insert(
        digest,
        MemoEntry {
            consulted: recorder.log.into_inner(),
            facts: edge_facts(cert)?,
        },
    );
    Ok(())
}

/// The environment-only replay of a memoized structural verdict: epoch
/// window, then expiry and revocation of every recorded edge — the same
/// order the full check evaluates them, so error precedence matches.
fn check_recorded(
    entry: &MemoEntry,
    cert: &AuthCertificate,
    ctx: &CheckContext<'_>,
) -> Result<(), CertError> {
    if let (Some(pinned), Some(current)) = (cert.repo_epoch, ctx.repo_epoch) {
        if pinned > current {
            return Err(CertError::EpochAhead { pinned, current });
        }
    }
    for (id, expires) in &entry.facts {
        if let Some(e) = expires {
            if ctx.now >= *e {
                return Err(CertError::Expired { edge: id.clone() });
            }
        }
        if ctx.revoked.is_revoked(id) {
            return Err(CertError::Revoked(id.clone()));
        }
    }
    Ok(())
}

/// `(credential id, expiry)` of every chain edge in the exact order the
/// full check visits them — each edge, then its support chain.
fn edge_facts(cert: &AuthCertificate) -> Result<Vec<(String, Option<u64>)>, CertError> {
    let mut out = Vec::with_capacity(cert.total_edges());
    for e in &cert.edges {
        out.push((e.id(), parse_delegation(&e.signed)?.expires));
        if let Some(chain) = &e.support {
            for s in chain {
                out.push((s.id(), parse_delegation(&s.signed)?.expires));
            }
        }
    }
    Ok(out)
}

fn check_full(cert: &AuthCertificate, ctx: &CheckContext<'_>) -> Result<(), CertError> {
    if let (Some(pinned), Some(current)) = (cert.repo_epoch, ctx.repo_epoch) {
        if pinned > current {
            return Err(CertError::EpochAhead { pinned, current });
        }
    }
    // Every chain edge must be covered by the watch set, or a revocation
    // monitor built from this certificate would silently miss an edge.
    let watched: BTreeSet<&str> = cert.watch.iter().map(String::as_str).collect();
    for id in cert.chain_ids() {
        if !watched.contains(id.as_str()) {
            return Err(CertError::UnwatchedEdge(id));
        }
    }
    match cert.kind {
        CertKind::Assignment => {
            for e in &cert.edges {
                if e.support.is_some() {
                    return Err(CertError::Malformed("support chain on assignment edge"));
                }
            }
            let flat: Vec<SupportEdge> = cert
                .edges
                .iter()
                .map(|e| SupportEdge {
                    signed: e.signed.clone(),
                    signature: e.signature,
                })
                .collect();
            check_assignment_chain(&cert.subject, &cert.role, &flat, ctx)?;
            if !cert.attrs.0.is_empty() {
                // The engine never claims attributes on assignment proofs.
                return Err(CertError::AttrMismatch);
            }
            Ok(())
        }
        CertKind::Membership => check_membership(cert, ctx),
    }
}

fn check_membership(cert: &AuthCertificate, ctx: &CheckContext<'_>) -> Result<(), CertError> {
    if cert.edges.is_empty() {
        return Err(CertError::EmptyChain);
    }
    let mut attrs = CertAttrs::new();
    let mut expected = cert.subject.clone();
    for edge in &cert.edges {
        let (parsed, id) = check_edge(&edge.signed, &edge.signature, ctx)?;
        if parsed.subject != expected {
            return Err(CertError::BrokenLink { edge: id });
        }
        let effective = effective_attrs(edge, &parsed, &id, ctx)?;
        attrs = attrs
            .attenuate(&effective)
            .ok_or(CertError::AttrAnnihilation { edge: id })?;
        expected = CertSubject::Role(parsed.object);
    }
    let last = parse_delegation(&cert.edges.last().expect("non-empty").signed)?;
    if last.object != cert.role {
        return Err(CertError::WrongTarget);
    }
    if attrs != cert.attrs {
        return Err(CertError::AttrMismatch);
    }
    Ok(())
}

/// The attributes a membership edge actually conveys: its own, attenuated
/// by its supporting assignment chain's bounds.
fn effective_attrs(
    edge: &CertEdge,
    parsed: &ParsedDelegation,
    id: &str,
    ctx: &CheckContext<'_>,
) -> Result<CertAttrs, CertError> {
    match parsed.kind {
        DelegationClass::SelfCertifying => {
            if parsed.issuer != role_owner(&parsed.object)? {
                return Err(CertError::NotOwner {
                    edge: id.to_string(),
                });
            }
            Ok(parsed.attrs.clone())
        }
        DelegationClass::ThirdParty => {
            let chain = edge.support.as_ref().ok_or(CertError::MissingSupport {
                edge: id.to_string(),
            })?;
            let issuer_key = ctx
                .keys
                .key_of(&parsed.issuer)
                .ok_or(CertError::UnknownIssuer(parsed.issuer.clone()))?;
            let holder = CertSubject::Entity {
                name: parsed.issuer.clone(),
                key: issuer_key,
            };
            check_assignment_chain(&holder, &parsed.object, chain, ctx).map_err(|e| match e {
                // Keep environment errors precise; relabel pure chain-shape
                // failures as support mismatches of this edge.
                CertError::BrokenLink { .. }
                | CertError::WrongKind { .. }
                | CertError::WrongTarget
                | CertError::OwnerKeyMismatch => CertError::SupportMismatch {
                    edge: id.to_string(),
                },
                other => other,
            })?;
            let mut bound = CertAttrs::new();
            for s in chain {
                let s_parsed = parse_delegation(&s.signed)?;
                bound = bound
                    .attenuate(&s_parsed.attrs)
                    .ok_or(CertError::AttrAnnihilation { edge: s.id() })?;
            }
            parsed
                .attrs
                .attenuate(&bound)
                .ok_or(CertError::AttrAnnihilation {
                    edge: id.to_string(),
                })
        }
        DelegationClass::Assignment => Err(CertError::WrongKind {
            edge: id.to_string(),
        }),
    }
}

/// Verify an assignment-right chain: `subject` holds the right of
/// assignment for `role` because it is the owner (zero edges) or a chain
/// of assignment delegations links it back to the owner.
fn check_assignment_chain(
    subject: &CertSubject,
    role: &str,
    chain: &[SupportEdge],
    ctx: &CheckContext<'_>,
) -> Result<(), CertError> {
    let owner = role_owner(role)?;
    if chain.is_empty() {
        return match subject {
            CertSubject::Entity { name, key } if name == owner => {
                let expected = ctx
                    .keys
                    .key_of(name)
                    .ok_or(CertError::UnknownIssuer(name.clone()))?;
                if expected != *key {
                    return Err(CertError::OwnerKeyMismatch);
                }
                Ok(())
            }
            _ => Err(CertError::OwnerKeyMismatch),
        };
    }
    let mut expected = subject.clone();
    let mut last_issuer = String::new();
    for s in chain {
        let (parsed, id) = check_edge(&s.signed, &s.signature, ctx)?;
        if parsed.kind != DelegationClass::Assignment {
            return Err(CertError::WrongKind { edge: id });
        }
        if parsed.object != role {
            return Err(CertError::WrongTarget);
        }
        if parsed.subject != expected {
            return Err(CertError::BrokenLink { edge: id });
        }
        let issuer_key = ctx
            .keys
            .key_of(&parsed.issuer)
            .ok_or(CertError::UnknownIssuer(parsed.issuer.clone()))?;
        expected = CertSubject::Entity {
            name: parsed.issuer.clone(),
            key: issuer_key,
        };
        last_issuer = parsed.issuer;
    }
    if last_issuer != owner {
        return Err(CertError::BrokenLink {
            edge: chain.last().expect("non-empty").id(),
        });
    }
    Ok(())
}

/// The per-credential checks every edge passes: issuer key lookup,
/// structure (self-certifying ⇒ owner-issued), expiry at `ctx.now`,
/// signature over the embedded bytes, and revocation — in the same order
/// as the engine, so error precedence matches.
fn check_edge(
    signed: &[u8],
    sig: &[u8; 64],
    ctx: &CheckContext<'_>,
) -> Result<(ParsedDelegation, String), CertError> {
    let id = edge_id(signed, sig);
    let parsed = parse_delegation(signed)?;
    let issuer_key = ctx
        .keys
        .key_of(&parsed.issuer)
        .ok_or(CertError::UnknownIssuer(parsed.issuer.clone()))?;
    if parsed.kind == DelegationClass::SelfCertifying
        && parsed.issuer != role_owner(&parsed.object)?
    {
        return Err(CertError::NotOwner { edge: id });
    }
    if let Some(expires) = parsed.expires {
        if ctx.now >= expires {
            return Err(CertError::Expired { edge: id });
        }
    }
    let key = VerifyingKey(issuer_key);
    if key.verify(signed, &Signature(*sig)).is_err() {
        return Err(CertError::BadSignature { edge: id });
    }
    if ctx.revoked.is_revoked(&id) {
        return Err(CertError::Revoked(id));
    }
    Ok((parsed, id))
}

// ---------------------------------------------------------------------------
// Wire helpers
// ---------------------------------------------------------------------------

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    out.extend_from_slice(&(b.len() as u32).to_le_bytes());
    out.extend_from_slice(b);
}

fn encode_attrs(attrs: &CertAttrs, out: &mut Vec<u8>) {
    out.extend_from_slice(&(attrs.0.len() as u32).to_le_bytes());
    for (k, v) in &attrs.0 {
        put_str(out, k);
        match v {
            CertAttr::Capacity(n) => {
                out.push(0);
                out.extend_from_slice(&n.to_le_bytes());
            }
            CertAttr::Range(lo, hi) => {
                out.push(1);
                out.extend_from_slice(&lo.to_le_bytes());
                out.extend_from_slice(&hi.to_le_bytes());
            }
            CertAttr::Set(items) => {
                out.push(2);
                out.extend_from_slice(&(items.len() as u32).to_le_bytes());
                for item in items {
                    put_str(out, item);
                }
            }
        }
    }
}

fn read_subject(r: &mut Reader<'_>) -> Result<CertSubject, CertError> {
    match r.u8()? {
        0 => {
            let name = r.str()?;
            let key_bytes = r.take(32)?;
            let mut key = [0u8; 32];
            key.copy_from_slice(key_bytes);
            Ok(CertSubject::Entity { name, key })
        }
        1 => Ok(CertSubject::Role(r.str()?)),
        _ => Err(CertError::Malformed("subject tag")),
    }
}

fn read_attrs(r: &mut Reader<'_>) -> Result<CertAttrs, CertError> {
    let n = r.u32()? as usize;
    let mut out = BTreeMap::new();
    for _ in 0..n {
        let k = r.str()?;
        let v = match r.u8()? {
            0 => CertAttr::Capacity(r.i64()?),
            1 => CertAttr::Range(r.i64()?, r.i64()?),
            2 => {
                let m = r.u32()? as usize;
                let mut items = BTreeSet::new();
                for _ in 0..m {
                    items.insert(r.str()?);
                }
                CertAttr::Set(items)
            }
            _ => return Err(CertError::Malformed("attribute value tag")),
        };
        out.insert(k, v);
    }
    Ok(CertAttrs(out))
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CertError> {
        if self.buf.len() - self.pos < n {
            return Err(CertError::Truncated);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, CertError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, CertError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, CertError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn i64(&mut self) -> Result<i64, CertError> {
        Ok(self.u64()? as i64)
    }

    fn bytes(&mut self) -> Result<Vec<u8>, CertError> {
        let n = self.u32()? as usize;
        Ok(self.take(n)?.to_vec())
    }

    fn str(&mut self) -> Result<String, CertError> {
        let n = self.u32()? as usize;
        let b = self.take(n)?;
        String::from_utf8(b.to_vec()).map_err(|_| CertError::Malformed("non-UTF-8 string"))
    }

    fn sig(&mut self) -> Result<[u8; 64], CertError> {
        let b = self.take(64)?;
        let mut out = [0u8; 64];
        out.copy_from_slice(b);
        Ok(out)
    }

    fn finish(&self) -> Result<(), CertError> {
        if self.pos != self.buf.len() {
            return Err(CertError::TrailingBytes);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psf_crypto::ed25519::SigningKey;

    /// Test-local delegation encoder mirroring the engine's canonical
    /// layout — kept here so the crate's tests need no engine dependency.
    struct TestDelegation {
        subject: CertSubject,
        object: String,
        kind: u8,
        issuer: String,
        attrs: CertAttrs,
        expires: Option<u64>,
        monitored: bool,
        serial: u64,
    }

    impl TestDelegation {
        fn encode(&self) -> Vec<u8> {
            let mut out = Vec::new();
            out.extend_from_slice(DELEGATION_MAGIC);
            match &self.subject {
                CertSubject::Entity { name, key } => {
                    out.push(0);
                    put_str(&mut out, name);
                    out.extend_from_slice(key);
                }
                CertSubject::Role(r) => {
                    out.push(1);
                    put_str(&mut out, r);
                }
            }
            put_str(&mut out, &self.object);
            out.push(self.kind);
            put_str(&mut out, &self.issuer);
            encode_attrs(&self.attrs, &mut out);
            match self.expires {
                Some(t) => {
                    out.push(1);
                    out.extend_from_slice(&t.to_le_bytes());
                }
                None => out.push(0),
            }
            out.push(self.monitored as u8);
            out.extend_from_slice(&self.serial.to_le_bytes());
            out
        }
    }

    fn keypair(seed: u8) -> (SigningKey, [u8; 32]) {
        let sk = SigningKey::from_seed([seed; 32]);
        let pk = sk.verifying_key();
        (sk, pk.0)
    }

    struct World {
        owner_sk: SigningKey,
        keys: BTreeMap<String, [u8; 32]>,
        alice_key: [u8; 32],
    }

    fn world() -> World {
        let (owner_sk, owner_pk) = keypair(1);
        let (_, alice_pk) = keypair(2);
        let mut keys = BTreeMap::new();
        keys.insert("Comp.NY".to_string(), owner_pk);
        keys.insert("Alice".to_string(), alice_pk);
        World {
            owner_sk,
            keys,
            alice_key: alice_pk,
        }
    }

    fn direct_cert(w: &World) -> AuthCertificate {
        let body = TestDelegation {
            subject: CertSubject::Entity {
                name: "Alice".into(),
                key: w.alice_key,
            },
            object: "Comp.NY.Member".into(),
            kind: 0,
            issuer: "Comp.NY".into(),
            attrs: CertAttrs::new(),
            expires: None,
            monitored: false,
            serial: 0,
        };
        let signed = body.encode();
        let sig = w.owner_sk.sign(&signed).to_bytes();
        let edge = CertEdge {
            signed,
            signature: sig,
            support: None,
        };
        let watch = vec![edge.id()];
        AuthCertificate {
            kind: CertKind::Membership,
            subject: CertSubject::Entity {
                name: "Alice".into(),
                key: w.alice_key,
            },
            role: "Comp.NY.Member".into(),
            attrs: CertAttrs::new(),
            repo_epoch: Some(3),
            registry_epoch: 2,
            edges: vec![edge],
            watch,
        }
    }

    fn ctx<'a>(
        keys: &'a BTreeMap<String, [u8; 32]>,
        revoked: &'a BTreeSet<String>,
    ) -> CheckContext<'a> {
        CheckContext {
            keys,
            revoked,
            now: 0,
            repo_epoch: Some(10),
            memo: None,
        }
    }

    #[test]
    fn roundtrip_and_accept() {
        let w = world();
        let cert = direct_cert(&w);
        let wire = cert.encode();
        let back = AuthCertificate::decode(&wire).unwrap();
        assert_eq!(back, cert);
        let none = BTreeSet::new();
        check(&back, &ctx(&w.keys, &none)).unwrap();
        assert_eq!(check_bytes(&wire, &ctx(&w.keys, &none)).unwrap(), cert);
    }

    #[test]
    fn check_memo_speeds_rechecks_without_masking_revocation() {
        let w = world();
        let cert = direct_cert(&w);
        let memo = CheckMemo::new(1024);
        let none = BTreeSet::new();
        let mut c = ctx(&w.keys, &none);
        c.memo = Some(&memo);
        check(&cert, &c).unwrap();
        assert_eq!(memo.len(), 1, "the structural verdict is memoized");
        // A second check hits the memo — and still accepts.
        check(&cert, &c).unwrap();
        assert_eq!(memo.len(), 1);
        // Revocation is evaluated live on every check: the memo caches
        // only the structural verdict, so a revoked edge is rejected even
        // though the certificate is memoized.
        let id = cert.edges[0].id();
        let revoked: BTreeSet<String> = [id.clone()].into_iter().collect();
        let mut c2 = ctx(&w.keys, &revoked);
        c2.memo = Some(&memo);
        assert_eq!(check(&cert, &c2), Err(CertError::Revoked(id)));
        // A re-keyed issuer invalidates the memoized verdict: the check
        // falls back to the full path, where the old signature no longer
        // verifies under the new key.
        let mut rekeyed = w.keys.clone();
        rekeyed.insert("Comp.NY".into(), [0x55; 32]);
        let mut c3 = ctx(&rekeyed, &none);
        c3.memo = Some(&memo);
        assert!(matches!(
            check(&cert, &c3),
            Err(CertError::BadSignature { .. })
        ));
        // A forged certificate has a different payload digest — it never
        // hits the memo, is never memoized, and never accepted.
        let mut forged = cert.clone();
        forged.edges[0].signature[0] ^= 1;
        forged.watch = vec![forged.edges[0].id()];
        let before = memo.len();
        for _ in 0..2 {
            assert!(matches!(
                check(&forged, &c),
                Err(CertError::BadSignature { .. })
            ));
        }
        assert_eq!(memo.len(), before);
    }

    #[test]
    fn any_byte_flip_is_digest_mismatch() {
        let w = world();
        let wire = direct_cert(&w).encode();
        let none = BTreeSet::new();
        for i in 0..wire.len() {
            let mut bad = wire.clone();
            bad[i] ^= 0x40;
            let err = check_bytes(&bad, &ctx(&w.keys, &none)).unwrap_err();
            assert!(
                matches!(
                    err,
                    CertError::DigestMismatch | CertError::Truncated | CertError::Malformed(_)
                ),
                "flip at {i} gave {err:?}"
            );
        }
    }

    #[test]
    fn truncation_rejected_everywhere() {
        let w = world();
        let wire = direct_cert(&w).encode();
        for n in 0..wire.len() {
            assert!(AuthCertificate::decode(&wire[..n]).is_err(), "prefix {n}");
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let w = world();
        let cert = direct_cert(&w);
        // Rebuild a wire with an extra payload byte and a fresh digest:
        // strict parsing must still reject it.
        let mut payload = cert.encode_payload();
        payload.push(0);
        let digest = psf_crypto::sha256(&payload);
        payload.extend_from_slice(&digest);
        assert_eq!(
            AuthCertificate::decode(&payload),
            Err(CertError::TrailingBytes)
        );
    }

    #[test]
    fn revoked_edge_rejected() {
        let w = world();
        let cert = direct_cert(&w);
        let mut revoked = BTreeSet::new();
        revoked.insert(cert.edges[0].id());
        assert!(matches!(
            check(&cert, &ctx(&w.keys, &revoked)),
            Err(CertError::Revoked(_))
        ));
    }

    #[test]
    fn epoch_ahead_rejected() {
        let w = world();
        let mut cert = direct_cert(&w);
        cert.repo_epoch = Some(99);
        let none = BTreeSet::new();
        assert_eq!(
            check(&cert, &ctx(&w.keys, &none)),
            Err(CertError::EpochAhead {
                pinned: 99,
                current: 10
            })
        );
        // Without a current-epoch observation the window check is skipped.
        let mut c = ctx(&w.keys, &none);
        c.repo_epoch = None;
        check(&cert, &c).unwrap();
    }

    #[test]
    fn swapped_subject_rejected() {
        let w = world();
        let mut cert = direct_cert(&w);
        let (_, mallory_pk) = keypair(9);
        cert.subject = CertSubject::Entity {
            name: "Mallory".into(),
            key: mallory_pk,
        };
        let none = BTreeSet::new();
        assert!(matches!(
            check(&cert, &ctx(&w.keys, &none)),
            Err(CertError::BrokenLink { .. })
        ));
    }

    #[test]
    fn widened_attrs_rejected() {
        let w = world();
        let mut cert = direct_cert(&w);
        cert.attrs = CertAttrs::new();
        cert.attrs.0.insert("CPU".into(), CertAttr::Capacity(999));
        let none = BTreeSet::new();
        assert_eq!(
            check(&cert, &ctx(&w.keys, &none)),
            Err(CertError::AttrMismatch)
        );
    }

    #[test]
    fn dropped_link_rejected() {
        let w = world();
        let mut cert = direct_cert(&w);
        cert.edges.clear();
        let none = BTreeSet::new();
        assert_eq!(
            check(&cert, &ctx(&w.keys, &none)),
            Err(CertError::EmptyChain)
        );
    }

    #[test]
    fn forged_signature_rejected() {
        let w = world();
        let mut cert = direct_cert(&w);
        cert.edges[0].signature[5] ^= 1;
        // The id changes with the signature, so re-watch the new id to
        // isolate the signature check itself.
        cert.watch = vec![cert.edges[0].id()];
        let none = BTreeSet::new();
        assert!(matches!(
            check(&cert, &ctx(&w.keys, &none)),
            Err(CertError::BadSignature { .. })
        ));
    }

    #[test]
    fn unwatched_chain_edge_rejected() {
        let w = world();
        let mut cert = direct_cert(&w);
        cert.watch.clear();
        let none = BTreeSet::new();
        assert!(matches!(
            check(&cert, &ctx(&w.keys, &none)),
            Err(CertError::UnwatchedEdge(_))
        ));
    }

    #[test]
    fn expired_edge_rejected() {
        let w = world();
        let body = TestDelegation {
            subject: CertSubject::Entity {
                name: "Alice".into(),
                key: w.alice_key,
            },
            object: "Comp.NY.Member".into(),
            kind: 0,
            issuer: "Comp.NY".into(),
            attrs: CertAttrs::new(),
            expires: Some(50),
            monitored: false,
            serial: 0,
        };
        let signed = body.encode();
        let sig = w.owner_sk.sign(&signed).to_bytes();
        let edge = CertEdge {
            signed,
            signature: sig,
            support: None,
        };
        let watch = vec![edge.id()];
        let cert = AuthCertificate {
            kind: CertKind::Membership,
            subject: CertSubject::Entity {
                name: "Alice".into(),
                key: w.alice_key,
            },
            role: "Comp.NY.Member".into(),
            attrs: CertAttrs::new(),
            repo_epoch: None,
            registry_epoch: 0,
            edges: vec![edge],
            watch,
        };
        let none = BTreeSet::new();
        let mut c = ctx(&w.keys, &none);
        c.now = 49;
        check(&cert, &c).unwrap();
        c.now = 50;
        assert!(matches!(check(&cert, &c), Err(CertError::Expired { .. })));
        assert_eq!(cert.min_expiry(), Some(50));
    }

    #[test]
    fn attenuation_mirrors_engine_rules() {
        let cap = CertAttr::Capacity(100);
        assert_eq!(
            cap.attenuate(&CertAttr::Capacity(80)),
            Some(CertAttr::Capacity(80))
        );
        assert_eq!(
            CertAttr::Range(0, 10).attenuate(&CertAttr::Range(11, 20)),
            None
        );
        assert_eq!(
            CertAttr::Capacity(7).attenuate(&CertAttr::Range(3, 10)),
            Some(CertAttr::Range(3, 7))
        );
        let s = CertAttr::Set(["x".to_string()].into_iter().collect());
        assert_eq!(s.attenuate(&CertAttr::Capacity(1)), None);
    }

    #[test]
    fn digest_is_stable_and_content_bound() {
        let w = world();
        let cert = direct_cert(&w);
        assert_eq!(cert.digest_hex().len(), 16);
        assert_eq!(cert.digest_hex(), cert.digest_hex());
        let mut other = cert.clone();
        other.registry_epoch += 1;
        assert_ne!(cert.digest_hex(), other.digest_hex());
    }
}
