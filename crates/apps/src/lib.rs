//! # psf-apps
//!
//! This crate only *hosts* the repository's top-level `examples/` and
//! `tests/` directories (Cargo requires a package to own them). All the
//! functionality lives in the other `psf-*` crates; see the repository
//! README for the example inventory.

#![forbid(unsafe_code)]
