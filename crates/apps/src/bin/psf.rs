//! `psf` — a command-line driver over the reproduction.
//!
//! ```sh
//! cargo run --bin psf -- creds                 # Table 2
//! cargo run --bin psf -- prove bob Comp.NY.Member
//! cargo run --bin psf -- acl charlie           # Table 4 decision
//! cargo run --bin psf -- plan sd-1 --privacy   # plan a deployment
//! cargo run --bin psf -- plan se-1 --max-latency 10
//! cargo run --bin psf -- storage 50 1000       # §5 comparison
//! cargo run --bin psf -- view partner          # Table 5 source
//! cargo run --bin psf -- metrics               # full-stack run + snapshot
//! ```
//!
//! Global flags (any command):
//!
//! * `--trace-out <path>` — on exit, write the structured trace buffer
//!   (planning, proof search, VIG generation, deployment, handshakes) as
//!   JSON lines to `<path>`.
//! * `--audit-out <path>` — on exit, write the authorization audit trail
//!   (every authorize/prove/select_view/revocation decision) as JSON
//!   lines to `<path>`.
//! * `--quiet` / `-q` — suppress narration on stdout; results are still
//!   recorded as telemetry events/spans, so `--quiet --trace-out t.jsonl`
//!   gives a machine-readable run with a silent terminal.

use psf_core::{
    DeployFaultPlan, Goal, PlannerConfig, RetryPolicy, Supervisor, SupervisorState, TickOutcome,
};
use psf_drbac::entity::RoleName;
use psf_drbac::proof::ProofEngine;
use psf_mail::{mail_client_class, mail_method_library, MailWorld};
use psf_views::ViewSpec;
use psf_views::{ExposureType, Vig};
use std::time::Duration;

/// Global CLI options stripped from the argument list before dispatch.
struct Cli {
    quiet: bool,
    trace_out: Option<String>,
    audit_out: Option<String>,
    audit_fsync: bool,
}

impl Cli {
    /// Print narration unless `--quiet` was given.
    fn say(&self, text: impl AsRef<str>) {
        if !self.quiet {
            println!("{}", text.as_ref());
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: psf [--quiet] [--trace-out PATH] [--audit-out PATH] <command>\n\
         \n\
         commands:\n\
         \x20 creds                         print the Table 2 credentials\n\
         \x20 prove <user> <Entity.Role>    run a dRBAC proof (alice|bob|charlie)\n\
         \x20 acl <user>                    Table 4 view decision for a user\n\
         \x20 plan <node> [--privacy] [--max-latency MS]\n\
         \x20                               plan mail delivery to ny-N/sd-N/se-N\n\
         \x20 storage <P> <U>               §5 storage comparison at one size\n\
         \x20 view <member|partner|anonymous>  generate and print the view\n\
         \x20 metrics [--bare]              run the full stack, print a\n\
         \x20                               Prometheus-text metrics snapshot\n\
         \x20 analyze [--json] [--deny warnings] [--fixtures DIR]\n\
         \x20                               static policy analysis (PSF001…):\n\
         \x20                               delegation graph, view/ACL lint,\n\
         \x20                               and plan pre-flight over the mail\n\
         \x20                               scenario; --fixtures checks each\n\
         \x20                               scenario XML in DIR against its\n\
         \x20                               .expected snapshot\n\
         \x20 chaos [--seed N] [--wal-dir DIR]\n\
         \x20                               run the mail scenario under a\n\
         \x20                               seeded schedule of link/node/deploy\n\
         \x20                               faults plus WAL crash injection\n\
         \x20                               (torn tail, corrupt record, torn\n\
         \x20                               shard segment); print a recovery\n\
         \x20                               report\n\
         \x20 repo --dir DIR [--verify|--stats|--compact] [--fill N] [--shards S]\n\
         \x20                               inspect or maintain a durable\n\
         \x20                               credential repository (sharded\n\
         \x20                               layouts are auto-detected):\n\
         \x20                               --verify checks every segment's\n\
         \x20                               snapshot+log integrity (exit 1 on\n\
         \x20                               torn/corrupt bytes), --stats\n\
         \x20                               prints per-shard sizes and replay\n\
         \x20                               counts, --compact snapshots and\n\
         \x20                               truncates the log(s), --fill seeds\n\
         \x20                               N synthetic records (with --shards\n\
         \x20                               S into a sharded layout)\n\
         \x20 cert --emit <user> <Entity.Role> [--out PATH] [--json]\n\
         \x20                               prove and emit a proof-carrying\n\
         \x20                               authorization certificate (digest,\n\
         \x20                               chain, watch set; --out writes the\n\
         \x20                               wire bytes)\n\
         \x20 cert --verify PATH [--json]   re-validate certificate wire bytes\n\
         \x20                               with the independent checker (no\n\
         \x20                               repository access, no search);\n\
         \x20                               exit 1 on reject\n\
         \x20 bench --json [--out PATH] [--quick] [--check]\n\
         \x20                               time the warm/cold authorization\n\
         \x20                               and planner fast paths, the\n\
         \x20                               Switchboard data plane, and the\n\
         \x20                               sharded repository, and the\n\
         \x20                               reactor channel fleet, and the\n\
         \x20                               certificate checker; write the\n\
         \x20                               results as JSON (BENCH_pr3.json,\n\
         \x20                               BENCH_pr4.json, BENCH_pr8.json,\n\
         \x20                               BENCH_pr9.json, BENCH_pr10.json);\n\
         \x20                               --check exits 1\n\
         \x20                               unless warm >= 2x cold, pipelined\n\
         \x20                               RPC >= 2x serial, p99 tag lookup\n\
         \x20                               <= 50 us, parallel publish >= 4x\n\
         \x20                               single-lock, hb p99 <= 10 ms,\n\
         \x20                               reactor capacity >= 5x threaded,\n\
         \x20                               p99 warm cert verify <= 10 us,\n\
         \x20                               and the SLO table holds\n\
         \x20 audit [--json] [--subject S] [--deny-only] [--trace HEX]\n\
         \x20                               run the full stack, then replay\n\
         \x20                               the authorization audit trail\n\
         \x20                               (who asked, verdict, delegation\n\
         \x20                               chain digest, cache provenance)\n\
         \x20 trace [--in FILE] [--tree HEX] [--exemplar METRIC] [--verify]\n\
         \x20                               render causal span trees; --verify\n\
         \x20                               exits 1 on orphan parents (CI);\n\
         \x20                               --exemplar looks up the trace\n\
         \x20                               behind a histogram's max bucket\n\
         \x20 slo [--json] [--check]        run the full stack, evaluate the\n\
         \x20                               latency SLO table (burn rates);\n\
         \x20                               --check exits 1 on violation\n\
         \n\
         global flags:\n\
         \x20 --trace-out PATH              write the JSONL span trace on exit\n\
         \x20 --audit-out PATH              write the JSONL audit trail on exit\n\
         \x20 --audit-fsync                 fsync the audit trail before close\n\
         \x20                               (crash-durable, pairs with the WAL)\n\
         \x20 --quiet | -q                  suppress stdout narration"
    );
    std::process::exit(2);
}

fn main() {
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    let mut cli = Cli {
        quiet: false,
        trace_out: None,
        audit_out: None,
        audit_fsync: false,
    };
    let mut i = 0;
    while i < raw.len() {
        match raw[i].as_str() {
            "--quiet" | "-q" => {
                cli.quiet = true;
                raw.remove(i);
            }
            "--trace-out" => {
                raw.remove(i);
                if i >= raw.len() {
                    eprintln!("--trace-out needs a path");
                    std::process::exit(2);
                }
                cli.trace_out = Some(raw.remove(i));
            }
            "--audit-out" => {
                raw.remove(i);
                if i >= raw.len() {
                    eprintln!("--audit-out needs a path");
                    std::process::exit(2);
                }
                cli.audit_out = Some(raw.remove(i));
            }
            "--audit-fsync" => {
                raw.remove(i);
                cli.audit_fsync = true;
            }
            _ => i += 1,
        }
    }
    let Some(cmd) = raw.first().cloned() else {
        usage()
    };
    let args = &raw[1..];

    let code = {
        let mut cmd_span = psf_telemetry::span("psf.cli", "command");
        cmd_span.field("command", &cmd);
        psf_telemetry::counter!("psf.cli.commands").inc();
        let code = match cmd.as_str() {
            "creds" => creds(&cli),
            "prove" => prove(&cli, args),
            "acl" => acl(&cli, args),
            "plan" => plan(&cli, args),
            "storage" => storage(&cli, args),
            "view" => view(&cli, args),
            "metrics" => metrics(&cli, args),
            "analyze" => analyze(&cli, args),
            "chaos" => chaos(&cli, args),
            "repo" => repo_cmd(&cli, args),
            "cert" => cert_cmd(&cli, args),
            "bench" => bench(&cli, args),
            "audit" => audit_cmd(&cli, args),
            "trace" => trace_cmd(&cli, args),
            "slo" => slo_cmd(&cli, args),
            _ => usage(),
        };
        cmd_span.field("exit_code", code);
        code
    };

    if let Some(path) = &cli.trace_out {
        let jsonl = psf_telemetry::export_jsonl();
        match std::fs::write(path, &jsonl) {
            Ok(()) => cli.say(format!(
                "trace: {} spans written to {path}",
                jsonl.lines().count()
            )),
            Err(e) => {
                eprintln!("trace: cannot write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
    if let Some(path) = &cli.audit_out {
        // AuditSink instead of a plain write: with --audit-fsync the
        // trail is fsynced before close, surviving the same crashes the
        // repository WAL does.
        let write = psf_telemetry::AuditSink::create(path.as_str())
            .map(|s| s.fsync_on_drop(cli.audit_fsync))
            .and_then(|mut sink| {
                let n = sink.write_log(psf_telemetry::audit::global())?;
                if cli.audit_fsync {
                    sink.sync()?;
                }
                Ok(n)
            });
        match write {
            Ok(n) => cli.say(format!("audit: {n} records written to {path}")),
            Err(e) => {
                eprintln!("audit: cannot write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
    std::process::exit(code);
}

fn world() -> MailWorld {
    MailWorld::build(2)
}

fn user<'w>(w: &'w MailWorld, name: &str) -> Option<&'w psf_drbac::Entity> {
    match name {
        "alice" => Some(&w.alice),
        "bob" => Some(&w.bob),
        "charlie" => Some(&w.charlie),
        other => {
            eprintln!("unknown user '{other}' (alice|bob|charlie)");
            None
        }
    }
}

fn creds(cli: &Cli) -> i32 {
    let w = world();
    psf_telemetry::event(
        "psf.cli",
        "creds.rendered",
        vec![("count", w.creds.len().to_string())],
    );
    cli.say("Table 2 — credentials issued by the Guard modules:");
    for (n, cred) in &w.creds {
        cli.say(format!("  ({n:>2}) {}", cred.body.render()));
    }
    0
}

fn prove(cli: &Cli, args: &[String]) -> i32 {
    let (Some(who), Some(role)) = (args.first(), args.get(1)) else {
        usage()
    };
    let w = world();
    let Some(subject) = user(&w, who).map(|u| u.as_subject()) else {
        return 2;
    };
    let role = match RoleName::parse(role) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let engine = ProofEngine::new(&w.registry, &w.repository, &w.bus, 0);
    match engine.prove(&subject, &role, &[]) {
        Ok((proof, stats)) => {
            psf_telemetry::event(
                "psf.cli",
                "prove.ok",
                vec![
                    ("user", who.clone()),
                    ("role", role.to_string()),
                    ("nodes_expanded", stats.nodes_expanded.to_string()),
                ],
            );
            cli.say(proof.render().trim_end());
            cli.say(format!(
                "search: {} nodes, {} credentials examined",
                stats.nodes_expanded, stats.credentials_examined
            ));
            0
        }
        Err(e) => {
            psf_telemetry::event(
                "psf.cli",
                "prove.failed",
                vec![("user", who.clone()), ("error", e.to_string())],
            );
            cli.say(format!("no proof: {e}"));
            1
        }
    }
}

/// `psf cert --emit <user> <Entity.Role> [--out PATH] [--json]` /
/// `psf cert --verify PATH [--json]`: emit a proof-carrying
/// authorization certificate from the mail world's engine, or
/// re-validate certificate wire bytes with the independent checker
/// (signature, chain, attenuation, expiry, revocation, epoch window —
/// no repository access, no proof search).
fn cert_cmd(cli: &Cli, args: &[String]) -> i32 {
    use psf_cert::AuthCertificate;
    use psf_drbac::repository::CredentialSource;

    let json = args.iter().any(|a| a == "--json");
    if let Some(path) = flag_value(args, "--verify") {
        let wire = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("cert: cannot read {path}: {e}");
                return 2;
            }
        };
        let w = world();
        let decoded = AuthCertificate::decode(&wire);
        let verdict = decoded.as_ref().map_err(|e| e.clone()).and_then(|c| {
            psf_drbac::check_certificate(c, &w.registry, &w.bus, 0, w.repository.version())
                .map(|()| c)
        });
        psf_telemetry::event(
            "psf.cli",
            "cert.verified",
            vec![
                ("path", path.to_string()),
                ("accepted", verdict.is_ok().to_string()),
            ],
        );
        return match verdict {
            Ok(c) => {
                if json {
                    println!(
                        "{{\"accepted\": true, \"digest\": \"{}\", \"subject\": \"{}\", \
                         \"role\": \"{}\", \"edges\": {}, \"watch\": {}}}",
                        c.digest_hex(),
                        c.subject.render(),
                        c.role,
                        c.total_edges(),
                        c.watch.len()
                    );
                } else {
                    cli.say(format!(
                        "ACCEPT {} — {} → {} ({} edge(s), {} watched id(s))",
                        c.digest_hex(),
                        c.subject.render(),
                        c.role,
                        c.total_edges(),
                        c.watch.len()
                    ));
                }
                0
            }
            Err(e) => {
                if json {
                    println!("{{\"accepted\": false, \"reason\": \"{e}\"}}");
                } else {
                    cli.say(format!("REJECT — {e}"));
                }
                1
            }
        };
    }
    if args.iter().any(|a| a == "--emit") {
        let pos: Vec<&String> = args
            .iter()
            .skip_while(|a| *a != "--emit")
            .skip(1)
            .take_while(|a| !a.starts_with("--"))
            .collect();
        let (Some(who), Some(role)) = (pos.first(), pos.get(1)) else {
            usage()
        };
        let w = world();
        let Some(subject) = user(&w, who).map(|u| u.as_subject()) else {
            return 2;
        };
        let role = match RoleName::parse(role) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{e}");
                return 2;
            }
        };
        let engine = ProofEngine::new(&w.registry, &w.repository, &w.bus, 0);
        let (_, cert, stats) = match engine.prove_certified(&subject, &role, &[]) {
            Ok(ok) => ok,
            Err(e) => {
                cli.say(format!("no proof: {e}"));
                return 1;
            }
        };
        let wire = cert.encode();
        if let Some(out) = flag_value(args, "--out") {
            if let Err(e) = std::fs::write(out, &wire) {
                eprintln!("cert: cannot write {out}: {e}");
                return 1;
            }
            cli.say(format!("wire bytes written to {out}"));
        }
        psf_telemetry::event(
            "psf.cli",
            "cert.emitted",
            vec![
                ("digest", cert.digest_hex()),
                ("edges", cert.total_edges().to_string()),
                ("wire_bytes", wire.len().to_string()),
            ],
        );
        if json {
            println!(
                "{{\"digest\": \"{}\", \"subject\": \"{}\", \"role\": \"{}\", \
                 \"edges\": {}, \"watch\": {}, \"wire_bytes\": {}, \
                 \"repo_epoch\": {}, \"nodes_expanded\": {}}}",
                cert.digest_hex(),
                cert.subject.render(),
                cert.role,
                cert.total_edges(),
                cert.watch.len(),
                wire.len(),
                cert.repo_epoch
                    .map_or("null".to_string(), |e| e.to_string()),
                stats.nodes_expanded,
            );
        } else {
            cli.say(format!(
                "certificate {} — {} → {}",
                cert.digest_hex(),
                cert.subject.render(),
                cert.role
            ));
            cli.say(format!(
                "  {} edge(s), {} watched id(s), {} wire bytes, repo epoch {}",
                cert.total_edges(),
                cert.watch.len(),
                wire.len(),
                cert.repo_epoch.map_or("-".to_string(), |e| e.to_string()),
            ));
            for id in cert.chain_ids() {
                cli.say(format!("  edge {id}"));
            }
        }
        return 0;
    }
    usage()
}

fn acl(cli: &Cli, args: &[String]) -> i32 {
    let Some(who) = args.first() else { usage() };
    let w = world();
    cli.say(w.acl.render().trim_end());
    let Some(u) = user(&w, who) else { return 2 };
    match w.client_view(u) {
        Some((view, proof)) => {
            let basis = proof
                .map(|p| format!("{}-edge proof", p.edges.len()))
                .unwrap_or_else(|| "catch-all".into());
            psf_telemetry::event(
                "psf.cli",
                "acl.decision",
                vec![
                    ("user", who.clone()),
                    ("view", view.clone()),
                    ("basis", basis.clone()),
                ],
            );
            cli.say(format!("{who} -> {view} ({basis})"));
            0
        }
        None => {
            psf_telemetry::event(
                "psf.cli",
                "acl.decision",
                vec![("user", who.clone()), ("view", "none".into())],
            );
            cli.say(format!("{who} -> no service"));
            0
        }
    }
}

fn plan(cli: &Cli, args: &[String]) -> i32 {
    let Some(node_name) = args.first() else {
        usage()
    };
    let privacy = args.iter().any(|a| a == "--privacy");
    let max_latency = args
        .iter()
        .position(|a| a == "--max-latency")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<f64>().ok());
    let w = world();
    let Some(node) = w.sites.network.find_node(node_name) else {
        eprintln!("unknown node '{node_name}' (try ny-0, sd-1, se-0 …)");
        return 2;
    };
    let goal = Goal {
        iface: "MailI".into(),
        client_node: node,
        max_latency_ms: max_latency,
        require_privacy: privacy,
        require_plaintext_delivery: true,
    };
    match w.plan_service(&goal) {
        Ok((plan, stats)) => {
            psf_telemetry::event(
                "psf.cli",
                "plan.found",
                vec![
                    ("node", node_name.clone()),
                    ("steps", plan.steps.len().to_string()),
                    ("deployments", plan.deployments().to_string()),
                    ("expanded", stats.expanded.to_string()),
                ],
            );
            cli.say(format!(
                "plan for MailI at {node_name} (privacy={privacy}, bound={max_latency:?}):"
            ));
            cli.say(plan.render().trim_end());
            cli.say(format!(
                "search: expanded {}, auth-pruned {}",
                stats.expanded, stats.pruned_by_auth
            ));
            0
        }
        Err(e) => {
            psf_telemetry::event(
                "psf.cli",
                "plan.failed",
                vec![("node", node_name.clone()), ("error", e.to_string())],
            );
            cli.say(e.to_string());
            1
        }
    }
}

fn storage(cli: &Cli, args: &[String]) -> i32 {
    let (Some(p), Some(u)) = (
        args.first().and_then(|v| v.parse::<u64>().ok()),
        args.get(1).and_then(|v| v.parse::<u64>().ok()),
    ) else {
        usage()
    };
    let [gsi, cas, drbac] = psf_drbac::storage_model::storage_comparison(p, u, 8, 2 * p);
    psf_telemetry::event(
        "psf.cli",
        "storage.compared",
        vec![("principals", p.to_string()), ("users", u.to_string())],
    );
    cli.say(format!("P={p} U={u} (C=8, c={})", 2 * p));
    for r in [gsi, cas, drbac] {
        cli.say(format!(
            "  {:<6} {:>12} entries  {:>12.1} KiB",
            r.system,
            r.entries,
            r.bytes as f64 / 1024.0
        ));
    }
    0
}

fn view(cli: &Cli, args: &[String]) -> i32 {
    let Some(which) = args.first() else { usage() };
    let spec = match which.as_str() {
        "member" => psf_mail::view_member(),
        "partner" => psf_mail::view_partner(),
        "anonymous" => psf_mail::view_anonymous(),
        other => {
            eprintln!("unknown view '{other}'");
            return 2;
        }
    };
    cli.say(format!("== XML definition ==\n{}", spec.to_xml()));
    let class = mail_client_class();
    match Vig::new(mail_method_library()).generate(&class, &spec) {
        Ok(generated) => {
            psf_telemetry::event(
                "psf.cli",
                "view.generated",
                vec![
                    ("view", spec.name.clone()),
                    ("methods", generated.entries.len().to_string()),
                ],
            );
            cli.say(format!("== generated source ==\n{}", generated.source));
            0
        }
        Err(e) => {
            eprintln!("VIG: {e}");
            1
        }
    }
}

/// Drive the whole framework once — planning, proof search, VIG, secure
/// deployment, heartbeats — then print the metrics registry in Prometheus
/// text format. With `--bare`, skip the workload and print whatever has
/// been recorded so far (typically an idle registry).
fn metrics(cli: &Cli, args: &[String]) -> i32 {
    let bare = args.iter().any(|a| a == "--bare");
    if !bare {
        if let Err(e) = exercise_full_stack(cli) {
            eprintln!("metrics workload failed: {e}");
            return 1;
        }
    }
    // The snapshot goes to stdout even under --quiet: it is the result,
    // not narration.
    print!("{}", psf_telemetry::registry().render_prometheus());
    0
}

/// Static policy analysis (`psf-analysis`): delegation-graph reachability
/// against the Table 2 intent matrix, view/ACL lint over the Table 3/4
/// artifacts, and plan pre-flight for a private WAN delivery — or, with
/// `--fixtures DIR`, analyze every scenario XML in the directory and
/// check each against its `.expected` snapshot.
fn analyze(cli: &Cli, args: &[String]) -> i32 {
    let json = args.iter().any(|a| a == "--json");
    let deny_warnings = args
        .windows(2)
        .any(|w| w[0] == "--deny" && w[1] == "warnings");
    let fixtures_dir = args
        .iter()
        .position(|a| a == "--fixtures")
        .and_then(|i| args.get(i + 1));

    if let Some(dir) = fixtures_dir {
        return analyze_fixtures(cli, dir, json);
    }

    let w = world();
    let mut report = psf_analysis::Report::new();

    // Pass 1: delegation graph vs the Table 2 intent matrix.
    let intent = w.expected_grants();
    psf_analysis::analyze_graph(
        &psf_analysis::GraphInput {
            registry: &w.registry,
            repository: &w.repository,
            bus: &w.bus,
            now: w.clock.now(),
            intent: Some(&intent),
            expiry_horizon: 3600,
        },
        &mut report,
    );

    // Pass 2: Table 3 view specs and the Table 4 role→view ACL. The
    // ViewMailServer cache template is deployed by plans, not served
    // through the ACL, so it counts as a deployment root.
    let mut classes = std::collections::HashMap::new();
    classes.insert("MailServer".to_string(), psf_mail::mail_server_class());
    classes.insert("MailClient".to_string(), mail_client_class());
    let views = vec![
        psf_mail::view_member(),
        psf_mail::view_partner(),
        psf_mail::view_anonymous(),
        ViewSpec::new("ViewMailServer", "MailServer").restrict("MailI", ExposureType::Local),
    ];
    psf_analysis::analyze_views(
        &psf_analysis::ViewLintInput {
            classes: &classes,
            views: &views,
            library: &mail_method_library(),
            acl: Some(&w.acl),
            extra_roots: &["ViewMailServer".to_string()],
        },
        &mut report,
    );

    // Pass 3: pre-flight the plan for a private WAN delivery (the same
    // goal `psf plan sd-0 --privacy` serves).
    let goal = Goal {
        iface: "MailI".into(),
        client_node: w.sites.sd[0],
        max_latency_ms: None,
        require_privacy: true,
        require_plaintext_delivery: true,
    };
    match w.plan_service(&goal) {
        Ok((plan, _)) => {
            psf_analysis::analyze_plan(&w.deployer, &w.registrar, &plan, &goal, &mut report)
        }
        Err(e) => report.push(psf_analysis::Diagnostic::global(
            psf_analysis::LintCode::InvalidStepChain,
            format!("planner found no plan to pre-flight: {e}"),
        )),
    }

    let report = psf_analysis::record_run(report);
    psf_telemetry::event(
        "psf.cli",
        "analyze.finished",
        vec![
            ("errors", report.errors().to_string()),
            ("warnings", report.warnings().to_string()),
        ],
    );
    // The report goes to stdout even under --quiet: it is the result.
    if json {
        print!("{}", report.render_json());
    } else {
        print!("{}", report.render_human());
    }
    if report.fails(deny_warnings) {
        1
    } else {
        0
    }
}

/// Analyze every `*.xml` scenario under `dir` (fixed analysis time 100,
/// horizon 3600 so snapshots are stable) and compare each rendered
/// report against the sibling `.expected` file when present.
fn analyze_fixtures(cli: &Cli, dir: &str, json: bool) -> i32 {
    let mut paths: Vec<std::path::PathBuf> = match std::fs::read_dir(dir) {
        Ok(entries) => entries
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|ext| ext == "xml"))
            .collect(),
        Err(e) => {
            eprintln!("analyze: cannot read {dir}: {e}");
            return 2;
        }
    };
    paths.sort();
    if paths.is_empty() {
        eprintln!("analyze: no scenario XML files in {dir}");
        return 2;
    }
    let mut failed = 0usize;
    for path in &paths {
        let display = path.display();
        let xml = match std::fs::read_to_string(path) {
            Ok(x) => x,
            Err(e) => {
                eprintln!("analyze: cannot read {display}: {e}");
                failed += 1;
                continue;
            }
        };
        let scenario = match psf_analysis::FixtureWorld::parse(&xml) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("analyze: {display}: {e}");
                failed += 1;
                continue;
            }
        };
        let report = psf_analysis::record_run(scenario.analyze(100, 3600));
        cli.say(format!("== {} ==", scenario.name));
        if json {
            print!("{}", report.render_json());
        } else {
            print!("{}", report.render_human());
        }
        let expected_path = path.with_extension("expected");
        match std::fs::read_to_string(&expected_path) {
            Ok(expected) => {
                if report.render_human() == expected {
                    cli.say("   snapshot: ok");
                } else {
                    eprintln!(
                        "analyze: {display}: diagnostics differ from {}",
                        expected_path.display()
                    );
                    failed += 1;
                }
            }
            Err(_) => cli.say("   snapshot: none (informational run)"),
        }
    }
    if failed > 0 {
        eprintln!("analyze: {failed} fixture(s) failed");
        1
    } else {
        0
    }
}

/// Same mixer the deployer uses for its seeded faults: lets the CLI derive
/// per-seed variation (fault placement, degraded latencies) without any
/// wall-clock randomness.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Run the mail scenario under a seeded schedule of faults — an injected
/// deploy-step failure, a WAN collapse, a killed channel, a node crash —
/// and verify the supervisor recovers from each. Exits 1 if any phase
/// fails to recover.
fn chaos(cli: &Cli, args: &[String]) -> i32 {
    let seed = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(1);
    let wal_root = flag_value(args, "--wal-dir")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::env::temp_dir().join(format!("psf-chaos-wal-{seed}")));
    cli.say(format!("chaos: mail scenario, seed {seed}"));

    let reg = psf_telemetry::registry();
    let base_failovers = reg.counter_value("psf.supervisor.failovers");
    let base_rollbacks = reg.counter_value("psf.deploy.rollbacks");
    let base_retries = reg.counter_value("psf.deploy.retries");
    let base_faults = reg.counter_value("psf.deploy.faults.injected");
    let base_degraded = reg.counter_value("psf.supervisor.degraded");
    let base_recoveries = reg.counter_value("psf.supervisor.recoveries");
    let base_revocations = reg.counter_value("psf.drbac.revocations");

    let w = world();
    let cpu_baseline: Vec<u32> = w
        .sites
        .network
        .node_ids()
        .iter()
        .map(|&n| w.sites.network.node(n).unwrap().cpu_available())
        .collect();

    // Every deployment execution runs under this schedule: one explicit
    // fault on the first attempt's second step, plus seeded random faults
    // (25% per step, ≤2 total per execution). With three attempts the
    // final one is always clean, so recovery is guaranteed.
    w.deployer
        .set_fault_plan(Some(DeployFaultPlan::seeded(seed, 25, 2).and_fail_at(1, 1)));
    w.deployer.set_retry_policy(RetryPolicy {
        base_backoff: Duration::from_micros(200),
        jitter_seed: seed,
        ..RetryPolicy::default()
    });

    let goal = Goal {
        iface: "MailI".into(),
        client_node: w.sites.sd[1],
        max_latency_ms: Some(60.0),
        require_privacy: false,
        require_plaintext_delivery: true,
    };
    let mut failures: Vec<String> = Vec::new();
    let phases_run = std::cell::Cell::new(0usize);
    let phase = |name: &str, ok: bool, detail: String, failures: &mut Vec<String>| {
        phases_run.set(phases_run.get() + 1);
        cli.say(format!(
            "  [{}] {name}: {detail}",
            if ok { "ok" } else { "FAIL" }
        ));
        if !ok {
            failures.push(format!("{name}: {detail}"));
        }
    };

    // Phase 1 — initial deployment survives the injected deploy fault.
    let mut sup = match Supervisor::start(
        &w.registrar,
        &w.sites.network,
        &w.oracle,
        PlannerConfig::default(),
        goal,
        &w.deployer,
        w.ny_guard.clone(),
    ) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("chaos: initial deployment unrecoverable: {e}");
            return 1;
        }
    };
    let rb = w.deployer.last_rollback();
    phase(
        "deploy-fault",
        rb.is_some() && sup.state() == SupervisorState::Serving,
        match &rb {
            Some(r) => format!(
                "attempt {} failed at step {}, rolled back {} CPU / {} channels / {} creds, retried",
                r.attempt,
                r.failed_step,
                r.released_cpu,
                r.closed_channels,
                r.revoked_credential_ids.len()
            ),
            None => "no rollback recorded".into(),
        },
        &mut failures,
    );

    // Phase 2 — every WAN link collapses; the supervisor must fail over
    // to a cache view inside San Diego.
    let collapse = 250.0 + (mix64(seed) % 200) as f64;
    for wan in [w.sites.wan_ny_sd, w.sites.wan_ny_se, w.sites.wan_sd_se] {
        w.sites.network.set_latency(wan, collapse);
    }
    let out = sup.tick();
    let cached = sup
        .deployment()
        .map(|d| d.placements.iter().any(|(t, _, _)| t == "ViewMailServer"))
        .unwrap_or(false);
    phase(
        "wan-collapse",
        matches!(out, TickOutcome::FailedOver { .. }) && cached,
        format!("{out:?}, cache deployed: {cached} (latency {collapse} ms)"),
        &mut failures,
    );

    // Phase 3 — the WANs heal; the cheaper direct plan displaces the cache.
    for (wan, ms) in [
        (w.sites.wan_ny_sd, 40.0),
        (w.sites.wan_ny_se, 35.0),
        (w.sites.wan_sd_se, 25.0),
    ] {
        w.sites.network.set_latency(wan, ms);
    }
    let out = sup.tick();
    phase(
        "wan-heal",
        matches!(out, TickOutcome::FailedOver { .. }),
        format!("{out:?}"),
        &mut failures,
    );

    // Phase 4 — kill a live transport out from under the deployment; no
    // network event fires, only the channel-death watcher.
    let killed = match sup.deployment() {
        Some(d) if d.channel_count() > 0 => {
            let idx = (mix64(seed ^ 0xc4a2) as usize) % d.channel_count();
            d.channels[idx].0.close();
            true
        }
        _ => false,
    };
    let out = sup.tick();
    phase(
        "channel-kill",
        killed && matches!(out, TickOutcome::FailedOver { .. }),
        format!("killed: {killed}, {out:?}"),
        &mut failures,
    );

    // Phase 5 — sd-0 carries every WAN into San Diego: crashing it
    // isolates the client. The only safe reaction is teardown.
    w.sites.network.fail_node(w.sites.sd[0]);
    let out = sup.tick();
    phase(
        "node-crash",
        matches!(out, TickOutcome::Degraded(_)) && sup.deployment().is_none(),
        format!("{out:?}"),
        &mut failures,
    );

    // Phase 6 — the node returns; the supervisor recovers end to end.
    w.sites.network.restore_node(w.sites.sd[0]);
    let out = sup.tick();
    let serving = sup
        .endpoint()
        .map(|e| e.call_remote("fetch", b"alice").is_ok())
        .unwrap_or(false);
    phase(
        "node-restore",
        matches!(out, TickOutcome::Recovered) && serving,
        format!("{out:?}, goal re-satisfied: {serving}"),
        &mut failures,
    );

    // Final accounting: teardown must return the network to its baseline.
    sup.shutdown();
    let cpu_after: Vec<u32> = w
        .sites
        .network
        .node_ids()
        .iter()
        .map(|&n| w.sites.network.node(n).unwrap().cpu_available())
        .collect();
    phase(
        "leak-check",
        cpu_after == cpu_baseline,
        format!(
            "cpu available {} -> {}",
            cpu_baseline.iter().sum::<u32>(),
            cpu_after.iter().sum::<u32>()
        ),
        &mut failures,
    );

    // Even under injected faults, the latency objectives must hold — a
    // recovery that only succeeds by blowing every p99 budget is not a
    // recovery the paper's availability story can claim.
    let slo = default_slo_table().evaluate(reg);
    phase(
        "slo-check",
        slo.ok(),
        format!(
            "{} objective(s), {} violation(s)",
            slo.evals.len(),
            slo.violations()
        ),
        &mut failures,
    );
    if !slo.ok() {
        print!("{}", slo.render_text());
    }

    // Phase 9 — kill -9 at a random WAL byte offset: run a seeded
    // publish/revoke workload against a durable repository, cut the log
    // mid-record, recover, and require authorization decisions identical
    // to an oracle built from the surviving records.
    {
        let dir = wal_root.join("torn");
        let _ = std::fs::remove_dir_all(&dir);
        match wal_workload(&dir, seed) {
            Ok((domains, user)) => {
                let log = dir.join(psf_drbac::wal::LOG_FILE);
                let len = std::fs::metadata(&log).map(|m| m.len()).unwrap_or(0);
                let (ok, detail) = if len < 2 {
                    (false, "workload wrote no log".to_string())
                } else {
                    let cut = 1 + mix64(seed ^ 0x7a11) % (len - 1);
                    let torn = std::fs::OpenOptions::new()
                        .write(true)
                        .open(&log)
                        .and_then(|f| f.set_len(cut));
                    match torn {
                        Ok(()) => {
                            let (ok, d) = wal_check(&dir, &domains, &user);
                            (ok, format!("cut at byte {cut}/{len}; {d}"))
                        }
                        Err(e) => (false, format!("cannot tear log: {e}")),
                    }
                };
                phase("wal-torn-tail", ok, detail, &mut failures);
            }
            Err(e) => phase(
                "wal-torn-tail",
                false,
                format!("workload: {e}"),
                &mut failures,
            ),
        }
    }

    // Phase 10 — bit rot inside a committed record: flip one payload byte
    // of a seeded-chosen record, then recover and compare against the
    // oracle built from the records before the corruption.
    {
        let dir = wal_root.join("corrupt");
        let _ = std::fs::remove_dir_all(&dir);
        match wal_workload(&dir, seed ^ 0xbadc0de) {
            Ok((domains, user)) => {
                let log = dir.join(psf_drbac::wal::LOG_FILE);
                let (ok, detail) = match std::fs::read(&log) {
                    Ok(mut image) => {
                        let scan = psf_drbac::wal::scan_log(&image);
                        if scan.records.is_empty() {
                            (false, "workload wrote no records".to_string())
                        } else {
                            let r = (mix64(seed ^ 0xc0de) as usize) % scan.records.len();
                            // +8 skips the frame header: the flip lands in
                            // the CRC-covered payload.
                            let off = scan.records[r].offset as usize + 8;
                            image[off] ^= 0xff;
                            match std::fs::write(&log, &image) {
                                Ok(()) => {
                                    let (ok, d) = wal_check(&dir, &domains, &user);
                                    (
                                        ok,
                                        format!("corrupted record {r}/{}; {d}", scan.records.len()),
                                    )
                                }
                                Err(e) => (false, format!("cannot corrupt log: {e}")),
                            }
                        }
                    }
                    Err(e) => (false, format!("read log: {e}")),
                };
                phase("wal-corrupt-record", ok, detail, &mut failures);
            }
            Err(e) => phase(
                "wal-corrupt-record",
                false,
                format!("workload: {e}"),
                &mut failures,
            ),
        }
    }

    // Phase 11 — torn shard segment: run the workload against a SHARDED
    // durable directory, cut one shard's WAL mid-record, and require
    // recovery to match an oracle built from the surviving records of
    // every segment. The other shards must lose nothing.
    {
        let dir = wal_root.join("sharded-torn");
        let _ = std::fs::remove_dir_all(&dir);
        match sharded_wal_workload(&dir, seed ^ 0x5aa5) {
            Ok((domains, user)) => {
                // Pick the first shard whose log is big enough to cut.
                let mut victim = None;
                for i in 0..8 {
                    let log = dir
                        .join(psf_drbac::wal::shard_dir_name(i))
                        .join(psf_drbac::wal::LOG_FILE);
                    let len = std::fs::metadata(&log).map(|m| m.len()).unwrap_or(0);
                    if len >= 2 {
                        victim = Some((i, log, len));
                        break;
                    }
                }
                let (ok, detail) = match victim {
                    Some((i, log, len)) => {
                        let cut = 1 + mix64(seed ^ 0x5eed) % (len - 1);
                        match std::fs::OpenOptions::new()
                            .write(true)
                            .open(&log)
                            .and_then(|f| f.set_len(cut))
                        {
                            Ok(()) => {
                                let (ok, d) = sharded_wal_check(&dir, &domains, &user);
                                (ok, format!("shard {i} cut at byte {cut}/{len}; {d}"))
                            }
                            Err(e) => (false, format!("cannot tear shard log: {e}")),
                        }
                    }
                    None => (false, "no shard log to tear".to_string()),
                };
                phase("sharded-wal-torn-shard", ok, detail, &mut failures);
            }
            Err(e) => phase(
                "sharded-wal-torn-shard",
                false,
                format!("workload: {e}"),
                &mut failures,
            ),
        }
    }

    // The recovery report is the result: print it even under --quiet.
    println!("chaos recovery report (seed {seed}):");
    for (label, name, base) in [
        ("failovers", "psf.supervisor.failovers", base_failovers),
        ("rollbacks", "psf.deploy.rollbacks", base_rollbacks),
        ("retries", "psf.deploy.retries", base_retries),
        ("injected faults", "psf.deploy.faults.injected", base_faults),
        (
            "degraded episodes",
            "psf.supervisor.degraded",
            base_degraded,
        ),
        ("recoveries", "psf.supervisor.recoveries", base_recoveries),
        (
            "credential revocations",
            "psf.drbac.revocations",
            base_revocations,
        ),
    ] {
        println!("  {label:<23} {}", reg.counter_value(name) - base);
    }
    if failures.is_empty() {
        println!("  all {} phases recovered", phases_run.get());
        0
    } else {
        println!("  UNRECOVERED: {}", failures.join("; "));
        1
    }
}

/// Seeded publish/revoke workload against a fresh durable repository at
/// `dir`: twelve self-certifying `CDi.R → ChaosUser` credentials, a third
/// of them revoked. Returns the entities so callers can re-derive the
/// authorization queries after a crash.
fn wal_workload(
    dir: &std::path::Path,
    seed: u64,
) -> std::io::Result<(Vec<psf_drbac::Entity>, psf_drbac::Entity)> {
    use psf_drbac::wal::{DurableRepository, FsyncPolicy, WalConfig};
    use psf_drbac::DelegationBuilder;
    let (d, _) = DurableRepository::open(
        dir,
        WalConfig {
            fsync: FsyncPolicy::Never,
            auto_compact_appends: None,
        },
    )?;
    let user = psf_drbac::Entity::with_seed("ChaosUser", b"chaos-wal");
    let mut domains = Vec::new();
    for i in 0..12u64 {
        let dom = psf_drbac::Entity::with_seed(format!("CD{i}"), b"chaos-wal");
        let cred = DelegationBuilder::new(&dom)
            .subject_entity(&user)
            .role(dom.role("R"))
            .sign();
        let id = cred.id();
        d.repository().publish_at_issuer(cred);
        if mix64(seed ^ i).is_multiple_of(3) {
            d.bus().revoke(&id);
        }
        domains.push(dom);
    }
    d.sync()?;
    Ok((domains, user))
}

/// Rebuild an in-memory oracle from the valid records of the (damaged)
/// on-disk log, recover the directory, and require byte-identical
/// authorization state: same credential ids, same revocation set, and the
/// same `prove` outcome for every role the workload created. Finally
/// re-open writable (truncating the tail) and require the directory to
/// verify clean.
fn wal_check(
    dir: &std::path::Path,
    domains: &[psf_drbac::Entity],
    user: &psf_drbac::Entity,
) -> (bool, String) {
    use psf_drbac::entity::EntityRegistry;
    use psf_drbac::repository::Repository;
    use psf_drbac::revocation::RevocationBus;
    use psf_drbac::wal::{self, DurableRepository, WalConfig};

    let image = match std::fs::read(dir.join(wal::LOG_FILE)) {
        Ok(b) => b,
        Err(e) => return (false, format!("read log: {e}")),
    };
    let scan = wal::scan_log(&image);
    let oracle_repo = Repository::new();
    let oracle_bus = RevocationBus::new();
    for rec in &scan.records {
        match &rec.op {
            wal::WalOp::Publish { home, tag, cred } => {
                oracle_repo.publish(home.clone(), cred.clone(), *tag)
            }
            wal::WalOp::Revoke { id } => oracle_bus.revoke(id),
            wal::WalOp::RevokeBatch { ids } => {
                for id in ids {
                    oracle_bus.revoke(id);
                }
            }
            wal::WalOp::PurgeExpired { now } => {
                oracle_repo.purge_expired(*now);
            }
        }
    }

    let (rec_repo, rec_bus, report) = match Repository::recover(dir) {
        Ok(x) => x,
        Err(e) => return (false, format!("recover: {e}")),
    };

    let registry = EntityRegistry::new();
    registry.register(user);
    for d in domains {
        registry.register(d);
    }
    let subject = user.as_subject();
    let oracle_engine = ProofEngine::new(&registry, &oracle_repo, &oracle_bus, 0);
    let rec_engine = ProofEngine::new(&registry, &rec_repo, &rec_bus, 0);
    let mut agree = 0;
    for d in domains {
        let role = d.role("R");
        if oracle_engine.check(&subject, &role, &[]) != rec_engine.check(&subject, &role, &[]) {
            return (false, format!("decision divergence on {role}"));
        }
        agree += 1;
    }
    let creds_match = oracle_repo
        .all_credentials()
        .iter()
        .map(|c| c.id())
        .collect::<Vec<_>>()
        == rec_repo
            .all_credentials()
            .iter()
            .map(|c| c.id())
            .collect::<Vec<_>>();
    let revoked_match = oracle_bus.revoked_ids() == rec_bus.revoked_ids();
    if !creds_match || !revoked_match {
        return (
            false,
            format!("state divergence (creds: {creds_match}, revocations: {revoked_match})"),
        );
    }

    // Writable reopen truncates the torn tail; afterwards the directory
    // must verify clean and replay the same records.
    match DurableRepository::open(dir, WalConfig::default()) {
        Ok((_d, rep2)) => {
            if rep2.records_replayed != report.records_replayed {
                return (
                    false,
                    "writable reopen replays a different count".to_string(),
                );
            }
        }
        Err(e) => return (false, format!("reopen: {e}")),
    }
    match wal::verify_dir(dir) {
        Ok(v) if v.is_clean() => (
            true,
            format!(
                "{} record(s) replayed, {} byte(s) truncated, {agree} decision(s) agree",
                report.records_replayed, report.truncated_bytes
            ),
        ),
        Ok(_) => (false, "directory not clean after recovery".to_string()),
        Err(e) => (false, format!("verify: {e}")),
    }
}

/// The [`wal_workload`] twin for the sharded layout: the same seeded
/// publish/revoke schedule against an 8-shard durable directory, so the
/// records scatter across per-shard WAL segments.
fn sharded_wal_workload(
    dir: &std::path::Path,
    seed: u64,
) -> std::io::Result<(Vec<psf_drbac::Entity>, psf_drbac::Entity)> {
    use psf_drbac::wal::{FsyncPolicy, ShardedDurableRepository, WalConfig};
    use psf_drbac::DelegationBuilder;
    let (d, _) = ShardedDurableRepository::open(
        dir,
        8,
        WalConfig {
            fsync: FsyncPolicy::Never,
            auto_compact_appends: None,
        },
    )?;
    let user = psf_drbac::Entity::with_seed("ChaosUser", b"chaos-wal");
    let mut domains = Vec::new();
    for i in 0..12u64 {
        let dom = psf_drbac::Entity::with_seed(format!("CD{i}"), b"chaos-wal");
        let cred = DelegationBuilder::new(&dom)
            .subject_entity(&user)
            .role(dom.role("R"))
            .sign();
        let id = cred.id();
        d.repository().publish_at_issuer(cred);
        if mix64(seed ^ i).is_multiple_of(3) {
            d.bus().revoke(&id);
        }
        domains.push(dom);
    }
    d.sync()?;
    d.detach();
    Ok((domains, user))
}

/// The [`wal_check`] twin for the sharded layout: rebuild the oracle from
/// the valid records of EVERY segment (the torn shard contributes only
/// its surviving prefix), recover, and require identical authorization
/// state and decisions. A writable reopen must then truncate the tail and
/// leave every segment verifying clean.
fn sharded_wal_check(
    dir: &std::path::Path,
    domains: &[psf_drbac::Entity],
    user: &psf_drbac::Entity,
) -> (bool, String) {
    use psf_drbac::entity::EntityRegistry;
    use psf_drbac::repository::Repository;
    use psf_drbac::revocation::RevocationBus;
    use psf_drbac::wal::{self, ShardedDurableRepository, WalConfig};

    let oracle_repo = Repository::new();
    let oracle_bus = RevocationBus::new();
    let mut segment_dirs: Vec<std::path::PathBuf> =
        (0..8).map(|i| dir.join(wal::shard_dir_name(i))).collect();
    segment_dirs.push(dir.join(wal::BUS_DIR));
    for seg in &segment_dirs {
        let image = match std::fs::read(seg.join(wal::LOG_FILE)) {
            Ok(b) => b,
            Err(e) => return (false, format!("read {}: {e}", seg.display())),
        };
        for rec in &wal::scan_log(&image).records {
            match &rec.op {
                wal::WalOp::Publish { home, tag, cred } => {
                    oracle_repo.publish(home.clone(), cred.clone(), *tag)
                }
                wal::WalOp::Revoke { id } => oracle_bus.revoke(id),
                wal::WalOp::RevokeBatch { ids } => {
                    for id in ids {
                        oracle_bus.revoke(id);
                    }
                }
                wal::WalOp::PurgeExpired { now } => {
                    oracle_repo.purge_expired(*now);
                }
            }
        }
    }

    let (rec_repo, rec_bus, report) = match Repository::recover_sharded(dir) {
        Ok(x) => x,
        Err(e) => return (false, format!("recover: {e}")),
    };

    let registry = EntityRegistry::new();
    registry.register(user);
    for d in domains {
        registry.register(d);
    }
    let subject = user.as_subject();
    let oracle_engine = ProofEngine::new(&registry, &oracle_repo, &oracle_bus, 0);
    let rec_engine = ProofEngine::new(&registry, &rec_repo, &rec_bus, 0);
    let mut agree = 0;
    for d in domains {
        let role = d.role("R");
        if oracle_engine.check(&subject, &role, &[]) != rec_engine.check(&subject, &role, &[]) {
            return (false, format!("decision divergence on {role}"));
        }
        agree += 1;
    }
    let oracle_ids = {
        let mut v: Vec<String> = oracle_repo
            .all_credentials()
            .iter()
            .map(|c| c.id())
            .collect();
        v.sort();
        v
    };
    let rec_ids = {
        let mut v: Vec<String> = rec_repo.all_credentials().iter().map(|c| c.id()).collect();
        v.sort();
        v
    };
    if oracle_ids != rec_ids || oracle_bus.revoked_ids() != rec_bus.revoked_ids() {
        return (
            false,
            format!(
                "state divergence (creds: {}, revocations: {})",
                oracle_ids == rec_ids,
                oracle_bus.revoked_ids() == rec_bus.revoked_ids()
            ),
        );
    }

    // Writable reopen truncates the torn tail; afterwards every segment
    // must verify clean and replay the same records.
    match ShardedDurableRepository::open(dir, 8, WalConfig::default()) {
        Ok((d, rep2)) => {
            if rep2.records_replayed != report.records_replayed {
                return (
                    false,
                    "writable reopen replays a different count".to_string(),
                );
            }
            d.detach();
        }
        Err(e) => return (false, format!("reopen: {e}")),
    }
    match wal::verify_sharded_dir(dir) {
        Ok(v) if v.is_clean() => (
            true,
            format!(
                "{} record(s) replayed, {} byte(s) truncated, {agree} decision(s) agree",
                report.records_replayed, report.truncated_bytes
            ),
        ),
        Ok(v) => (
            false,
            format!("segment(s) {:?} not clean after recovery", v.damaged()),
        ),
        Err(e) => (false, format!("verify: {e}")),
    }
}

/// Seed `n` synthetic publish records (plus a revocation every 64) into
/// the durable repository at `dir`. Signatures are dummies — recovery
/// replay never verifies them — which keeps multi-100k fills fast enough
/// for a bench fixture.
fn fill_durable_dir(dir: &std::path::Path, n: usize) -> std::io::Result<()> {
    use psf_drbac::entity::{EntityName, Subject};
    use psf_drbac::wal::{DurableRepository, FsyncPolicy, WalConfig};
    use psf_drbac::{AttrSet, Delegation, DelegationKind, DiscoveryTag, SignedDelegation};
    let (d, _) = DurableRepository::open(
        dir,
        WalConfig {
            fsync: FsyncPolicy::Never,
            auto_compact_appends: None,
        },
    )?;
    let issuer = psf_drbac::Entity::with_seed("FillHome", b"fill-wal");
    let key = issuer.public_key();
    for i in 0..n {
        let body = Delegation {
            subject: Subject::Entity {
                name: EntityName(format!("U{i}")),
                key,
            },
            object: issuer.role("R"),
            kind: DelegationKind::SelfCertifying,
            issuer: issuer.name.clone(),
            attrs: AttrSet::new(),
            expires: None,
            monitored: false,
            serial: i as u64,
        };
        let cred = SignedDelegation {
            body,
            signature: psf_crypto::ed25519::Signature([0u8; 64]),
        };
        d.repository()
            .publish(issuer.name.clone(), cred, DiscoveryTag::None);
        if i.is_multiple_of(64) {
            d.bus().revoke(&format!("deadbeef{i:08x}"));
        }
    }
    d.sync()
}

/// Synthetic-fill variant of [`fill_durable_dir`] for the sharded layout:
/// the same dummy-signature records, routed to per-shard WAL segments.
fn fill_sharded_dir(dir: &std::path::Path, shards: usize, n: usize) -> std::io::Result<()> {
    use psf_drbac::entity::{EntityName, Subject};
    use psf_drbac::wal::{FsyncPolicy, ShardedDurableRepository, WalConfig};
    use psf_drbac::{AttrSet, Delegation, DelegationKind, DiscoveryTag, SignedDelegation};
    let (d, _) = ShardedDurableRepository::open(
        dir,
        shards,
        WalConfig {
            fsync: FsyncPolicy::Never,
            auto_compact_appends: None,
        },
    )?;
    let issuer = psf_drbac::Entity::with_seed("FillHome", b"fill-wal");
    let key = issuer.public_key();
    for i in 0..n {
        let body = Delegation {
            subject: Subject::Entity {
                name: EntityName(format!("U{i}")),
                key,
            },
            object: issuer.role(format!("R{}", i % 1024)),
            kind: DelegationKind::SelfCertifying,
            issuer: issuer.name.clone(),
            attrs: AttrSet::new(),
            expires: None,
            monitored: false,
            serial: i as u64,
        };
        let cred = SignedDelegation {
            body,
            signature: psf_crypto::ed25519::Signature([0u8; 64]),
        };
        d.repository()
            .publish(issuer.name.clone(), cred, DiscoveryTag::Both);
        if i.is_multiple_of(64) {
            d.bus().revoke(&format!("deadbeef{i:08x}"));
        }
    }
    d.sync()
}

/// The `psf repo` handler for sharded layouts: per-shard stats rows,
/// whole-directory verification (exit 1 if ANY segment is damaged), and
/// all-segment compaction.
fn repo_cmd_sharded(
    cli: &Cli,
    dir: &std::path::Path,
    verify: bool,
    compact: bool,
    stats: bool,
) -> i32 {
    use psf_drbac::wal::{self, ShardedDurableRepository, WalConfig};

    if compact {
        // The on-disk shards.meta overrides the requested count of 1.
        let (d, report) = match ShardedDurableRepository::open(dir, 1, WalConfig::default()) {
            Ok(x) => x,
            Err(e) => {
                eprintln!("repo: open failed: {e}");
                return 1;
            }
        };
        match d.compact() {
            Ok(r) => cli.say(format!(
                "repo: compacted — snapshot {} credential(s) + {} revocation(s), \
                 {} log byte(s) dropped ({} record(s) were replayed)",
                r.snapshot_entries,
                r.snapshot_revocations,
                r.log_bytes_dropped,
                report.records_replayed
            )),
            Err(e) => {
                eprintln!("repo: compaction failed: {e}");
                return 1;
            }
        }
    }

    let v = match wal::verify_sharded_dir(dir) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("repo: verify failed: {e}");
            return 1;
        }
    };
    if verify || stats || !compact {
        cli.say(format!(
            "repo: {} (sharded, {} shard(s))",
            dir.display(),
            v.shards.len()
        ));
    }
    if stats {
        // One writable open: the replay report, the recovered in-memory
        // image (occupancy + tag-index columns), and the live segment
        // stats (WAL bytes + last compaction) all come from it.
        match ShardedDurableRepository::open(dir, 1, WalConfig::default()) {
            Ok((d, report)) => {
                cli.say(format!(
                    "  replay: {} publish(es), {} revocation(s) restored, \
                     {} duplicate(s) skipped, {} purge record(s), epoch {}",
                    report.publishes,
                    report.revocations_restored,
                    report.duplicates_skipped,
                    report.purges,
                    report.epoch
                ));
                cli.say(format!(
                    "  live: {} credential(s) across {} home(s), {} revoked id(s)",
                    d.repository().len(),
                    d.repository().home_count(),
                    d.bus().revoked_count()
                ));
                let wal_stats = d.stats();
                cli.say(
                    "  shard  entries  subj-keys  tag-keys  wal-bytes  snap-bytes  last-compact",
                );
                for info in d.repository().shard_infos() {
                    let (wal_b, snap_b, lc) = wal_stats
                        .shards
                        .get(info.index)
                        .map(|s| (s.log_bytes, s.snapshot_bytes, s.last_compact_epoch))
                        .unwrap_or_default();
                    cli.say(format!(
                        "  {:>5}  {:>7}  {:>9}  {:>8}  {:>9}  {:>10}  {}",
                        info.index,
                        info.entries,
                        info.subject_keys,
                        info.tag_keys,
                        wal_b,
                        snap_b,
                        if lc == 0 {
                            "never".to_string()
                        } else {
                            format!("epoch {lc}")
                        }
                    ));
                }
                d.detach();
            }
            Err(e) => {
                eprintln!("repo: recover failed: {e}");
                return 1;
            }
        }
    }
    if verify {
        for (i, s) in v.shards.iter().enumerate() {
            if !s.is_clean() {
                cli.say(format!(
                    "  shard {i}: {} record(s), {} truncated byte(s){}",
                    s.log_records,
                    s.truncated_bytes,
                    s.corruption
                        .as_deref()
                        .map(|r| format!(", corruption: {r}"))
                        .unwrap_or_default()
                ));
            }
        }
        if !v.bus.is_clean() {
            cli.say("  bus segment damaged");
        }
        if v.is_clean() {
            cli.say("verdict: clean");
        } else {
            // Damage verdicts print even under --quiet: this is the CI gate.
            println!(
                "verdict: DAMAGED ({} segment(s) torn or corrupt)",
                v.damaged().len()
            );
            return 1;
        }
    }
    0
}

/// Inspect or maintain a durable credential repository directory:
/// `--verify` (read-only integrity check, exit 1 on damage), `--stats`
/// (sizes + replay counts), `--compact` (snapshot + truncate), `--fill N`
/// (seed synthetic records for demos and benches). Sharded layouts are
/// auto-detected; `--fill N --shards S` creates one.
fn repo_cmd(cli: &Cli, args: &[String]) -> i32 {
    use psf_drbac::repository::Repository;
    use psf_drbac::wal::{self, DurableRepository, WalConfig};
    let Some(dir) = flag_value(args, "--dir").map(std::path::PathBuf::from) else {
        eprintln!("repo: --dir DIR is required");
        return 2;
    };
    let verify = args.iter().any(|a| a == "--verify");
    let compact = args.iter().any(|a| a == "--compact");
    let stats = args.iter().any(|a| a == "--stats");
    let fill: Option<usize> = flag_value(args, "--fill").and_then(|v| v.parse().ok());
    let shards: Option<usize> = flag_value(args, "--shards").and_then(|v| v.parse().ok());

    if let Some(n) = fill {
        let sharded = shards.is_some() || wal::is_sharded_dir(&dir);
        let filled = if sharded {
            fill_sharded_dir(&dir, shards.unwrap_or(psf_drbac::DEFAULT_SHARD_COUNT), n)
        } else {
            fill_durable_dir(&dir, n)
        };
        if let Err(e) = filled {
            eprintln!("repo: fill failed: {e}");
            return 1;
        }
        cli.say(format!("repo: {n} synthetic record(s) appended"));
    }
    if !dir.is_dir() {
        eprintln!("repo: {} is not a directory", dir.display());
        return 2;
    }
    if wal::is_sharded_dir(&dir) {
        return repo_cmd_sharded(cli, &dir, verify, compact, stats);
    }

    if compact {
        let (d, report) = match DurableRepository::open(&dir, WalConfig::default()) {
            Ok(x) => x,
            Err(e) => {
                eprintln!("repo: open failed: {e}");
                return 1;
            }
        };
        match d.compact() {
            Ok(r) => cli.say(format!(
                "repo: compacted — snapshot {} credential(s) + {} revocation(s), \
                 {} log byte(s) dropped ({} record(s) were replayed)",
                r.snapshot_entries,
                r.snapshot_revocations,
                r.log_bytes_dropped,
                report.records_replayed
            )),
            Err(e) => {
                eprintln!("repo: compaction failed: {e}");
                return 1;
            }
        }
    }

    let v = match wal::verify_dir(&dir) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("repo: verify failed: {e}");
            return 1;
        }
    };
    if verify || stats || (!compact && fill.is_none()) {
        cli.say(format!("repo: {}", dir.display()));
        cli.say(match (v.snapshot_present, v.snapshot_corrupt) {
            (false, _) => "  snapshot: none".to_string(),
            (true, true) => "  snapshot: CORRUPT (ignored at recovery)".to_string(),
            (true, false) => format!(
                "  snapshot: {} credential(s), {} revocation(s)",
                v.snapshot_entries, v.snapshot_revocations
            ),
        });
        cli.say(format!(
            "  log: {} record(s), {} valid byte(s), {} truncated byte(s)",
            v.log_records, v.valid_bytes, v.truncated_bytes
        ));
        if let Some(reason) = &v.corruption {
            cli.say(format!("  corruption: {reason}"));
        }
    }
    if stats {
        match Repository::recover(&dir) {
            Ok((repo, bus, report)) => {
                cli.say(format!(
                    "  replay: {} publish(es), {} revocation(s) restored, \
                     {} duplicate(s) skipped, {} purge(s), epoch {}",
                    report.publishes,
                    report.revocations_restored,
                    report.duplicates_skipped,
                    report.purges,
                    report.epoch
                ));
                cli.say(format!(
                    "  live: {} credential(s) across {} home(s), {} revoked id(s)",
                    repo.len(),
                    repo.home_count(),
                    bus.revoked_count()
                ));
            }
            Err(e) => {
                eprintln!("repo: recover failed: {e}");
                return 1;
            }
        }
    }
    if verify {
        if v.is_clean() {
            cli.say("verdict: clean");
        } else {
            // Damage verdicts print even under --quiet: this is the CI gate.
            println!("verdict: DAMAGED (torn or corrupt bytes present)");
            return 1;
        }
    }
    0
}

/// Time `f` over `iters` runs, returning microseconds per operation.
fn time_per_op_us(iters: u32, mut f: impl FnMut()) -> f64 {
    let t = std::time::Instant::now();
    for _ in 0..iters {
        f();
    }
    t.elapsed().as_secs_f64() * 1e6 / iters as f64
}

/// The PR3 perf-trajectory runner: times the warm/cold authorization fast
/// path (proof search, single sign-on, repository queries) and the
/// memoized planner, then writes the results as JSON. With `--check`,
/// exits non-zero unless the warm prove/SSO workloads are at least 2x
/// faster than cold — the regression gate CI runs.
fn bench(cli: &Cli, args: &[String]) -> i32 {
    use psf_drbac::entity::{Entity, Subject};
    use psf_drbac::{AuthCache, DelegationBuilder};
    use psf_views::ViewAcl;

    if !args.iter().any(|a| a == "--json") {
        eprintln!("bench: only --json output is supported (pass --json)");
        return 2;
    }
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_pr3.json".to_string());
    let quick = args.iter().any(|a| a == "--quick");
    let check = args.iter().any(|a| a == "--check");
    let iters: u32 = if quick { 40 } else { 400 };

    // The CLI command span keeps a trace live for the whole process;
    // detach it here so the timed loops measure the untraced fast path
    // (per-call RPC spans are gated on a live trace) rather than the cost
    // of tracing a million-span tree.
    let _untraced = psf_telemetry::untraced();

    // --- dRBAC world: an 8-deep delegation chain + 100 decoys. ---
    let registry = psf_drbac::entity::EntityRegistry::new();
    let repo = psf_drbac::repository::Repository::new();
    let bus = psf_drbac::revocation::RevocationBus::new();
    let user = Entity::with_seed("User", b"bench");
    registry.register(&user);
    let depth = 8usize;
    let mut domains = Vec::new();
    for i in 0..depth {
        let d = Entity::with_seed(format!("D{i}"), b"bench");
        registry.register(&d);
        domains.push(d);
    }
    repo.publish_at_issuer(
        DelegationBuilder::new(&domains[depth - 1])
            .subject_entity(&user)
            .role(domains[depth - 1].role("R"))
            .sign(),
    );
    for i in 0..depth - 1 {
        repo.publish_at_issuer(
            DelegationBuilder::new(&domains[i])
                .subject_role(domains[i + 1].role("R"))
                .role(domains[i].role("R"))
                .sign(),
        );
    }
    for i in 0..100 {
        let d = Entity::with_seed(format!("X{i}"), b"bench");
        registry.register(&d);
        repo.publish_at_issuer(
            DelegationBuilder::new(&d)
                .subject_role(psf_drbac::entity::RoleName::new("No.Where", "Z"))
                .role(d.role("Z"))
                .sign(),
        );
    }
    let target = domains[0].role("R");
    let subject = Subject::Entity {
        name: user.name.clone(),
        key: user.public_key(),
    };

    // Proof search: cold re-verifies and re-walks everything; warm is a
    // proof-cache hit.
    let prove_cold_us = time_per_op_us(iters, || {
        let cache = AuthCache::new();
        let engine = ProofEngine::with_cache(&registry, &repo, &bus, 0, &cache);
        engine.prove(&subject, &target, &[]).unwrap();
    });
    let cache = AuthCache::new();
    let engine = ProofEngine::with_cache(&registry, &repo, &bus, 0, &cache);
    engine.prove(&subject, &target, &[]).unwrap();
    let prove_warm_us = time_per_op_us(iters, || {
        engine.prove(&subject, &target, &[]).unwrap();
    });
    let prove_speedup = prove_cold_us / prove_warm_us.max(1e-9);

    // Single sign-on: token mint for a returning client.
    let acl = ViewAcl::new().rule(domains[0].role("R"), "FullView");
    let sso_cold_us = time_per_op_us(iters, || {
        acl.authorize_once(&subject, &[], &registry, &repo, &bus, 0)
            .unwrap();
    });
    let sso_cache = AuthCache::new();
    acl.authorize_once_cached(&subject, &[], &registry, &repo, &bus, 0, &sso_cache)
        .unwrap();
    let sso_warm_us = time_per_op_us(iters, || {
        acl.authorize_once_cached(&subject, &[], &registry, &repo, &bus, 0, &sso_cache)
            .unwrap();
    });
    let sso_speedup = sso_cold_us / sso_warm_us.max(1e-9);

    // Repository query: Arc sharing vs the old deep clone.
    let query_arc_us = time_per_op_us(iters, || {
        let _ = repo.query_by_subject(&subject);
    });
    let query_clone_us = time_per_op_us(iters, || {
        let _: Vec<psf_drbac::SignedDelegation> = repo
            .query_by_subject(&subject)
            .iter()
            .map(|c| (**c).clone())
            .collect();
    });

    // Planner: memoized + Arc-shared search over the mail scenario.
    let w = world();
    let goal = Goal::private("MailI", w.sites.sd[1]);
    let plan_iters = if quick { 10 } else { 50 };
    let plan_us = time_per_op_us(plan_iters, || {
        w.plan_service(&goal).unwrap();
    });
    let (_, plan_stats) = w.plan_service(&goal).unwrap();

    // Durable-repository recovery: fill a WAL directory with synthetic
    // records, then time a cold `Repository::recover` replay.
    let replay_records: usize = if quick { 10_000 } else { 100_000 };
    let replay_dir = std::env::temp_dir().join(format!("psf-bench-wal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&replay_dir);
    let (replay_ms, replay_rate) = match fill_durable_dir(&replay_dir, replay_records) {
        Ok(()) => {
            let t0 = std::time::Instant::now();
            let replayed = match psf_drbac::repository::Repository::recover(&replay_dir) {
                Ok((_, _, report)) => report.records_replayed,
                Err(e) => {
                    eprintln!("bench: recovery replay failed: {e}");
                    return 1;
                }
            };
            let ms = t0.elapsed().as_secs_f64() * 1e3;
            (ms, replayed as f64 / (ms / 1e3).max(1e-9))
        }
        Err(e) => {
            eprintln!("bench: cannot fill WAL dir: {e}");
            return 1;
        }
    };
    let _ = std::fs::remove_dir_all(&replay_dir);

    let stats = cache.stats();
    let sso_stats = sso_cache.stats();
    let json = format!(
        "{{\n  \"bench\": \"pr3\",\n  \"mode\": \"{mode}\",\n  \"iters\": {iters},\n  \
         \"proof_search\": {{ \"cold_us\": {prove_cold_us:.3}, \"warm_us\": {prove_warm_us:.3}, \"speedup\": {prove_speedup:.1} }},\n  \
         \"single_sign_on\": {{ \"cold_us\": {sso_cold_us:.3}, \"warm_us\": {sso_warm_us:.3}, \"speedup\": {sso_speedup:.1} }},\n  \
         \"repository_query\": {{ \"zero_copy_us\": {query_arc_us:.3}, \"deep_clone_us\": {query_clone_us:.3} }},\n  \
         \"planner\": {{ \"plan_us\": {plan_us:.3}, \"expanded\": {expanded}, \"generated\": {generated}, \"memo_pruned\": {memo_pruned} }},\n  \
         \"recovery_replay\": {{ \"records\": {replay_records}, \"replay_ms\": {replay_ms:.3}, \"records_per_sec\": {replay_rate:.0} }},\n  \
         \"proof_cache\": {{ \"hits\": {ph}, \"misses\": {pm}, \"invalidations\": {pi}, \"cred_hits\": {ch}, \"cred_misses\": {cm} }},\n  \
         \"sso_cache\": {{ \"hits\": {sph}, \"misses\": {spm} }}\n}}\n",
        mode = if quick { "quick" } else { "full" },
        expanded = plan_stats.expanded,
        generated = plan_stats.generated,
        memo_pruned = plan_stats.memo_pruned,
        ph = stats.proof_hits,
        pm = stats.proof_misses,
        pi = stats.proof_invalidations,
        ch = stats.cred_hits,
        cm = stats.cred_misses,
        sph = sso_stats.proof_hits,
        spm = sso_stats.proof_misses,
    );
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("bench: cannot write {out_path}: {e}");
        return 1;
    }
    cli.say(format!(
        "proof search: cold {prove_cold_us:.1} us, warm {prove_warm_us:.1} us ({prove_speedup:.0}x)"
    ));
    cli.say(format!(
        "single sign-on: cold {sso_cold_us:.1} us, warm {sso_warm_us:.1} us ({sso_speedup:.0}x)"
    ));
    cli.say(format!(
        "planner: {plan_us:.1} us/plan ({} expanded, {} memo-pruned)",
        plan_stats.expanded, plan_stats.memo_pruned
    ));
    cli.say(format!(
        "recovery replay: {replay_records} records in {replay_ms:.1} ms ({replay_rate:.0}/s)"
    ));
    cli.say(format!("results written to {out_path}"));
    psf_telemetry::event(
        "psf.cli",
        "bench.recorded",
        vec![
            ("out", out_path.clone()),
            ("prove_speedup", format!("{prove_speedup:.1}")),
            ("sso_speedup", format!("{sso_speedup:.1}")),
        ],
    );
    if check && (prove_speedup < 2.0 || sso_speedup < 2.0) {
        eprintln!(
            "bench --check FAILED: warm must be >= 2x faster than cold \
             (prove {prove_speedup:.1}x, sso {sso_speedup:.1}x)"
        );
        return 1;
    }
    if check && replay_rate < 10_000.0 {
        eprintln!(
            "bench --check FAILED: recovery replay must sustain >= 10000 \
             records/sec (got {replay_rate:.0}/s over {replay_records} records)"
        );
        return 1;
    }

    bench_switchboard(cli, &out_path, iters, quick, check)
}

/// The PR4 data-plane runner: times serial vs pipelined RPC and the
/// plain vs secure record layer over an in-memory channel pair, plus the
/// wide vs scalar AEAD seal, and writes `BENCH_pr4.json`. With `--check`,
/// exits non-zero unless pipelined issue is at least 2x the serial
/// request rate — the regression gate CI runs.
fn bench_switchboard(cli: &Cli, pr3_out: &str, iters: u32, quick: bool, check: bool) -> i32 {
    use psf_drbac::entity::Entity;
    use psf_drbac::DelegationBuilder;
    use psf_switchboard::{
        pair_in_memory, pair_in_memory_plain, AuthSuite, Authorizer, ChannelConfig, ClockRef,
    };

    let out_path = if pr3_out.contains("pr3") {
        pr3_out.replace("pr3", "pr4")
    } else {
        "BENCH_pr4.json".to_string()
    };
    let config = ChannelConfig {
        heartbeat_interval: None,
        rpc_timeout: Duration::from_secs(10),
        ..Default::default()
    };

    let (plain_client, plain_server) = pair_in_memory_plain(config.clone());
    plain_server.register_handler("echo", |a| Ok(a.to_vec()));

    // A fully authenticated pair: the secure numbers include the AEAD
    // record layer and the per-call continuous-authorization check.
    let registry = psf_drbac::entity::EntityRegistry::new();
    let repo = psf_drbac::repository::Repository::new();
    let bus = psf_drbac::revocation::RevocationBus::new();
    let clock = ClockRef::new();
    let domain = Entity::with_seed("Dom", b"bench-pr4");
    let server = Entity::with_seed("Srv", b"bench-pr4");
    let client = Entity::with_seed("Cli", b"bench-pr4");
    for e in [&domain, &server, &client] {
        registry.register(e);
    }
    let client_cred = DelegationBuilder::new(&domain)
        .subject_entity(&client)
        .role(domain.role("Member"))
        .sign();
    let server_cred = DelegationBuilder::new(&domain)
        .subject_entity(&server)
        .role(domain.role("Service"))
        .sign();
    let auth = |role: &str| {
        Authorizer::new(
            registry.clone(),
            repo.clone(),
            bus.clone(),
            clock.clone(),
            domain.role(role),
        )
    };
    let client_suite = AuthSuite::new(client, vec![client_cred], auth("Service"));
    let server_suite = AuthSuite::new(server, vec![server_cred], auth("Member"));
    let (sec_client, sec_server) =
        pair_in_memory(client_suite.clone(), server_suite.clone(), config.clone()).unwrap();
    sec_server.register_handler("echo", |a| Ok(a.to_vec()));

    // RTT benchmarks against a live thread pair are scheduler-sensitive;
    // each timing below keeps the best of three passes, the most
    // reproducible summary of an uncontended run.
    fn best_of3(mut f: impl FnMut() -> f64) -> f64 {
        f().min(f()).min(f())
    }

    // Record-layer overhead: serial 4 KiB echo, plaintext (`rmi`
    // exposure) vs AEAD (`switchboard` exposure).
    let payload_4k = vec![0xa5u8; 4 << 10];
    plain_client.call("echo", &payload_4k).unwrap(); // warm-up
    sec_client.call("echo", &payload_4k).unwrap();
    let plain_4k_us = best_of3(|| {
        time_per_op_us(iters, || {
            plain_client.call("echo", &payload_4k).unwrap();
        })
    });
    let secure_4k_us = best_of3(|| {
        time_per_op_us(iters, || {
            sec_client.call("echo", &payload_4k).unwrap();
        })
    });
    let overhead_4k = secure_4k_us / plain_4k_us.max(1e-9);

    // The same 4 KiB echo over TCP loopback — the deployment-shaped
    // transport, where kernel socket hops dominate the round trip and
    // the AEAD layer amortizes far better than in the in-memory
    // harness.
    let (tcp_plain_4k_us, tcp_secure_4k_us) = {
        use psf_switchboard::{establish_plain, TcpTransport};
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let accepted = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            TcpTransport::new(stream).unwrap()
        });
        let stream = std::net::TcpStream::connect(addr).unwrap();
        let t_client = TcpTransport::new(stream).unwrap();
        let t_server = accepted.join().unwrap();
        let tcp_plain_client = establish_plain(Box::new(t_client), config.clone());
        let tcp_plain_server = establish_plain(Box::new(t_server), config.clone());
        tcp_plain_server.register_handler("echo", |a| Ok(a.to_vec()));

        let sec_listener = psf_switchboard::listen_tcp("127.0.0.1:0").unwrap();
        let sec_addr = sec_listener.local_addr().unwrap().to_string();
        let accept_suite = server_suite.clone();
        let accept_config = config.clone();
        let accepted =
            std::thread::spawn(move || sec_listener.accept(&accept_suite, accept_config).unwrap());
        let tcp_sec_client =
            psf_switchboard::connect_tcp(&sec_addr, &client_suite, config.clone()).unwrap();
        let tcp_sec_server = accepted.join().unwrap();
        tcp_sec_server.register_handler("echo", |a| Ok(a.to_vec()));

        tcp_plain_client.call("echo", &payload_4k).unwrap(); // warm-up
        tcp_sec_client.call("echo", &payload_4k).unwrap();
        let plain_us = best_of3(|| {
            time_per_op_us(iters, || {
                tcp_plain_client.call("echo", &payload_4k).unwrap();
            })
        });
        let secure_us = best_of3(|| {
            time_per_op_us(iters, || {
                tcp_sec_client.call("echo", &payload_4k).unwrap();
            })
        });
        (plain_us, secure_us)
    };
    let tcp_overhead_4k = tcp_secure_4k_us / tcp_plain_4k_us.max(1e-9);

    // Pipelining win: 64 B echo, one call per round trip vs a 32-deep
    // sliding window, on both pairs. The plain variant isolates the
    // scheduling/coalescing win; the secure variant is additionally
    // bounded by the server reader's serialized per-record open+seal.
    let small = vec![0x11u8; 64];
    let batch: Vec<&[u8]> = (0..256).map(|_| small.as_slice()).collect();
    let batches = (iters / 64).max(2);
    let measure_pair = |client: &psf_switchboard::Channel| {
        let serial_us = best_of3(|| {
            time_per_op_us(iters, || {
                client.call("echo", &small).unwrap();
            })
        });
        let pipelined_us = best_of3(|| {
            time_per_op_us(batches, || {
                let results = client.call_many("echo", &batch, 32);
                assert!(results.iter().all(|r| r.is_ok()));
            })
        }) / batch.len() as f64;
        (1e6 / serial_us.max(1e-9), 1e6 / pipelined_us.max(1e-9))
    };
    let (plain_serial_rps, plain_pipelined_rps) = measure_pair(&plain_client);
    let (secure_serial_rps, secure_pipelined_rps) = measure_pair(&sec_client);
    let plain_speedup = plain_pipelined_rps / plain_serial_rps.max(1e-9);
    let secure_speedup = secure_pipelined_rps / secure_serial_rps.max(1e-9);

    // Crypto share: wide (multi-block) vs scalar seal on a 16 KiB record.
    let aead = psf_crypto::ChaCha20Poly1305::new([7u8; 32]);
    let nonce = [1u8; 12];
    let record = vec![0x3cu8; 16 << 10];
    let aead_iters = iters.max(100);
    let wide_us = best_of3(|| {
        time_per_op_us(aead_iters, || {
            let _ = aead.seal(&nonce, b"swbd-record", &record);
        })
    });
    let scalar_us = best_of3(|| {
        time_per_op_us(aead_iters, || {
            let _ = aead.seal_scalar(&nonce, b"swbd-record", &record);
        })
    });
    let aead_speedup = scalar_us / wide_us.max(1e-9);

    let json = format!(
        "{{\n  \"bench\": \"pr4\",\n  \"mode\": \"{mode}\",\n  \"iters\": {iters},\n  \
         \"rpc_4k\": {{ \"plain_us\": {plain_4k_us:.3}, \"secure_us\": {secure_4k_us:.3}, \"overhead\": {overhead_4k:.2} }},\n  \
         \"rpc_4k_tcp\": {{ \"plain_us\": {tcp_plain_4k_us:.3}, \"secure_us\": {tcp_secure_4k_us:.3}, \"overhead\": {tcp_overhead_4k:.2} }},\n  \
         \"pipeline_64b\": {{ \"plain_serial_rps\": {plain_serial_rps:.0}, \"plain_pipelined_rps\": {plain_pipelined_rps:.0}, \"plain_speedup\": {plain_speedup:.1}, \"secure_serial_rps\": {secure_serial_rps:.0}, \"secure_pipelined_rps\": {secure_pipelined_rps:.0}, \"secure_speedup\": {secure_speedup:.1} }},\n  \
         \"aead_seal_16k\": {{ \"wide_us\": {wide_us:.3}, \"scalar_us\": {scalar_us:.3}, \"speedup\": {aead_speedup:.2} }}\n}}\n",
        mode = if quick { "quick" } else { "full" },
    );
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("bench: cannot write {out_path}: {e}");
        return 1;
    }
    cli.say(format!(
        "rpc 4k in-mem: plain {plain_4k_us:.1} us, secure {secure_4k_us:.1} us ({overhead_4k:.2}x overhead)"
    ));
    cli.say(format!(
        "rpc 4k tcp: plain {tcp_plain_4k_us:.1} us, secure {tcp_secure_4k_us:.1} us ({tcp_overhead_4k:.2}x overhead)"
    ));
    cli.say(format!(
        "pipeline 64b plain: serial {plain_serial_rps:.0} rps, pipelined {plain_pipelined_rps:.0} rps ({plain_speedup:.1}x)"
    ));
    cli.say(format!(
        "pipeline 64b secure: serial {secure_serial_rps:.0} rps, pipelined {secure_pipelined_rps:.0} rps ({secure_speedup:.1}x)"
    ));
    cli.say(format!(
        "aead seal 16k: wide {wide_us:.1} us, scalar {scalar_us:.1} us ({aead_speedup:.2}x)"
    ));
    cli.say(format!("results written to {out_path}"));
    psf_telemetry::event(
        "psf.cli",
        "bench.recorded",
        vec![
            ("out", out_path.clone()),
            ("plain_pipeline_speedup", format!("{plain_speedup:.1}")),
            ("secure_pipeline_speedup", format!("{secure_speedup:.1}")),
            ("aead_speedup", format!("{aead_speedup:.2}")),
        ],
    );
    if check && plain_speedup < 2.0 {
        eprintln!(
            "bench --check FAILED: pipelined RPC must be >= 2x serial \
             (got {plain_speedup:.1}x plain)"
        );
        return 1;
    }

    // The latency-SLO table rides along with the perf gates: a run that
    // hits its throughput ratios but blew a p99 budget still fails.
    let slo = default_slo_table().evaluate(psf_telemetry::registry());
    cli.say(format!(
        "slo: {} objective(s), {} violation(s)",
        slo.evals.len(),
        slo.violations()
    ));
    if check && !slo.ok() {
        eprint!("{}", slo.render_text());
        eprintln!(
            "bench --check FAILED: {} SLO objective(s) over budget",
            slo.violations()
        );
        return 1;
    }
    bench_sharded_repo(cli, &out_path, quick, check)
}

/// Sort a latency sample and take the `q`-quantile (0.0–1.0), in
/// microseconds.
fn quantile_us(samples: &mut [u64], q: f64) -> f64 {
    samples.sort_unstable();
    let idx = ((samples.len() as f64 - 1.0) * q).round() as usize;
    samples[idx] as f64 / 1e3
}

/// The PR8 sharded-repository runner: p99 indexed tag-discovery and
/// subject-lookup latency over a 10^6-entry store (10^5 with `--quick`),
/// plus 8-writer parallel-publish throughput of the sharded durable
/// layout against the single-lock, unbuffered baseline. Writes
/// `BENCH_pr8.json`. With `--check`, exits non-zero unless p99 tag
/// lookup <= 50 us and the sharded publish rate is >= 4x the baseline.
fn bench_sharded_repo(cli: &Cli, pr4_out: &str, quick: bool, check: bool) -> i32 {
    use psf_drbac::entity::{EntityName, Subject};
    use psf_drbac::repository::Repository;
    use psf_drbac::wal::{DurableRepository, FsyncPolicy, ShardedDurableRepository, WalConfig};
    use psf_drbac::{
        subject_key, AttrSet, Delegation, DelegationKind, DiscoveryTag, SignedDelegation,
    };

    let out_path = if pr4_out.contains("pr4") {
        pr4_out.replace("pr4", "pr8")
    } else {
        "BENCH_pr8.json".to_string()
    };
    let entries: usize = if quick { 100_000 } else { 1_000_000 };
    let issuer = psf_drbac::Entity::with_seed("BenchHome", b"bench-pr8");
    let key = issuer.public_key();
    // Dummy signatures keep the fill CPU-bound on the store itself —
    // nothing below verifies them.
    let cred_for = |i: usize, serial: u64| SignedDelegation {
        body: Delegation {
            subject: Subject::Entity {
                name: EntityName(format!("U{i}")),
                key,
            },
            object: issuer.role(format!("R{}", i % 1024)),
            kind: DelegationKind::SelfCertifying,
            issuer: issuer.name.clone(),
            attrs: AttrSet::new(),
            expires: None,
            monitored: false,
            serial,
        },
        signature: psf_crypto::ed25519::Signature([0u8; 64]),
    };

    // --- In-memory lookups at scale: fill the sharded store, then sample
    // per-op latency over seeded random keys. Homes H0..H63 spread the
    // credentials so a broadcast would touch 64 homes; the discovery tag
    // keeps every lookup directed.
    let repo = Repository::new();
    for i in 0..entries {
        repo.publish(
            EntityName(format!("H{}", i % 64)),
            cred_for(i, i as u64),
            DiscoveryTag::Both,
        );
    }
    let samples = if quick { 10_000 } else { 20_000 };
    let mut tag_ns: Vec<u64> = Vec::with_capacity(samples);
    let mut subj_ns: Vec<u64> = Vec::with_capacity(samples);
    for s in 0..samples {
        let i = (mix64(s as u64) as usize) % entries;
        let skey = subject_key(&Subject::Entity {
            name: EntityName(format!("U{i}")),
            key,
        });
        let t0 = std::time::Instant::now();
        let found = repo.query_by_subject_key(&skey);
        tag_ns.push(t0.elapsed().as_nanos() as u64);
        assert_eq!(found.len(), 1, "indexed lookup must find exactly one");
        let subject = Subject::Entity {
            name: EntityName(format!("U{i}")),
            key,
        };
        let t0 = std::time::Instant::now();
        let found = repo.query_by_subject(&subject);
        subj_ns.push(t0.elapsed().as_nanos() as u64);
        assert_eq!(found.len(), 1);
    }
    let repo_stats = repo.stats();
    let tag_p50 = quantile_us(&mut tag_ns, 0.50);
    let tag_p99 = quantile_us(&mut tag_ns, 0.99);
    let subj_p50 = quantile_us(&mut subj_ns, 0.50);
    let subj_p99 = quantile_us(&mut subj_ns, 0.99);
    drop(repo);

    // --- Parallel publish: 8 writer threads against three store
    // configurations, all ending with every record on disk:
    //   1. sharded store in its group-commit operating mode (EveryN(64)
    //      per shard segment, bounded loss on crash, trailing sync()
    //      inside the timed window) — the headline number;
    //   2. the single-lock PR 7 baseline at its shipped default
    //      (Always: fsync per record inside the one writer mutex, which
    //      serializes all eight writers behind the disk);
    //   3. the sharded store at that same Always policy, where group
    //      commit makes concurrent writers share fsyncs — recorded as
    //      the durability-matched comparison.
    // The fsync policy of every row is recorded in the JSON; the gated
    // speedup is (1) vs (2), operating mode vs shipped baseline.
    let writers = 8usize;
    let sharded_n: usize = if quick { 20_000 } else { 100_000 };
    let baseline_n: usize = if quick { 1_500 } else { 6_000 };
    let durable_n: usize = if quick { 1_500 } else { 6_000 };
    let group_config = WalConfig {
        fsync: FsyncPolicy::EveryN(64),
        auto_compact_appends: None,
    };
    let always_config = WalConfig::default();
    let tmp = std::env::temp_dir().join(format!("psf-bench-pr8-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&tmp);

    // Shared 8-writer driver: round-robins the workload over `writers`
    // threads, calling `publish` on whichever store the closure wraps.
    let drive = |n: usize, publish: &(dyn Fn(usize) + Sync)| -> f64 {
        let t0 = std::time::Instant::now();
        std::thread::scope(|s| {
            for w in 0..writers {
                s.spawn(move || {
                    for i in (w..n).step_by(writers) {
                        publish(i);
                    }
                });
            }
        });
        t0.elapsed().as_secs_f64()
    };

    let sharded_dir = tmp.join("sharded");
    let (sharded_ops_per_sec, sharded_fsyncs) =
        match ShardedDurableRepository::open(&sharded_dir, 32, group_config) {
            Ok((d, _)) => {
                let t0 = std::time::Instant::now();
                let _ = drive(sharded_n, &|i| {
                    d.repository().publish(
                        EntityName(format!("H{}", i % 64)),
                        cred_for(i, i as u64),
                        DiscoveryTag::Both,
                    );
                });
                if let Err(e) = d.sync() {
                    eprintln!("bench: sharded sync failed: {e}");
                    return 1;
                }
                let secs = t0.elapsed().as_secs_f64();
                (sharded_n as f64 / secs.max(1e-9), d.stats().fsyncs)
            }
            Err(e) => {
                eprintln!("bench: sharded open failed: {e}");
                return 1;
            }
        };

    let baseline_dir = tmp.join("baseline");
    let (baseline_ops_per_sec, baseline_fsyncs) =
        match DurableRepository::open(&baseline_dir, always_config) {
            Ok((d, _)) => {
                let secs = drive(baseline_n, &|i| {
                    d.repository().publish(
                        EntityName(format!("H{}", i % 64)),
                        cred_for(i, i as u64),
                        DiscoveryTag::Both,
                    );
                });
                (baseline_n as f64 / secs.max(1e-9), d.stats().fsyncs)
            }
            Err(e) => {
                eprintln!("bench: baseline open failed: {e}");
                return 1;
            }
        };

    let durable_dir = tmp.join("sharded-durable");
    let (durable_ops_per_sec, durable_fsyncs) =
        match ShardedDurableRepository::open(&durable_dir, 32, always_config) {
            Ok((d, _)) => {
                let secs = drive(durable_n, &|i| {
                    d.repository().publish(
                        EntityName(format!("H{}", i % 64)),
                        cred_for(i, i as u64),
                        DiscoveryTag::Both,
                    );
                });
                (durable_n as f64 / secs.max(1e-9), d.stats().fsyncs)
            }
            Err(e) => {
                eprintln!("bench: durable-matched open failed: {e}");
                return 1;
            }
        };

    let publish_speedup = sharded_ops_per_sec / baseline_ops_per_sec.max(1e-9);
    let durable_speedup = durable_ops_per_sec / baseline_ops_per_sec.max(1e-9);

    // --- Parallel recovery replay of the sharded directory just written.
    let t0 = std::time::Instant::now();
    let replayed = match Repository::recover_sharded(&sharded_dir) {
        Ok((_, _, report)) => report.records_replayed,
        Err(e) => {
            eprintln!("bench: sharded recovery failed: {e}");
            return 1;
        }
    };
    let replay_ms = t0.elapsed().as_secs_f64() * 1e3;
    let replay_rate = replayed as f64 / (replay_ms / 1e3).max(1e-9);
    let _ = std::fs::remove_dir_all(&tmp);

    let json = format!(
        "{{\n  \"bench\": \"pr8\",\n  \"mode\": \"{mode}\",\n  \"entries\": {entries},\n  \
         \"tag_lookup\": {{ \"samples\": {samples}, \"p50_us\": {tag_p50:.3}, \"p99_us\": {tag_p99:.3} }},\n  \
         \"subject_lookup\": {{ \"samples\": {samples}, \"p50_us\": {subj_p50:.3}, \"p99_us\": {subj_p99:.3} }},\n  \
         \"discovery\": {{ \"queries\": {queries}, \"directed\": {directed}, \"broadcast\": {broadcast}, \"messages\": {messages} }},\n  \
         \"parallel_publish\": {{\n    \"writers\": {writers},\n    \
         \"sharded\": {{ \"fsync_policy\": \"every_n_64_group_commit\", \"records\": {sharded_n}, \"ops_per_sec\": {sharded_ops_per_sec:.0}, \"fsyncs\": {sharded_fsyncs} }},\n    \
         \"single_lock_baseline\": {{ \"fsync_policy\": \"always\", \"records\": {baseline_n}, \"ops_per_sec\": {baseline_ops_per_sec:.0}, \"fsyncs\": {baseline_fsyncs} }},\n    \
         \"speedup\": {publish_speedup:.2},\n    \
         \"durability_matched\": {{ \"fsync_policy\": \"always_group_commit\", \"records\": {durable_n}, \"ops_per_sec\": {durable_ops_per_sec:.0}, \"fsyncs\": {durable_fsyncs}, \"speedup\": {durable_speedup:.2} }}\n  }},\n  \
         \"sharded_recovery\": {{ \"records\": {replayed}, \"replay_ms\": {replay_ms:.3}, \"records_per_sec\": {replay_rate:.0} }}\n}}\n",
        mode = if quick { "quick" } else { "full" },
        queries = repo_stats.queries,
        directed = repo_stats.directed,
        broadcast = repo_stats.broadcast,
        messages = repo_stats.messages,
    );
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("bench: cannot write {out_path}: {e}");
        return 1;
    }
    cli.say(format!(
        "tag lookup @ {entries}: p50 {tag_p50:.2} us, p99 {tag_p99:.2} us (all directed: {})",
        repo_stats.broadcast == 0
    ));
    cli.say(format!(
        "subject lookup @ {entries}: p50 {subj_p50:.2} us, p99 {subj_p99:.2} us"
    ));
    cli.say(format!(
        "parallel publish x{writers}: sharded group-commit {sharded_ops_per_sec:.0}/s, \
         single-lock fsync-per-record {baseline_ops_per_sec:.0}/s ({publish_speedup:.1}x); \
         durability-matched {durable_ops_per_sec:.0}/s ({durable_speedup:.1}x)"
    ));
    cli.say(format!(
        "sharded recovery: {replayed} records in {replay_ms:.1} ms ({replay_rate:.0}/s)"
    ));
    cli.say(format!("results written to {out_path}"));
    psf_telemetry::event(
        "psf.cli",
        "bench.recorded",
        vec![
            ("out", out_path.clone()),
            ("tag_p99_us", format!("{tag_p99:.2}")),
            ("publish_speedup", format!("{publish_speedup:.2}")),
        ],
    );
    if check && tag_p99 > 50.0 {
        eprintln!(
            "bench --check FAILED: p99 tag lookup must be <= 50 us at {entries} entries \
             (got {tag_p99:.2} us)"
        );
        return 1;
    }
    if check && publish_speedup < 4.0 {
        eprintln!(
            "bench --check FAILED: sharded parallel publish must be >= 4x the \
             single-lock baseline (got {publish_speedup:.2}x)"
        );
        return 1;
    }
    bench_channels(cli, &out_path, quick, check)
}

/// Resident set size of this process in bytes (/proc/self/statm).
fn rss_bytes() -> u64 {
    std::fs::read_to_string("/proc/self/statm")
        .ok()
        .and_then(|s| s.split_whitespace().nth(1).map(String::from))
        .and_then(|pages| pages.parse::<u64>().ok())
        .map(|pages| pages * 4096)
        .unwrap_or(0)
}

/// The PR9 channel-scaling runner: establishes a fleet of concurrent
/// secure TCP channels through the epoll reactor (100k target, 10k with
/// `--quick`, clamped to what `RLIMIT_NOFILE` permits — each in-process
/// channel pair costs 4 fds), lets the timer wheel drive staggered
/// heartbeats across the whole fleet, and records p99 heartbeat RTT plus
/// per-channel RSS against a smaller thread-per-connection baseline.
/// Writes `BENCH_pr9.json`. With `--check`, exits non-zero unless p99
/// heartbeat RTT <= 10 ms and the reactor holds >= 5x the channels of
/// the threaded baseline at equal RSS (i.e. per-channel RSS is >= 5x
/// smaller).
fn bench_channels(cli: &Cli, pr8_out: &str, quick: bool, check: bool) -> i32 {
    use psf_switchboard::{ChannelBackend, ChannelConfig};

    let out_path = if pr8_out.contains("pr8") {
        pr8_out.replace("pr8", "pr9")
    } else {
        "BENCH_pr9.json".to_string()
    };
    let (soft, hard) = psf_switchboard::reactor::raise_nofile_limit();
    let target: usize = if quick { 10_000 } else { 100_000 };
    // Both endpoints live in this process and each endpoint holds two
    // fds (sender + receiver clone of the same socket): 4 fds/channel.
    let fd_budget = (soft as usize).saturating_sub(1024) / 4;
    let channels = target.min(fd_budget.max(64));
    let clamped = channels < target;
    if clamped {
        cli.say(format!(
            "channels_scaling: RLIMIT_NOFILE {soft} (hard {hard}) clamps the fleet \
             to {channels} channels (requested {target})"
        ));
    }
    let hb_interval = Duration::from_secs(1);
    let config = |backend: ChannelBackend| ChannelConfig {
        heartbeat_interval: Some(hb_interval),
        rpc_timeout: Duration::from_secs(10),
        backend,
    };

    // One shared dRBAC world; the authorizers' proof caches make the Nth
    // handshake authorization a cache hit, as a long-lived service's would
    // be.
    let registry = psf_drbac::entity::EntityRegistry::new();
    let repo = psf_drbac::repository::Repository::new();
    let bus = psf_drbac::revocation::RevocationBus::new();
    let clock = psf_switchboard::ClockRef::new();
    let domain = psf_drbac::Entity::with_seed("Comp.NY", b"bench-pr9");
    let server = psf_drbac::Entity::with_seed("Service", b"bench-pr9");
    let client = psf_drbac::Entity::with_seed("Client", b"bench-pr9");
    for e in [&domain, &server, &client] {
        registry.register(e);
    }
    let client_cred = psf_drbac::DelegationBuilder::new(&domain)
        .subject_entity(&client)
        .role(domain.role("Member"))
        .sign();
    let server_cred = psf_drbac::DelegationBuilder::new(&domain)
        .subject_entity(&server)
        .role(domain.role("Service"))
        .sign();
    let client_suite = psf_switchboard::AuthSuite::new(
        client.clone(),
        vec![client_cred],
        psf_switchboard::Authorizer::new(
            registry.clone(),
            repo.clone(),
            bus.clone(),
            clock.clone(),
            domain.role("Service"),
        ),
    );
    let server_suite = psf_switchboard::AuthSuite::new(
        server.clone(),
        vec![server_cred],
        psf_switchboard::Authorizer::new(
            registry.clone(),
            repo.clone(),
            bus.clone(),
            clock.clone(),
            domain.role("Member"),
        ),
    );

    // Establish `n` secure channel pairs across 8 loopback listener
    // addresses (spreads the ephemeral-port tuple space at 100k) with 8
    // connector/acceptor thread pairs. Returns (clients, servers).
    let establish =
        |n: usize,
         backend: ChannelBackend|
         -> Result<(Vec<psf_switchboard::Channel>, Vec<psf_switchboard::Channel>), String> {
            let lanes = 8usize.min(n.max(1));
            let mut listeners = Vec::new();
            for lane in 0..lanes {
                let addr = format!("127.0.0.{}:0", lane + 1);
                listeners
                    .push(psf_switchboard::listen_tcp(&addr).map_err(|e| format!("listen: {e}"))?);
            }
            std::thread::scope(|s| {
                let config = &config;
                let mut acceptors = Vec::new();
                let mut connectors = Vec::new();
                for (lane, listener) in listeners.iter().enumerate() {
                    let count = n / lanes + usize::from(lane < n % lanes);
                    let addr = listener.local_addr().map_err(|e| format!("addr: {e}"))?;
                    let ss = &server_suite;
                    let cs = &client_suite;
                    acceptors.push(s.spawn(move || -> Result<Vec<_>, String> {
                        (0..count)
                            .map(|_| {
                                listener
                                    .accept(ss, config(backend))
                                    .map_err(|e| format!("accept: {e}"))
                            })
                            .collect()
                    }));
                    connectors.push(s.spawn(move || -> Result<Vec<_>, String> {
                        (0..count)
                            .map(|_| {
                                psf_switchboard::connect_tcp(&addr.to_string(), cs, config(backend))
                                    .map_err(|e| format!("connect: {e}"))
                            })
                            .collect()
                    }));
                }
                let mut servers = Vec::with_capacity(n);
                let mut clients = Vec::with_capacity(n);
                for a in acceptors {
                    servers.extend(a.join().expect("acceptor panicked")?);
                }
                for c in connectors {
                    clients.extend(c.join().expect("connector panicked")?);
                }
                Ok((clients, servers))
            })
        };

    // --- Thread-per-connection baseline first (smaller fleet): its RSS
    // delta prices what 4 threads + 4 stacks per channel pair cost.
    let baseline_n: usize = (if quick { 500 } else { 1_000 }).min(channels);
    let rss0 = rss_bytes();
    let (base_clients, base_servers) = match establish(baseline_n, ChannelBackend::Threaded) {
        Ok(pair) => pair,
        Err(e) => {
            eprintln!("bench: threaded baseline establishment failed: {e}");
            return 1;
        }
    };
    std::thread::sleep(Duration::from_millis(300));
    let baseline_rss = rss_bytes().saturating_sub(rss0);
    let baseline_per_channel = baseline_rss as f64 / baseline_n as f64;
    drop(base_clients);
    drop(base_servers);
    // Heartbeat threads poll `closed` once per interval; wait them out so
    // their stacks are gone before the reactor phase is measured.
    std::thread::sleep(hb_interval + Duration::from_millis(200));

    // --- Reactor fleet: every channel serviced by the fixed shard pool,
    // heartbeats batched on the timer wheel.
    let shards = psf_switchboard::reactor::shard_count();
    let rss1 = rss_bytes();
    let t0 = std::time::Instant::now();
    let (clients, servers) = match establish(channels, ChannelBackend::Reactor) {
        Ok(pair) => pair,
        Err(e) => {
            eprintln!("bench: reactor establishment failed: {e}");
            return 1;
        }
    };
    let establish_s = t0.elapsed().as_secs_f64();

    // Let every staggered heartbeat group fire at least twice, then
    // sample per-channel RTT. Retry briefly: the last-phase groups fire a
    // full interval after establishment.
    let deadline = std::time::Instant::now() + Duration::from_secs(20);
    let mut rtt_us: Vec<u64> = Vec::new();
    loop {
        std::thread::sleep(hb_interval);
        rtt_us.clear();
        rtt_us.extend(
            clients
                .iter()
                .chain(servers.iter())
                .filter_map(|c| c.last_rtt())
                .map(|d| d.as_micros() as u64),
        );
        if rtt_us.len() == 2 * channels || std::time::Instant::now() >= deadline {
            break;
        }
    }
    let reactor_rss = rss_bytes().saturating_sub(rss1);
    let reactor_per_channel = reactor_rss as f64 / channels as f64;
    let measured = rtt_us.len();
    let alive = clients
        .iter()
        .filter(|c| c.is_alive(3 * hb_interval))
        .count();
    if rtt_us.is_empty() {
        eprintln!("bench: no heartbeat RTT samples collected");
        return 1;
    }
    let hb_p50 = quantile_us(&mut rtt_us, 0.50);
    let hb_p99 = quantile_us(&mut rtt_us, 0.99);
    // Equal-RSS capacity: channels the reactor fits in the RSS the
    // threaded baseline spends per channel.
    let capacity_ratio = baseline_per_channel / reactor_per_channel.max(1.0);

    let wakeups = psf_telemetry::registry()
        .counter("psf.switchboard.reactor.wakeups")
        .get();
    let timer_fires = psf_telemetry::registry()
        .counter("psf.switchboard.reactor.timer_fires")
        .get();
    let coalesced = psf_telemetry::registry()
        .counter("psf.switchboard.reactor.coalesced_heartbeats")
        .get();

    drop(clients);
    drop(servers);

    let json = format!(
        "{{\n  \"bench\": \"pr9\",\n  \"mode\": \"{mode}\",\n  \
         \"nofile\": {{ \"soft\": {soft}, \"hard\": {hard} }},\n  \
         \"requested_channels\": {target},\n  \"channels\": {channels},\n  \
         \"clamped_by_fd_limit\": {clamped},\n  \
         \"reactor\": {{ \"shards\": {shards}, \"establish_s\": {establish_s:.3}, \
         \"rss_bytes\": {reactor_rss}, \"rss_per_channel_bytes\": {reactor_per_channel:.0}, \
         \"alive\": {alive}, \"wakeups\": {wakeups}, \"timer_fires\": {timer_fires}, \
         \"coalesced_heartbeats\": {coalesced} }},\n  \
         \"heartbeat\": {{ \"interval_ms\": {interval_ms}, \"samples\": {measured}, \
         \"p50_us\": {hb_p50:.1}, \"p99_us\": {hb_p99:.1} }},\n  \
         \"threaded_baseline\": {{ \"channels\": {baseline_n}, \"rss_bytes\": {baseline_rss}, \
         \"rss_per_channel_bytes\": {baseline_per_channel:.0} }},\n  \
         \"capacity_ratio\": {capacity_ratio:.2}\n}}\n",
        mode = if quick { "quick" } else { "full" },
        interval_ms = hb_interval.as_millis(),
    );
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("bench: cannot write {out_path}: {e}");
        return 1;
    }
    cli.say(format!(
        "channels_scaling: {channels} secure channels ({shards} shard(s)), established in \
         {establish_s:.1} s, hb RTT p50 {hb_p50:.0} us / p99 {hb_p99:.0} us, \
         {reactor_per_channel:.0} B/channel vs {baseline_per_channel:.0} B/channel threaded \
         ({capacity_ratio:.1}x capacity at equal RSS)"
    ));
    cli.say(format!("results written to {out_path}"));
    psf_telemetry::event(
        "psf.cli",
        "bench.recorded",
        vec![
            ("out", out_path.clone()),
            ("channels", channels.to_string()),
            ("hb_p99_us", format!("{hb_p99:.1}")),
            ("capacity_ratio", format!("{capacity_ratio:.2}")),
        ],
    );
    if check && hb_p99 > 10_000.0 {
        eprintln!(
            "bench --check FAILED: p99 heartbeat RTT must be <= 10 ms across {channels} \
             channels (got {:.2} ms)",
            hb_p99 / 1e3
        );
        return 1;
    }
    if check && capacity_ratio < 5.0 {
        eprintln!(
            "bench --check FAILED: reactor must hold >= 5x the channels of the \
             thread-per-connection baseline at equal RSS (got {capacity_ratio:.2}x)"
        );
        return 1;
    }
    if check && alive < channels {
        eprintln!(
            "bench --check FAILED: {} of {channels} channels went stale",
            channels - alive
        );
        return 1;
    }
    bench_cert(cli, &out_path, quick, check)
}

/// The PR10 certificate runner: emission overhead of a certified proof
/// over a plain one, plus independent-checker verification latency on
/// the mail-scenario chain (Bob → Comp.NY.Member through the §3.3
/// cross-site role mapping) — cold (full structural re-derivation,
/// every Ed25519 signature) and warm (the continuous-authorization
/// re-check path, where the [`psf_cert::CheckMemo`] replays only the
/// environment half: epoch window, key bindings, expiry, revocation).
/// Writes `BENCH_pr10.json`. With `--check`, exits non-zero unless p99
/// warm checker verification <= 10 us.
fn bench_cert(cli: &Cli, pr9_out: &str, quick: bool, check: bool) -> i32 {
    use psf_cert::{AuthCertificate, CheckMemo};
    use psf_drbac::certify::check_certificate_memo;
    use psf_drbac::repository::CredentialSource;

    let out_path = if pr9_out.contains("pr9") {
        pr9_out.replace("pr9", "pr10")
    } else {
        "BENCH_pr10.json".to_string()
    };
    let w = world();
    let role = match RoleName::parse("Comp.NY.Member") {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bench: {e}");
            return 1;
        }
    };
    let subject = w.bob.as_subject();
    let engine = ProofEngine::new(&w.registry, &w.repository, &w.bus, 0);
    let repo_epoch = w.repository.version();

    // --- Emission overhead: a certified prove runs the same search and
    // additionally lowers the proof into wire-model edges. The two paths
    // are interleaved so machine drift hits both equally.
    let emit_iters: u32 = if quick { 200 } else { 2_000 };
    let mut prove_tot_ns = 0u128;
    let mut certified_tot_ns = 0u128;
    let mut cert = None;
    for _ in 0..emit_iters {
        let t = std::time::Instant::now();
        if engine.prove(&subject, &role, &[]).is_err() {
            eprintln!("bench: mail-scenario proof failed");
            return 1;
        }
        prove_tot_ns += t.elapsed().as_nanos();
        let t = std::time::Instant::now();
        match engine.prove_certified(&subject, &role, &[]) {
            Ok((_, c, _)) => cert = Some(c),
            Err(e) => {
                eprintln!("bench: certified proof failed: {e}");
                return 1;
            }
        }
        certified_tot_ns += t.elapsed().as_nanos();
    }
    let prove_us = prove_tot_ns as f64 / 1e3 / emit_iters as f64;
    let certified_us = certified_tot_ns as f64 / 1e3 / emit_iters as f64;
    let emit_overhead_us = certified_us - prove_us;
    let cert = cert.expect("certified proof emitted");
    let wire = cert.encode();
    let edges = cert.total_edges();

    // --- Checker, cold: every call re-derives the full structural
    // verdict, Ed25519 signatures included.
    let cold_iters: u32 = if quick { 100 } else { 1_000 };
    let mut cold_ns: Vec<u64> = Vec::with_capacity(cold_iters as usize);
    for _ in 0..cold_iters {
        let t = std::time::Instant::now();
        if let Err(e) = psf_drbac::check_certificate(&cert, &w.registry, &w.bus, 0, repo_epoch) {
            eprintln!("bench: emitted certificate rejected cold: {e}");
            return 1;
        }
        cold_ns.push(t.elapsed().as_nanos() as u64);
    }

    // --- Checker, warm: the continuous-authorization re-check path.
    let memo = CheckMemo::new(1024);
    if let Err(e) = check_certificate_memo(&cert, &w.registry, &w.bus, 0, repo_epoch, Some(&memo)) {
        eprintln!("bench: emitted certificate rejected while priming: {e}");
        return 1;
    }
    let warm_iters: u32 = if quick { 2_000 } else { 20_000 };
    let mut warm_ns: Vec<u64> = Vec::with_capacity(warm_iters as usize);
    for _ in 0..warm_iters {
        let t = std::time::Instant::now();
        if check_certificate_memo(&cert, &w.registry, &w.bus, 0, repo_epoch, Some(&memo)).is_err() {
            eprintln!("bench: emitted certificate rejected warm");
            return 1;
        }
        warm_ns.push(t.elapsed().as_nanos() as u64);
    }

    // --- Decode + warm check: what admitting a presented certificate
    // costs once its payload is memoized.
    let mut decode_ns: Vec<u64> = Vec::with_capacity(warm_iters as usize);
    for _ in 0..warm_iters {
        let t = std::time::Instant::now();
        let decoded = match AuthCertificate::decode(&wire) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("bench: wire decode failed: {e}");
                return 1;
            }
        };
        if check_certificate_memo(&decoded, &w.registry, &w.bus, 0, repo_epoch, Some(&memo))
            .is_err()
        {
            eprintln!("bench: decoded certificate rejected warm");
            return 1;
        }
        decode_ns.push(t.elapsed().as_nanos() as u64);
    }

    let cold_p50 = quantile_us(&mut cold_ns, 0.50);
    let cold_p99 = quantile_us(&mut cold_ns, 0.99);
    let warm_p50 = quantile_us(&mut warm_ns, 0.50);
    let warm_p99 = quantile_us(&mut warm_ns, 0.99);
    let decode_p99 = quantile_us(&mut decode_ns, 0.99);

    let json = format!(
        "{{\n  \"bench\": \"pr10\",\n  \"mode\": \"{mode}\",\n  \
         \"chain\": {{ \"edges\": {edges}, \"watch\": {watch}, \"wire_bytes\": {wire_bytes} }},\n  \
         \"emit\": {{ \"iters\": {emit_iters}, \"prove_us\": {prove_us:.1}, \
         \"prove_certified_us\": {certified_us:.1}, \"overhead_us\": {emit_overhead_us:.1} }},\n  \
         \"checker\": {{ \"cold_samples\": {cold_iters}, \"cold_p50_us\": {cold_p50:.1}, \
         \"cold_p99_us\": {cold_p99:.1}, \"warm_samples\": {warm_iters}, \
         \"warm_p50_us\": {warm_p50:.2}, \"warm_p99_us\": {warm_p99:.2}, \
         \"decode_warm_p99_us\": {decode_p99:.2} }}\n}}\n",
        mode = if quick { "quick" } else { "full" },
        watch = cert.watch.len(),
        wire_bytes = wire.len(),
    );
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("bench: cannot write {out_path}: {e}");
        return 1;
    }
    cli.say(format!(
        "certificates: {edges}-edge mail chain, {} wire bytes; emit overhead \
         {emit_overhead_us:.1} us over {prove_us:.1} us prove; checker cold p99 {cold_p99:.0} us, \
         warm p50 {warm_p50:.2} us / p99 {warm_p99:.2} us, decode+warm p99 {decode_p99:.2} us",
        wire.len()
    ));
    cli.say(format!("results written to {out_path}"));
    psf_telemetry::event(
        "psf.cli",
        "bench.recorded",
        vec![
            ("out", out_path.clone()),
            ("cert_warm_p99_us", format!("{warm_p99:.2}")),
            ("cert_cold_p99_us", format!("{cold_p99:.1}")),
        ],
    );
    if check && warm_p99 > 10.0 {
        eprintln!(
            "bench --check FAILED: p99 warm certificate verification must be <= 10 us \
             (got {warm_p99:.2} us)"
        );
        return 1;
    }
    0
}

/// Take the value following `--flag`, if present.
fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// The default latency SLO table `psf slo`, `psf bench --check`, and the
/// chaos harness evaluate. Budgets are deliberately generous — they gate
/// pathological tails (a proof search that fell off the cache fast path,
/// an RPC stuck behind a stalled reader), not ordinary debug-build noise.
fn default_slo_table() -> psf_telemetry::SloTable {
    use psf_telemetry::Percentile::P99;
    psf_telemetry::SloTable::new()
        .objective("psf.drbac.prove.us", P99, 100_000)
        .objective("psf.swbd.rpc.us", P99, 100_000)
        .objective("psf.swbd.handshake.us", P99, 1_000_000)
        .objective("psf.planner.plan.us", P99, 500_000)
        .objective("psf.deploy.step.us", P99, 500_000)
        .objective("psf.views.vig.us", P99, 250_000)
}

/// Run the full stack to populate the audit trail, then replay it with
/// optional subject / verdict / trace filters.
fn audit_cmd(cli: &Cli, args: &[String]) -> i32 {
    let json = args.iter().any(|a| a == "--json");
    let deny_only = args.iter().any(|a| a == "--deny-only");
    let subject = flag_value(args, "--subject");
    let trace = match flag_value(args, "--trace") {
        Some(hex) => match psf_telemetry::TraceId::from_hex(hex) {
            Some(t) => Some(t),
            None => {
                eprintln!("audit: bad trace id '{hex}' (expect hex)");
                return 2;
            }
        },
        None => None,
    };
    if let Err(e) = exercise_full_stack(cli) {
        eprintln!("audit: full-stack run failed: {e}");
        return 1;
    }
    let log = psf_telemetry::audit::global();
    let records = log.query(subject, deny_only, trace);
    if json {
        for r in &records {
            println!("{}", psf_telemetry::AuditLog::render_jsonl(r));
        }
        return 0;
    }
    println!(
        "{:>5}  {:<11} {:<22} {:<26} {:<7} {:<8} {:<16}  detail",
        "seq", "decision", "subject", "object", "verdict", "cache", "chain"
    );
    for r in &records {
        println!(
            "{:>5}  {:<11} {:<22} {:<26} {:<7} {:<8} {:<16}  {}",
            r.seq,
            r.decision.as_str(),
            r.subject,
            r.object,
            r.verdict.as_str(),
            r.cache.as_str(),
            if r.chain_digest.is_empty() {
                "-"
            } else {
                &r.chain_digest
            },
            r.detail
        );
    }
    println!(
        "{} record(s) ({} dropped under capacity pressure)",
        records.len(),
        log.dropped()
    );
    0
}

/// A span parsed back out of trace JSONL (or copied from the in-memory
/// buffer) — just the fields tree rendering and verification need.
struct TreeSpan {
    id: u64,
    trace: Option<String>,
    parent: Option<u64>,
    target: String,
    name: String,
    dur_us: u64,
}

/// Extract `"key":<number>` from one of our own JSONL lines. Returns
/// `None` for absent keys and `null` values alike.
fn jsonl_num(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extract `"key":"value"` from one of our own JSONL lines, undoing the
/// escaping `export_jsonl` applied. Returns `None` for absent/null.
fn jsonl_str(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":\"");
    let start = line.find(&pat)? + pat.len();
    let mut out = String::new();
    let mut chars = line[start..].chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'u' => {
                    let hex: String = chars.by_ref().take(4).collect();
                    out.push(
                        u32::from_str_radix(&hex, 16)
                            .ok()
                            .and_then(char::from_u32)?,
                    );
                }
                c => out.push(c),
            },
            c => out.push(c),
        }
    }
    None
}

fn parse_trace_jsonl(text: &str) -> Vec<TreeSpan> {
    text.lines()
        .filter_map(|line| {
            Some(TreeSpan {
                id: jsonl_num(line, "id")?,
                trace: jsonl_str(line, "trace"),
                parent: jsonl_num(line, "parent"),
                target: jsonl_str(line, "target")?,
                name: jsonl_str(line, "name")?,
                dur_us: jsonl_num(line, "dur_us")?,
            })
        })
        .collect()
}

fn render_tree(spans: &[TreeSpan], trace: &str) {
    let members: Vec<&TreeSpan> = spans
        .iter()
        .filter(|s| s.trace.as_deref() == Some(trace))
        .collect();
    println!("trace {trace} ({} spans)", members.len());
    let ids: std::collections::HashSet<u64> = members.iter().map(|s| s.id).collect();
    fn walk(
        members: &[&TreeSpan],
        parent: Option<u64>,
        depth: usize,
        ids: &std::collections::HashSet<u64>,
    ) {
        for s in members {
            // Roots: no parent, or a parent outside the buffer (evicted or
            // belonging to another process's half of the trace).
            let is_root_here = match s.parent {
                None => parent.is_none(),
                Some(p) if !ids.contains(&p) => parent.is_none(),
                Some(p) => parent == Some(p),
            };
            if is_root_here {
                println!(
                    "{:indent$}{}/{} ({} us)",
                    "",
                    s.target,
                    s.name,
                    s.dur_us,
                    indent = 2 + depth * 2
                );
                walk(members, Some(s.id), depth + 1, ids);
            }
        }
    }
    walk(&members, None, 0, &ids);
}

/// Render causal span trees from the in-memory buffer (after a full-stack
/// run) or from a `--trace-out` file; `--verify` is the CI
/// trace-completeness gate (zero orphan parents).
fn trace_cmd(cli: &Cli, args: &[String]) -> i32 {
    let verify = args.iter().any(|a| a == "--verify");
    let tree = flag_value(args, "--tree").map(str::to_string);
    let exemplar_metric = flag_value(args, "--exemplar").map(str::to_string);
    let spans = match flag_value(args, "--in") {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(text) => parse_trace_jsonl(&text),
            Err(e) => {
                eprintln!("trace: cannot read {path}: {e}");
                return 1;
            }
        },
        None => {
            if let Err(e) = exercise_full_stack(cli) {
                eprintln!("trace: full-stack run failed: {e}");
                return 1;
            }
            parse_trace_jsonl(&psf_telemetry::export_jsonl())
        }
    };

    if verify {
        let ids: std::collections::HashSet<u64> = spans.iter().map(|s| s.id).collect();
        let oldest = spans.iter().map(|s| s.id).min().unwrap_or(0);
        // A parent older than the oldest buffered span was evicted by the
        // ring, not lost by propagation; only dangling references to spans
        // that should still be present count as orphans.
        let orphans: Vec<&TreeSpan> = spans
            .iter()
            .filter(|s| s.parent.is_some_and(|p| p >= oldest && !ids.contains(&p)))
            .collect();
        let traces: std::collections::HashSet<&str> =
            spans.iter().filter_map(|s| s.trace.as_deref()).collect();
        let traceless = spans.iter().filter(|s| s.trace.is_none()).count();
        println!(
            "trace verify: {} spans, {} traces, {} traceless events, {} orphan parent(s)",
            spans.len(),
            traces.len(),
            traceless,
            orphans.len()
        );
        if !orphans.is_empty() {
            for s in orphans.iter().take(10) {
                eprintln!(
                    "  orphan: span {} {}/{} references missing parent {}",
                    s.id,
                    s.target,
                    s.name,
                    s.parent.unwrap()
                );
            }
            eprintln!("trace verify FAILED: {} orphan parent(s)", orphans.len());
            return 1;
        }
        return 0;
    }

    if let Some(metric) = exemplar_metric {
        let snap = psf_telemetry::registry().histogram_snapshot(&metric);
        match snap.and_then(|s| s.exemplar) {
            Some((trace, value)) => {
                println!("exemplar for {metric}: trace {trace} sample {value} us");
                render_tree(&spans, &trace.to_hex());
                return 0;
            }
            None => {
                eprintln!("trace: no exemplar recorded for {metric}");
                return 1;
            }
        }
    }

    if let Some(hex) = tree {
        render_tree(&spans, &hex);
        return 0;
    }

    // No selector: list the traces in the buffer, largest first.
    let mut by_trace: std::collections::HashMap<&str, (usize, u64)> =
        std::collections::HashMap::new();
    for s in &spans {
        if let Some(t) = s.trace.as_deref() {
            let e = by_trace.entry(t).or_default();
            e.0 += 1;
            e.1 = e.1.max(s.dur_us);
        }
    }
    let mut traces: Vec<(&str, (usize, u64))> = by_trace.into_iter().collect();
    traces.sort_by_key(|(_, (n, _))| std::cmp::Reverse(*n));
    println!("{:<32} {:>6} {:>12}", "trace", "spans", "max_dur_us");
    for (t, (n, max)) in &traces {
        println!("{t:<32} {n:>6} {max:>12}");
    }
    cli.say(format!(
        "{} trace(s); `psf trace --tree HEX` renders one",
        traces.len()
    ));
    0
}

/// Run the full stack and evaluate the default SLO table.
fn slo_cmd(cli: &Cli, args: &[String]) -> i32 {
    let check = args.iter().any(|a| a == "--check");
    let json = args.iter().any(|a| a == "--json");
    if let Err(e) = exercise_full_stack(cli) {
        eprintln!("slo: full-stack run failed: {e}");
        return 1;
    }
    let report = default_slo_table().evaluate(psf_telemetry::registry());
    if json {
        print!("{}", report.render_jsonl());
    } else {
        print!("{}", report.render_text());
    }
    if check && !report.ok() {
        eprintln!(
            "slo --check FAILED: {} objective(s) over budget",
            report.violations()
        );
        return 1;
    }
    0
}

/// One representative end-to-end pass over the mail scenario, touching
/// every instrumented subsystem.
fn exercise_full_stack(cli: &Cli) -> Result<(), String> {
    let w = world();

    // Privacy across the insecure WAN: planner + proof search + secure
    // Switchboard channels + encryptor/decryptor middleware.
    let privacy_goal = Goal::private("MailI", w.sites.sd[1]);
    let (plan, deployment) = w
        .deliver(&privacy_goal)
        .map_err(|e| format!("privacy delivery: {e}"))?;
    cli.say(format!(
        "delivered MailI to sd-1 with privacy: {} steps, {} channels",
        plan.steps.len(),
        deployment.channel_count()
    ));
    deployment
        .endpoint
        .call_remote("fetch", b"alice")
        .map_err(|e| format!("endpoint call: {e}"))?;
    deployment.teardown(Some(&w.sites.network), &w.ny_guard);

    // A tight latency bound forces the cache view: VIG generation.
    let latency_goal = Goal {
        iface: "MailI".into(),
        client_node: w.sites.sd[0],
        max_latency_ms: Some(10.0),
        require_privacy: false,
        require_plaintext_delivery: true,
    };
    let (plan, deployment) = w
        .deliver(&latency_goal)
        .map_err(|e| format!("latency delivery: {e}"))?;
    cli.say(format!(
        "delivered MailI to sd-0 under 10 ms: {} deployments",
        plan.deployments()
    ));
    deployment.teardown(Some(&w.sites.network), &w.ny_guard);

    // Table 4 decisions exercise the dRBAC proof search further.
    for who in [&w.alice, &w.bob, &w.charlie] {
        let _ = w.client_view(who);
    }

    // One static-analysis pass over the delegation graph populates the
    // psf.analysis.* counters.
    let intent = w.expected_grants();
    let mut report = psf_analysis::Report::new();
    psf_analysis::analyze_graph(
        &psf_analysis::GraphInput {
            registry: &w.registry,
            repository: &w.repository,
            bus: &w.bus,
            now: w.clock.now(),
            intent: Some(&intent),
            expiry_horizon: 3600,
        },
        &mut report,
    );
    let report = psf_analysis::record_run(report);
    cli.say(format!(
        "static analysis: {} error(s), {} warning(s)",
        report.errors(),
        report.warnings()
    ));

    // A heartbeat over a plain channel pair populates the RTT histogram.
    let cfg = psf_switchboard::ChannelConfig {
        heartbeat_interval: None,
        rpc_timeout: Duration::from_secs(2),
        ..Default::default()
    };
    let (a, b) = psf_switchboard::pair_in_memory_plain(cfg);
    a.send_heartbeat().map_err(|e| format!("heartbeat: {e}"))?;
    for _ in 0..500 {
        if a.last_rtt().is_some() {
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    let stats = a.stats();
    cli.say(format!(
        "heartbeat RTT: {:?} ({} sent, {} frames out)",
        stats.last_rtt, stats.heartbeats_sent, stats.traffic.frames_sent
    ));
    a.close();
    b.close();
    Ok(())
}
