//! `psf` — a command-line driver over the reproduction.
//!
//! ```sh
//! cargo run --bin psf -- creds                 # Table 2
//! cargo run --bin psf -- prove bob Comp.NY.Member
//! cargo run --bin psf -- acl charlie           # Table 4 decision
//! cargo run --bin psf -- plan sd-1 --privacy   # plan a deployment
//! cargo run --bin psf -- plan se-1 --max-latency 10
//! cargo run --bin psf -- storage 50 1000       # §5 comparison
//! cargo run --bin psf -- view partner          # Table 5 source
//! ```

use psf_core::Goal;
use psf_drbac::entity::RoleName;
use psf_drbac::proof::ProofEngine;
use psf_mail::{mail_client_class, mail_method_library, MailWorld};
use psf_views::Vig;

fn usage() -> ! {
    eprintln!(
        "usage: psf <command>\n\
         \n\
         commands:\n\
         \x20 creds                         print the Table 2 credentials\n\
         \x20 prove <user> <Entity.Role>    run a dRBAC proof (alice|bob|charlie)\n\
         \x20 acl <user>                    Table 4 view decision for a user\n\
         \x20 plan <node> [--privacy] [--max-latency MS]\n\
         \x20                               plan mail delivery to ny-N/sd-N/se-N\n\
         \x20 storage <P> <U>               §5 storage comparison at one size\n\
         \x20 view <member|partner|anonymous>  generate and print the view"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { usage() };
    match cmd.as_str() {
        "creds" => creds(),
        "prove" => prove(&args[1..]),
        "acl" => acl(&args[1..]),
        "plan" => plan(&args[1..]),
        "storage" => storage(&args[1..]),
        "view" => view(&args[1..]),
        _ => usage(),
    }
}

fn world() -> MailWorld {
    MailWorld::build(2)
}

fn user<'w>(w: &'w MailWorld, name: &str) -> &'w psf_drbac::Entity {
    match name {
        "alice" => &w.alice,
        "bob" => &w.bob,
        "charlie" => &w.charlie,
        other => {
            eprintln!("unknown user '{other}' (alice|bob|charlie)");
            std::process::exit(2);
        }
    }
}

fn creds() {
    let w = world();
    println!("Table 2 — credentials issued by the Guard modules:");
    for (n, cred) in &w.creds {
        println!("  ({n:>2}) {}", cred.body.render());
    }
}

fn prove(args: &[String]) {
    let (Some(who), Some(role)) = (args.first(), args.get(1)) else {
        usage()
    };
    let w = world();
    let subject = user(&w, who).as_subject();
    let role = match RoleName::parse(role) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let engine = ProofEngine::new(&w.registry, &w.repository, &w.bus, 0);
    match engine.prove(&subject, &role, &[]) {
        Ok((proof, stats)) => {
            print!("{}", proof.render());
            println!(
                "search: {} nodes, {} credentials examined",
                stats.nodes_expanded, stats.credentials_examined
            );
        }
        Err(e) => {
            println!("no proof: {e}");
            std::process::exit(1);
        }
    }
}

fn acl(args: &[String]) {
    let Some(who) = args.first() else { usage() };
    let w = world();
    println!("{}", w.acl.render());
    match w.client_view(user(&w, who)) {
        Some((view, proof)) => println!(
            "{who} -> {view} ({})",
            proof
                .map(|p| format!("{}-edge proof", p.edges.len()))
                .unwrap_or_else(|| "catch-all".into())
        ),
        None => println!("{who} -> no service"),
    }
}

fn plan(args: &[String]) {
    let Some(node_name) = args.first() else { usage() };
    let privacy = args.iter().any(|a| a == "--privacy");
    let max_latency = args
        .iter()
        .position(|a| a == "--max-latency")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<f64>().ok());
    let w = world();
    let Some(node) = w.sites.network.find_node(node_name) else {
        eprintln!("unknown node '{node_name}' (try ny-0, sd-1, se-0 …)");
        std::process::exit(2);
    };
    let goal = Goal {
        iface: "MailI".into(),
        client_node: node,
        max_latency_ms: max_latency,
        require_privacy: privacy,
        require_plaintext_delivery: true,
    };
    match w.plan_service(&goal) {
        Ok((plan, stats)) => {
            println!("plan for MailI at {node_name} (privacy={privacy}, bound={max_latency:?}):");
            print!("{}", plan.render());
            println!(
                "search: expanded {}, auth-pruned {}",
                stats.expanded, stats.pruned_by_auth
            );
        }
        Err(e) => {
            println!("{e}");
            std::process::exit(1);
        }
    }
}

fn storage(args: &[String]) {
    let (Some(p), Some(u)) = (
        args.first().and_then(|v| v.parse::<u64>().ok()),
        args.get(1).and_then(|v| v.parse::<u64>().ok()),
    ) else {
        usage()
    };
    let [gsi, cas, drbac] = psf_drbac::storage_model::storage_comparison(p, u, 8, 2 * p);
    println!("P={p} U={u} (C=8, c={})", 2 * p);
    for r in [gsi, cas, drbac] {
        println!(
            "  {:<6} {:>12} entries  {:>12.1} KiB",
            r.system,
            r.entries,
            r.bytes as f64 / 1024.0
        );
    }
}

fn view(args: &[String]) {
    let Some(which) = args.first() else { usage() };
    let spec = match which.as_str() {
        "member" => psf_mail::view_member(),
        "partner" => psf_mail::view_partner(),
        "anonymous" => psf_mail::view_anonymous(),
        other => {
            eprintln!("unknown view '{other}'");
            std::process::exit(2);
        }
    };
    println!("== XML definition ==\n{}", spec.to_xml());
    let class = mail_client_class();
    match Vig::new(mail_method_library()).generate(&class, &spec) {
        Ok(generated) => println!("== generated source ==\n{}", generated.source),
        Err(e) => {
            eprintln!("VIG: {e}");
            std::process::exit(1);
        }
    }
}
