//! End-to-end failover: a [`Supervisor`] owns a live [`Deployment`] and
//! keeps its goal satisfied as the environment fails underneath it.
//!
//! The paper's framework "adapts applications to their runtime
//! environment" (§2.1); the supervisor closes that loop for *running*
//! deployments. It consumes [`AdaptationLoop`] outcomes plus channel-death
//! signals and reacts:
//!
//! * **Replanned** (or a dead channel with an unchanged plan) → *failover*:
//!   execute the new plan (make-before-break), swap it in, then tear the
//!   old deployment down — releasing its CPU reservations and revoking its
//!   credentials on the `RevocationBus` so nothing lingers authorized.
//! * **NoLongerSatisfiable** → *degrade*: tear down what exists (the goal
//!   cannot be served; keeping a broken deployment alive would leak
//!   authority) and wait for the environment to heal.
//! * **PlanError** → keep serving; an internal planner failure is not
//!   proof the goal is unsatisfiable.

use crate::deploy::{Deployer, Deployment};
use crate::model::Goal;
use crate::monitor::{AdaptationLoop, AdaptationOutcome};
use crate::oracle::AuthOracle;
use crate::planner::{Plan, PlannerConfig};
use crate::registrar::Registrar;
use crate::PsfError;
use psf_drbac::guard::Guard;
use psf_netsim::Network;
use psf_views::binding::RemoteCall;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Where the supervisor currently stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SupervisorState {
    /// A deployment is live and believed healthy.
    Serving,
    /// The goal is unsatisfiable; the deployment has been torn down and
    /// the supervisor is waiting for the environment to heal.
    Degraded,
    /// `shutdown` was called; terminal.
    Stopped,
}

/// What one [`tick`](Supervisor::tick) did.
#[derive(Debug)]
pub enum TickOutcome {
    /// Nothing to do.
    Idle,
    /// A new deployment was executed and the old one torn down.
    FailedOver {
        /// Steps in the newly executed plan.
        steps: usize,
    },
    /// Recovered from `Degraded` back to `Serving`.
    Recovered,
    /// The goal became unsatisfiable; the deployment was torn down.
    Degraded(String),
    /// Replan succeeded but executing it failed; the previous deployment
    /// (if any) is kept.
    FailoverFailed(String),
    /// The planner failed internally; the current deployment is kept.
    PlanError(String),
}

/// Supervises one goal: plans, deploys, watches, and fails over.
pub struct Supervisor<'a> {
    adapt: AdaptationLoop<'a>,
    deployer: &'a Deployer,
    guard: Arc<Guard>,
    network: &'a Network,
    goal: Goal,
    deployment: Option<Deployment>,
    /// Set by `on_close` watchers of the *current* deployment's channels.
    /// Replaced wholesale on adoption so watchers of a torn-down
    /// deployment flip a stale flag, not a live one.
    death_flag: Arc<AtomicBool>,
    state: SupervisorState,
}

impl<'a> Supervisor<'a> {
    /// Plan and execute the initial deployment, then start supervising.
    #[allow(clippy::too_many_arguments)]
    pub fn start(
        registrar: &'a Registrar,
        network: &'a Network,
        oracle: &'a dyn AuthOracle,
        config: PlannerConfig,
        goal: Goal,
        deployer: &'a Deployer,
        guard: Arc<Guard>,
    ) -> Result<Supervisor<'a>, PsfError> {
        let adapt = AdaptationLoop::start(registrar, network, oracle, config, goal.clone());
        let plan = adapt
            .current_plan()
            .cloned()
            .ok_or_else(|| PsfError::NoPlan("goal unsatisfiable at supervisor start".into()))?;
        let deployment = deployer.execute(&plan, &goal)?;
        let mut sup = Supervisor {
            adapt,
            deployer,
            guard,
            network,
            goal,
            deployment: None,
            death_flag: Arc::new(AtomicBool::new(false)),
            state: SupervisorState::Serving,
        };
        sup.adopt(deployment);
        psf_telemetry::counter!("psf.supervisor.starts").inc();
        Ok(sup)
    }

    /// Current state.
    pub fn state(&self) -> SupervisorState {
        self.state
    }

    /// The live deployment, if serving.
    pub fn deployment(&self) -> Option<&Deployment> {
        self.deployment.as_ref()
    }

    /// The client-facing endpoint of the live deployment.
    pub fn endpoint(&self) -> Option<Arc<dyn RemoteCall>> {
        self.deployment.as_ref().map(|d| d.endpoint.clone())
    }

    /// Whether a channel of the live deployment has died since adoption.
    pub fn channel_died(&self) -> bool {
        self.death_flag.load(Ordering::SeqCst)
    }

    /// One supervision pass: drain monitoring events, consult the
    /// adaptation loop and the channel death flag, and react.
    pub fn tick(&mut self) -> TickOutcome {
        if self.state == SupervisorState::Stopped {
            return TickOutcome::Idle;
        }
        psf_telemetry::counter!("psf.supervisor.ticks").inc();
        match self.adapt.check() {
            AdaptationOutcome::NoChange | AdaptationOutcome::PlanUnchanged => {
                if self.deployment.is_some() && self.channel_died() {
                    // The environment looks unchanged but a transport is
                    // dead: redeploy the current plan in place.
                    match self.adapt.current_plan().cloned() {
                        Some(plan) => self.failover(&plan, "channel_death"),
                        None => self.enter_degraded("channel died with no current plan"),
                    }
                } else {
                    TickOutcome::Idle
                }
            }
            AdaptationOutcome::Replanned(plan) => self.failover(&plan, "replanned"),
            AdaptationOutcome::NoLongerSatisfiable => {
                self.enter_degraded("goal no longer satisfiable")
            }
            AdaptationOutcome::PlanError(e) => {
                psf_telemetry::counter!("psf.supervisor.plan_errors").inc();
                TickOutcome::PlanError(e)
            }
        }
    }

    /// Tear down the live deployment and stop supervising.
    pub fn shutdown(&mut self) {
        if let Some(dep) = self.deployment.take() {
            dep.teardown(Some(self.network), &self.guard);
        }
        self.state = SupervisorState::Stopped;
        psf_telemetry::counter!("psf.supervisor.shutdowns").inc();
    }

    /// Execute `plan`, adopt the result, then tear down the displaced
    /// deployment (make-before-break). On execution failure the previous
    /// deployment is kept untouched.
    fn failover(&mut self, plan: &Plan, reason: &str) -> TickOutcome {
        let was_degraded = self.state == SupervisorState::Degraded;
        let mut span = psf_telemetry::span("psf.supervisor", "failover");
        span.field("reason", reason)
            .field("steps", plan.steps.len());
        match self.deployer.execute(plan, &self.goal) {
            Ok(new_dep) => {
                let old = self.deployment.take();
                self.adopt(new_dep);
                if let Some(old) = old {
                    old.teardown(Some(self.network), &self.guard);
                }
                self.state = SupervisorState::Serving;
                psf_telemetry::counter!("psf.supervisor.failovers").inc();
                span.field("ok", true);
                psf_telemetry::event(
                    "psf.supervisor",
                    "failover",
                    vec![
                        ("reason", reason.to_string()),
                        ("goal_iface", self.goal.iface.clone()),
                    ],
                );
                if was_degraded {
                    psf_telemetry::counter!("psf.supervisor.recoveries").inc();
                    TickOutcome::Recovered
                } else {
                    TickOutcome::FailedOver {
                        steps: plan.steps.len(),
                    }
                }
            }
            Err(e) => {
                psf_telemetry::counter!("psf.supervisor.failover_failures").inc();
                span.field("ok", false);
                TickOutcome::FailoverFailed(e.to_string())
            }
        }
    }

    fn enter_degraded(&mut self, reason: &str) -> TickOutcome {
        if let Some(dep) = self.deployment.take() {
            dep.teardown(Some(self.network), &self.guard);
        }
        self.state = SupervisorState::Degraded;
        psf_telemetry::counter!("psf.supervisor.degraded").inc();
        psf_telemetry::event(
            "psf.supervisor",
            "degraded",
            vec![
                ("reason", reason.to_string()),
                ("goal_iface", self.goal.iface.clone()),
            ],
        );
        TickOutcome::Degraded(reason.to_string())
    }

    /// Install watchers on every channel of `dep`, then make it live. A
    /// fresh flag per adoption keeps teardown of the *old* deployment
    /// (which closes its channels) from signalling death of the new one.
    fn adopt(&mut self, dep: Deployment) {
        let flag = Arc::new(AtomicBool::new(false));
        for (client, server) in &dep.channels {
            let f = flag.clone();
            client.on_close(move || f.store(true, Ordering::SeqCst));
            let f = flag.clone();
            server.on_close(move || f.store(true, Ordering::SeqCst));
        }
        self.death_flag = flag;
        self.deployment = Some(dep);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deploy::AppBundle;
    use crate::model::{ComponentSpec, Effect};
    use crate::oracle::PermissiveOracle;
    use psf_drbac::entity::{Entity, EntityRegistry};
    use psf_drbac::repository::Repository;
    use psf_drbac::revocation::RevocationBus;
    use psf_netsim::three_site_scenario;
    use psf_switchboard::ClockRef;
    use psf_views::{ComponentClass, ExposureType, ViewSpec};

    fn counter_class() -> Arc<ComponentClass> {
        ComponentClass::builder("KvStore")
            .interface("KvI", ["put", "get"])
            .field("data", "Map")
            .method("put", "void put(kv)", &["data"], true, |st, args| {
                let kv = String::from_utf8_lossy(args).to_string();
                let mut data = st.get_str("data");
                data.push_str(&kv);
                st.set("data", data);
                Ok(vec![])
            })
            .method("get", "String get()", &["data"], false, |st, _| {
                Ok(st.get("data"))
            })
            .build()
            .unwrap()
    }

    struct World {
        scenario: psf_netsim::ThreeSites,
        registrar: Registrar,
        guard: Arc<Guard>,
        deployer: Deployer,
    }

    fn world() -> World {
        world_with_guard(Arc::new(Guard::new(
            Entity::with_seed("Sup.Domain", b"sup"),
            EntityRegistry::new(),
            Repository::new(),
            RevocationBus::new(),
        )))
    }

    fn world_with_guard(guard: Arc<Guard>) -> World {
        let scenario = three_site_scenario(2);
        let registrar = Registrar::new();
        registrar.register(ComponentSpec::source("KvStore", "KvI"));
        registrar.register(
            ComponentSpec::processor("KvView", "KvI", "KvI", Effect::Cache)
                .view_of("KvStore")
                .cpu(20),
        );
        registrar.record_deployed("KvStore", scenario.ny[0]);
        let bundle = AppBundle::new()
            .class("KvStore", counter_class())
            .view(
                "KvView",
                ViewSpec::new("KvView", "KvStore").restrict("KvI", ExposureType::Local),
            )
            .cpu_cost("KvView", 20);
        let deployer = Deployer::new(guard.clone(), ClockRef::new(), bundle)
            .with_network(scenario.network.clone());
        deployer.start_source("KvStore", scenario.ny[0]).unwrap();
        World {
            scenario,
            registrar,
            guard,
            deployer,
        }
    }

    fn goal(w: &World) -> Goal {
        Goal {
            iface: "KvI".into(),
            client_node: w.scenario.sd[1],
            max_latency_ms: Some(60.0),
            require_privacy: false,
            require_plaintext_delivery: true,
        }
    }

    #[test]
    fn teardown_revocations_persist_across_restart() {
        use psf_drbac::wal::{DurableRepository, WalConfig};
        let dir = std::env::temp_dir().join(format!("psf-sup-wal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let issued_ids: Vec<String>;
        {
            let (durable, _) = DurableRepository::open(&dir, WalConfig::default()).unwrap();
            let guard = Arc::new(Guard::durable(
                Entity::with_seed("Sup.Domain", b"sup"),
                EntityRegistry::new(),
                &durable,
            ));
            let w = world_with_guard(guard);
            let mut sup = Supervisor::start(
                &w.registrar,
                &w.scenario.network,
                &PermissiveOracle,
                PlannerConfig::default(),
                goal(&w),
                &w.deployer,
                w.guard.clone(),
            )
            .unwrap();
            issued_ids = sup
                .deployment()
                .unwrap()
                .issued_credentials
                .iter()
                .map(|c| c.id())
                .collect();
            assert!(!issued_ids.is_empty(), "deployment issues credentials");
            // Shutdown revokes everything the deployment was granted; the
            // bus observer writes each revocation to the WAL.
            sup.shutdown();
            for id in &issued_ids {
                assert!(w.guard.bus().is_revoked(id));
            }
        } // "crash": only the durable directory survives

        let (_, bus, report) = Repository::recover(&dir).unwrap();
        assert!(
            report.revocations_restored >= issued_ids.len(),
            "restored {} < issued {}",
            report.revocations_restored,
            issued_ids.len()
        );
        for id in &issued_ids {
            assert!(bus.is_revoked(id), "revocation of {id} lost across restart");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn teardown_revocations_persist_across_restart_sharded() {
        use psf_drbac::wal::{ShardedDurableRepository, WalConfig};
        let dir = std::env::temp_dir().join(format!("psf-sup-shwal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let issued_ids: Vec<String>;
        {
            let (durable, _) =
                ShardedDurableRepository::open(&dir, 8, WalConfig::default()).unwrap();
            let guard = Arc::new(Guard::sharded_durable(
                Entity::with_seed("Sup.Domain", b"sup"),
                EntityRegistry::new(),
                &durable,
            ));
            let w = world_with_guard(guard);
            let mut sup = Supervisor::start(
                &w.registrar,
                &w.scenario.network,
                &PermissiveOracle,
                PlannerConfig::default(),
                goal(&w),
                &w.deployer,
                w.guard.clone(),
            )
            .unwrap();
            issued_ids = sup
                .deployment()
                .unwrap()
                .issued_credentials
                .iter()
                .map(|c| c.id())
                .collect();
            assert!(!issued_ids.is_empty(), "deployment issues credentials");
            sup.shutdown();
            for id in &issued_ids {
                assert!(w.guard.bus().is_revoked(id));
            }
            durable.sync().unwrap();
        } // "crash": only the sharded directory survives

        let (_, bus, report) = Repository::recover_sharded(&dir).unwrap();
        assert!(
            report.revocations_restored >= issued_ids.len(),
            "restored {} < issued {}",
            report.revocations_restored,
            issued_ids.len()
        );
        for id in &issued_ids {
            assert!(bus.is_revoked(id), "revocation of {id} lost across restart");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wan_collapse_fails_over_and_revokes_old_credentials() {
        let w = world();
        let mut sup = Supervisor::start(
            &w.registrar,
            &w.scenario.network,
            &PermissiveOracle,
            PlannerConfig::default(),
            goal(&w),
            &w.deployer,
            w.guard.clone(),
        )
        .unwrap();
        assert_eq!(sup.state(), SupervisorState::Serving);
        let old_ids: Vec<String> = sup
            .deployment()
            .unwrap()
            .issued_credentials
            .iter()
            .map(|c| c.id())
            .collect();
        assert!(!old_ids.is_empty(), "WAN hops issue connection creds");

        // The WAN degrades past the goal's latency bound: the supervisor
        // must deploy the cache view near the client and drop the old
        // deployment's authority.
        w.scenario.network.set_latency(w.scenario.wan_ny_sd, 200.0);
        match sup.tick() {
            TickOutcome::FailedOver { steps } => assert!(steps >= 2),
            other => panic!("expected failover, got {other:?}"),
        }
        for id in &old_ids {
            assert!(w.guard.bus().is_revoked(id), "old cred {id} not revoked");
        }
        let dep = sup.deployment().unwrap();
        assert!(
            dep.placements.iter().any(|(t, _, _)| t == "KvView"),
            "failover plan deploys the cache view"
        );
        // The new endpoint serves.
        dep.endpoint.call_remote("put", b"x").unwrap();
        sup.shutdown();
        assert_eq!(sup.state(), SupervisorState::Stopped);
    }

    #[test]
    fn channel_death_triggers_in_place_redeploy() {
        let w = world();
        let mut sup = Supervisor::start(
            &w.registrar,
            &w.scenario.network,
            &PermissiveOracle,
            PlannerConfig::default(),
            goal(&w),
            &w.deployer,
            w.guard.clone(),
        )
        .unwrap();
        assert!(sup.deployment().unwrap().channel_count() >= 1);
        assert!(matches!(sup.tick(), TickOutcome::Idle));

        // Kill a transport out from under the deployment: no network
        // event fires, but the death watcher does.
        sup.deployment().unwrap().channels[0].0.close();
        assert!(sup.channel_died());
        match sup.tick() {
            TickOutcome::FailedOver { .. } => {}
            other => panic!("expected redeploy, got {other:?}"),
        }
        assert!(!sup.channel_died(), "fresh deployment, fresh flag");
        sup.deployment()
            .unwrap()
            .endpoint
            .call_remote("put", b"y")
            .unwrap();
        sup.shutdown();
    }

    #[test]
    fn node_failure_degrades_then_restore_recovers() {
        let w = world();
        let mut sup = Supervisor::start(
            &w.registrar,
            &w.scenario.network,
            &PermissiveOracle,
            PlannerConfig::default(),
            goal(&w),
            &w.deployer,
            w.guard.clone(),
        )
        .unwrap();
        let cpu_before: Vec<u32> = w
            .scenario
            .network
            .node_ids()
            .iter()
            .map(|&n| w.scenario.network.node(n).unwrap().cpu_available())
            .collect();

        // sd-0 carries every WAN link into San Diego: failing it isolates
        // the client at sd-1 entirely.
        w.scenario.network.fail_node(w.scenario.sd[0]);
        match sup.tick() {
            TickOutcome::Degraded(_) => {}
            other => panic!("expected degraded, got {other:?}"),
        }
        assert_eq!(sup.state(), SupervisorState::Degraded);
        assert!(sup.deployment().is_none(), "degraded ⇒ torn down");

        // Healing the node brings the goal back; the supervisor recovers.
        w.scenario.network.restore_node(w.scenario.sd[0]);
        match sup.tick() {
            TickOutcome::Recovered => {}
            other => panic!("expected recovery, got {other:?}"),
        }
        assert_eq!(sup.state(), SupervisorState::Serving);
        sup.endpoint().unwrap().call_remote("put", b"z").unwrap();

        // After shutdown every reservation is back where it started.
        sup.shutdown();
        let cpu_after: Vec<u32> = w
            .scenario
            .network
            .node_ids()
            .iter()
            .map(|&n| w.scenario.network.node(n).unwrap().cpu_available())
            .collect();
        assert_eq!(cpu_before, cpu_after, "no leaked CPU reservations");
    }
}
