//! The distributed credential repository, actually distributed: serve a
//! [`Repository`] over a Switchboard channel and consume it remotely
//! through [`RemoteRepository`], which implements
//! [`CredentialSource`] so the proof engine is location-transparent
//! (paper §3.1: "dRBAC credentials are stored in a distributed
//! repository … queries about credentials involving the entity [are]
//! directed as appropriate to its home node").

use parking_lot::Mutex;
use psf_drbac::entity::{EntityName, RoleName, Subject};
use psf_drbac::repository::{CredentialSource, DiscoveryTag, Repository};
use psf_drbac::wal::DurableRepository;
use psf_drbac::wire::{decode_credentials, encode_credentials, Reader};
use psf_drbac::SignedDelegation;
use psf_switchboard::Channel;
use std::collections::HashMap;
use std::sync::Arc;

/// RPC method names of the repository protocol.
pub const QUERY_BY_SUBJECT: &str = "repo.query_by_subject";
/// RPC method for object-role queries.
pub const QUERY_BY_OBJECT: &str = "repo.query_by_object";
/// RPC method for publishing a credential to a (durable) home node.
pub const PUBLISH: &str = "repo.publish";

fn subject_query_key(subject: &Subject) -> Vec<u8> {
    // Reuse the delegation subject encoding for the query argument.
    let mut out = Vec::new();
    subject_encode(subject, &mut out);
    out
}

fn subject_encode(s: &Subject, out: &mut Vec<u8>) {
    match s {
        Subject::Entity { name, key } => {
            out.push(0);
            out.extend_from_slice(&(name.0.len() as u32).to_le_bytes());
            out.extend_from_slice(name.0.as_bytes());
            out.extend_from_slice(key.as_bytes());
        }
        Subject::Role(r) => {
            out.push(1);
            let s = r.to_string();
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
    }
}

fn subject_decode(buf: &[u8]) -> Result<Subject, String> {
    use psf_crypto::ed25519::VerifyingKey;
    use psf_drbac::entity::EntityName;
    if buf.is_empty() {
        return Err("empty subject".into());
    }
    match buf[0] {
        0 => {
            if buf.len() < 5 {
                return Err("truncated subject".into());
            }
            let len = u32::from_le_bytes(buf[1..5].try_into().unwrap()) as usize;
            if buf.len() != 5 + len + 32 {
                return Err("malformed entity subject".into());
            }
            let name =
                String::from_utf8(buf[5..5 + len].to_vec()).map_err(|_| "bad name".to_string())?;
            let key: [u8; 32] = buf[5 + len..].try_into().unwrap();
            Ok(Subject::Entity {
                name: EntityName(name),
                key: VerifyingKey(key),
            })
        }
        1 => {
            if buf.len() < 5 {
                return Err("truncated subject".into());
            }
            let len = u32::from_le_bytes(buf[1..5].try_into().unwrap()) as usize;
            if buf.len() != 5 + len {
                return Err("malformed role subject".into());
            }
            let s = String::from_utf8(buf[5..].to_vec()).map_err(|_| "bad role".to_string())?;
            RoleName::parse(&s)
                .map(Subject::Role)
                .map_err(|e| e.to_string())
        }
        t => Err(format!("bad subject tag {t}")),
    }
}

/// Register the repository-protocol handlers on a channel, making this
/// endpoint a credential home node.
pub fn serve_repository(channel: &Channel, repository: Repository) {
    let repo = repository.clone();
    channel.register_handler(QUERY_BY_SUBJECT, move |args| {
        let subject = subject_decode(args)?;
        Ok(encode_credentials(&repo.query_by_subject(&subject)))
    });
    let repo = repository;
    channel.register_handler(QUERY_BY_OBJECT, move |args| {
        let role = RoleName::parse(&String::from_utf8_lossy(args)).map_err(|e| e.to_string())?;
        Ok(encode_credentials(&repo.query_by_object(&role)))
    });
}

fn decode_publish_args(
    args: &[u8],
) -> Result<(EntityName, DiscoveryTag, SignedDelegation), String> {
    let mut r = Reader::new(args);
    let home = r.string().map_err(|e| e.to_string())?;
    let tag = DiscoveryTag::from_byte(r.u8().map_err(|e| e.to_string())?)
        .ok_or_else(|| "bad discovery tag".to_string())?;
    let cred = SignedDelegation::from_wire(&mut r).map_err(|e| e.to_string())?;
    if !r.finished() {
        return Err("trailing bytes in publish args".into());
    }
    Ok((EntityName(home), tag, cred))
}

fn encode_publish_args(home: &EntityName, tag: DiscoveryTag, cred: &SignedDelegation) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(home.0.len() as u32).to_le_bytes());
    out.extend_from_slice(home.0.as_bytes());
    out.push(tag.to_byte());
    out.extend_from_slice(&cred.to_wire());
    out
}

/// Serve a crash-safe home node: the query handlers of
/// [`serve_repository`] plus a `repo.publish` handler, all backed by the
/// durable pair's shared handles — every accepted publish hits the
/// write-ahead log before the RPC response leaves, so a committed publish
/// survives `kill -9`.
pub fn serve_durable_repository(channel: &Channel, durable: &DurableRepository) {
    serve_repository(channel, durable.repository().clone());
    let repo = durable.repository().clone();
    channel.register_handler(PUBLISH, move |args| {
        let (home, tag, cred) = decode_publish_args(args)?;
        let id = cred.id();
        repo.publish(home, cred, tag);
        Ok(id.into_bytes())
    });
}

/// Serve a crash-safe **sharded** home node: identical protocol to
/// [`serve_durable_repository`], but every accepted publish is routed to
/// the WAL segment of the shard owning the credential's subject before
/// the RPC response leaves.
pub fn serve_sharded_durable_repository(
    channel: &Channel,
    durable: &psf_drbac::wal::ShardedDurableRepository,
) {
    serve_repository(channel, durable.repository().clone());
    let repo = durable.repository().clone();
    channel.register_handler(PUBLISH, move |args| {
        let (home, tag, cred) = decode_publish_args(args)?;
        let id = cred.id();
        repo.publish(home, cred, tag);
        Ok(id.into_bytes())
    });
}

/// A [`CredentialSource`] backed by a remote repository channel, with a
/// small response cache (credentials are immutable; revocation is
/// enforced separately by the bus, so caching is sound).
pub struct RemoteRepository {
    channel: Arc<Channel>,
    cache: Mutex<HashMap<Vec<u8>, Vec<Arc<SignedDelegation>>>>,
    caching: bool,
}

impl RemoteRepository {
    /// Wrap a channel whose peer serves the repository protocol.
    pub fn new(channel: Arc<Channel>) -> RemoteRepository {
        RemoteRepository {
            channel,
            cache: Mutex::new(HashMap::new()),
            caching: true,
        }
    }

    /// Disable the response cache (every query goes to the wire).
    pub fn without_cache(mut self) -> RemoteRepository {
        self.caching = false;
        self
    }

    fn query(&self, method: &str, args: Vec<u8>) -> Vec<Arc<SignedDelegation>> {
        let cache_key = {
            let mut k = method.as_bytes().to_vec();
            k.push(0);
            k.extend_from_slice(&args);
            k
        };
        if self.caching {
            if let Some(hit) = self.cache.lock().get(&cache_key) {
                return hit.clone();
            }
        }
        let result: Vec<Arc<SignedDelegation>> = self
            .channel
            .call(method, &args)
            .ok()
            .and_then(|bytes| decode_credentials(&bytes).ok())
            .unwrap_or_default()
            .into_iter()
            .map(Arc::new)
            .collect();
        if self.caching {
            self.cache.lock().insert(cache_key, result.clone());
        }
        result
    }

    /// Publish a credential to the remote home node (requires the peer to
    /// run [`serve_durable_repository`]). Returns the credential id
    /// acknowledged by the server — by the time this returns, the record
    /// is in the server's write-ahead log.
    pub fn publish(
        &self,
        home: &EntityName,
        tag: DiscoveryTag,
        cred: &SignedDelegation,
    ) -> Result<String, String> {
        let args = encode_publish_args(home, tag, cred);
        let resp = self
            .channel
            .call(PUBLISH, &args)
            .map_err(|e| e.to_string())?;
        String::from_utf8(resp).map_err(|_| "bad publish ack".to_string())
    }
}

impl CredentialSource for RemoteRepository {
    fn credentials_by_subject(&self, subject: &Subject) -> Vec<Arc<SignedDelegation>> {
        self.query(QUERY_BY_SUBJECT, subject_query_key(subject))
    }

    fn credentials_by_object(&self, role: &RoleName) -> Vec<Arc<SignedDelegation>> {
        self.query(QUERY_BY_OBJECT, role.to_string().into_bytes())
    }
    // No `version()` override: a remote source has no coherent epoch, so
    // proof caching is disabled over it (credential-verdict caching and
    // the response cache above still apply).
}

#[cfg(test)]
mod tests {
    use super::*;
    use psf_drbac::entity::{Entity, EntityRegistry};
    use psf_drbac::proof::ProofEngine;
    use psf_drbac::revocation::RevocationBus;
    use psf_drbac::DelegationBuilder;
    use psf_switchboard::{pair_in_memory_plain, ChannelConfig};
    use std::time::Duration;

    fn quiet() -> ChannelConfig {
        ChannelConfig {
            heartbeat_interval: None,
            rpc_timeout: Duration::from_secs(5),
            ..Default::default()
        }
    }

    struct RemoteWorld {
        registry: EntityRegistry,
        bus: RevocationBus,
        remote: RemoteRepository,
        _server_side: Channel,
        ny: Entity,
        bob: Entity,
        cred_ids: Vec<String>,
    }

    fn remote_world(caching: bool) -> RemoteWorld {
        let registry = EntityRegistry::new();
        let repo = Repository::new();
        let bus = RevocationBus::new();
        let ny = Entity::with_seed("Comp.NY", b"remote");
        let sd = Entity::with_seed("Comp.SD", b"remote");
        let bob = Entity::with_seed("Bob", b"remote");
        for e in [&ny, &sd, &bob] {
            registry.register(e);
        }
        let c11 = DelegationBuilder::new(&sd)
            .subject_entity(&bob)
            .role(sd.role("Member"))
            .sign();
        let c2 = DelegationBuilder::new(&ny)
            .subject_role(sd.role("Member"))
            .role(ny.role("Member"))
            .sign();
        let cred_ids = vec![c11.id(), c2.id()];
        repo.publish_at_issuer(c11);
        repo.publish_at_issuer(c2);

        let (client, server) = pair_in_memory_plain(quiet());
        serve_repository(&server, repo);
        let mut remote = RemoteRepository::new(Arc::new(client));
        if !caching {
            remote = remote.without_cache();
        }
        RemoteWorld {
            registry,
            bus,
            remote,
            _server_side: server,
            ny,
            bob,
            cred_ids,
        }
    }

    #[test]
    fn proof_search_over_a_remote_repository() {
        let w = remote_world(true);
        // The proof engine pulls both chain credentials across the channel.
        let engine = ProofEngine::new(&w.registry, &w.remote, &w.bus, 0);
        let (proof, _) = engine
            .prove(&w.bob.as_subject(), &w.ny.role("Member"), &[])
            .expect("remote discovery must find the chain");
        assert_eq!(proof.edges.len(), 2);
        let ids = proof.credential_ids();
        assert!(w.cred_ids.iter().all(|id| ids.contains(id)));
        // Re-verification works against the same remote source world.
        proof.verify(&w.registry, &w.bus, 0).unwrap();
    }

    #[test]
    fn remote_queries_decode_and_filter() {
        let w = remote_world(false);
        let found = w.remote.credentials_by_subject(&w.bob.as_subject());
        assert_eq!(found.len(), 1);
        let by_role = w.remote.credentials_by_object(&w.ny.role("Member"));
        assert_eq!(by_role.len(), 1);
        let none = w
            .remote
            .credentials_by_object(&RoleName::new("No.Such", "Role"));
        assert!(none.is_empty());
    }

    #[test]
    fn cache_avoids_repeat_round_trips() {
        let w = remote_world(true);
        let a = w.remote.credentials_by_subject(&w.bob.as_subject());
        // Sever the transport: cached answers still serve.
        w._server_side.close();
        std::thread::sleep(Duration::from_millis(30));
        let b = w.remote.credentials_by_subject(&w.bob.as_subject());
        assert_eq!(a, b);
        // Uncached keys now return empty (transport gone), not panic.
        let none = w.remote.credentials_by_object(&w.ny.role("Member"));
        assert!(none.is_empty());
    }

    #[test]
    fn revocation_still_enforced_with_caching() {
        let w = remote_world(true);
        let engine = ProofEngine::new(&w.registry, &w.remote, &w.bus, 0);
        assert!(engine.check(&w.bob.as_subject(), &w.ny.role("Member"), &[]));
        // Revoke one chain credential: the cached credential is still
        // *returned* but the engine rejects it via the bus.
        w.bus.revoke(&w.cred_ids[0]);
        assert!(!engine.check(&w.bob.as_subject(), &w.ny.role("Member"), &[]));
    }

    #[test]
    fn durable_home_node_publish_survives_restart() {
        use psf_drbac::wal::{DurableRepository, WalConfig};
        let dir = std::env::temp_dir().join(format!("psf-repo-svc-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        let ny = Entity::with_seed("Comp.NY", b"svc");
        let bob = Entity::with_seed("Bob", b"svc");
        let cred = DelegationBuilder::new(&ny)
            .subject_entity(&bob)
            .role(ny.role("Member"))
            .sign();
        {
            let (durable, _) = DurableRepository::open(&dir, WalConfig::default()).unwrap();
            let (client, server) = pair_in_memory_plain(quiet());
            serve_durable_repository(&server, &durable);
            let remote = RemoteRepository::new(Arc::new(client)).without_cache();
            // Publish over the wire; the ack means it's in the WAL.
            let ack = remote.publish(&ny.name, DiscoveryTag::Both, &cred).unwrap();
            assert_eq!(ack, cred.id());
            // Immediately queryable through the same service.
            assert_eq!(remote.credentials_by_subject(&bob.as_subject()).len(), 1);
            // Revocations through the durable bus are logged too.
            durable.bus().revoke(&cred.id());
        } // "crash": the process state is dropped, only the files remain

        let (durable2, report) = DurableRepository::open(&dir, WalConfig::default()).unwrap();
        assert_eq!(report.publishes, 1);
        assert_eq!(report.revocations_restored, 1);
        let (client, server) = pair_in_memory_plain(quiet());
        serve_durable_repository(&server, &durable2);
        let remote = RemoteRepository::new(Arc::new(client)).without_cache();
        let found = remote.credentials_by_subject(&bob.as_subject());
        assert_eq!(found.len(), 1);
        assert!(durable2.bus().is_revoked(&cred.id()));
        // Garbage publish args are rejected, not panicking the server.
        let bad: Result<_, _> = remote.publish(&ny.name, DiscoveryTag::Both, &cred);
        assert!(bad.is_ok(), "duplicate publish is acceptable");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sharded_home_node_publish_survives_restart() {
        use psf_drbac::wal::{ShardedDurableRepository, WalConfig};
        let dir = std::env::temp_dir().join(format!("psf-repo-svc-sh-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        let ny = Entity::with_seed("Comp.NY", b"svc");
        let bob = Entity::with_seed("Bob", b"svc");
        let cred = DelegationBuilder::new(&ny)
            .subject_entity(&bob)
            .role(ny.role("Member"))
            .sign();
        {
            let (durable, _) =
                ShardedDurableRepository::open(&dir, 8, WalConfig::default()).unwrap();
            let (client, server) = pair_in_memory_plain(quiet());
            serve_sharded_durable_repository(&server, &durable);
            let remote = RemoteRepository::new(Arc::new(client)).without_cache();
            let ack = remote.publish(&ny.name, DiscoveryTag::Both, &cred).unwrap();
            assert_eq!(ack, cred.id());
            assert_eq!(remote.credentials_by_subject(&bob.as_subject()).len(), 1);
            durable.bus().revoke(&cred.id());
            durable.sync().unwrap();
        } // "crash"

        let (durable2, report) =
            ShardedDurableRepository::open(&dir, 8, WalConfig::default()).unwrap();
        assert_eq!(report.publishes, 1);
        assert_eq!(report.revocations_restored, 1);
        let (client, server) = pair_in_memory_plain(quiet());
        serve_sharded_durable_repository(&server, &durable2);
        let remote = RemoteRepository::new(Arc::new(client)).without_cache();
        assert_eq!(remote.credentials_by_subject(&bob.as_subject()).len(), 1);
        assert!(durable2.bus().is_revoked(&cred.id()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn malformed_queries_are_rejected_server_side() {
        let w = remote_world(false);
        let err = w._server_side.peer(); // placeholder: exercise channel api
        let _ = err;
        // Direct protocol-level garbage must error, not panic.
        let (client, server) = pair_in_memory_plain(quiet());
        serve_repository(&server, Repository::new());
        assert!(client.call(QUERY_BY_SUBJECT, b"\xffgarbage").is_err());
        assert!(client.call(QUERY_BY_OBJECT, b"no-dots-here").is_err());
    }
}
