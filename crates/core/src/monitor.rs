//! Adaptation: the monitoring module feeds environment changes back into
//! planning (paper §2.1: "the planning module … factor[s] in application
//! and network-level constraints, updates to which are tracked by the
//! monitoring module").

use crate::model::Goal;
use crate::oracle::AuthOracle;
use crate::planner::{Plan, Planner, PlannerConfig};
use crate::registrar::Registrar;
use crate::PsfError;
use psf_netsim::{Network, NetworkMonitor};

/// Watches the network and replans a goal when the environment changes.
pub struct AdaptationLoop<'a> {
    registrar: &'a Registrar,
    network: &'a Network,
    oracle: &'a dyn AuthOracle,
    config: PlannerConfig,
    monitor: NetworkMonitor,
    goal: Goal,
    current: Option<Plan>,
}

/// What a [`check`](AdaptationLoop::check) pass concluded.
#[derive(Debug, PartialEq)]
pub enum AdaptationOutcome {
    /// No environment changes observed.
    NoChange,
    /// Changes observed but the existing plan is still the best one.
    PlanUnchanged,
    /// The plan changed; the new plan is returned for redeployment.
    Replanned(Plan),
    /// The goal can no longer be satisfied at all.
    NoLongerSatisfiable,
    /// The planner failed for an internal reason (budget exhaustion,
    /// inconsistent registry, …) — NOT proof the goal is unsatisfiable.
    /// The previous plan is kept; callers should not tear anything down.
    PlanError(String),
}

impl<'a> AdaptationLoop<'a> {
    /// Start the loop: computes the initial plan.
    pub fn start(
        registrar: &'a Registrar,
        network: &'a Network,
        oracle: &'a dyn AuthOracle,
        config: PlannerConfig,
        goal: Goal,
    ) -> AdaptationLoop<'a> {
        let monitor = network.monitor();
        let mut this = AdaptationLoop {
            registrar,
            network,
            oracle,
            config,
            monitor,
            goal,
            current: None,
        };
        this.current = this.plan_now().ok();
        this
    }

    /// Run the planner. `Err(NoPlan)` means the goal is genuinely
    /// unsatisfiable; any other error is an internal planner failure and
    /// must not be conflated with unsatisfiability.
    fn plan_now(&self) -> Result<Plan, PsfError> {
        let planner = Planner::new(
            self.registrar,
            self.network,
            self.oracle,
            self.config.clone(),
        );
        planner.plan(&self.goal).map(|(p, _)| p)
    }

    /// The currently adopted plan.
    pub fn current_plan(&self) -> Option<&Plan> {
        self.current.as_ref()
    }

    /// Drain monitoring events; replan if anything changed.
    pub fn check(&mut self) -> AdaptationOutcome {
        psf_telemetry::counter!("psf.monitor.checks").inc();
        let events = self.monitor.drain();
        if events.is_empty() {
            return AdaptationOutcome::NoChange;
        }
        psf_telemetry::counter!("psf.monitor.changes").add(events.len() as u64);
        let mut check_span = psf_telemetry::span("psf.monitor", "check");
        check_span
            .field("events", events.len())
            .field("goal_iface", &self.goal.iface);
        match self.plan_now() {
            Err(PsfError::NoPlan(reason)) => {
                self.current = None;
                psf_telemetry::counter!("psf.monitor.unsatisfiable").inc();
                check_span.field("outcome", "unsatisfiable");
                psf_telemetry::event(
                    "psf.monitor",
                    "goal.unsatisfiable",
                    vec![("goal_iface", self.goal.iface.clone()), ("reason", reason)],
                );
                AdaptationOutcome::NoLongerSatisfiable
            }
            Err(e) => {
                // Internal failure: keep the current plan; surface the
                // error instead of silently reporting "unsatisfiable".
                psf_telemetry::counter!("psf.monitor.plan_errors").inc();
                check_span.field("outcome", "plan_error");
                psf_telemetry::event(
                    "psf.monitor",
                    "plan_error",
                    vec![
                        ("goal_iface", self.goal.iface.clone()),
                        ("error", e.to_string()),
                    ],
                );
                AdaptationOutcome::PlanError(e.to_string())
            }
            Ok(new_plan) => {
                if Some(&new_plan) == self.current.as_ref() {
                    check_span.field("outcome", "unchanged");
                    AdaptationOutcome::PlanUnchanged
                } else {
                    self.current = Some(new_plan.clone());
                    psf_telemetry::counter!("psf.monitor.replans").inc();
                    check_span.field("outcome", "replanned");
                    psf_telemetry::event(
                        "psf.monitor",
                        "replan",
                        vec![
                            ("goal_iface", self.goal.iface.clone()),
                            ("deployments", new_plan.deployments().to_string()),
                        ],
                    );
                    AdaptationOutcome::Replanned(new_plan)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ComponentSpec, Effect};
    use crate::oracle::PermissiveOracle;
    use psf_netsim::three_site_scenario;

    fn registrar() -> Registrar {
        let r = Registrar::new();
        r.register(ComponentSpec::source("MailServer", "MailI"));
        r.register(
            ComponentSpec::processor("ViewMailServer", "MailI", "MailI", Effect::Cache)
                .cpu(20)
                .view_of("MailServer"),
        );
        r
    }

    #[test]
    fn bandwidth_collapse_triggers_cache_redeployment() {
        let s = three_site_scenario(2);
        let r = registrar();
        r.record_deployed("MailServer", s.ny[0]);
        // The goal tolerates the WAN initially (latency bound 60 ms: the
        // 40 ms WAN qualifies; no privacy needed).
        let goal = Goal {
            iface: "MailI".into(),
            client_node: s.sd[1],
            max_latency_ms: Some(60.0),
            require_privacy: false,
            require_plaintext_delivery: true,
        };
        let mut adapt = AdaptationLoop::start(
            &r,
            &s.network,
            &PermissiveOracle,
            PlannerConfig::default(),
            goal,
        );
        let initial = adapt.current_plan().unwrap().clone();
        assert_eq!(initial.deployments(), 0);
        assert_eq!(adapt.check(), AdaptationOutcome::NoChange);

        // The WAN degrades badly: latency shoots past the bound.
        s.network.set_latency(s.wan_ny_sd, 200.0);
        match adapt.check() {
            AdaptationOutcome::Replanned(p) => {
                assert!(p.deployments() >= 1, "expected a cache: {}", p.render());
                assert!(p.delivered.latency_ms <= 60.0);
            }
            other => panic!("expected replan, got {other:?}"),
        }
    }

    #[test]
    fn irrelevant_change_keeps_plan() {
        let s = three_site_scenario(2);
        let r = registrar();
        r.record_deployed("MailServer", s.ny[0]);
        let goal = Goal {
            iface: "MailI".into(),
            client_node: s.ny[1],
            max_latency_ms: None,
            require_privacy: false,
            require_plaintext_delivery: true,
        };
        let mut adapt = AdaptationLoop::start(
            &r,
            &s.network,
            &PermissiveOracle,
            PlannerConfig::default(),
            goal,
        );
        // A change far away (SD↔SE link) does not affect the NY-local plan.
        s.network.set_latency(s.wan_sd_se, 500.0);
        assert_eq!(adapt.check(), AdaptationOutcome::PlanUnchanged);
    }

    #[test]
    fn internal_planner_failure_is_not_reported_as_unsatisfiable() {
        let s = three_site_scenario(2);
        let r = registrar();
        r.record_deployed("MailServer", s.ny[0]);
        let goal = Goal {
            iface: "MailI".into(),
            client_node: s.sd[1],
            max_latency_ms: Some(60.0),
            require_privacy: false,
            require_plaintext_delivery: true,
        };
        // An absurdly small expansion budget makes the planner abort
        // internally; that must surface as PlanError, never as
        // NoLongerSatisfiable (which would trigger a teardown).
        let config = PlannerConfig {
            max_expansions: 0,
            ..PlannerConfig::default()
        };
        let mut adapt = AdaptationLoop::start(&r, &s.network, &PermissiveOracle, config, goal);
        s.network.set_latency(s.wan_ny_sd, 200.0);
        match adapt.check() {
            AdaptationOutcome::PlanError(msg) => {
                assert!(msg.contains("budget"), "unexpected error: {msg}")
            }
            other => panic!("expected PlanError, got {other:?}"),
        }
    }

    #[test]
    fn goal_can_become_unsatisfiable() {
        let s = three_site_scenario(1);
        let r = Registrar::new();
        r.register(ComponentSpec::source("MailServer", "MailI"));
        r.record_deployed("MailServer", s.ny[0]);
        let goal = Goal {
            iface: "MailI".into(),
            client_node: s.sd[0],
            max_latency_ms: Some(60.0),
            require_privacy: false,
            require_plaintext_delivery: true,
        };
        let mut adapt = AdaptationLoop::start(
            &r,
            &s.network,
            &PermissiveOracle,
            PlannerConfig::default(),
            goal,
        );
        assert!(adapt.current_plan().is_some());
        // Without a cache template, degraded WANs are fatal (both the
        // direct link and the detour through Seattle).
        s.network.set_latency(s.wan_ny_sd, 500.0);
        s.network.set_latency(s.wan_sd_se, 500.0);
        assert_eq!(adapt.check(), AdaptationOutcome::NoLongerSatisfiable);
        assert!(adapt.current_plan().is_none());
    }
}
