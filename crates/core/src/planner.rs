//! The planning module — a Sekitei-style planner (paper §2.1; Kichkaylo,
//! Ivan & Karamcheti, IPDPS'03) that "combines regression and progression
//! techniques from classical AI planning to cope with general constraints
//! and network scale concerns".
//!
//! * **Regression**: before searching, the planner computes the backward
//!   closure of interface types relevant to the goal and prunes every
//!   component (and every state) that cannot contribute.
//! * **Progression**: a Dijkstra search over interface states
//!   `(type, node, properties)` whose operators are *link traversal*
//!   (consume an interface across a routed path, degrading properties)
//!   and *component deployment* (transform properties at a node), subject
//!   to node CPU capacity and the dRBAC [`AuthOracle`].
//! * **Parallelism**: `parallel_expansion = K` pops up to K frontier
//!   states per round and expands them on `std::thread::scope` workers
//!   (K-best-first search; with K > 1 the returned plan may be up to one
//!   expansion round from optimal, which the benches account for).
//!   Results are merged in batch order, so plans are reproducible for a
//!   fixed input regardless of thread scheduling.
//! * **Memoization**: search states share their step history through a
//!   persistent `Arc` cons-list and their CPU reservations through an
//!   `Arc`-shared map (copy-on-write only on deployment), so generating a
//!   successor no longer deep-clones the whole plan prefix. A dominance
//!   memo over quantized state keys prunes dominated successors at push
//!   time *and* stale queue entries at pop time (`psf.planner.memo.*`).

use crate::model::{ComponentSpec, Goal, IfaceProps};
use crate::oracle::AuthOracle;
use crate::registrar::Registrar;
use crate::PsfError;
use psf_netsim::{Network, NodeId};
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::sync::Arc;

/// One step of a deployment plan.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanStep {
    /// Start from an already-running component instance.
    UseDeployed {
        /// Template name.
        spec: String,
        /// Hosting node.
        node: NodeId,
        /// The interface it provides.
        iface: String,
    },
    /// Consume an interface across the network.
    Move {
        /// Interface type.
        iface: String,
        /// Providing node.
        from: NodeId,
        /// Consuming node.
        to: NodeId,
        /// Path latency (ms).
        latency_ms: f64,
        /// Whether every link on the path was secure.
        secure_path: bool,
    },
    /// Deploy a new component instance.
    Deploy {
        /// Template name.
        spec: String,
        /// Target node.
        node: NodeId,
        /// Interface consumed (None for sources).
        iface_in: Option<String>,
        /// Interface produced.
        iface_out: String,
    },
}

/// A complete plan: "the output of the planner is a sequence of component
/// deployments".
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    /// Ordered steps.
    pub steps: Vec<PlanStep>,
    /// The interface properties delivered at the client.
    pub delivered: IfaceProps,
    /// Search cost of the plan (latency + deployment penalties).
    pub cost: f64,
}

impl Plan {
    /// Number of new component deployments in the plan.
    pub fn deployments(&self) -> usize {
        self.steps
            .iter()
            .filter(|s| matches!(s, PlanStep::Deploy { .. }))
            .count()
    }

    /// Human-readable rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (i, s) in self.steps.iter().enumerate() {
            let line = match s {
                PlanStep::UseDeployed { spec, node, iface } => {
                    format!("use {spec} on node {} providing {iface}", node.0)
                }
                PlanStep::Move {
                    iface,
                    from,
                    to,
                    latency_ms,
                    secure_path,
                } => format!(
                    "carry {iface} from node {} to node {} ({latency_ms:.1} ms, {})",
                    from.0,
                    to.0,
                    if *secure_path { "secure" } else { "INSECURE" }
                ),
                PlanStep::Deploy {
                    spec,
                    node,
                    iface_in,
                    iface_out,
                } => format!(
                    "deploy {spec} on node {} ({} -> {iface_out})",
                    node.0,
                    iface_in.as_deref().unwrap_or("-")
                ),
            };
            out.push_str(&format!("  {}. {line}\n", i + 1));
        }
        out.push_str(&format!(
            "  => delivered: latency {:.1} ms, encrypted={}, exposed={}\n",
            self.delivered.latency_ms, self.delivered.encrypted, self.delivered.plaintext_exposed
        ));
        out
    }
}

/// Planner tuning knobs.
#[derive(Debug, Clone)]
pub struct PlannerConfig {
    /// Per-deployment fixed cost added to the search metric.
    pub deploy_penalty: f64,
    /// Extra cost per CPU unit consumed.
    pub cpu_penalty: f64,
    /// States popped and expanded concurrently per round (1 = classic
    /// Dijkstra).
    pub parallel_expansion: usize,
    /// Hard cap on expanded states (guards pathological searches).
    pub max_expansions: usize,
    /// Ablation: disable the regression relevance analysis (every
    /// registered component participates in the search).
    pub disable_regression: bool,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig {
            deploy_penalty: 10.0,
            cpu_penalty: 0.2,
            parallel_expansion: 1,
            max_expansions: 200_000,
            disable_regression: false,
        }
    }
}

/// Search statistics (experiment F6).
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct PlannerStats {
    /// States expanded.
    pub expanded: u64,
    /// Successor states generated.
    pub generated: u64,
    /// Deployments rejected by the authorization oracle.
    pub pruned_by_auth: u64,
    /// Components skipped by regression relevance analysis.
    pub pruned_irrelevant: u64,
    /// Successors dropped by the dominance memo before entering the
    /// queue (push-time) or when popped stale (pop-time).
    pub memo_pruned: u64,
}

/// The planning module.
pub struct Planner<'a> {
    registrar: &'a Registrar,
    network: &'a Network,
    oracle: &'a dyn AuthOracle,
    config: PlannerConfig,
}

/// Persistent (shared-tail) list of plan steps: every successor state
/// extends its parent's history with one `Arc` cell instead of cloning the
/// whole prefix. Materialized into a `Vec` only for the winning state.
struct StepList {
    step: PlanStep,
    prev: Option<Arc<StepList>>,
}

impl StepList {
    fn push(prev: &Option<Arc<StepList>>, step: PlanStep) -> Option<Arc<StepList>> {
        Some(Arc::new(StepList {
            step,
            prev: prev.clone(),
        }))
    }

    fn materialize(list: &Option<Arc<StepList>>) -> Vec<PlanStep> {
        let mut out = Vec::new();
        let mut cur = list;
        while let Some(cell) = cur {
            out.push(cell.step.clone());
            cur = &cell.prev;
        }
        out.reverse();
        out
    }
}

#[derive(Clone)]
struct State {
    iface: String,
    node: NodeId,
    props: IfaceProps,
    cost: f64,
    steps: Option<Arc<StepList>>,
    /// CPU reserved by this plan per node; `Arc`-shared across successors
    /// and copied only when a deployment actually changes it.
    cpu_used: Arc<HashMap<NodeId, u32>>,
}

/// Quantized state identity for the dominance memo.
type MemoKey = (String, NodeId, bool, bool);

/// One point on a memo key's Pareto frontier. An entry dominates a
/// candidate state only when it is no worse on *all three* axes — cost,
/// delivered latency, and per-node CPU reservations (pointwise). The CPU
/// axis matters: a cheaper state that has exhausted a node the candidate
/// still needs cannot stand in for it.
struct ParetoEntry {
    cost: f64,
    latency: f64,
    cpu: Arc<HashMap<NodeId, u32>>,
}

/// `a <= b` pointwise over per-node CPU reservations (missing = 0).
fn cpu_leq(a: &HashMap<NodeId, u32>, b: &HashMap<NodeId, u32>) -> bool {
    a.iter().all(|(n, c)| *c <= b.get(n).copied().unwrap_or(0))
}

impl ParetoEntry {
    fn dominates(&self, s: &State) -> bool {
        self.cost <= s.cost && self.latency <= s.props.latency_ms && cpu_leq(&self.cpu, &s.cpu_used)
    }

    fn dominated_by(&self, s: &State) -> bool {
        s.cost <= self.cost && s.props.latency_ms <= self.latency && cpu_leq(&s.cpu_used, &self.cpu)
    }

    fn of(s: &State) -> ParetoEntry {
        ParetoEntry {
            cost: s.cost,
            latency: s.props.latency_ms,
            cpu: s.cpu_used.clone(),
        }
    }
}

impl State {
    fn memo_key(&self) -> MemoKey {
        (
            self.iface.clone(),
            self.node,
            self.props.encrypted,
            self.props.plaintext_exposed,
        )
    }
}

/// Priority-queue wrapper (min-heap by cost).
struct QueueEntry(State);

impl PartialEq for QueueEntry {
    fn eq(&self, other: &Self) -> bool {
        self.0.cost == other.0.cost
    }
}
impl Eq for QueueEntry {}
impl PartialOrd for QueueEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueueEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .0
            .cost
            .partial_cmp(&self.0.cost)
            .unwrap_or(std::cmp::Ordering::Equal)
    }
}

impl<'a> Planner<'a> {
    /// Create a planner over the registrar, network, and oracle.
    pub fn new(
        registrar: &'a Registrar,
        network: &'a Network,
        oracle: &'a dyn AuthOracle,
        config: PlannerConfig,
    ) -> Planner<'a> {
        Planner {
            registrar,
            network,
            oracle,
            config,
        }
    }

    /// Regression pass: interface types that can contribute to the goal.
    /// With `disable_regression` (ablation) every interface type any
    /// component touches is considered relevant.
    fn relevant_types(&self, goal: &Goal) -> HashSet<String> {
        let specs = self.registrar.specs();
        let mut relevant: HashSet<String> = HashSet::new();
        relevant.insert(goal.iface.clone());
        if self.config.disable_regression {
            for spec in &specs {
                if let Some(r) = &spec.requires {
                    relevant.insert(r.clone());
                }
                for p in &spec.provides {
                    relevant.insert(p.iface.clone());
                }
            }
            return relevant;
        }
        loop {
            let mut grew = false;
            for spec in &specs {
                if spec.provides.iter().any(|p| relevant.contains(&p.iface)) {
                    if let Some(req) = &spec.requires {
                        grew |= relevant.insert(req.clone());
                    }
                }
            }
            if !grew {
                return relevant;
            }
        }
    }

    /// Find a plan for `goal`.
    pub fn plan(&self, goal: &Goal) -> Result<(Plan, PlannerStats), PsfError> {
        let plan_start = std::time::Instant::now();
        let mut plan_span = psf_telemetry::span("psf.planner", "plan");
        plan_span
            .field("goal_iface", &goal.iface)
            .field("client_node", goal.client_node.0);
        psf_telemetry::counter!("psf.planner.plans").inc();
        let mut stats = PlannerStats::default();
        let result = self.plan_search(goal, &mut stats);
        psf_telemetry::counter!("psf.planner.expanded").add(stats.expanded);
        psf_telemetry::counter!("psf.planner.generated").add(stats.generated);
        psf_telemetry::counter!("psf.planner.pruned_by_auth").add(stats.pruned_by_auth);
        psf_telemetry::counter!("psf.planner.pruned_irrelevant").add(stats.pruned_irrelevant);
        psf_telemetry::histogram!("psf.planner.plan.us").record_duration(plan_start.elapsed());
        plan_span
            .field("expanded", stats.expanded)
            .field("generated", stats.generated)
            .field("ok", result.is_ok());
        match result {
            Ok(plan) => {
                plan_span
                    .field("steps", plan.steps.len())
                    .field("deployments", plan.deployments());
                Ok((plan, stats))
            }
            Err(e) => {
                psf_telemetry::counter!("psf.planner.failures").inc();
                Err(e)
            }
        }
    }

    fn plan_search(&self, goal: &Goal, stats: &mut PlannerStats) -> Result<Plan, PsfError> {
        if !self.network.node_is_up(goal.client_node) {
            return Err(PsfError::NoPlan(format!(
                "client node {} is down",
                goal.client_node.0
            )));
        }
        let relevant = self.relevant_types(goal);
        let specs: Vec<ComponentSpec> = {
            let all = self.registrar.specs();
            let total = all.len();
            let kept: Vec<ComponentSpec> = all
                .into_iter()
                .filter(|s| s.provides.iter().any(|p| relevant.contains(&p.iface)))
                .collect();
            stats.pruned_irrelevant += (total - kept.len()) as u64;
            kept
        };

        // Initial frontier: already-running instances.
        let mut heap: BinaryHeap<QueueEntry> = BinaryHeap::new();
        for (name, node) in self.registrar.deployed() {
            // A source on a failed node is dead: it cannot seed a plan.
            if !self.network.node_is_up(node) {
                continue;
            }
            let Some(spec) = self.registrar.spec(&name) else {
                continue;
            };
            for provided in &spec.provides {
                if !relevant.contains(&provided.iface) {
                    continue;
                }
                let Some(props) = provided.effect.apply(None) else {
                    continue;
                };
                heap.push(QueueEntry(State {
                    iface: provided.iface.clone(),
                    node,
                    props,
                    cost: 0.0,
                    steps: StepList::push(
                        &None,
                        PlanStep::UseDeployed {
                            spec: name.clone(),
                            node,
                            iface: provided.iface.clone(),
                        },
                    ),
                    cpu_used: Arc::new(HashMap::new()),
                }));
            }
        }
        if heap.is_empty() {
            return Err(PsfError::NoPlan(
                "no running component provides a relevant interface".into(),
            ));
        }

        // Pareto frontier of (cost, latency, cpu) per quantized state key.
        let mut best: HashMap<MemoKey, Vec<ParetoEntry>> = HashMap::new();
        // Failed nodes are not deployment targets.
        let nodes: Vec<NodeId> = self
            .network
            .node_ids()
            .into_iter()
            .filter(|&n| self.network.node_is_up(n))
            .collect();

        while !heap.is_empty() {
            if stats.expanded as usize > self.config.max_expansions {
                // Running out of budget is not proof of unsatisfiability.
                return Err(PsfError::PlannerInternal(
                    "expansion budget exhausted".into(),
                ));
            }
            // Pop up to K states.
            let k = self.config.parallel_expansion.max(1);
            let mut batch = Vec::with_capacity(k);
            while batch.len() < k {
                match heap.pop() {
                    Some(QueueEntry(s)) => batch.push(s),
                    None => break,
                }
            }
            // Goal check at pop time (checked in batch order = cost order).
            for s in &batch {
                if s.node == goal.client_node
                    && s.iface == goal.iface
                    && goal.satisfied_by(&s.props)
                {
                    psf_telemetry::gauge!("psf.planner.memo.entries")
                        .set(best.values().map(Vec::len).sum::<usize>() as i64);
                    return Ok(Plan {
                        steps: StepList::materialize(&s.steps),
                        delivered: s.props.clone(),
                        cost: s.cost,
                    });
                }
            }
            // Dominance filter (pop-time): drop queue entries that went
            // stale while waiting — a cheaper path to the same quantized
            // key was expanded since they were pushed.
            let before = batch.len();
            let batch: Vec<State> = batch
                .into_iter()
                .filter(|s| {
                    let frontier = best.entry(s.memo_key()).or_default();
                    if frontier.iter().any(|e| e.dominates(s)) {
                        false
                    } else {
                        frontier.retain(|e| !e.dominated_by(s));
                        frontier.push(ParetoEntry::of(s));
                        true
                    }
                })
                .collect();
            let pop_pruned = (before - batch.len()) as u64;
            stats.memo_pruned += pop_pruned;
            psf_telemetry::counter!("psf.planner.memo.pruned_pop").add(pop_pruned);
            if batch.is_empty() {
                continue;
            }
            stats.expanded += batch.len() as u64;

            // Expand (in parallel when configured). Workers only *read*
            // the dominance memo (`best` is updated between rounds), and
            // results are joined in batch order — the merge is
            // deterministic for any thread interleaving.
            let specs_ref: &[ComponentSpec] = &specs;
            let nodes_ref: &[NodeId] = &nodes;
            let relevant_ref = &relevant;
            let successors: Vec<(Vec<State>, u64)> = if batch.len() == 1 {
                vec![self.expand(&batch[0], goal, specs_ref, nodes_ref, relevant_ref)]
            } else {
                // Carry the ambient trace context onto the scoped workers:
                // spans opened inside `expand` (proof searches via the
                // authorization oracle) must join the planner's tree, not
                // start orphan roots on each worker thread.
                let trace_ctx = psf_telemetry::TraceContext::current();
                std::thread::scope(|scope| {
                    let handles: Vec<_> = batch
                        .iter()
                        .map(|s| {
                            scope.spawn(move || {
                                let _trace = trace_ctx.map(psf_telemetry::TraceContext::attach);
                                self.expand(s, goal, specs_ref, nodes_ref, relevant_ref)
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("planner expansion thread"))
                        .collect()
                })
            };
            for (succs, auth_pruned) in successors {
                stats.pruned_by_auth += auth_pruned;
                for s in succs {
                    stats.generated += 1;
                    // Push-time dominance memo: never enqueue a successor
                    // already dominated by an expanded state.
                    if let Some(frontier) = best.get(&s.memo_key()) {
                        if frontier.iter().any(|e| e.dominates(&s)) {
                            stats.memo_pruned += 1;
                            psf_telemetry::counter!("psf.planner.memo.pruned_push").inc();
                            continue;
                        }
                    }
                    heap.push(QueueEntry(s));
                }
            }
        }
        psf_telemetry::gauge!("psf.planner.memo.entries")
            .set(best.values().map(Vec::len).sum::<usize>() as i64);
        Err(PsfError::NoPlan(format!(
            "search exhausted after {} expansions",
            stats.expanded
        )))
    }

    fn expand(
        &self,
        s: &State,
        _goal: &Goal,
        specs: &[ComponentSpec],
        nodes: &[NodeId],
        relevant: &HashSet<String>,
    ) -> (Vec<State>, u64) {
        let mut out = Vec::new();
        let mut auth_pruned = 0u64;

        // Operator 1: link traversal to every other node.
        for &m in nodes {
            if m == s.node {
                continue;
            }
            if let Some(path) = self.network.route(s.node, m) {
                let props = s.props.across(&path);
                let steps = StepList::push(
                    &s.steps,
                    PlanStep::Move {
                        iface: s.iface.clone(),
                        from: s.node,
                        to: m,
                        latency_ms: path.latency_ms,
                        secure_path: path.all_secure,
                    },
                );
                out.push(State {
                    iface: s.iface.clone(),
                    node: m,
                    props: props.clone(),
                    cost: s.cost + path.latency_ms,
                    steps,
                    cpu_used: s.cpu_used.clone(),
                });
            }
        }

        // Operator 2: deploy a component at the current node.
        for spec in specs {
            let Some(req) = &spec.requires else {
                continue; // sources only enter via the registrar
            };
            if *req != s.iface {
                continue;
            }
            if let Some(need_enc) = spec.requires_encrypted {
                if s.props.encrypted != need_enc {
                    continue;
                }
            }
            // Capacity: node CPU minus what this plan already reserved.
            let already = *s.cpu_used.get(&s.node).unwrap_or(&0);
            let available = self
                .network
                .node(s.node)
                .map(|n| n.cpu_available())
                .unwrap_or(0);
            if available < already + spec.cpu_cost {
                continue;
            }
            // Authorization constraints (dRBAC).
            if !self.oracle.node_authorized(spec, s.node)
                || !self.oracle.component_authorized(spec, s.node)
            {
                auth_pruned += 1;
                continue;
            }
            for provided in &spec.provides {
                if !relevant.contains(&provided.iface) {
                    continue;
                }
                let Some(props) = provided.effect.apply(Some(&s.props)) else {
                    continue;
                };
                let steps = StepList::push(
                    &s.steps,
                    PlanStep::Deploy {
                        spec: spec.name.clone(),
                        node: s.node,
                        iface_in: Some(s.iface.clone()),
                        iface_out: provided.iface.clone(),
                    },
                );
                // Copy-on-write: only deployments touch the reservation map.
                let mut cpu_used = (*s.cpu_used).clone();
                *cpu_used.entry(s.node).or_insert(0) += spec.cpu_cost;
                out.push(State {
                    iface: provided.iface.clone(),
                    node: s.node,
                    props,
                    cost: s.cost
                        + self.config.deploy_penalty
                        + self.config.cpu_penalty * spec.cpu_cost as f64,
                    steps,
                    cpu_used: Arc::new(cpu_used),
                });
            }
        }
        (out, auth_pruned)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Effect;
    use crate::oracle::PermissiveOracle;
    use psf_netsim::three_site_scenario;

    fn mail_registrar() -> Registrar {
        let r = Registrar::new();
        r.register(ComponentSpec::source("MailServer", "MailI"));
        r.register(
            ComponentSpec::processor("Encryptor", "MailI", "MailI", Effect::Encrypt)
                .requires_encrypted(false)
                .cpu(10),
        );
        r.register(
            ComponentSpec::processor("Decryptor", "MailI", "MailI", Effect::Decrypt)
                .requires_encrypted(true)
                .cpu(10),
        );
        r.register(
            ComponentSpec::processor("ViewMailServer", "MailI", "MailI", Effect::Cache)
                .cpu(20)
                .view_of("MailServer"),
        );
        r
    }

    #[test]
    fn local_client_needs_nothing_extra() {
        let s = three_site_scenario(2);
        let r = mail_registrar();
        r.record_deployed("MailServer", s.ny[0]);
        let planner = Planner::new(&r, &s.network, &PermissiveOracle, PlannerConfig::default());
        // Client in NY on another LAN node: secure path, no deployments.
        let goal = Goal::private("MailI", s.ny[1]);
        let (plan, _) = planner.plan(&goal).unwrap();
        assert_eq!(plan.deployments(), 0);
        assert!(!plan.delivered.plaintext_exposed);
    }

    #[test]
    fn insecure_wan_forces_encryptor_decryptor_pair() {
        let s = three_site_scenario(2);
        let r = mail_registrar();
        r.record_deployed("MailServer", s.ny[0]);
        let planner = Planner::new(&r, &s.network, &PermissiveOracle, PlannerConfig::default());
        let goal = Goal::private("MailI", s.sd[1]);
        let (plan, _) = planner.plan(&goal).unwrap();
        // Privacy across the insecure WAN requires the pair.
        let deploys: Vec<&str> = plan
            .steps
            .iter()
            .filter_map(|st| match st {
                PlanStep::Deploy { spec, .. } => Some(spec.as_str()),
                _ => None,
            })
            .collect();
        assert!(deploys.contains(&"Encryptor"), "plan: {}", plan.render());
        assert!(deploys.contains(&"Decryptor"), "plan: {}", plan.render());
        assert!(!plan.delivered.plaintext_exposed);
        assert!(!plan.delivered.encrypted);
    }

    #[test]
    fn without_privacy_no_pair_is_cheaper() {
        let s = three_site_scenario(2);
        let r = mail_registrar();
        r.record_deployed("MailServer", s.ny[0]);
        let planner = Planner::new(&r, &s.network, &PermissiveOracle, PlannerConfig::default());
        let goal = Goal {
            require_privacy: false,
            ..Goal::private("MailI", s.sd[1])
        };
        let (plan, _) = planner.plan(&goal).unwrap();
        assert_eq!(plan.deployments(), 0, "plan: {}", plan.render());
    }

    #[test]
    fn latency_bound_forces_cache_deployment() {
        let s = three_site_scenario(2);
        let r = mail_registrar();
        r.record_deployed("MailServer", s.ny[0]);
        let planner = Planner::new(&r, &s.network, &PermissiveOracle, PlannerConfig::default());
        // WAN latency is ~40 ms; demand < 10 ms at SD without privacy.
        let goal = Goal {
            iface: "MailI".into(),
            client_node: s.sd[1],
            max_latency_ms: Some(10.0),
            require_privacy: false,
            require_plaintext_delivery: true,
        };
        let (plan, _) = planner.plan(&goal).unwrap();
        let deploys: Vec<&str> = plan
            .steps
            .iter()
            .filter_map(|st| match st {
                PlanStep::Deploy { spec, .. } => Some(spec.as_str()),
                _ => None,
            })
            .collect();
        assert!(
            deploys.contains(&"ViewMailServer"),
            "expected cache: {}",
            plan.render()
        );
        assert!(plan.delivered.latency_ms <= 10.0);
    }

    #[test]
    fn impossible_goal_fails() {
        let s = three_site_scenario(1);
        let r = mail_registrar();
        r.record_deployed("MailServer", s.ny[0]);
        let planner = Planner::new(&r, &s.network, &PermissiveOracle, PlannerConfig::default());
        // Privacy + sub-ms latency at SD with caches that would expose
        // plaintext… cache after decryptor can satisfy it; so instead ask
        // for an interface nobody provides.
        let goal = Goal::private("CalendarI", s.sd[0]);
        assert!(planner.plan(&goal).is_err());
    }

    #[test]
    fn regression_prunes_irrelevant_components() {
        let s = three_site_scenario(1);
        let r = mail_registrar();
        // Unrelated component family.
        r.register(ComponentSpec::source("VideoServer", "VideoI"));
        r.register(ComponentSpec::processor(
            "Transcoder",
            "VideoI",
            "VideoLoI",
            Effect::Identity,
        ));
        r.record_deployed("MailServer", s.ny[0]);
        let planner = Planner::new(&r, &s.network, &PermissiveOracle, PlannerConfig::default());
        let (_, stats) = planner.plan(&Goal::private("MailI", s.ny[0])).unwrap();
        assert!(stats.pruned_irrelevant >= 2);
    }

    #[test]
    fn parallel_expansion_finds_valid_plans() {
        let s = three_site_scenario(3);
        let r = mail_registrar();
        r.record_deployed("MailServer", s.ny[0]);
        for k in [1usize, 2, 4, 8] {
            let cfg = PlannerConfig {
                parallel_expansion: k,
                ..Default::default()
            };
            let planner = Planner::new(&r, &s.network, &PermissiveOracle, cfg);
            let goal = Goal::private("MailI", s.se[2]);
            let (plan, _) = planner.plan(&goal).unwrap();
            assert!(!plan.delivered.plaintext_exposed, "k={k}");
            assert!(!plan.delivered.encrypted, "k={k}");
        }
    }

    #[test]
    fn cpu_exhaustion_blocks_deployment() {
        let s = three_site_scenario(1);
        let r = Registrar::new();
        r.register(ComponentSpec::source("MailServer", "MailI"));
        r.register(ComponentSpec::processor("Hog", "MailI", "HogI", Effect::Identity).cpu(90));
        r.register(ComponentSpec::processor("Hog2", "HogI", "GoalI", Effect::Identity).cpu(90));
        r.record_deployed("MailServer", s.ny[0]);
        let planner = Planner::new(&r, &s.network, &PermissiveOracle, PlannerConfig::default());
        // Two 90-CPU components cannot fit one 100-CPU node; but they can
        // split across NY and SD (insecure link though, no privacy req).
        let goal = Goal {
            iface: "GoalI".into(),
            client_node: s.ny[0],
            max_latency_ms: None,
            require_privacy: false,
            require_plaintext_delivery: false,
        };
        let (plan, _) = planner.plan(&goal).unwrap();
        // The two deployments must land on different nodes.
        let nodes: Vec<NodeId> = plan
            .steps
            .iter()
            .filter_map(|st| match st {
                PlanStep::Deploy { node, .. } => Some(*node),
                _ => None,
            })
            .collect();
        assert_eq!(nodes.len(), 2);
        assert_ne!(nodes[0], nodes[1], "plan: {}", plan.render());
    }
}
