//! The authorization constraint oracle consulted by the planner
//! (paper §3.3): node authorization (including the mapping of node
//! properties onto application-specific properties) and component
//! authorization (mutual: the node must also accept the component).

use crate::model::ComponentSpec;
use psf_drbac::entity::{EntityRegistry, Subject};
use psf_drbac::proof::ProofEngine;
use psf_drbac::repository::Repository;
use psf_drbac::revocation::RevocationBus;
use psf_drbac::{AttrSet, AuthCache, RoleName, SignedDelegation, Timestamp};
use psf_netsim::{Network, NodeId};
use std::collections::HashMap;

/// Answers the planner's two authorization questions.
pub trait AuthOracle: Send + Sync {
    /// Node authorization: may `component` be hosted on `node` (is the
    /// node mappable to the app's required node role, with attributes)?
    fn node_authorized(&self, component: &ComponentSpec, node: NodeId) -> bool;

    /// Component authorization: does the component's credential chain map
    /// to an executable role of the node's domain, with enough CPU
    /// allowance?
    fn component_authorized(&self, component: &ComponentSpec, node: NodeId) -> bool;
}

/// Accepts everything (baseline / unit tests).
pub struct PermissiveOracle;

impl AuthOracle for PermissiveOracle {
    fn node_authorized(&self, _c: &ComponentSpec, _n: NodeId) -> bool {
        true
    }
    fn component_authorized(&self, _c: &ComponentSpec, _n: NodeId) -> bool {
        true
    }
}

/// The dRBAC-backed oracle: proofs over the shared credential world.
pub struct DrbacOracle {
    registry: EntityRegistry,
    repository: Repository,
    bus: RevocationBus,
    network: Network,
    now: Timestamp,
    /// Vendor role subjects for each node (`Comp.NY.PC` etc. are modeled
    /// directly by the node's vendor role, e.g. `Dell.Linux`) — the proof
    /// search starts from this subject.
    node_subjects: HashMap<NodeId, Subject>,
    /// Each node's domain executable role (`Comp.SD.Executable`), used
    /// for component authorization; nodes without one accept anything.
    node_exec_roles: HashMap<NodeId, (RoleName, AttrSet)>,
    /// Credentials presented on behalf of components (their exec-role
    /// chains).
    component_credentials: Vec<SignedDelegation>,
    /// Fast path for the planner's repeated per-(component, node)
    /// authorization queries.
    cache: AuthCache,
}

impl DrbacOracle {
    /// Build an oracle over the shared dRBAC world.
    pub fn new(
        registry: EntityRegistry,
        repository: Repository,
        bus: RevocationBus,
        network: Network,
        now: Timestamp,
    ) -> DrbacOracle {
        DrbacOracle {
            registry,
            repository,
            bus,
            network,
            now,
            node_subjects: HashMap::new(),
            node_exec_roles: HashMap::new(),
            component_credentials: Vec::new(),
            cache: AuthCache::new(),
        }
    }

    /// The oracle's authorization cache (hit/miss stats, manual clear).
    pub fn auth_cache(&self) -> &AuthCache {
        &self.cache
    }

    /// Register the dRBAC subject a node authenticates as (typically its
    /// vendor role holder identity).
    pub fn set_node_subject(&mut self, node: NodeId, subject: Subject) {
        self.node_subjects.insert(node, subject);
    }

    /// Register the executable role (and attribute bounds) enforced by a
    /// node's domain.
    pub fn set_node_exec_role(&mut self, node: NodeId, role: RoleName, attrs: AttrSet) {
        self.node_exec_roles.insert(node, (role, attrs));
    }

    /// Add credentials presented on behalf of components.
    pub fn add_component_credentials(&mut self, creds: Vec<SignedDelegation>) {
        self.component_credentials.extend(creds);
    }

    fn engine(&self) -> ProofEngine<'_> {
        ProofEngine::with_cache(
            &self.registry,
            &self.repository,
            &self.bus,
            self.now,
            &self.cache,
        )
    }
}

impl AuthOracle for DrbacOracle {
    fn node_authorized(&self, component: &ComponentSpec, node: NodeId) -> bool {
        let Some((required_role, required_attrs)) = &component.node_role else {
            return true;
        };
        let Some(subject) = self.node_subjects.get(&node) else {
            return false;
        };
        self.engine()
            .prove_with(subject, required_role, required_attrs, &[])
            .is_ok()
    }

    fn component_authorized(&self, component: &ComponentSpec, node: NodeId) -> bool {
        let Some((exec_role, bounds)) = self.node_exec_roles.get(&node) else {
            return true; // domain imposes no executable policy
        };
        let Some(comp_role) = &component.exec_role else {
            return false; // node demands credentials; component has none
        };
        // The component presents its role; the proof must map it into the
        // node domain's executable role with enough CPU allowance.
        let subject = Subject::Role(comp_role.clone());
        let mut required = bounds.clone();
        // CPU demand: the chain's CPU capacity must cover the component.
        required = required.with(
            "CPU",
            psf_drbac::AttrValue::Capacity(component.cpu_cost as i64),
        );
        let _ = &self.network; // capacity checks live in the planner
        self.engine()
            .prove_with(&subject, exec_role, &required, &self.component_credentials)
            .is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Effect;
    use psf_drbac::entity::Entity;
    use psf_drbac::{AttrValue, DelegationBuilder};
    use psf_netsim::three_site_scenario;

    /// Build the Table 2 world: Mail policy roles, vendor roles, and the
    /// executable-role chains for SD and SE.
    struct T2 {
        oracle: DrbacOracle,
        ny_node: NodeId,
        sd_node: NodeId,
        se_node: NodeId,
        mail: Entity,
        ny: Entity,
        sd: Entity,
    }

    fn table2_world() -> T2 {
        let scenario = three_site_scenario(1);
        let registry = EntityRegistry::new();
        let repo = Repository::new();
        let bus = RevocationBus::new();

        let mail = Entity::with_seed("Mail", b"t2");
        let ny = Entity::with_seed("Comp.NY", b"t2");
        let sd = Entity::with_seed("Comp.SD", b"t2");
        let se = Entity::with_seed("Inc.SE", b"t2");
        let dell = Entity::with_seed("Dell", b"t2");
        let ibm = Entity::with_seed("IBM", b"t2");
        // Node identities.
        let ny_pc = Entity::with_seed("Comp.NY.PC-0", b"t2");
        let sd_pc = Entity::with_seed("Comp.SD.PC-0", b"t2");
        let se_pc = Entity::with_seed("Inc.SE.PC-0", b"t2");
        for e in [&mail, &ny, &sd, &se, &dell, &ibm, &ny_pc, &sd_pc, &se_pc] {
            registry.register(e);
        }

        // (4)-(6): Mail policy maps vendor roles onto Mail.Node.
        repo.publish_at_issuer(
            DelegationBuilder::new(&mail)
                .subject_role(RoleName::new("Dell", "Linux"))
                .role(mail.role("Node"))
                .attr("Secure", AttrValue::set(["true", "false"]))
                .attr("Trust", AttrValue::Range(0, 10))
                .sign(),
        );
        repo.publish_at_issuer(
            DelegationBuilder::new(&mail)
                .subject_role(RoleName::new("Dell", "SuSe"))
                .role(mail.role("Node"))
                .attr("Secure", AttrValue::set(["true", "false"]))
                .attr("Trust", AttrValue::Range(0, 7))
                .sign(),
        );
        repo.publish_at_issuer(
            DelegationBuilder::new(&mail)
                .subject_role(RoleName::new("IBM", "Windows"))
                .role(mail.role("Node"))
                .attr("Secure", AttrValue::set(["false"]))
                .attr("Trust", AttrValue::Range(0, 1))
                .sign(),
        );
        // (7)/(13)/(16): vendors certify the machines.
        repo.publish_at_issuer(
            DelegationBuilder::new(&dell)
                .subject_entity(&ny_pc)
                .role(dell.role("Linux"))
                .sign(),
        );
        repo.publish_at_issuer(
            DelegationBuilder::new(&dell)
                .subject_entity(&sd_pc)
                .role(dell.role("SuSe"))
                .sign(),
        );
        repo.publish_at_issuer(
            DelegationBuilder::new(&ibm)
                .subject_entity(&se_pc)
                .role(ibm.role("Windows"))
                .sign(),
        );
        // (8)-(10): NY certifies the mail components as executables.
        let comp_creds = vec![DelegationBuilder::new(&ny)
            .subject_role(RoleName::new("Mail", "Encryptor"))
            .role(ny.role("Executable"))
            .attr("CPU", AttrValue::Capacity(100))
            .sign()];
        // (14)/(17): SD and SE map NY executables into their own.
        repo.publish_at_issuer(
            DelegationBuilder::new(&sd)
                .subject_role(ny.role("Executable"))
                .role(sd.role("Executable"))
                .attr("CPU", AttrValue::Capacity(80))
                .sign(),
        );
        repo.publish_at_issuer(
            DelegationBuilder::new(&se)
                .subject_role(ny.role("Executable"))
                .role(se.role("Executable"))
                .attr("CPU", AttrValue::Capacity(40))
                .sign(),
        );

        let mut oracle = DrbacOracle::new(registry, repo, bus, scenario.network.clone(), 0);
        oracle.set_node_subject(scenario.ny[0], ny_pc.as_subject());
        oracle.set_node_subject(scenario.sd[0], sd_pc.as_subject());
        oracle.set_node_subject(scenario.se[0], se_pc.as_subject());
        oracle.set_node_exec_role(scenario.sd[0], sd.role("Executable"), AttrSet::new());
        oracle.set_node_exec_role(scenario.se[0], se.role("Executable"), AttrSet::new());
        oracle.add_component_credentials(comp_creds);
        T2 {
            oracle,
            ny_node: scenario.ny[0],
            sd_node: scenario.sd[0],
            se_node: scenario.se[0],
            mail,
            ny,
            sd,
        }
    }

    fn encryptor(t: &T2, cpu: u32, need_secure: bool) -> ComponentSpec {
        let mut attrs = AttrSet::new();
        if need_secure {
            attrs = attrs.with("Secure", AttrValue::set(["true"]));
        }
        ComponentSpec::processor("Encryptor", "MailI", "MailI", Effect::Encrypt)
            .cpu(cpu)
            .exec_role(RoleName::new("Mail", "Encryptor"))
            .node_role(t.mail.role("Node"), attrs)
    }

    #[test]
    fn t2_node_mapping_authorizes_dell_nodes() {
        let t = table2_world();
        let c = encryptor(&t, 10, false);
        // SD node maps (13) → (5): authorized.
        assert!(t.oracle.node_authorized(&c, t.sd_node));
        // NY node maps (7) → (4): authorized.
        assert!(t.oracle.node_authorized(&c, t.ny_node));
        // SE (IBM/Windows) maps to Mail.Node too — but only insecure.
        assert!(t.oracle.node_authorized(&c, t.se_node));
    }

    #[test]
    fn t2_secure_requirement_excludes_windows_nodes() {
        let t = table2_world();
        let c = encryptor(&t, 10, true);
        assert!(t.oracle.node_authorized(&c, t.sd_node));
        // IBM.Windows maps with Secure={false} only (cred 6): the
        // intersection with {true} is empty.
        assert!(!t.oracle.node_authorized(&c, t.se_node));
    }

    #[test]
    fn t2_component_cpu_attenuation() {
        let t = table2_world();
        // NY grants 100; SD attenuates to 80; SE to 40 (creds 8/14/17).
        let small = encryptor(&t, 30, false);
        let medium = encryptor(&t, 60, false);
        let large = encryptor(&t, 90, false);
        // SD accepts ≤ 80.
        assert!(t.oracle.component_authorized(&small, t.sd_node));
        assert!(t.oracle.component_authorized(&medium, t.sd_node));
        assert!(!t.oracle.component_authorized(&large, t.sd_node));
        // SE accepts ≤ 40.
        assert!(t.oracle.component_authorized(&small, t.se_node));
        assert!(!t.oracle.component_authorized(&medium, t.se_node));
    }

    #[test]
    fn component_without_credentials_rejected_where_policy_exists() {
        let t = table2_world();
        let mut c = encryptor(&t, 10, false);
        c.exec_role = None;
        assert!(!t.oracle.component_authorized(&c, t.sd_node));
        // NY imposes no executable policy in this setup.
        assert!(t.oracle.component_authorized(&c, t.ny_node));
    }

    #[test]
    fn unknown_node_not_authorized() {
        let t = table2_world();
        let c = encryptor(&t, 10, false);
        assert!(!t.oracle.node_authorized(&c, NodeId(999)));
        let _ = (&t.ny, &t.sd);
    }
}
