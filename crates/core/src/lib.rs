//! # psf-core
//!
//! The **Partitionable Services Framework** (HPDC'03 §2.1): "PSF relies
//! on four elements: (1) a declarative specification of application and
//! environment characteristics, (2) a monitoring module, (3) a planning
//! module, and (4) a deployment infrastructure."
//!
//! * [`model`] — the declarative component model: components *implement*
//!   and *require* typed interfaces with properties; property transforms
//!   (encrypt / decrypt / cache / gateway) describe how a deployed
//!   component changes interface properties, and nodes/links influence
//!   them in transit.
//! * [`registrar`] — where applications register component specs (and
//!   their *views*, which "enrich the set of components available for
//!   dynamic deployment") and where base interface availability is
//!   recorded.
//! * [`planner`] — a Sekitei-style planner (IPDPS'03) combining
//!   *regression* (backward relevance pruning from the goal) with
//!   *progression* (forward Dijkstra search over interface states),
//!   subject to network properties, node capacity, and dRBAC
//!   authorization; a crossbeam-parallel variant explores the frontier
//!   with worker threads.
//! * [`oracle`] — the authorization constraint oracle: the paper's node
//!   authorization ("map node credentials onto application policy
//!   roles"), and component authorization ("a node accepts a component
//!   only if it recognizes the chain of credentials"), both answered by
//!   dRBAC proof search.
//! * [`deploy`] — the deployment infrastructure: "securely instantiates,
//!   links, and executes the components on the given nodes"; issues each
//!   instantiated component its own credentials and connects pairs with
//!   Switchboard channels.
//! * [`monitor`] — adaptation: watches netsim events and replans when the
//!   environment changes.
//! * [`preflight`] — static plan pre-flight: proves a plan executable
//!   (step chain, templates, CPU, channel authorization) before the
//!   deployer acquires anything; feeds psf-analysis PSF011–PSF013.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod deploy;
pub mod model;
pub mod monitor;
pub mod oracle;
pub mod planner;
pub mod preflight;
pub mod registrar;
pub mod repo_service;
pub mod supervisor;

pub use deploy::{
    AppBundle, DeployFaultPlan, Deployed, Deployer, Deployment, RetryPolicy, RollbackReport,
};
pub use model::{ComponentSpec, Effect, Goal, IfaceProps, Provided};
pub use monitor::{AdaptationLoop, AdaptationOutcome};
pub use oracle::{AuthOracle, DrbacOracle, PermissiveOracle};
pub use planner::{Plan, PlanStep, Planner, PlannerConfig, PlannerStats};
pub use preflight::{preflight_plan, PreflightViolation, PreflightViolationKind};
pub use registrar::Registrar;
pub use repo_service::{serve_repository, RemoteRepository};
pub use supervisor::{Supervisor, SupervisorState, TickOutcome};

/// Errors surfaced by PSF operations.
#[derive(Debug)]
pub enum PsfError {
    /// The planner found no deployment satisfying the goal.
    NoPlan(String),
    /// The planner aborted for an internal reason (expansion budget
    /// exhausted, …): the goal may still be satisfiable.
    PlannerInternal(String),
    /// Deployment failed mid-way.
    DeployFailed(String),
    /// A referenced spec/node/interface does not exist.
    Unknown(String),
}

impl core::fmt::Display for PsfError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PsfError::NoPlan(m) => write!(f, "no valid plan: {m}"),
            PsfError::PlannerInternal(m) => write!(f, "planner aborted: {m}"),
            PsfError::DeployFailed(m) => write!(f, "deployment failed: {m}"),
            PsfError::Unknown(m) => write!(f, "unknown reference: {m}"),
        }
    }
}

impl std::error::Error for PsfError {}
