//! The registrar: where applications register component templates (and
//! view templates) and where the locations of already-running base
//! components are recorded.

use crate::model::ComponentSpec;
use parking_lot::RwLock;
use psf_netsim::NodeId;
use std::collections::HashMap;
use std::sync::Arc;

/// Component/template registry + base interface availability.
#[derive(Clone, Default)]
pub struct Registrar {
    inner: Arc<RwLock<Inner>>,
}

#[derive(Default)]
struct Inner {
    specs: HashMap<String, ComponentSpec>,
    // Already-executing components: (template name, hosting node).
    deployed: Vec<(String, NodeId)>,
}

impl Registrar {
    /// New empty registrar.
    pub fn new() -> Registrar {
        Registrar::default()
    }

    /// Register a component template (or a view template — views "enrich
    /// the set of components available for dynamic deployment").
    pub fn register(&self, spec: ComponentSpec) {
        self.inner.write().specs.insert(spec.name.clone(), spec);
    }

    /// Remove a template (used by the with/without-views ablation, F6).
    pub fn unregister(&self, name: &str) {
        self.inner.write().specs.remove(name);
    }

    /// Record that an instance of `spec` is already running on `node`.
    pub fn record_deployed(&self, spec: impl Into<String>, node: NodeId) {
        self.inner.write().deployed.push((spec.into(), node));
    }

    /// Look up a template.
    pub fn spec(&self, name: &str) -> Option<ComponentSpec> {
        self.inner.read().specs.get(name).cloned()
    }

    /// All registered templates.
    pub fn specs(&self) -> Vec<ComponentSpec> {
        self.inner.read().specs.values().cloned().collect()
    }

    /// All view templates (those with `view_of` set).
    pub fn view_specs(&self) -> Vec<ComponentSpec> {
        self.inner
            .read()
            .specs
            .values()
            .filter(|s| s.view_of.is_some())
            .cloned()
            .collect()
    }

    /// The recorded running instances.
    pub fn deployed(&self) -> Vec<(String, NodeId)> {
        self.inner.read().deployed.clone()
    }

    /// Number of registered templates.
    pub fn len(&self) -> usize {
        self.inner.read().specs.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.inner.read().specs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Effect;

    #[test]
    fn register_lookup_unregister() {
        let r = Registrar::new();
        r.register(ComponentSpec::source("MailServer", "MailI"));
        r.register(
            ComponentSpec::processor("ViewMailServer", "MailI", "MailI", Effect::Cache)
                .view_of("MailServer"),
        );
        assert_eq!(r.len(), 2);
        assert!(r.spec("MailServer").is_some());
        assert_eq!(r.view_specs().len(), 1);
        r.unregister("ViewMailServer");
        assert_eq!(r.view_specs().len(), 0);
    }

    #[test]
    fn deployed_instances_recorded() {
        let r = Registrar::new();
        r.record_deployed("MailServer", NodeId(3));
        assert_eq!(r.deployed(), vec![("MailServer".to_string(), NodeId(3))]);
    }
}
