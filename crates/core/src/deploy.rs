//! The deployment infrastructure (paper §2.1/§4.3): "securely
//! instantiates, links, and executes the components on the given nodes";
//! "once the views are generated, the deployment infrastructure issues to
//! the generated view its own set of credentials, downloads them onto
//! their target nodes, and connects them to other components using secure
//! channels".

use crate::model::Goal;
use crate::planner::{Plan, PlanStep};
use crate::PsfError;
use parking_lot::Mutex;
use psf_drbac::entity::Entity;
use psf_drbac::guard::Guard;
use psf_drbac::SignedDelegation;
use psf_netsim::{Network, NodeId};
use psf_switchboard::{
    pair_in_memory, pair_in_memory_plain, AuthSuite, Authorizer, Channel, ChannelConfig, ClockRef,
};
use psf_views::binding::{InProcessRemote, RemoteCall};
use psf_views::{
    CoherencePolicy, ComponentClass, ComponentInstance, MethodLibrary, ViewInstance, ViewSpec, Vig,
};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// Deterministic 64-bit mixer (splitmix64 finalizer): the source of all
/// "randomness" in fault injection and retry jitter, so a seed fully
/// determines behavior — no wall-clock entropy.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Bounded retry with exponential backoff and deterministic jitter.
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// Total execution attempts (1 = no retry).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles each retry.
    pub base_backoff: Duration,
    /// Cap on any single backoff, jitter included.
    pub max_backoff: Duration,
    /// Seed for the jitter mixer: same seed → same backoff sequence.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(50),
            jitter_seed: 0x5eed,
        }
    }
}

impl RetryPolicy {
    /// Backoff to sleep after failed `attempt` (1-indexed):
    /// `base * 2^(attempt-1)` plus up to +50% deterministic jitter,
    /// capped at `max_backoff`.
    pub fn backoff_for(&self, attempt: u32) -> Duration {
        let exp = self
            .base_backoff
            .saturating_mul(1u32 << (attempt.saturating_sub(1)).min(16));
        let jitter_pct = mix64(self.jitter_seed ^ u64::from(attempt)) % 50;
        let jitter = Duration::from_nanos((exp.as_nanos() as u64 / 100).saturating_mul(jitter_pct));
        (exp + jitter).min(self.max_backoff)
    }
}

/// A deterministic schedule of injected deployment failures, addressed by
/// (attempt, step index). Two combinable modes: explicit [`fail_at`]
/// (DeployFaultPlan::fail_at) entries, and a seeded pseudo-random mode
/// ([`seeded`](DeployFaultPlan::seeded)) that fails each step with a fixed
/// probability, capped at `max_faults` total so a bounded retry can always
/// recover.
#[derive(Clone, Debug, Default)]
pub struct DeployFaultPlan {
    scheduled: Vec<(u32, usize)>,
    seed: Option<u64>,
    probability_pct: u64,
    max_faults: u32,
}

impl DeployFaultPlan {
    /// Fail step `step` (0-indexed) of attempt `attempt` (1-indexed).
    pub fn fail_at(attempt: u32, step: usize) -> DeployFaultPlan {
        DeployFaultPlan::default().and_fail_at(attempt, step)
    }

    /// Add another scheduled failure.
    pub fn and_fail_at(mut self, attempt: u32, step: usize) -> DeployFaultPlan {
        self.scheduled.push((attempt, step));
        self
    }

    /// Seeded random mode: each (attempt, step) fails with
    /// `probability_pct`% probability, derived purely from `seed` — the
    /// same seed always yields the same failures. At most `max_faults`
    /// faults fire per `execute` call; keep it below the retry policy's
    /// `max_attempts` to guarantee an eventually clean attempt.
    pub fn seeded(seed: u64, probability_pct: u64, max_faults: u32) -> DeployFaultPlan {
        DeployFaultPlan {
            scheduled: Vec::new(),
            seed: Some(seed),
            probability_pct: probability_pct.min(100),
            max_faults,
        }
    }

    fn should_fail(&self, attempt: u32, step: usize, fired: u32) -> bool {
        if self
            .scheduled
            .iter()
            .any(|&(a, s)| a == attempt && s == step)
        {
            return true;
        }
        if let Some(seed) = self.seed {
            if fired < self.max_faults {
                let roll = mix64(seed ^ (u64::from(attempt) << 32) ^ step as u64) % 100;
                return roll < self.probability_pct;
            }
        }
        false
    }
}

/// What a rollback undid — the observable proof that a failed attempt
/// released everything it had acquired.
#[derive(Clone, Debug)]
pub struct RollbackReport {
    /// Which attempt failed (1-indexed).
    pub attempt: u32,
    /// The step index at which the attempt failed.
    pub failed_step: usize,
    /// The error that triggered the rollback.
    pub error: String,
    /// Total CPU units released back to their nodes.
    pub released_cpu: u32,
    /// Channels closed (both halves each).
    pub closed_channels: usize,
    /// Credential ids revoked on the `RevocationBus`.
    pub revoked_credential_ids: Vec<String>,
}

/// Factory turning an upstream endpoint into a transformed endpoint
/// (encryptors/decryptors are endpoint middleware in the data plane).
pub type MiddlewareFactory = Arc<dyn Fn(Arc<dyn RemoteCall>) -> Arc<dyn RemoteCall> + Send + Sync>;

/// Everything the deployer needs to turn plan steps into running code.
#[derive(Clone, Default)]
pub struct AppBundle {
    /// Source component classes by template name.
    pub classes: HashMap<String, Arc<ComponentClass>>,
    /// View definitions by template name (templates with `view_of`).
    pub view_specs: HashMap<String, ViewSpec>,
    /// Method bodies for VIG.
    pub library: MethodLibrary,
    /// Data-plane middleware by template name.
    pub middleware: HashMap<String, MiddlewareFactory>,
    /// CPU cost per template (from its [`ComponentSpec`]
    /// (crate::model::ComponentSpec)); used for node reservation at
    /// deployment time.
    pub cpu_costs: HashMap<String, u32>,
}

impl AppBundle {
    /// Empty bundle.
    pub fn new() -> AppBundle {
        AppBundle::default()
    }

    /// Register a source class.
    pub fn class(mut self, name: impl Into<String>, class: Arc<ComponentClass>) -> Self {
        self.classes.insert(name.into(), class);
        self
    }

    /// Register a view template.
    pub fn view(mut self, name: impl Into<String>, spec: ViewSpec) -> Self {
        self.view_specs.insert(name.into(), spec);
        self
    }

    /// Register middleware.
    pub fn middleware_factory(
        mut self,
        name: impl Into<String>,
        factory: MiddlewareFactory,
    ) -> Self {
        self.middleware.insert(name.into(), factory);
        self
    }

    /// Set the VIG method library.
    pub fn with_library(mut self, library: MethodLibrary) -> Self {
        self.library = library;
        self
    }

    /// Record a template's CPU cost (usually from its spec).
    pub fn cpu_cost(mut self, name: impl Into<String>, cost: u32) -> Self {
        self.cpu_costs.insert(name.into(), cost);
        self
    }
}

/// A running artifact produced by one plan step.
pub enum Deployed {
    /// A source component instance.
    Component(Arc<ComponentInstance>),
    /// A VIG-generated view instance.
    View(Arc<ViewInstance>),
    /// A data-plane middleware endpoint.
    Middleware(Arc<dyn RemoteCall>),
}

impl Deployed {
    /// Short kind label.
    pub fn kind(&self) -> &'static str {
        match self {
            Deployed::Component(_) => "component",
            Deployed::View(_) => "view",
            Deployed::Middleware(_) => "middleware",
        }
    }
}

/// The realized deployment: running components + the client's endpoint.
pub struct Deployment {
    /// CPU reservations made on nodes: (node, units).
    pub reservations: Vec<(NodeId, u32)>,
    /// What ran where: (template, node, artifact).
    pub placements: Vec<(String, NodeId, Deployed)>,
    /// Identities issued to instantiated components.
    pub issued_identities: Vec<Entity>,
    /// Credentials issued to instantiated components.
    pub issued_credentials: Vec<SignedDelegation>,
    /// Channels created between nodes (kept alive by the deployment):
    /// (client half — also in use as an endpoint — and server half).
    pub channels: Vec<(Arc<Channel>, Channel)>,
    /// The endpoint the client invokes.
    pub endpoint: Arc<dyn RemoteCall>,
}

impl Deployment {
    /// Number of cross-node channels established.
    pub fn channel_count(&self) -> usize {
        self.channels.len()
    }

    /// Tear the deployment down: close every channel, release CPU
    /// reservations, and revoke the credentials issued to its components
    /// (instances die with their credentials — nothing lingers
    /// authorized).
    pub fn teardown(self, network: Option<&Network>, guard: &Guard) {
        for (client, server) in &self.channels {
            client.close();
            server.close();
        }
        if let Some(net) = network {
            for (node, units) in &self.reservations {
                net.release_cpu(*node, *units);
            }
        }
        guard
            .bus()
            .revoke_all(self.issued_credentials.iter().map(|c| c.id()));
    }
}

/// Wraps a [`ViewInstance`] as a callable endpoint.
pub struct ViewEndpoint(pub Arc<ViewInstance>);

impl RemoteCall for ViewEndpoint {
    fn call_remote(&self, method: &str, args: &[u8]) -> Result<Vec<u8>, String> {
        self.0.invoke(method, args)
    }
    fn transport_label(&self) -> &'static str {
        "view"
    }
}

/// The deployment infrastructure.
pub struct Deployer {
    guard: Arc<Guard>,
    clock: ClockRef,
    bundle: AppBundle,
    network: Option<Network>,
    config: ChannelConfig,
    /// Already-running source instances (shared with the registrar's
    /// `record_deployed` bookkeeping).
    running: Mutex<HashMap<(String, NodeId), Arc<ComponentInstance>>>,
    serial: std::sync::atomic::AtomicU64,
    retry: Mutex<RetryPolicy>,
    fault_plan: Mutex<Option<DeployFaultPlan>>,
    last_rollback: Mutex<Option<RollbackReport>>,
}

/// Everything a single execution attempt has acquired so far; on failure
/// the whole state is rolled back as one transaction.
#[derive(Default)]
struct TxState {
    reservations: Vec<(NodeId, u32)>,
    placements: Vec<(String, NodeId, Deployed)>,
    issued_identities: Vec<Entity>,
    issued_credentials: Vec<SignedDelegation>,
    channels: Vec<(Arc<Channel>, Channel)>,
    step: usize,
}

impl Deployer {
    /// Create a deployer issuing credentials through `guard`.
    pub fn new(guard: Arc<Guard>, clock: ClockRef, bundle: AppBundle) -> Deployer {
        Deployer {
            guard,
            clock,
            bundle,
            network: None,
            config: ChannelConfig {
                heartbeat_interval: None,
                rpc_timeout: std::time::Duration::from_secs(10),
                ..Default::default()
            },
            running: Mutex::new(HashMap::new()),
            serial: std::sync::atomic::AtomicU64::new(1),
            retry: Mutex::new(RetryPolicy::default()),
            fault_plan: Mutex::new(None),
            last_rollback: Mutex::new(None),
        }
    }

    /// Replace the retry policy. Interior mutability so callers that
    /// receive an already-built deployer (e.g. from a scenario builder)
    /// can still tune it.
    pub fn set_retry_policy(&self, policy: RetryPolicy) {
        *self.retry.lock() = policy;
    }

    /// Install (or clear) a fault plan applied to subsequent
    /// [`execute`](Deployer::execute) calls.
    pub fn set_fault_plan(&self, plan: Option<DeployFaultPlan>) {
        *self.fault_plan.lock() = plan;
    }

    /// Report from the most recent rollback, if any attempt has failed.
    pub fn last_rollback(&self) -> Option<RollbackReport> {
        self.last_rollback.lock().clone()
    }

    /// Attach the network so deployments reserve (and teardown releases)
    /// node CPU.
    pub fn with_network(mut self, network: Network) -> Deployer {
        self.network = Some(network);
        self
    }

    /// The guard this deployer issues credentials through (pre-flight
    /// analysis evaluates would-be identities against it).
    pub fn guard(&self) -> &Arc<Guard> {
        &self.guard
    }

    /// The application bundle (pre-flight template resolution).
    pub fn bundle(&self) -> &AppBundle {
        &self.bundle
    }

    /// The attached network, if any.
    pub fn network(&self) -> Option<&Network> {
        self.network.as_ref()
    }

    /// The clock deployments are stamped with.
    pub fn clock(&self) -> &ClockRef {
        &self.clock
    }

    /// Pre-start a source instance on a node (pairs with
    /// `Registrar::record_deployed`).
    pub fn start_source(
        &self,
        template: &str,
        node: NodeId,
    ) -> Result<Arc<ComponentInstance>, PsfError> {
        let class = self
            .bundle
            .classes
            .get(template)
            .ok_or_else(|| PsfError::Unknown(format!("no class for '{template}'")))?;
        let inst = class.instantiate();
        self.running
            .lock()
            .insert((template.to_string(), node), inst.clone());
        Ok(inst)
    }

    /// Fetch a running source instance.
    pub fn source(&self, template: &str, node: NodeId) -> Option<Arc<ComponentInstance>> {
        self.running
            .lock()
            .get(&(template.to_string(), node))
            .cloned()
    }

    /// Issue an identity + component credential for a freshly deployed
    /// artifact ("instantiated components receive their own set of
    /// credentials").
    fn issue_identity(&self, template: &str, node: NodeId) -> (Entity, SignedDelegation) {
        let serial = self
            .serial
            .fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        let entity = self
            .guard
            .create_principal(format!("{template}@node{}#{serial}", node.0));
        let cred = self.guard.publish(
            self.guard
                .issue()
                .subject_entity(&entity)
                .role(self.guard.role("Component"))
                .monitored()
                .serial(serial)
                .sign(),
        );
        (entity, cred)
    }

    /// Execute a plan: instantiate every step, wire channels across
    /// nodes, and return the client's endpoint.
    ///
    /// `secure_channels`: when true, cross-node hops over insecure paths
    /// use full Switchboard channels (mutual auth + AEAD); secure-path
    /// hops use plain channels, mirroring the paper's rmi/switchboard
    /// distinction.
    /// Execution is **transactional**: a failed attempt rolls back every
    /// acquisition it made (CPU reservations released, channels closed,
    /// issued credentials revoked) before the deployer retries under its
    /// [`RetryPolicy`] with deterministic exponential backoff + jitter.
    /// An installed [`DeployFaultPlan`] can fail any (attempt, step) pair
    /// to exercise this path.
    pub fn execute(&self, plan: &Plan, goal: &Goal) -> Result<Deployment, PsfError> {
        let policy = self.retry.lock().clone();
        let fault_plan = self.fault_plan.lock().clone();
        let mut fired = 0u32;
        let mut attempt = 1u32;
        loop {
            let exec_start = std::time::Instant::now();
            let mut exec_span = psf_telemetry::span("psf.deploy", "execute");
            exec_span
                .field("steps", plan.steps.len())
                .field("goal_iface", &goal.iface)
                .field("attempt", attempt);
            psf_telemetry::counter!("psf.deploy.executions").inc();
            let mut tx = TxState::default();
            match self.execute_attempt(
                plan,
                goal,
                attempt,
                fault_plan.as_ref(),
                &mut fired,
                &mut tx,
            ) {
                Ok(endpoint) => {
                    psf_telemetry::histogram!("psf.deploy.execute.us")
                        .record_duration(exec_start.elapsed());
                    psf_telemetry::histogram!("psf.deploy.attempts").record(u64::from(attempt));
                    exec_span
                        .field("placements", tx.placements.len())
                        .field("channels", tx.channels.len())
                        .field("ok", true);
                    return Ok(Deployment {
                        reservations: tx.reservations,
                        placements: tx.placements,
                        issued_identities: tx.issued_identities,
                        issued_credentials: tx.issued_credentials,
                        channels: tx.channels,
                        endpoint,
                    });
                }
                Err(e) => {
                    psf_telemetry::counter!("psf.deploy.failures").inc();
                    psf_telemetry::event(
                        "psf.deploy",
                        "execute.failed",
                        vec![("error", e.to_string()), ("attempt", attempt.to_string())],
                    );
                    exec_span.field("ok", false);
                    let report = self.rollback(tx, attempt, &e);
                    *self.last_rollback.lock() = Some(report);
                    if attempt >= policy.max_attempts {
                        return Err(e);
                    }
                    let backoff = policy.backoff_for(attempt);
                    psf_telemetry::counter!("psf.deploy.retries").inc();
                    psf_telemetry::histogram!("psf.deploy.backoff.us").record_duration(backoff);
                    std::thread::sleep(backoff);
                    attempt += 1;
                }
            }
        }
    }

    /// Undo a partially executed attempt: close its channels, release its
    /// CPU reservations, and revoke every credential it issued — nothing
    /// acquired by a failed attempt outlives it.
    fn rollback(&self, tx: TxState, attempt: u32, error: &PsfError) -> RollbackReport {
        psf_telemetry::counter!("psf.deploy.rollbacks").inc();
        let mut span = psf_telemetry::span("psf.deploy", "rollback");
        for (client, server) in &tx.channels {
            client.close();
            server.close();
        }
        let mut released = 0u32;
        if let Some(net) = &self.network {
            for (node, units) in &tx.reservations {
                net.release_cpu(*node, *units);
                released += units;
            }
        }
        let ids: Vec<String> = tx.issued_credentials.iter().map(|c| c.id()).collect();
        self.guard.bus().revoke_all(&ids);
        span.field("attempt", attempt)
            .field("failed_step", tx.step)
            .field("released_cpu", released)
            .field("closed_channels", tx.channels.len())
            .field("revoked", ids.len());
        RollbackReport {
            attempt,
            failed_step: tx.step,
            error: error.to_string(),
            released_cpu: released,
            closed_channels: tx.channels.len(),
            revoked_credential_ids: ids,
        }
    }

    fn execute_attempt(
        &self,
        plan: &Plan,
        goal: &Goal,
        attempt: u32,
        fault_plan: Option<&DeployFaultPlan>,
        fired: &mut u32,
        tx: &mut TxState,
    ) -> Result<Arc<dyn RemoteCall>, PsfError> {
        let mut endpoint: Option<Arc<dyn RemoteCall>> = None;
        let mut current_node: Option<NodeId> = None;

        for (idx, step) in plan.steps.iter().enumerate() {
            tx.step = idx;
            if let Some(fp) = fault_plan {
                if fp.should_fail(attempt, idx, *fired) {
                    *fired += 1;
                    psf_telemetry::counter!("psf.deploy.faults.injected").inc();
                    return Err(PsfError::DeployFailed(format!(
                        "injected fault: attempt {attempt}, step {idx}"
                    )));
                }
            }
            let step_start = std::time::Instant::now();
            let mut step_span = psf_telemetry::span("psf.deploy", "step");
            match step {
                PlanStep::UseDeployed { spec, node, .. } => {
                    step_span
                        .field("kind", "use_deployed")
                        .field("template", spec)
                        .field("node", node.0);
                }
                PlanStep::Move {
                    from,
                    to,
                    secure_path,
                    ..
                } => {
                    step_span
                        .field("kind", "move")
                        .field("from", from.0)
                        .field("to", to.0)
                        .field("secure_path", secure_path);
                }
                PlanStep::Deploy { spec, node, .. } => {
                    step_span
                        .field("kind", "deploy")
                        .field("template", spec)
                        .field("node", node.0);
                }
            }
            match step {
                PlanStep::UseDeployed { spec, node, .. } => {
                    let inst = self.source(spec, *node).ok_or_else(|| {
                        PsfError::DeployFailed(format!(
                            "source '{spec}' not running on node {}",
                            node.0
                        ))
                    })?;
                    endpoint = Some(InProcessRemote::switchboard(inst));
                    current_node = Some(*node);
                }
                PlanStep::Move {
                    from,
                    to,
                    secure_path,
                    ..
                } => {
                    if current_node != Some(*from) {
                        return Err(PsfError::DeployFailed(
                            "plan moves an interface from the wrong node".into(),
                        ));
                    }
                    let upstream = endpoint
                        .take()
                        .ok_or_else(|| PsfError::DeployFailed("move before any endpoint".into()))?;
                    let (client_side, server_side) =
                        self.make_channel_pair(*from, *to, *secure_path, tx)?;
                    // Serve the upstream endpoint on the provider side.
                    let served = upstream.clone();
                    server_side.register_default_handler(move |method, args| {
                        served.call_remote(method, args)
                    });
                    let client = Arc::new(client_side);
                    endpoint = Some(client.clone());
                    // Keep both halves alive for the deployment's lifetime.
                    tx.channels.push((client, server_side));
                    current_node = Some(*to);
                }
                PlanStep::Deploy { spec, node, .. } => {
                    if current_node != Some(*node) {
                        return Err(PsfError::DeployFailed(
                            "plan deploys a component away from its input".into(),
                        ));
                    }
                    // Reserve node capacity (released at teardown).
                    if let (Some(net), Some(&cost)) =
                        (&self.network, self.bundle.cpu_costs.get(spec))
                    {
                        if cost > 0 && !net.reserve_cpu(*node, cost) {
                            return Err(PsfError::DeployFailed(format!(
                                "node {} lacks {cost} CPU for '{spec}'",
                                node.0
                            )));
                        }
                        if cost > 0 {
                            tx.reservations.push((*node, cost));
                        }
                    }
                    let (entity, cred) = self.issue_identity(spec, *node);
                    tx.issued_identities.push(entity);
                    tx.issued_credentials.push(cred);

                    if let Some(vspec) = self.bundle.view_specs.get(spec) {
                        // VIG path: generate the view against the
                        // original's class and bind it to the upstream.
                        let original_class =
                            self.bundle.classes.get(&vspec.represents).ok_or_else(|| {
                                PsfError::Unknown(format!(
                                    "no class for represented '{}'",
                                    vspec.represents
                                ))
                            })?;
                        let vig = Vig::new(self.bundle.library.clone());
                        let view = vig
                            .generate(original_class, vspec)
                            .map_err(|e| PsfError::DeployFailed(e.to_string()))?;
                        let upstream = endpoint.clone().ok_or_else(|| {
                            PsfError::DeployFailed("view deployed before source".into())
                        })?;
                        let inst = view
                            .instantiate(Some(upstream), CoherencePolicy::WriteThrough, 8, b"")
                            .map_err(PsfError::DeployFailed)?;
                        endpoint = Some(Arc::new(ViewEndpoint(inst.clone())));
                        tx.placements
                            .push((spec.clone(), *node, Deployed::View(inst)));
                    } else if let Some(factory) = self.bundle.middleware.get(spec) {
                        let upstream = endpoint.clone().ok_or_else(|| {
                            PsfError::DeployFailed("middleware before source".into())
                        })?;
                        let wrapped = factory(upstream);
                        endpoint = Some(wrapped.clone());
                        tx.placements
                            .push((spec.clone(), *node, Deployed::Middleware(wrapped)));
                    } else if let Some(class) = self.bundle.classes.get(spec) {
                        let inst = class.instantiate();
                        endpoint = Some(InProcessRemote::switchboard(inst.clone()));
                        tx.placements
                            .push((spec.clone(), *node, Deployed::Component(inst)));
                    } else {
                        return Err(PsfError::Unknown(format!(
                            "no artifact registered for template '{spec}'"
                        )));
                    }
                }
            }
            psf_telemetry::counter!("psf.deploy.steps").inc();
            psf_telemetry::histogram!("psf.deploy.step.us").record_duration(step_start.elapsed());
        }

        let endpoint = endpoint.ok_or_else(|| PsfError::DeployFailed("empty plan".into()))?;
        if current_node != Some(goal.client_node) {
            return Err(PsfError::DeployFailed(
                "plan does not terminate at the client's node".into(),
            ));
        }
        Ok(endpoint)
    }

    /// Create a (client, server) channel pair for a hop; full Switchboard
    /// with mutual dRBAC authorization when the path is insecure, plain
    /// otherwise.
    fn make_channel_pair(
        &self,
        from: NodeId,
        to: NodeId,
        secure_path: bool,
        tx: &mut TxState,
    ) -> Result<(Channel, Channel), PsfError> {
        if secure_path {
            let (a, b) = pair_in_memory_plain(self.config.clone());
            psf_telemetry::counter!("psf.deploy.channels.plain").inc();
            return Ok((a, b));
        }
        // Issue per-endpoint identities and connect with mutual auth.
        // Recorded on the transaction so teardown/rollback revokes them
        // along with the component credentials.
        let (client_entity, client_cred) = self.issue_identity("conn-client", to);
        let (server_entity, server_cred) = self.issue_identity("conn-server", from);
        tx.issued_identities
            .extend([client_entity.clone(), server_entity.clone()]);
        tx.issued_credentials
            .extend([client_cred.clone(), server_cred.clone()]);
        let role = self.guard.role("Component");
        let make_authorizer = || {
            Authorizer::new(
                self.guard.registry().clone(),
                self.guard.repository().clone(),
                self.guard.bus().clone(),
                self.clock.clone(),
                role.clone(),
            )
        };
        let client_suite = AuthSuite::new(
            client_entity.clone(),
            vec![client_cred.clone()],
            make_authorizer(),
        );
        let server_suite = AuthSuite::new(
            server_entity.clone(),
            vec![server_cred.clone()],
            make_authorizer(),
        );
        let (a, b) = pair_in_memory(client_suite, server_suite, self.config.clone())
            .map_err(|e| PsfError::DeployFailed(format!("channel handshake: {e}")))?;
        psf_telemetry::counter!("psf.deploy.channels.secure").inc();
        Ok((a, b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ComponentSpec, Effect, Goal};
    use crate::oracle::PermissiveOracle;
    use crate::planner::{Planner, PlannerConfig};
    use crate::registrar::Registrar;
    use psf_drbac::entity::EntityRegistry;
    use psf_drbac::repository::Repository;
    use psf_drbac::revocation::RevocationBus;
    use psf_netsim::three_site_scenario;
    use psf_views::ExposureType;

    fn counter_class() -> Arc<ComponentClass> {
        ComponentClass::builder("KvStore")
            .interface("KvI", ["put", "get"])
            .field("data", "Map")
            .method("put", "void put(kv)", &["data"], true, |st, args| {
                let kv = String::from_utf8_lossy(args).to_string();
                let mut data = st.get_str("data");
                data.push_str(&kv);
                data.push('\n');
                st.set("data", data);
                Ok(vec![])
            })
            .method("get", "String get()", &["data"], false, |st, _| {
                Ok(st.get("data"))
            })
            .build()
            .unwrap()
    }

    fn test_guard() -> Arc<Guard> {
        Arc::new(Guard::new(
            Entity::with_seed("Deploy.Domain", b"dep"),
            EntityRegistry::new(),
            Repository::new(),
            RevocationBus::new(),
        ))
    }

    #[test]
    fn deploy_simple_plan_end_to_end() {
        let s = three_site_scenario(2);
        let registrar = Registrar::new();
        registrar.register(ComponentSpec::source("KvStore", "KvI"));
        registrar.register(
            ComponentSpec::processor("KvView", "KvI", "KvI", Effect::Cache)
                .view_of("KvStore")
                .cpu(5),
        );
        registrar.record_deployed("KvStore", s.ny[0]);

        let bundle = AppBundle::new().class("KvStore", counter_class()).view(
            "KvView",
            ViewSpec::new("KvView", "KvStore").restrict("KvI", ExposureType::Local),
        );
        let deployer = Deployer::new(test_guard(), ClockRef::new(), bundle);
        deployer.start_source("KvStore", s.ny[0]).unwrap();

        let planner = Planner::new(
            &registrar,
            &s.network,
            &PermissiveOracle,
            PlannerConfig::default(),
        );
        // Low-latency demand in SD forces the view cache there.
        let goal = Goal {
            iface: "KvI".into(),
            client_node: s.sd[0],
            max_latency_ms: Some(10.0),
            require_privacy: false,
            require_plaintext_delivery: true,
        };
        let (plan, _) = planner.plan(&goal).unwrap();
        let deployment = deployer.execute(&plan, &goal).unwrap();

        // The client endpoint works: write through the view, read back.
        deployment.endpoint.call_remote("put", b"k=v").unwrap();
        let got = deployment.endpoint.call_remote("get", b"").unwrap();
        assert_eq!(got, b"k=v\n");

        // The write propagated to the original KvStore in NY (coherence).
        let origin = deployer.source("KvStore", s.ny[0]).unwrap();
        assert_eq!(origin.field("data"), b"k=v\n");

        // Credentials were issued to the instantiated artifacts.
        assert!(!deployment.issued_credentials.is_empty());
        // A cross-node hop exists.
        assert!(deployment.channel_count() >= 1);
    }

    /// CPU available on every node, for leak accounting across attempts.
    fn cpu_snapshot(net: &Network) -> Vec<u32> {
        net.node_ids()
            .into_iter()
            .map(|id| net.node(id).unwrap().cpu_available())
            .collect()
    }

    #[test]
    fn injected_fault_rolls_back_then_retry_succeeds() {
        let s = three_site_scenario(2);
        let registrar = Registrar::new();
        registrar.register(ComponentSpec::source("KvStore", "KvI"));
        registrar.register(
            ComponentSpec::processor("KvView", "KvI", "KvI", Effect::Cache)
                .view_of("KvStore")
                .cpu(5),
        );
        registrar.record_deployed("KvStore", s.ny[0]);

        let bundle = AppBundle::new()
            .class("KvStore", counter_class())
            .view(
                "KvView",
                ViewSpec::new("KvView", "KvStore").restrict("KvI", ExposureType::Local),
            )
            .cpu_cost("KvView", 5);
        let guard = test_guard();
        let deployer =
            Deployer::new(guard.clone(), ClockRef::new(), bundle).with_network(s.network.clone());
        deployer.start_source("KvStore", s.ny[0]).unwrap();

        let planner = Planner::new(
            &registrar,
            &s.network,
            &PermissiveOracle,
            PlannerConfig::default(),
        );
        let goal = Goal {
            iface: "KvI".into(),
            client_node: s.sd[0],
            max_latency_ms: Some(10.0),
            require_privacy: false,
            require_plaintext_delivery: true,
        };
        let (plan, _) = planner.plan(&goal).unwrap();
        assert!(plan.steps.len() >= 2, "need a multi-step plan to fault");

        let before = cpu_snapshot(&s.network);
        // Fail the last step of the first attempt: everything acquired by
        // the earlier steps must be rolled back before the retry.
        deployer.set_fault_plan(Some(DeployFaultPlan::fail_at(1, plan.steps.len() - 1)));
        let deployment = deployer.execute(&plan, &goal).unwrap();

        let report = deployer.last_rollback().expect("a rollback happened");
        assert_eq!(report.attempt, 1);
        assert_eq!(report.failed_step, plan.steps.len() - 1);
        for id in &report.revoked_credential_ids {
            assert!(guard.bus().is_revoked(id), "rollback revokes {id}");
        }
        // The successful attempt's credentials are NOT revoked.
        for cred in &deployment.issued_credentials {
            assert!(!guard.bus().is_revoked(&cred.id()));
        }
        // The endpoint works after recovery.
        deployment.endpoint.call_remote("put", b"k=v").unwrap();

        // Teardown returns the network exactly to its pre-deploy state.
        deployment.teardown(Some(&s.network), &guard);
        assert_eq!(cpu_snapshot(&s.network), before, "no leaked reservations");
    }

    #[test]
    fn exhausted_retries_fail_with_no_leaks() {
        let s = three_site_scenario(2);
        let registrar = Registrar::new();
        registrar.register(ComponentSpec::source("KvStore", "KvI"));
        registrar.register(
            ComponentSpec::processor("KvView", "KvI", "KvI", Effect::Cache)
                .view_of("KvStore")
                .cpu(5),
        );
        registrar.record_deployed("KvStore", s.ny[0]);
        let bundle = AppBundle::new()
            .class("KvStore", counter_class())
            .view(
                "KvView",
                ViewSpec::new("KvView", "KvStore").restrict("KvI", ExposureType::Local),
            )
            .cpu_cost("KvView", 5);
        let guard = test_guard();
        let deployer =
            Deployer::new(guard.clone(), ClockRef::new(), bundle).with_network(s.network.clone());
        deployer.start_source("KvStore", s.ny[0]).unwrap();
        let planner = Planner::new(
            &registrar,
            &s.network,
            &PermissiveOracle,
            PlannerConfig::default(),
        );
        let goal = Goal {
            iface: "KvI".into(),
            client_node: s.sd[0],
            max_latency_ms: Some(10.0),
            require_privacy: false,
            require_plaintext_delivery: true,
        };
        let (plan, _) = planner.plan(&goal).unwrap();
        let last = plan.steps.len() - 1;

        let before = cpu_snapshot(&s.network);
        // Fault every attempt: execution must give up after max_attempts,
        // leaving zero residue.
        deployer.set_fault_plan(Some(
            DeployFaultPlan::fail_at(1, last)
                .and_fail_at(2, last)
                .and_fail_at(3, last),
        ));
        deployer.set_retry_policy(RetryPolicy {
            base_backoff: Duration::from_micros(100),
            ..RetryPolicy::default()
        });
        let err = match deployer.execute(&plan, &goal) {
            Err(e) => e,
            Ok(_) => panic!("all attempts faulted — execute must fail"),
        };
        assert!(matches!(err, PsfError::DeployFailed(_)));
        assert_eq!(deployer.last_rollback().unwrap().attempt, 3);
        assert_eq!(cpu_snapshot(&s.network), before, "no leaked reservations");
    }

    #[test]
    fn seeded_fault_plan_is_deterministic_and_bounded() {
        let a = DeployFaultPlan::seeded(42, 100, 2);
        let b = DeployFaultPlan::seeded(42, 100, 2);
        for attempt in 1..4u32 {
            for step in 0..5usize {
                assert_eq!(
                    a.should_fail(attempt, step, 0),
                    b.should_fail(attempt, step, 0),
                    "same seed, same verdict"
                );
            }
        }
        // At 100% probability every step fails — until the cap is hit.
        assert!(a.should_fail(1, 0, 0));
        assert!(a.should_fail(1, 0, 1));
        assert!(!a.should_fail(1, 0, 2), "max_faults caps random faults");
    }

    #[test]
    fn backoff_is_deterministic_exponential_and_capped() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff_for(1), p.backoff_for(1), "deterministic");
        assert!(p.backoff_for(1) >= p.base_backoff);
        // Jitter adds at most +50% to the exponential base.
        assert!(p.backoff_for(2) <= Duration::from_millis(3));
        for attempt in 1..20u32 {
            assert!(p.backoff_for(attempt) <= p.max_backoff, "capped");
        }
        let other = RetryPolicy {
            jitter_seed: 0xfeed,
            ..RetryPolicy::default()
        };
        // Different seeds de-synchronize retry storms (usually differ).
        let differs = (1..8u32).any(|a| p.backoff_for(a) != other.backoff_for(a));
        assert!(differs);
    }

    #[test]
    fn deploy_fails_for_unknown_template() {
        let s = three_site_scenario(1);
        let registrar = Registrar::new();
        registrar.register(ComponentSpec::source("Ghost", "GhostI"));
        registrar.record_deployed("Ghost", s.ny[0]);
        let deployer = Deployer::new(test_guard(), ClockRef::new(), AppBundle::new());
        let planner = Planner::new(
            &registrar,
            &s.network,
            &PermissiveOracle,
            PlannerConfig::default(),
        );
        let goal = Goal {
            iface: "GhostI".into(),
            client_node: s.ny[0],
            max_latency_ms: None,
            require_privacy: false,
            require_plaintext_delivery: false,
        };
        let (plan, _) = planner.plan(&goal).unwrap();
        assert!(deployer.execute(&plan, &goal).is_err());
    }

    #[test]
    fn middleware_is_wired_into_the_endpoint_chain() {
        let s = three_site_scenario(1);
        let registrar = Registrar::new();
        registrar.register(ComponentSpec::source("KvStore", "KvI"));
        registrar.register(ComponentSpec::processor(
            "Shouter",
            "KvI",
            "LoudKvI",
            Effect::Identity,
        ));
        registrar.record_deployed("KvStore", s.ny[0]);

        struct Upper(Arc<dyn RemoteCall>);
        impl RemoteCall for Upper {
            fn call_remote(&self, m: &str, a: &[u8]) -> Result<Vec<u8>, String> {
                let out = self.0.call_remote(m, a)?;
                Ok(out.to_ascii_uppercase())
            }
            fn transport_label(&self) -> &'static str {
                "middleware"
            }
        }
        let bundle = AppBundle::new()
            .class("KvStore", counter_class())
            .middleware_factory("Shouter", Arc::new(|up| Arc::new(Upper(up))));
        let deployer = Deployer::new(test_guard(), ClockRef::new(), bundle);
        deployer.start_source("KvStore", s.ny[0]).unwrap();

        let planner = Planner::new(
            &registrar,
            &s.network,
            &PermissiveOracle,
            PlannerConfig::default(),
        );
        let goal = Goal {
            iface: "LoudKvI".into(),
            client_node: s.ny[0],
            max_latency_ms: None,
            require_privacy: false,
            require_plaintext_delivery: false,
        };
        let (plan, _) = planner.plan(&goal).unwrap();
        let deployment = deployer.execute(&plan, &goal).unwrap();
        deployment
            .endpoint
            .call_remote("put", b"hello=world")
            .unwrap();
        let got = deployment.endpoint.call_remote("get", b"").unwrap();
        assert_eq!(got, b"HELLO=WORLD\n");
    }
}
