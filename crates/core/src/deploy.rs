//! The deployment infrastructure (paper §2.1/§4.3): "securely
//! instantiates, links, and executes the components on the given nodes";
//! "once the views are generated, the deployment infrastructure issues to
//! the generated view its own set of credentials, downloads them onto
//! their target nodes, and connects them to other components using secure
//! channels".

use crate::model::Goal;
use crate::planner::{Plan, PlanStep};
use crate::PsfError;
use parking_lot::Mutex;
use psf_drbac::entity::Entity;
use psf_drbac::guard::Guard;
use psf_drbac::SignedDelegation;
use psf_netsim::{Network, NodeId};
use psf_switchboard::{
    pair_in_memory, pair_in_memory_plain, AuthSuite, Authorizer, Channel, ChannelConfig, ClockRef,
};
use psf_views::binding::{InProcessRemote, RemoteCall};
use psf_views::{
    CoherencePolicy, ComponentClass, ComponentInstance, MethodLibrary, ViewInstance, ViewSpec, Vig,
};
use std::collections::HashMap;
use std::sync::Arc;

/// Factory turning an upstream endpoint into a transformed endpoint
/// (encryptors/decryptors are endpoint middleware in the data plane).
pub type MiddlewareFactory = Arc<dyn Fn(Arc<dyn RemoteCall>) -> Arc<dyn RemoteCall> + Send + Sync>;

/// Everything the deployer needs to turn plan steps into running code.
#[derive(Clone, Default)]
pub struct AppBundle {
    /// Source component classes by template name.
    pub classes: HashMap<String, Arc<ComponentClass>>,
    /// View definitions by template name (templates with `view_of`).
    pub view_specs: HashMap<String, ViewSpec>,
    /// Method bodies for VIG.
    pub library: MethodLibrary,
    /// Data-plane middleware by template name.
    pub middleware: HashMap<String, MiddlewareFactory>,
    /// CPU cost per template (from its [`ComponentSpec`]
    /// (crate::model::ComponentSpec)); used for node reservation at
    /// deployment time.
    pub cpu_costs: HashMap<String, u32>,
}

impl AppBundle {
    /// Empty bundle.
    pub fn new() -> AppBundle {
        AppBundle::default()
    }

    /// Register a source class.
    pub fn class(mut self, name: impl Into<String>, class: Arc<ComponentClass>) -> Self {
        self.classes.insert(name.into(), class);
        self
    }

    /// Register a view template.
    pub fn view(mut self, name: impl Into<String>, spec: ViewSpec) -> Self {
        self.view_specs.insert(name.into(), spec);
        self
    }

    /// Register middleware.
    pub fn middleware_factory(
        mut self,
        name: impl Into<String>,
        factory: MiddlewareFactory,
    ) -> Self {
        self.middleware.insert(name.into(), factory);
        self
    }

    /// Set the VIG method library.
    pub fn with_library(mut self, library: MethodLibrary) -> Self {
        self.library = library;
        self
    }

    /// Record a template's CPU cost (usually from its spec).
    pub fn cpu_cost(mut self, name: impl Into<String>, cost: u32) -> Self {
        self.cpu_costs.insert(name.into(), cost);
        self
    }
}

/// A running artifact produced by one plan step.
pub enum Deployed {
    /// A source component instance.
    Component(Arc<ComponentInstance>),
    /// A VIG-generated view instance.
    View(Arc<ViewInstance>),
    /// A data-plane middleware endpoint.
    Middleware(Arc<dyn RemoteCall>),
}

impl Deployed {
    /// Short kind label.
    pub fn kind(&self) -> &'static str {
        match self {
            Deployed::Component(_) => "component",
            Deployed::View(_) => "view",
            Deployed::Middleware(_) => "middleware",
        }
    }
}

/// The realized deployment: running components + the client's endpoint.
pub struct Deployment {
    /// CPU reservations made on nodes: (node, units).
    pub reservations: Vec<(NodeId, u32)>,
    /// What ran where: (template, node, artifact).
    pub placements: Vec<(String, NodeId, Deployed)>,
    /// Identities issued to instantiated components.
    pub issued_identities: Vec<Entity>,
    /// Credentials issued to instantiated components.
    pub issued_credentials: Vec<SignedDelegation>,
    /// Channels created between nodes (kept alive by the deployment):
    /// (client half — also in use as an endpoint — and server half).
    pub channels: Vec<(Arc<Channel>, Channel)>,
    /// The endpoint the client invokes.
    pub endpoint: Arc<dyn RemoteCall>,
}

impl Deployment {
    /// Number of cross-node channels established.
    pub fn channel_count(&self) -> usize {
        self.channels.len()
    }

    /// Tear the deployment down: close every channel, release CPU
    /// reservations, and revoke the credentials issued to its components
    /// (instances die with their credentials — nothing lingers
    /// authorized).
    pub fn teardown(self, network: Option<&Network>, guard: &Guard) {
        for (client, server) in &self.channels {
            client.close();
            server.close();
        }
        if let Some(net) = network {
            for (node, units) in &self.reservations {
                net.release_cpu(*node, *units);
            }
        }
        for cred in &self.issued_credentials {
            guard.bus().revoke(&cred.id());
        }
    }
}

/// Wraps a [`ViewInstance`] as a callable endpoint.
pub struct ViewEndpoint(pub Arc<ViewInstance>);

impl RemoteCall for ViewEndpoint {
    fn call_remote(&self, method: &str, args: &[u8]) -> Result<Vec<u8>, String> {
        self.0.invoke(method, args)
    }
    fn transport_label(&self) -> &'static str {
        "view"
    }
}

/// The deployment infrastructure.
pub struct Deployer {
    guard: Arc<Guard>,
    clock: ClockRef,
    bundle: AppBundle,
    network: Option<Network>,
    config: ChannelConfig,
    /// Already-running source instances (shared with the registrar's
    /// `record_deployed` bookkeeping).
    running: Mutex<HashMap<(String, NodeId), Arc<ComponentInstance>>>,
    serial: std::sync::atomic::AtomicU64,
}

impl Deployer {
    /// Create a deployer issuing credentials through `guard`.
    pub fn new(guard: Arc<Guard>, clock: ClockRef, bundle: AppBundle) -> Deployer {
        Deployer {
            guard,
            clock,
            bundle,
            network: None,
            config: ChannelConfig {
                heartbeat_interval: None,
                rpc_timeout: std::time::Duration::from_secs(10),
            },
            running: Mutex::new(HashMap::new()),
            serial: std::sync::atomic::AtomicU64::new(1),
        }
    }

    /// Attach the network so deployments reserve (and teardown releases)
    /// node CPU.
    pub fn with_network(mut self, network: Network) -> Deployer {
        self.network = Some(network);
        self
    }

    /// Pre-start a source instance on a node (pairs with
    /// `Registrar::record_deployed`).
    pub fn start_source(
        &self,
        template: &str,
        node: NodeId,
    ) -> Result<Arc<ComponentInstance>, PsfError> {
        let class = self
            .bundle
            .classes
            .get(template)
            .ok_or_else(|| PsfError::Unknown(format!("no class for '{template}'")))?;
        let inst = class.instantiate();
        self.running
            .lock()
            .insert((template.to_string(), node), inst.clone());
        Ok(inst)
    }

    /// Fetch a running source instance.
    pub fn source(&self, template: &str, node: NodeId) -> Option<Arc<ComponentInstance>> {
        self.running
            .lock()
            .get(&(template.to_string(), node))
            .cloned()
    }

    /// Issue an identity + component credential for a freshly deployed
    /// artifact ("instantiated components receive their own set of
    /// credentials").
    fn issue_identity(&self, template: &str, node: NodeId) -> (Entity, SignedDelegation) {
        let serial = self
            .serial
            .fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        let entity = self
            .guard
            .create_principal(format!("{template}@node{}#{serial}", node.0));
        let cred = self.guard.publish(
            self.guard
                .issue()
                .subject_entity(&entity)
                .role(self.guard.role("Component"))
                .monitored()
                .serial(serial)
                .sign(),
        );
        (entity, cred)
    }

    /// Execute a plan: instantiate every step, wire channels across
    /// nodes, and return the client's endpoint.
    ///
    /// `secure_channels`: when true, cross-node hops over insecure paths
    /// use full Switchboard channels (mutual auth + AEAD); secure-path
    /// hops use plain channels, mirroring the paper's rmi/switchboard
    /// distinction.
    pub fn execute(&self, plan: &Plan, goal: &Goal) -> Result<Deployment, PsfError> {
        let exec_start = std::time::Instant::now();
        let mut exec_span = psf_telemetry::span("psf.deploy", "execute");
        exec_span
            .field("steps", plan.steps.len())
            .field("goal_iface", &goal.iface);
        psf_telemetry::counter!("psf.deploy.executions").inc();
        let result = self.execute_steps(plan, goal);
        match &result {
            Ok(d) => {
                psf_telemetry::histogram!("psf.deploy.execute.us")
                    .record_duration(exec_start.elapsed());
                exec_span
                    .field("placements", d.placements.len())
                    .field("channels", d.channel_count())
                    .field("ok", true);
            }
            Err(e) => {
                psf_telemetry::counter!("psf.deploy.failures").inc();
                psf_telemetry::event(
                    "psf.deploy",
                    "execute.failed",
                    vec![("error", e.to_string())],
                );
                exec_span.field("ok", false);
            }
        }
        result
    }

    fn execute_steps(&self, plan: &Plan, goal: &Goal) -> Result<Deployment, PsfError> {
        let mut placements = Vec::new();
        let mut issued_identities = Vec::new();
        let mut issued_credentials = Vec::new();
        let mut channels = Vec::new();
        let mut reservations: Vec<(NodeId, u32)> = Vec::new();

        let mut endpoint: Option<Arc<dyn RemoteCall>> = None;
        let mut current_node: Option<NodeId> = None;

        for step in &plan.steps {
            let step_start = std::time::Instant::now();
            let mut step_span = psf_telemetry::span("psf.deploy", "step");
            match step {
                PlanStep::UseDeployed { spec, node, .. } => {
                    step_span
                        .field("kind", "use_deployed")
                        .field("template", spec)
                        .field("node", node.0);
                }
                PlanStep::Move {
                    from,
                    to,
                    secure_path,
                    ..
                } => {
                    step_span
                        .field("kind", "move")
                        .field("from", from.0)
                        .field("to", to.0)
                        .field("secure_path", secure_path);
                }
                PlanStep::Deploy { spec, node, .. } => {
                    step_span
                        .field("kind", "deploy")
                        .field("template", spec)
                        .field("node", node.0);
                }
            }
            match step {
                PlanStep::UseDeployed { spec, node, .. } => {
                    let inst = self.source(spec, *node).ok_or_else(|| {
                        PsfError::DeployFailed(format!(
                            "source '{spec}' not running on node {}",
                            node.0
                        ))
                    })?;
                    endpoint = Some(InProcessRemote::switchboard(inst));
                    current_node = Some(*node);
                }
                PlanStep::Move {
                    from,
                    to,
                    secure_path,
                    ..
                } => {
                    if current_node != Some(*from) {
                        return Err(PsfError::DeployFailed(
                            "plan moves an interface from the wrong node".into(),
                        ));
                    }
                    let upstream = endpoint
                        .take()
                        .ok_or_else(|| PsfError::DeployFailed("move before any endpoint".into()))?;
                    let (client_side, server_side) =
                        self.make_channel_pair(*from, *to, *secure_path)?;
                    // Serve the upstream endpoint on the provider side.
                    let served = upstream.clone();
                    server_side.register_default_handler(move |method, args| {
                        served.call_remote(method, args)
                    });
                    let client = Arc::new(client_side);
                    endpoint = Some(client.clone());
                    // Keep both halves alive for the deployment's lifetime.
                    channels.push((client, server_side));
                    current_node = Some(*to);
                }
                PlanStep::Deploy { spec, node, .. } => {
                    if current_node != Some(*node) {
                        return Err(PsfError::DeployFailed(
                            "plan deploys a component away from its input".into(),
                        ));
                    }
                    // Reserve node capacity (released at teardown).
                    if let (Some(net), Some(&cost)) =
                        (&self.network, self.bundle.cpu_costs.get(spec))
                    {
                        if cost > 0 && !net.reserve_cpu(*node, cost) {
                            return Err(PsfError::DeployFailed(format!(
                                "node {} lacks {cost} CPU for '{spec}'",
                                node.0
                            )));
                        }
                        if cost > 0 {
                            reservations.push((*node, cost));
                        }
                    }
                    let (entity, cred) = self.issue_identity(spec, *node);
                    issued_identities.push(entity);
                    issued_credentials.push(cred);

                    if let Some(vspec) = self.bundle.view_specs.get(spec) {
                        // VIG path: generate the view against the
                        // original's class and bind it to the upstream.
                        let original_class =
                            self.bundle.classes.get(&vspec.represents).ok_or_else(|| {
                                PsfError::Unknown(format!(
                                    "no class for represented '{}'",
                                    vspec.represents
                                ))
                            })?;
                        let vig = Vig::new(self.bundle.library.clone());
                        let view = vig
                            .generate(original_class, vspec)
                            .map_err(|e| PsfError::DeployFailed(e.to_string()))?;
                        let upstream = endpoint.clone().ok_or_else(|| {
                            PsfError::DeployFailed("view deployed before source".into())
                        })?;
                        let inst = view
                            .instantiate(Some(upstream), CoherencePolicy::WriteThrough, 8, b"")
                            .map_err(PsfError::DeployFailed)?;
                        endpoint = Some(Arc::new(ViewEndpoint(inst.clone())));
                        placements.push((spec.clone(), *node, Deployed::View(inst)));
                    } else if let Some(factory) = self.bundle.middleware.get(spec) {
                        let upstream = endpoint.clone().ok_or_else(|| {
                            PsfError::DeployFailed("middleware before source".into())
                        })?;
                        let wrapped = factory(upstream);
                        endpoint = Some(wrapped.clone());
                        placements.push((spec.clone(), *node, Deployed::Middleware(wrapped)));
                    } else if let Some(class) = self.bundle.classes.get(spec) {
                        let inst = class.instantiate();
                        endpoint = Some(InProcessRemote::switchboard(inst.clone()));
                        placements.push((spec.clone(), *node, Deployed::Component(inst)));
                    } else {
                        return Err(PsfError::Unknown(format!(
                            "no artifact registered for template '{spec}'"
                        )));
                    }
                }
            }
            psf_telemetry::counter!("psf.deploy.steps").inc();
            psf_telemetry::histogram!("psf.deploy.step.us").record_duration(step_start.elapsed());
        }

        let endpoint = endpoint.ok_or_else(|| PsfError::DeployFailed("empty plan".into()))?;
        if current_node != Some(goal.client_node) {
            return Err(PsfError::DeployFailed(
                "plan does not terminate at the client's node".into(),
            ));
        }
        Ok(Deployment {
            reservations,
            placements,
            issued_identities,
            issued_credentials,
            channels,
            endpoint,
        })
    }

    /// Create a (client, server) channel pair for a hop; full Switchboard
    /// with mutual dRBAC authorization when the path is insecure, plain
    /// otherwise.
    fn make_channel_pair(
        &self,
        from: NodeId,
        to: NodeId,
        secure_path: bool,
    ) -> Result<(Channel, Channel), PsfError> {
        if secure_path {
            let (a, b) = pair_in_memory_plain(self.config.clone());
            psf_telemetry::counter!("psf.deploy.channels.plain").inc();
            return Ok((a, b));
        }
        // Issue per-endpoint identities and connect with mutual auth.
        let (client_entity, client_cred) = self.issue_identity("conn-client", to);
        let (server_entity, server_cred) = self.issue_identity("conn-server", from);
        let role = self.guard.role("Component");
        let make_authorizer = || {
            Authorizer::new(
                self.guard.registry().clone(),
                self.guard.repository().clone(),
                self.guard.bus().clone(),
                self.clock.clone(),
                role.clone(),
            )
        };
        let client_suite = AuthSuite::new(
            client_entity.clone(),
            vec![client_cred.clone()],
            make_authorizer(),
        );
        let server_suite = AuthSuite::new(
            server_entity.clone(),
            vec![server_cred.clone()],
            make_authorizer(),
        );
        let (a, b) = pair_in_memory(client_suite, server_suite, self.config.clone())
            .map_err(|e| PsfError::DeployFailed(format!("channel handshake: {e}")))?;
        psf_telemetry::counter!("psf.deploy.channels.secure").inc();
        Ok((a, b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ComponentSpec, Effect, Goal};
    use crate::oracle::PermissiveOracle;
    use crate::planner::{Planner, PlannerConfig};
    use crate::registrar::Registrar;
    use psf_drbac::entity::EntityRegistry;
    use psf_drbac::repository::Repository;
    use psf_drbac::revocation::RevocationBus;
    use psf_netsim::three_site_scenario;
    use psf_views::ExposureType;

    fn counter_class() -> Arc<ComponentClass> {
        ComponentClass::builder("KvStore")
            .interface("KvI", ["put", "get"])
            .field("data", "Map")
            .method("put", "void put(kv)", &["data"], true, |st, args| {
                let kv = String::from_utf8_lossy(args).to_string();
                let mut data = st.get_str("data");
                data.push_str(&kv);
                data.push('\n');
                st.set("data", data);
                Ok(vec![])
            })
            .method("get", "String get()", &["data"], false, |st, _| {
                Ok(st.get("data"))
            })
            .build()
            .unwrap()
    }

    fn test_guard() -> Arc<Guard> {
        Arc::new(Guard::new(
            Entity::with_seed("Deploy.Domain", b"dep"),
            EntityRegistry::new(),
            Repository::new(),
            RevocationBus::new(),
        ))
    }

    #[test]
    fn deploy_simple_plan_end_to_end() {
        let s = three_site_scenario(2);
        let registrar = Registrar::new();
        registrar.register(ComponentSpec::source("KvStore", "KvI"));
        registrar.register(
            ComponentSpec::processor("KvView", "KvI", "KvI", Effect::Cache)
                .view_of("KvStore")
                .cpu(5),
        );
        registrar.record_deployed("KvStore", s.ny[0]);

        let bundle = AppBundle::new().class("KvStore", counter_class()).view(
            "KvView",
            ViewSpec::new("KvView", "KvStore").restrict("KvI", ExposureType::Local),
        );
        let deployer = Deployer::new(test_guard(), ClockRef::new(), bundle);
        deployer.start_source("KvStore", s.ny[0]).unwrap();

        let planner = Planner::new(
            &registrar,
            &s.network,
            &PermissiveOracle,
            PlannerConfig::default(),
        );
        // Low-latency demand in SD forces the view cache there.
        let goal = Goal {
            iface: "KvI".into(),
            client_node: s.sd[0],
            max_latency_ms: Some(10.0),
            require_privacy: false,
            require_plaintext_delivery: true,
        };
        let (plan, _) = planner.plan(&goal).unwrap();
        let deployment = deployer.execute(&plan, &goal).unwrap();

        // The client endpoint works: write through the view, read back.
        deployment.endpoint.call_remote("put", b"k=v").unwrap();
        let got = deployment.endpoint.call_remote("get", b"").unwrap();
        assert_eq!(got, b"k=v\n");

        // The write propagated to the original KvStore in NY (coherence).
        let origin = deployer.source("KvStore", s.ny[0]).unwrap();
        assert_eq!(origin.field("data"), b"k=v\n");

        // Credentials were issued to the instantiated artifacts.
        assert!(!deployment.issued_credentials.is_empty());
        // A cross-node hop exists.
        assert!(deployment.channel_count() >= 1);
    }

    #[test]
    fn deploy_fails_for_unknown_template() {
        let s = three_site_scenario(1);
        let registrar = Registrar::new();
        registrar.register(ComponentSpec::source("Ghost", "GhostI"));
        registrar.record_deployed("Ghost", s.ny[0]);
        let deployer = Deployer::new(test_guard(), ClockRef::new(), AppBundle::new());
        let planner = Planner::new(
            &registrar,
            &s.network,
            &PermissiveOracle,
            PlannerConfig::default(),
        );
        let goal = Goal {
            iface: "GhostI".into(),
            client_node: s.ny[0],
            max_latency_ms: None,
            require_privacy: false,
            require_plaintext_delivery: false,
        };
        let (plan, _) = planner.plan(&goal).unwrap();
        assert!(deployer.execute(&plan, &goal).is_err());
    }

    #[test]
    fn middleware_is_wired_into_the_endpoint_chain() {
        let s = three_site_scenario(1);
        let registrar = Registrar::new();
        registrar.register(ComponentSpec::source("KvStore", "KvI"));
        registrar.register(ComponentSpec::processor(
            "Shouter",
            "KvI",
            "LoudKvI",
            Effect::Identity,
        ));
        registrar.record_deployed("KvStore", s.ny[0]);

        struct Upper(Arc<dyn RemoteCall>);
        impl RemoteCall for Upper {
            fn call_remote(&self, m: &str, a: &[u8]) -> Result<Vec<u8>, String> {
                let out = self.0.call_remote(m, a)?;
                Ok(out.to_ascii_uppercase())
            }
            fn transport_label(&self) -> &'static str {
                "middleware"
            }
        }
        let bundle = AppBundle::new()
            .class("KvStore", counter_class())
            .middleware_factory("Shouter", Arc::new(|up| Arc::new(Upper(up))));
        let deployer = Deployer::new(test_guard(), ClockRef::new(), bundle);
        deployer.start_source("KvStore", s.ny[0]).unwrap();

        let planner = Planner::new(
            &registrar,
            &s.network,
            &PermissiveOracle,
            PlannerConfig::default(),
        );
        let goal = Goal {
            iface: "LoudKvI".into(),
            client_node: s.ny[0],
            max_latency_ms: None,
            require_privacy: false,
            require_plaintext_delivery: false,
        };
        let (plan, _) = planner.plan(&goal).unwrap();
        let deployment = deployer.execute(&plan, &goal).unwrap();
        deployment
            .endpoint
            .call_remote("put", b"hello=world")
            .unwrap();
        let got = deployment.endpoint.call_remote("get", b"").unwrap();
        assert_eq!(got, b"HELLO=WORLD\n");
    }
}
