//! The declarative component/interface model (paper §2.1).
//!
//! "Components are modeled as entities that *implement* and *require*
//! typed interfaces, each of which is associated with a set of
//! properties. The environment itself is modeled in terms of nodes and
//! links that possess their own set of properties, and are additionally
//! capable of influencing the implemented interface properties of
//! deployed components."

use psf_drbac::{AttrSet, RoleName};
use psf_netsim::PathMetrics;

/// Properties of an interface *as observed at some node*: the planner's
/// state variables.
#[derive(Debug, Clone, PartialEq)]
pub struct IfaceProps {
    /// Round-trip access latency from the observing node (ms).
    pub latency_ms: f64,
    /// Bottleneck bandwidth on the access path (Mbps).
    pub bandwidth_mbps: f64,
    /// Whether the payload is currently encrypted.
    pub encrypted: bool,
    /// Whether plaintext payload has ever crossed an insecure link — the
    /// privacy violation the mail application must avoid.
    pub plaintext_exposed: bool,
}

impl IfaceProps {
    /// Fresh properties at the providing node.
    pub fn at_source() -> IfaceProps {
        IfaceProps {
            latency_ms: 0.0,
            bandwidth_mbps: f64::INFINITY,
            encrypted: false,
            plaintext_exposed: false,
        }
    }

    /// Properties after consuming the interface across a network path:
    /// links add latency, constrain bandwidth, and expose unencrypted
    /// payloads on insecure segments.
    pub fn across(&self, path: &PathMetrics) -> IfaceProps {
        IfaceProps {
            latency_ms: self.latency_ms + path.latency_ms,
            bandwidth_mbps: self.bandwidth_mbps.min(path.bandwidth_mbps),
            encrypted: self.encrypted,
            plaintext_exposed: self.plaintext_exposed || (!path.all_secure && !self.encrypted),
        }
    }
}

/// How a component transforms the properties of its required interface
/// into those of an implemented one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effect {
    /// Gateway/forwarder: properties pass through unchanged.
    Identity,
    /// Encrypts the payload (an `<encryptor>` of the paper's pair).
    Encrypt,
    /// Decrypts the payload; requires an encrypted input.
    Decrypt,
    /// Serves content locally (the `view mail server` cache): access
    /// latency collapses to the local cost; payload is plaintext at the
    /// cache.
    Cache,
    /// A base provider: creates the interface from nothing.
    Source,
}

impl Effect {
    /// Apply to input properties (input is `None` for sources).
    pub fn apply(&self, input: Option<&IfaceProps>) -> Option<IfaceProps> {
        match self {
            Effect::Source => Some(IfaceProps::at_source()),
            Effect::Identity => input.cloned(),
            Effect::Encrypt => {
                let p = input?;
                Some(IfaceProps {
                    encrypted: true,
                    ..p.clone()
                })
            }
            Effect::Decrypt => {
                let p = input?;
                if !p.encrypted {
                    return None;
                }
                Some(IfaceProps {
                    encrypted: false,
                    ..p.clone()
                })
            }
            Effect::Cache => {
                let p = input?;
                Some(IfaceProps {
                    latency_ms: 1.0, // served locally
                    bandwidth_mbps: f64::INFINITY,
                    encrypted: false,
                    plaintext_exposed: p.plaintext_exposed,
                })
            }
        }
    }
}

/// An interface a component implements.
#[derive(Debug, Clone, PartialEq)]
pub struct Provided {
    /// The typed interface produced (e.g. `MailI`).
    pub iface: String,
    /// How input properties transform into output properties.
    pub effect: Effect,
}

/// A deployable component template.
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentSpec {
    /// Template name (`MailServer`, `Encryptor`, `ViewMailServer`, …).
    pub name: String,
    /// The single required interface type, if any (linear service chains,
    /// as in CANS/PSF mail; `None` for sources).
    pub requires: Option<String>,
    /// Whether the required input must (Some(true)) or must not
    /// (Some(false)) be encrypted; `None` accepts either.
    pub requires_encrypted: Option<bool>,
    /// Implemented interfaces.
    pub provides: Vec<Provided>,
    /// CPU units consumed on the hosting node.
    pub cpu_cost: u32,
    /// The dRBAC role this component's instances can prove (component
    /// authorization, Table 2 creds 8–10/14/17); `None` = unrestricted.
    pub exec_role: Option<RoleName>,
    /// Node authorization requirement: the application-policy role the
    /// hosting node must map to, with required attributes (Table 2 creds
    /// 4–7/13/16), e.g. `Mail.Node with Secure={true}`.
    pub node_role: Option<(RoleName, AttrSet)>,
    /// If this template is a *view* of another component, the original's
    /// template name — views enrich the deployable set (paper §4.2).
    pub view_of: Option<String>,
}

impl ComponentSpec {
    /// Minimal source component providing `iface`.
    pub fn source(name: impl Into<String>, iface: impl Into<String>) -> ComponentSpec {
        ComponentSpec {
            name: name.into(),
            requires: None,
            requires_encrypted: None,
            provides: vec![Provided {
                iface: iface.into(),
                effect: Effect::Source,
            }],
            cpu_cost: 0,
            exec_role: None,
            node_role: None,
            view_of: None,
        }
    }

    /// Builder-style: set the required interface.
    pub fn requires(mut self, iface: impl Into<String>) -> Self {
        self.requires = Some(iface.into());
        self
    }

    /// Builder-style: constrain the required input's encryption state.
    pub fn requires_encrypted(mut self, enc: bool) -> Self {
        self.requires_encrypted = Some(enc);
        self
    }

    /// Builder-style: set CPU cost.
    pub fn cpu(mut self, cost: u32) -> Self {
        self.cpu_cost = cost;
        self
    }

    /// Builder-style: set the exec role.
    pub fn exec_role(mut self, role: RoleName) -> Self {
        self.exec_role = Some(role);
        self
    }

    /// Builder-style: set the node requirement.
    pub fn node_role(mut self, role: RoleName, attrs: AttrSet) -> Self {
        self.node_role = Some((role, attrs));
        self
    }

    /// Builder-style: mark as a view of another template.
    pub fn view_of(mut self, original: impl Into<String>) -> Self {
        self.view_of = Some(original.into());
        self
    }

    /// Generic processing component.
    pub fn processor(
        name: impl Into<String>,
        requires: impl Into<String>,
        provides_iface: impl Into<String>,
        effect: Effect,
    ) -> ComponentSpec {
        ComponentSpec {
            name: name.into(),
            requires: Some(requires.into()),
            requires_encrypted: None,
            provides: vec![Provided {
                iface: provides_iface.into(),
                effect,
            }],
            cpu_cost: 10,
            exec_role: None,
            node_role: None,
            view_of: None,
        }
    }
}

/// A client request: "clients requesting access to an interface must
/// first be authenticated and then authorized to receive an appropriate
/// level of service".
#[derive(Debug, Clone, PartialEq)]
pub struct Goal {
    /// The interface the client requires.
    pub iface: String,
    /// The node where the client runs.
    pub client_node: psf_netsim::NodeId,
    /// Maximum acceptable access latency (ms), if any.
    pub max_latency_ms: Option<f64>,
    /// Privacy: plaintext must never cross an insecure link.
    pub require_privacy: bool,
    /// The client needs plaintext delivery (encrypted = false at the
    /// client).
    pub require_plaintext_delivery: bool,
}

impl Goal {
    /// A simple goal: `iface` at `node`, private, plaintext delivery.
    pub fn private(iface: impl Into<String>, node: psf_netsim::NodeId) -> Goal {
        Goal {
            iface: iface.into(),
            client_node: node,
            max_latency_ms: None,
            require_privacy: true,
            require_plaintext_delivery: true,
        }
    }

    /// Whether properties at the client satisfy this goal.
    pub fn satisfied_by(&self, props: &IfaceProps) -> bool {
        if self.require_privacy && props.plaintext_exposed {
            return false;
        }
        if self.require_plaintext_delivery && props.encrypted {
            return false;
        }
        if let Some(max) = self.max_latency_ms {
            if props.latency_ms > max {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effects_transform_props() {
        let src = Effect::Source.apply(None).unwrap();
        assert!(!src.encrypted && !src.plaintext_exposed);

        let enc = Effect::Encrypt.apply(Some(&src)).unwrap();
        assert!(enc.encrypted);

        let dec = Effect::Decrypt.apply(Some(&enc)).unwrap();
        assert!(!dec.encrypted);

        // Decrypting plaintext is ill-typed.
        assert!(Effect::Decrypt.apply(Some(&src)).is_none());
        // Identity needs an input.
        assert!(Effect::Identity.apply(None).is_none());
    }

    #[test]
    fn insecure_path_exposes_plaintext_but_not_ciphertext() {
        let insecure = PathMetrics {
            links: vec![],
            latency_ms: 40.0,
            bandwidth_mbps: 10.0,
            all_secure: false,
        };
        let plain = IfaceProps::at_source();
        let moved = plain.across(&insecure);
        assert!(moved.plaintext_exposed);
        assert!((moved.latency_ms - 40.0).abs() < 1e-9);

        let enc = Effect::Encrypt.apply(Some(&plain)).unwrap();
        let moved = enc.across(&insecure);
        assert!(!moved.plaintext_exposed);
    }

    #[test]
    fn cache_collapses_latency() {
        let far = IfaceProps {
            latency_ms: 80.0,
            bandwidth_mbps: 10.0,
            encrypted: false,
            plaintext_exposed: false,
        };
        let cached = Effect::Cache.apply(Some(&far)).unwrap();
        assert!(cached.latency_ms <= 1.0);
    }

    #[test]
    fn goal_satisfaction() {
        let g = Goal {
            iface: "MailI".into(),
            client_node: psf_netsim::NodeId(0),
            max_latency_ms: Some(50.0),
            require_privacy: true,
            require_plaintext_delivery: true,
        };
        let ok = IfaceProps {
            latency_ms: 10.0,
            bandwidth_mbps: 100.0,
            encrypted: false,
            plaintext_exposed: false,
        };
        assert!(g.satisfied_by(&ok));
        assert!(!g.satisfied_by(&IfaceProps {
            latency_ms: 90.0,
            ..ok.clone()
        }));
        assert!(!g.satisfied_by(&IfaceProps {
            plaintext_exposed: true,
            ..ok.clone()
        }));
        assert!(!g.satisfied_by(&IfaceProps {
            encrypted: true,
            ..ok
        }));
    }
}
