//! Static plan pre-flight: prove a deployment plan executable *before*
//! [`Deployer::execute`](crate::deploy::Deployer::execute) acquires
//! anything.
//!
//! Runtime deployment can fail for reasons the plan already determines:
//! the step chain is malformed, a template resolves to nothing, VIG would
//! reject a view, a node lacks CPU, or — the expensive one — a channel
//! endpoint pair would be denied by Switchboard mutual authorization
//! halfway through. This module re-runs the deployer's validation logic
//! symbolically (no reservations, no channels, no published credentials)
//! and reports every would-be runtime denial as a
//! [`PreflightViolation`]. psf-analysis maps these onto its PSF011–PSF013
//! lint codes.
//!
//! Authorization checks are *genuine proofs*, not heuristics: a probe
//! identity is signed by the deployer's guard exactly as
//! `issue_identity`/`make_channel_pair` would sign one, and the dRBAC
//! proof engine is asked to authorize it against the live registry,
//! repository, and revocation bus — the only difference from runtime is
//! that nothing is published.

use crate::deploy::Deployer;
use crate::model::Goal;
use crate::planner::{Plan, PlanStep};
use crate::registrar::Registrar;
use psf_drbac::delegation::DelegationBuilder;
use psf_drbac::entity::Entity;
use psf_drbac::proof::ProofEngine;
use psf_drbac::Timestamp;
use psf_netsim::NodeId;
use psf_views::Vig;
use std::collections::HashMap;

/// What a pre-flight violation would have failed as at runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PreflightViolationKind {
    /// The step chain itself is malformed: wrong-node transitions,
    /// endpoints used before they exist, unknown templates, missing
    /// represented classes, VIG rejections, CPU shortfalls, plans that do
    /// not end at the client's node.
    InvalidStepChain,
    /// A component identity issued at deploy time would fail dRBAC
    /// authorization for the guard's `Component` role.
    DeployAuthorization,
    /// An insecure hop's channel endpoint pair would fail Switchboard
    /// mutual authorization.
    ChannelAuthorization,
}

impl PreflightViolationKind {
    /// Short display label.
    pub fn label(&self) -> &'static str {
        match self {
            PreflightViolationKind::InvalidStepChain => "invalid-step-chain",
            PreflightViolationKind::DeployAuthorization => "deploy-authorization",
            PreflightViolationKind::ChannelAuthorization => "channel-authorization",
        }
    }
}

/// One would-be runtime denial, anchored to the plan step that would
/// have raised it (`None` for whole-plan violations).
#[derive(Debug, Clone)]
pub struct PreflightViolation {
    /// Violation category.
    pub kind: PreflightViolationKind,
    /// Index of the offending [`PlanStep`], if step-specific.
    pub step: Option<usize>,
    /// Human-readable description mirroring the runtime error.
    pub message: String,
}

fn violation(
    kind: PreflightViolationKind,
    step: usize,
    message: impl Into<String>,
) -> PreflightViolation {
    PreflightViolation {
        kind,
        step: Some(step),
        message: message.into(),
    }
}

/// Statically check that `plan` would survive
/// [`Deployer::execute`](crate::deploy::Deployer::execute) against
/// `goal`, evaluating authorization proofs at time `now`. Returns every
/// violation found (an empty vector means the plan is pre-flight clean).
pub fn preflight_plan(
    deployer: &Deployer,
    registrar: &Registrar,
    plan: &Plan,
    goal: &Goal,
    now: Timestamp,
) -> Vec<PreflightViolation> {
    let guard = deployer.guard();
    let bundle = deployer.bundle();
    let mut out = Vec::new();

    if plan.steps.is_empty() {
        out.push(PreflightViolation {
            kind: PreflightViolationKind::InvalidStepChain,
            step: None,
            message: "empty plan".into(),
        });
        return out;
    }

    // One probe proof covers every guard-issued identity: deploy-time
    // component credentials and per-connection endpoint identities are
    // all self-certifying [probe → Guard.Component] Guard delegations,
    // presented (not fetched) at authorization time.
    let component_role = guard.role("Component");
    let probe = Entity::with_seed("preflight-probe", guard.entity().name.0.as_bytes());
    let probe_cred = DelegationBuilder::new(guard.entity())
        .subject_entity(&probe)
        .role(component_role.clone())
        .sign();
    let engine = ProofEngine::new(guard.registry(), guard.repository(), guard.bus(), now);
    let probe_result: Result<(), String> = engine
        .prove(&probe.as_subject(), &component_role, &[probe_cred])
        .map(|_| ())
        .map_err(|e| e.to_string());

    let deployed = registrar.deployed();
    let mut current: Option<NodeId> = None;
    let mut has_endpoint = false;
    // CPU demand accumulates per node across the plan, exactly as the
    // deployer's incremental reservations would.
    let mut cpu_demand: HashMap<NodeId, u64> = HashMap::new();

    for (idx, step) in plan.steps.iter().enumerate() {
        match step {
            PlanStep::UseDeployed { spec, node, .. } => {
                let running = deployer.source(spec, *node).is_some()
                    || deployed.iter().any(|(s, n)| s == spec && *n == *node);
                if !running {
                    out.push(violation(
                        PreflightViolationKind::InvalidStepChain,
                        idx,
                        format!("source '{spec}' not running on node {}", node.0),
                    ));
                }
                has_endpoint = true;
                current = Some(*node);
            }
            PlanStep::Move {
                from,
                to,
                secure_path,
                ..
            } => {
                if current != Some(*from) {
                    out.push(violation(
                        PreflightViolationKind::InvalidStepChain,
                        idx,
                        format!(
                            "plan moves an interface from node {} but the service is at {}",
                            from.0,
                            current.map(|n| n.0.to_string()).unwrap_or("∅".into())
                        ),
                    ));
                }
                if !has_endpoint {
                    out.push(violation(
                        PreflightViolationKind::InvalidStepChain,
                        idx,
                        "move before any endpoint",
                    ));
                }
                if !secure_path {
                    if let Err(e) = &probe_result {
                        out.push(violation(
                            PreflightViolationKind::ChannelAuthorization,
                            idx,
                            format!(
                                "insecure hop {}→{} requires Switchboard mutual auth, but a \
                                 guard-issued endpoint identity cannot prove '{component_role}': {e}",
                                from.0, to.0
                            ),
                        ));
                    }
                }
                current = Some(*to);
            }
            PlanStep::Deploy { spec, node, .. } => {
                if current != Some(*node) {
                    out.push(violation(
                        PreflightViolationKind::InvalidStepChain,
                        idx,
                        format!(
                            "plan deploys '{spec}' on node {} away from its input at {}",
                            node.0,
                            current.map(|n| n.0.to_string()).unwrap_or("∅".into())
                        ),
                    ));
                }
                if let (Some(net), Some(&cost)) = (deployer.network(), bundle.cpu_costs.get(spec)) {
                    if cost > 0 {
                        let demanded = cpu_demand.entry(*node).or_insert(0);
                        *demanded += u64::from(cost);
                        if !net.node_is_up(*node) {
                            out.push(violation(
                                PreflightViolationKind::InvalidStepChain,
                                idx,
                                format!("node {} is down", node.0),
                            ));
                        } else {
                            let available = net.node(*node).map(|n| n.cpu_available()).unwrap_or(0);
                            if *demanded > u64::from(available) {
                                out.push(violation(
                                    PreflightViolationKind::InvalidStepChain,
                                    idx,
                                    format!(
                                        "node {} lacks {cost} CPU for '{spec}' \
                                         ({available} available, {demanded} demanded by this plan)",
                                        node.0
                                    ),
                                ));
                            }
                        }
                    }
                }
                if let Err(e) = &probe_result {
                    out.push(violation(
                        PreflightViolationKind::DeployAuthorization,
                        idx,
                        format!(
                            "identity issued for '{spec}' could not prove '{component_role}': {e}"
                        ),
                    ));
                }
                if let Some(vspec) = bundle.view_specs.get(spec) {
                    match bundle.classes.get(&vspec.represents) {
                        None => out.push(violation(
                            PreflightViolationKind::InvalidStepChain,
                            idx,
                            format!(
                                "view '{spec}' represents unknown class '{}'",
                                vspec.represents
                            ),
                        )),
                        Some(class) => {
                            let vig = Vig::new(bundle.library.clone());
                            if let Err(e) = vig.generate(class, vspec) {
                                out.push(violation(
                                    PreflightViolationKind::InvalidStepChain,
                                    idx,
                                    format!("VIG would reject view '{spec}': {e}"),
                                ));
                            }
                        }
                    }
                    if !has_endpoint {
                        out.push(violation(
                            PreflightViolationKind::InvalidStepChain,
                            idx,
                            "view deployed before source",
                        ));
                    }
                } else if bundle.middleware.contains_key(spec) {
                    if !has_endpoint {
                        out.push(violation(
                            PreflightViolationKind::InvalidStepChain,
                            idx,
                            "middleware before source",
                        ));
                    }
                } else if !bundle.classes.contains_key(spec) {
                    out.push(violation(
                        PreflightViolationKind::InvalidStepChain,
                        idx,
                        format!("no artifact registered for template '{spec}'"),
                    ));
                }
                has_endpoint = true;
            }
        }
    }

    if current != Some(goal.client_node) {
        out.push(PreflightViolation {
            kind: PreflightViolationKind::InvalidStepChain,
            step: None,
            message: format!(
                "plan terminates at node {} instead of the client's node {}",
                current.map(|n| n.0.to_string()).unwrap_or("∅".into()),
                goal.client_node.0
            ),
        });
    }
    out
}

impl Deployer {
    /// Convenience wrapper around [`preflight_plan`] evaluating at this
    /// deployer's current clock time.
    pub fn preflight(
        &self,
        registrar: &Registrar,
        plan: &Plan,
        goal: &Goal,
    ) -> Vec<PreflightViolation> {
        preflight_plan(self, registrar, plan, goal, self.clock().now())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deploy::AppBundle;
    use crate::model::{ComponentSpec, Effect, IfaceProps};
    use psf_drbac::entity::EntityRegistry;
    use psf_drbac::guard::Guard;
    use psf_drbac::repository::Repository;
    use psf_drbac::revocation::RevocationBus;
    use psf_netsim::{three_site_scenario, ThreeSites};
    use psf_switchboard::ClockRef;
    use psf_views::{ComponentClass, ExposureType, ViewSpec};
    use std::sync::Arc;

    fn kv_class() -> Arc<ComponentClass> {
        ComponentClass::builder("KvStore")
            .interface("KvI", ["put", "get"])
            .field("data", "Map")
            .method("put", "void put(kv)", &["data"], true, |st, args| {
                st.set("data", String::from_utf8_lossy(args).to_string());
                Ok(vec![])
            })
            .method("get", "String get()", &["data"], false, |st, _| {
                Ok(st.get("data"))
            })
            .build()
            .unwrap()
    }

    // use KvStore@ny[0] → insecure WAN hop → deploy the view at sd[0].
    fn plan_for(s: &ThreeSites) -> Plan {
        Plan {
            steps: vec![
                PlanStep::UseDeployed {
                    spec: "KvStore".into(),
                    node: s.ny[0],
                    iface: "KvI".into(),
                },
                PlanStep::Move {
                    iface: "KvI".into(),
                    from: s.ny[0],
                    to: s.sd[0],
                    latency_ms: 40.0,
                    secure_path: false,
                },
                PlanStep::Deploy {
                    spec: "KvView".into(),
                    node: s.sd[0],
                    iface_in: Some("KvI".into()),
                    iface_out: "KvI".into(),
                },
            ],
            delivered: IfaceProps::at_source(),
            cost: 0.0,
        }
    }

    fn goal_at(node: psf_netsim::NodeId) -> Goal {
        Goal {
            iface: "KvI".into(),
            client_node: node,
            max_latency_ms: None,
            require_privacy: false,
            require_plaintext_delivery: true,
        }
    }

    fn world() -> (ThreeSites, Registrar, Deployer) {
        let s = three_site_scenario(2);
        let registrar = Registrar::new();
        registrar.register(ComponentSpec::source("KvStore", "KvI"));
        registrar.register(
            ComponentSpec::processor("KvView", "KvI", "KvI", Effect::Cache)
                .view_of("KvStore")
                .cpu(5),
        );
        registrar.record_deployed("KvStore", s.ny[0]);
        let bundle = AppBundle::new()
            .class("KvStore", kv_class())
            .view(
                "KvView",
                ViewSpec::new("KvView", "KvStore").restrict("KvI", ExposureType::Local),
            )
            .cpu_cost("KvView", 5);
        let guard = Arc::new(Guard::new(
            Entity::with_seed("Deploy.Domain", b"pre"),
            EntityRegistry::new(),
            Repository::new(),
            RevocationBus::new(),
        ));
        let deployer =
            Deployer::new(guard, ClockRef::new(), bundle).with_network(s.network.clone());
        deployer.start_source("KvStore", s.ny[0]).unwrap();
        (s, registrar, deployer)
    }

    #[test]
    fn clean_plan_passes_preflight() {
        let (s, registrar, deployer) = world();
        let violations = deployer.preflight(&registrar, &plan_for(&s), &goal_at(s.sd[0]));
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn missing_source_is_flagged() {
        let (s, registrar, deployer) = world();
        let mut bad = plan_for(&s);
        if let Some(PlanStep::UseDeployed { node, .. }) = bad.steps.first_mut() {
            *node = s.se[1];
        }
        let violations = deployer.preflight(&registrar, &bad, &goal_at(s.sd[0]));
        assert!(violations
            .iter()
            .any(|v| v.kind == PreflightViolationKind::InvalidStepChain
                && v.message.contains("not running")));
    }

    #[test]
    fn broken_guard_flags_channel_and_deploy_auth() {
        let (s, registrar, _deployer) = world();
        // Simulate the registry losing the guard's key (e.g. a stale
        // cross-site replica): re-register a different key under the same
        // name. Every identity this guard issues is then unprovable.
        let registry = EntityRegistry::new();
        let guard = Arc::new(Guard::new(
            Entity::with_seed("Rogue.Domain", b"pre"),
            registry.clone(),
            Repository::new(),
            RevocationBus::new(),
        ));
        registry.register(&Entity::with_seed("Rogue.Domain", b"other-key"));
        let bundle = AppBundle::new().class("KvStore", kv_class()).view(
            "KvView",
            ViewSpec::new("KvView", "KvStore").restrict("KvI", ExposureType::Local),
        );
        let deployer =
            Deployer::new(guard, ClockRef::new(), bundle).with_network(s.network.clone());
        deployer.start_source("KvStore", s.ny[0]).unwrap();
        let violations = deployer.preflight(&registrar, &plan_for(&s), &goal_at(s.sd[0]));
        assert!(violations
            .iter()
            .any(|v| v.kind == PreflightViolationKind::DeployAuthorization));
        assert!(violations
            .iter()
            .any(|v| v.kind == PreflightViolationKind::ChannelAuthorization));
    }

    #[test]
    fn cpu_shortfall_is_flagged() {
        let (s, registrar, deployer) = world();
        // Drain the target node's CPU first.
        assert!(s.network.reserve_cpu(s.sd[0], 98));
        let violations = deployer.preflight(&registrar, &plan_for(&s), &goal_at(s.sd[0]));
        assert!(violations.iter().any(|v| v.message.contains("lacks 5 CPU")));
    }

    #[test]
    fn wrong_terminal_node_is_flagged() {
        let (s, registrar, deployer) = world();
        let violations = deployer.preflight(&registrar, &plan_for(&s), &goal_at(s.se[0]));
        assert!(violations
            .iter()
            .any(|v| v.message.contains("terminates at node")));
    }
}
