//! A manually advanced simulation clock shared by the framework.
//!
//! dRBAC expirations, heartbeat bookkeeping, and the transfer model all
//! consume logical milliseconds from one [`SimClock`], so scenarios are
//! fully deterministic and tests never sleep.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A shared, monotonically advancing logical clock (milliseconds).
#[derive(Clone, Debug, Default)]
pub struct SimClock {
    millis: Arc<AtomicU64>,
}

impl SimClock {
    /// New clock at t = 0.
    pub fn new() -> SimClock {
        SimClock::default()
    }

    /// Current logical time in milliseconds.
    pub fn now_ms(&self) -> u64 {
        self.millis.load(Ordering::SeqCst)
    }

    /// Current logical time in whole seconds (dRBAC timestamps).
    pub fn now_secs(&self) -> u64 {
        self.now_ms() / 1000
    }

    /// Advance the clock by `ms` milliseconds and return the new time.
    pub fn advance_ms(&self, ms: u64) -> u64 {
        self.millis.fetch_add(ms, Ordering::SeqCst) + ms
    }

    /// Set the clock to an absolute time; panics if that would move it
    /// backwards.
    pub fn set_ms(&self, ms: u64) {
        let prev = self.millis.swap(ms, Ordering::SeqCst);
        assert!(prev <= ms, "SimClock moved backwards: {prev} -> {ms}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advances_monotonically() {
        let c = SimClock::new();
        assert_eq!(c.now_ms(), 0);
        assert_eq!(c.advance_ms(1500), 1500);
        assert_eq!(c.now_secs(), 1);
        c.set_ms(10_000);
        assert_eq!(c.now_ms(), 10_000);
    }

    #[test]
    #[should_panic(expected = "moved backwards")]
    fn cannot_go_backwards() {
        let c = SimClock::new();
        c.advance_ms(100);
        c.set_ms(50);
    }

    #[test]
    fn clones_share_time() {
        let c = SimClock::new();
        let c2 = c.clone();
        c.advance_ms(42);
        assert_eq!(c2.now_ms(), 42);
    }
}
