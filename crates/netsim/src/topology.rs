//! Scenario topologies: the paper's three-site deployment and seeded
//! random multi-domain networks for the planner experiments.

use crate::network::{LinkId, LinkSpec, Network, NodeId, NodeSpec};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Handle to the paper's three-site scenario (§2.2): "the main office in
/// New York, a branch office in San Diego, and a partner organization
/// (Inc) in Seattle. The three sites compare to LANs, with fast and
/// reliable links, connected to each other by high latency and insecure
/// WAN links."
pub struct ThreeSites {
    /// The network graph.
    pub network: Network,
    /// New York nodes (Dell/Linux, the mail server lives on `ny[0]`).
    pub ny: Vec<NodeId>,
    /// San Diego nodes (Dell/SuSe).
    pub sd: Vec<NodeId>,
    /// Seattle nodes (IBM/Windows).
    pub se: Vec<NodeId>,
    /// The NY↔SD WAN link.
    pub wan_ny_sd: LinkId,
    /// The NY↔SE WAN link.
    pub wan_ny_se: LinkId,
    /// The SD↔SE WAN link.
    pub wan_sd_se: LinkId,
}

/// Build the three-site scenario with `per_site` nodes per site.
pub fn three_site_scenario(per_site: usize) -> ThreeSites {
    assert!(per_site >= 1);
    let network = Network::new();
    let lan = |a, b| LinkSpec {
        a,
        b,
        latency_ms: 1.0,
        bandwidth_mbps: 1000.0,
        secure: true,
    };
    let wan = |a, b, latency| LinkSpec {
        a,
        b,
        latency_ms: latency,
        bandwidth_mbps: 10.0,
        secure: false,
    };

    let site = |domain: &str, vendor: &str, os: &str, tag: &str| -> Vec<NodeId> {
        let ids: Vec<NodeId> = (0..per_site)
            .map(|i| {
                network.add_node(NodeSpec {
                    name: format!("{tag}-{i}"),
                    domain: domain.into(),
                    vendor: vendor.into(),
                    os: os.into(),
                    cpu_capacity: 100,
                    cpu_used: 0,
                })
            })
            .collect();
        // Full LAN mesh within the site (they're cheap and few).
        for i in 0..ids.len() {
            for j in i + 1..ids.len() {
                network.add_link(lan(ids[i], ids[j]));
            }
        }
        ids
    };

    let ny = site("Comp.NY", "Dell", "Linux", "ny");
    let sd = site("Comp.SD", "Dell", "SuSe", "sd");
    let se = site("Inc.SE", "IBM", "Windows", "se");

    let wan_ny_sd = network.add_link(wan(ny[0], sd[0], 40.0));
    let wan_ny_se = network.add_link(wan(ny[0], se[0], 35.0));
    let wan_sd_se = network.add_link(wan(sd[0], se[0], 25.0));

    ThreeSites {
        network,
        ny,
        sd,
        se,
        wan_ny_sd,
        wan_ny_se,
        wan_sd_se,
    }
}

/// Configuration for [`random_topology`].
#[derive(Debug, Clone)]
pub struct TopologyConfig {
    /// Number of administrative domains.
    pub domains: usize,
    /// Nodes per domain.
    pub nodes_per_domain: usize,
    /// Probability of an extra inter-domain WAN link beyond the ring.
    pub extra_wan_prob: f64,
    /// Probability that a WAN link is secure.
    pub wan_secure_prob: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TopologyConfig {
    fn default() -> Self {
        TopologyConfig {
            domains: 4,
            nodes_per_domain: 3,
            extra_wan_prob: 0.3,
            wan_secure_prob: 0.2,
            seed: 42,
        }
    }
}

/// Build a seeded random multi-domain topology: LAN-meshed domains joined
/// in a WAN ring plus random chords. Domains are named `Dom0..DomN`, nodes
/// `dom0-0` etc. Returns the network and the per-domain node lists.
pub fn random_topology(cfg: &TopologyConfig) -> (Network, Vec<Vec<NodeId>>) {
    assert!(cfg.domains >= 1 && cfg.nodes_per_domain >= 1);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let network = Network::new();
    let mut domains = Vec::with_capacity(cfg.domains);
    for d in 0..cfg.domains {
        let vendor = if d % 3 == 2 { "IBM" } else { "Dell" };
        let os = match d % 3 {
            0 => "Linux",
            1 => "SuSe",
            _ => "Windows",
        };
        let ids: Vec<NodeId> = (0..cfg.nodes_per_domain)
            .map(|i| {
                network.add_node(NodeSpec {
                    name: format!("dom{d}-{i}"),
                    domain: format!("Dom{d}"),
                    vendor: vendor.into(),
                    os: os.into(),
                    cpu_capacity: 100,
                    cpu_used: 0,
                })
            })
            .collect();
        for i in 0..ids.len() {
            for j in i + 1..ids.len() {
                network.add_link(LinkSpec {
                    a: ids[i],
                    b: ids[j],
                    latency_ms: rng.random_range(0.5..2.0),
                    bandwidth_mbps: 1000.0,
                    secure: true,
                });
            }
        }
        domains.push(ids);
    }
    let wan_link = |a: NodeId, b: NodeId, rng: &mut StdRng| {
        network.add_link(LinkSpec {
            a,
            b,
            latency_ms: rng.random_range(20.0..80.0),
            bandwidth_mbps: rng.random_range(2.0..50.0),
            secure: rng.random_bool(cfg.wan_secure_prob),
        });
    };
    // Ring guarantees connectivity.
    for d in 0..cfg.domains {
        let next = (d + 1) % cfg.domains;
        if cfg.domains > 1 && (d < next || cfg.domains > 2) {
            wan_link(domains[d][0], domains[next][0], &mut rng);
        }
    }
    // Random chords.
    for d1 in 0..cfg.domains {
        for d2 in d1 + 2..cfg.domains {
            if rng.random_bool(cfg.extra_wan_prob) {
                wan_link(domains[d1][0], domains[d2][0], &mut rng);
            }
        }
    }
    (network, domains)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_sites_shape() {
        let s = three_site_scenario(3);
        assert_eq!(s.network.node_count(), 9);
        // Within-site paths are secure, cross-site paths are not.
        let intra = s.network.route(s.ny[0], s.ny[1]).unwrap();
        assert!(intra.all_secure);
        let inter = s.network.route(s.ny[0], s.sd[1]).unwrap();
        assert!(!inter.all_secure);
        assert!(inter.latency_ms > intra.latency_ms);
    }

    #[test]
    fn three_sites_vendor_roles() {
        let s = three_site_scenario(1);
        assert_eq!(s.network.node(s.ny[0]).unwrap().vendor_role(), "Dell.Linux");
        assert_eq!(s.network.node(s.sd[0]).unwrap().vendor_role(), "Dell.SuSe");
        assert_eq!(
            s.network.node(s.se[0]).unwrap().vendor_role(),
            "IBM.Windows"
        );
    }

    #[test]
    fn random_topology_is_connected_and_deterministic() {
        let cfg = TopologyConfig {
            domains: 6,
            nodes_per_domain: 2,
            ..Default::default()
        };
        let (net, domains) = random_topology(&cfg);
        assert_eq!(domains.len(), 6);
        // Connectivity: every node reaches node 0.
        let origin = domains[0][0];
        for ids in &domains {
            for &n in ids {
                assert!(net.route(origin, n).is_some(), "{n:?} unreachable");
            }
        }
        // Determinism: same seed → same link count.
        let (net2, _) = random_topology(&cfg);
        assert_eq!(net.link_count(), net2.link_count());
        let (net3, _) = random_topology(&TopologyConfig { seed: 43, ..cfg });
        // Different seed usually differs in at least latencies; link count
        // may coincide, so compare a latency.
        let l1 = net.link(crate::network::LinkId(0)).unwrap().latency_ms;
        let l3 = net3.link(crate::network::LinkId(0)).unwrap().latency_ms;
        assert!((l1 - l3).abs() > 1e-12 || net.link_count() != net3.link_count());
    }

    #[test]
    fn single_domain_topology() {
        let cfg = TopologyConfig {
            domains: 1,
            nodes_per_domain: 4,
            ..Default::default()
        };
        let (net, domains) = random_topology(&cfg);
        assert_eq!(net.node_count(), 4);
        assert_eq!(domains[0].len(), 4);
    }
}
