//! # psf-netsim
//!
//! The environment model of PSF (paper §2.1): "the environment itself is
//! modeled in terms of nodes and links that possess their own set of
//! properties". This crate provides
//!
//! * a concurrent [`Network`] of [`NodeSpec`]s and [`LinkSpec`]s with
//!   latency / bandwidth / security properties,
//! * shortest-path routing and an analytic transfer-time model used by the
//!   planner and by the mail-application benchmarks,
//! * dynamic property updates that broadcast [`NetworkEvent`]s to
//!   subscribers (PSF's *monitoring* module),
//! * scenario topologies: the paper's three-site Comp.NY / Comp.SD /
//!   Inc.SE deployment and seeded random multi-domain topologies for the
//!   planner-flexibility experiment (F6),
//! * a manually advanced [`SimClock`] shared across the framework.
//!
//! **Substitution note** (DESIGN.md): the paper ran on real LAN/WAN links;
//! we model the three sites as LANs (high bandwidth, low latency, secure)
//! joined by insecure, slow WAN links, which exercises exactly the same
//! planner and deployment code paths.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod events;
pub mod network;
pub mod topology;

pub use clock::SimClock;
pub use events::{NetworkEvent, NetworkMonitor};
pub use network::{LinkId, LinkSpec, Network, NodeId, NodeSpec, PathMetrics};
pub use topology::{random_topology, three_site_scenario, ThreeSites, TopologyConfig};
