//! Change notification — the substrate of PSF's *monitoring* module.

use crate::network::{LinkId, NodeId};
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::sync::Arc;

/// A change in the environment that the planner may need to react to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetworkEvent {
    /// A node joined the network.
    NodeAdded(NodeId),
    /// A node's dynamic properties changed (CPU reservation etc.).
    NodeChanged(NodeId),
    /// A link was added.
    LinkAdded(LinkId),
    /// A link's properties changed (bandwidth, latency, security).
    LinkChanged(LinkId),
    /// A node crashed or was taken out of service: routing excludes it
    /// and deployments on it are dead.
    NodeFailed(NodeId),
    /// A failed node rejoined the network.
    NodeRestored(NodeId),
}

/// Broadcast hub: every subscriber gets every event.
#[derive(Clone)]
pub(crate) struct EventHub {
    subscribers: Arc<Mutex<Vec<Sender<NetworkEvent>>>>,
}

impl EventHub {
    pub(crate) fn new() -> EventHub {
        EventHub {
            subscribers: Arc::new(Mutex::new(Vec::new())),
        }
    }

    pub(crate) fn publish(&self, ev: NetworkEvent) {
        psf_telemetry::counter!("psf.netsim.events").inc();
        psf_telemetry::event("psf.netsim", "change", vec![("event", format!("{ev:?}"))]);
        // Drop closed subscribers as we go.
        self.subscribers.lock().retain(|tx| tx.send(ev).is_ok());
    }

    pub(crate) fn subscribe(&self) -> NetworkMonitor {
        let (tx, rx) = unbounded();
        self.subscribers.lock().push(tx);
        NetworkMonitor { rx }
    }
}

/// A subscription to network change events (PSF monitoring module).
pub struct NetworkMonitor {
    rx: Receiver<NetworkEvent>,
}

impl NetworkMonitor {
    /// Non-blocking poll.
    pub fn try_event(&self) -> Option<NetworkEvent> {
        self.rx.try_recv().ok()
    }

    /// Drain all pending events.
    pub fn drain(&self) -> Vec<NetworkEvent> {
        let mut out = Vec::new();
        while let Ok(ev) = self.rx.try_recv() {
            out.push(ev);
        }
        out
    }

    /// Block for the next event with a timeout.
    pub fn wait_event(&self, timeout: std::time::Duration) -> Option<NetworkEvent> {
        self.rx.recv_timeout(timeout).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{LinkSpec, Network, NodeSpec};

    fn node(name: &str) -> NodeSpec {
        NodeSpec {
            name: name.into(),
            domain: "D".into(),
            vendor: "Dell".into(),
            os: "Linux".into(),
            cpu_capacity: 100,
            cpu_used: 0,
        }
    }

    #[test]
    fn monitor_sees_changes() {
        let net = Network::new();
        let a = net.add_node(node("a"));
        let b = net.add_node(node("b"));
        let l = net.add_link(LinkSpec {
            a,
            b,
            latency_ms: 1.0,
            bandwidth_mbps: 100.0,
            secure: true,
        });
        let mon = net.monitor();
        net.set_bandwidth(l, 1.0);
        net.reserve_cpu(a, 10);
        let evs = mon.drain();
        assert_eq!(
            evs,
            vec![NetworkEvent::LinkChanged(l), NetworkEvent::NodeChanged(a)]
        );
    }

    #[test]
    fn monitors_are_independent() {
        let net = Network::new();
        let m1 = net.monitor();
        let m2 = net.monitor();
        let a = net.add_node(node("a"));
        assert_eq!(m1.try_event(), Some(NetworkEvent::NodeAdded(a)));
        assert_eq!(m2.try_event(), Some(NetworkEvent::NodeAdded(a)));
        assert_eq!(m1.try_event(), None);
    }

    #[test]
    fn dropped_monitor_is_pruned() {
        let net = Network::new();
        let m1 = net.monitor();
        drop(m1);
        // Publishing after a subscriber is gone must not panic or leak.
        let _ = net.add_node(node("a"));
        let m2 = net.monitor();
        let _ = net.add_node(node("b"));
        assert_eq!(m2.drain().len(), 1);
    }
}
