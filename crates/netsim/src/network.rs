//! The node/link graph with properties, routing, and the transfer model.

use crate::events::{EventHub, NetworkEvent};
use parking_lot::RwLock;
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::sync::Arc;

/// Identifier of a node in the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// Identifier of a (bidirectional) link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinkId(pub u32);

/// Static + dynamic description of a node.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeSpec {
    /// Unique display name, e.g. `ny-server-1`.
    pub name: String,
    /// Administrative domain (`Comp.NY`, `Comp.SD`, `Inc.SE`).
    pub domain: String,
    /// Hardware vendor credential namespace (`Dell`, `IBM`).
    pub vendor: String,
    /// Installed OS (`Linux`, `SuSe`, `Windows`) — with the vendor this
    /// yields the node's vendor role, e.g. `Dell.Linux` (Table 2 creds
    /// 7/13/16).
    pub os: String,
    /// Total CPU capacity in abstract units (100 = one core's worth).
    pub cpu_capacity: u32,
    /// CPU currently allocated to deployed components.
    pub cpu_used: u32,
}

impl NodeSpec {
    /// The vendor role string for dRBAC node authorization (`Dell.Linux`).
    pub fn vendor_role(&self) -> String {
        format!("{}.{}", self.vendor, self.os)
    }

    /// CPU still available for deployment.
    pub fn cpu_available(&self) -> u32 {
        self.cpu_capacity.saturating_sub(self.cpu_used)
    }
}

/// Static + dynamic description of a bidirectional link.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkSpec {
    /// Endpoint node.
    pub a: NodeId,
    /// Endpoint node.
    pub b: NodeId,
    /// One-way latency in milliseconds.
    pub latency_ms: f64,
    /// Bandwidth in megabits per second.
    pub bandwidth_mbps: f64,
    /// Whether the link is considered secure (LAN) or exposed (WAN).
    pub secure: bool,
}

/// Aggregate metrics of a routed path.
#[derive(Debug, Clone, PartialEq)]
pub struct PathMetrics {
    /// Links along the path in order.
    pub links: Vec<LinkId>,
    /// Total one-way latency (ms).
    pub latency_ms: f64,
    /// Bottleneck bandwidth (Mbps).
    pub bandwidth_mbps: f64,
    /// True iff every link on the path is secure.
    pub all_secure: bool,
}

impl PathMetrics {
    /// Time to move `bytes` across this path, in milliseconds:
    /// latency + serialization at the bottleneck.
    pub fn transfer_time_ms(&self, bytes: u64) -> f64 {
        let bits = (bytes as f64) * 8.0;
        let serialization_ms = if self.bandwidth_mbps > 0.0 {
            bits / (self.bandwidth_mbps * 1000.0)
        } else {
            f64::INFINITY
        };
        self.latency_ms + serialization_ms
    }
}

struct Inner {
    nodes: Vec<NodeSpec>,
    links: Vec<LinkSpec>,
    adjacency: HashMap<NodeId, Vec<LinkId>>,
    /// Nodes currently down: excluded from routing, refuse reservations.
    failed_nodes: HashSet<NodeId>,
    /// Links currently down. Kept separate from latency so a restored
    /// link comes back with the properties it failed with.
    failed_links: HashSet<LinkId>,
}

/// A concurrent, dynamically updatable network graph.
#[derive(Clone)]
pub struct Network {
    inner: Arc<RwLock<Inner>>,
    events: EventHub,
}

impl Default for Network {
    fn default() -> Self {
        Self::new()
    }
}

impl Network {
    /// New empty network.
    pub fn new() -> Network {
        Network {
            inner: Arc::new(RwLock::new(Inner {
                nodes: Vec::new(),
                links: Vec::new(),
                adjacency: HashMap::new(),
                failed_nodes: HashSet::new(),
                failed_links: HashSet::new(),
            })),
            events: EventHub::new(),
        }
    }

    /// The event hub the monitoring module subscribes to.
    #[allow(dead_code)]
    pub(crate) fn events(&self) -> &EventHub {
        &self.events
    }

    /// Subscribe to network change events.
    pub fn monitor(&self) -> crate::events::NetworkMonitor {
        self.events.subscribe()
    }

    /// Add a node; returns its id.
    pub fn add_node(&self, spec: NodeSpec) -> NodeId {
        let mut g = self.inner.write();
        let id = NodeId(g.nodes.len() as u32);
        g.nodes.push(spec);
        g.adjacency.entry(id).or_default();
        self.events.publish(NetworkEvent::NodeAdded(id));
        id
    }

    /// Add a bidirectional link; returns its id.
    pub fn add_link(&self, spec: LinkSpec) -> LinkId {
        let mut g = self.inner.write();
        assert!(
            (spec.a.0 as usize) < g.nodes.len(),
            "unknown endpoint {:?}",
            spec.a
        );
        assert!(
            (spec.b.0 as usize) < g.nodes.len(),
            "unknown endpoint {:?}",
            spec.b
        );
        let id = LinkId(g.links.len() as u32);
        let (a, b) = (spec.a, spec.b);
        g.links.push(spec);
        g.adjacency.entry(a).or_default().push(id);
        g.adjacency.entry(b).or_default().push(id);
        self.events.publish(NetworkEvent::LinkAdded(id));
        id
    }

    /// Snapshot a node's spec.
    pub fn node(&self, id: NodeId) -> Option<NodeSpec> {
        self.inner.read().nodes.get(id.0 as usize).cloned()
    }

    /// Snapshot a link's spec.
    pub fn link(&self, id: LinkId) -> Option<LinkSpec> {
        self.inner.read().links.get(id.0 as usize).cloned()
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.inner.read().nodes.len()
    }

    /// Number of links.
    pub fn link_count(&self) -> usize {
        self.inner.read().links.len()
    }

    /// All node ids.
    pub fn node_ids(&self) -> Vec<NodeId> {
        (0..self.node_count() as u32).map(NodeId).collect()
    }

    /// Find a node id by display name.
    pub fn find_node(&self, name: &str) -> Option<NodeId> {
        self.inner
            .read()
            .nodes
            .iter()
            .position(|n| n.name == name)
            .map(|i| NodeId(i as u32))
    }

    /// Nodes belonging to a domain.
    pub fn nodes_in_domain(&self, domain: &str) -> Vec<NodeId> {
        self.inner
            .read()
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.domain == domain)
            .map(|(i, _)| NodeId(i as u32))
            .collect()
    }

    /// Update a link's bandwidth (monitoring event fires).
    pub fn set_bandwidth(&self, id: LinkId, mbps: f64) {
        {
            let mut g = self.inner.write();
            g.links[id.0 as usize].bandwidth_mbps = mbps;
        }
        self.events.publish(NetworkEvent::LinkChanged(id));
    }

    /// Update a link's latency (monitoring event fires).
    pub fn set_latency(&self, id: LinkId, ms: f64) {
        {
            let mut g = self.inner.write();
            g.links[id.0 as usize].latency_ms = ms;
        }
        self.events.publish(NetworkEvent::LinkChanged(id));
    }

    /// Take a link out of service: routing treats it as absent until
    /// restored. Its static properties (latency, bandwidth, security) are
    /// preserved for restoration.
    pub fn fail_link(&self, id: LinkId) {
        let fresh = self.inner.write().failed_links.insert(id);
        if fresh {
            self.events.publish(NetworkEvent::LinkChanged(id));
        }
    }

    /// Bring a failed link back with the given latency.
    pub fn restore_link(&self, id: LinkId, latency_ms: f64) {
        {
            let mut g = self.inner.write();
            g.failed_links.remove(&id);
            g.links[id.0 as usize].latency_ms = latency_ms;
        }
        self.events.publish(NetworkEvent::LinkChanged(id));
    }

    /// Bring a failed link back with the properties it went down with.
    pub fn heal_link(&self, id: LinkId) {
        let was_down = self.inner.write().failed_links.remove(&id);
        if was_down {
            self.events.publish(NetworkEvent::LinkChanged(id));
        }
    }

    /// Whether a link is in service.
    pub fn link_is_up(&self, id: LinkId) -> bool {
        !self.inner.read().failed_links.contains(&id)
    }

    /// Crash a node: routing excludes it (as endpoint and as transit),
    /// and CPU reservations on it are refused until
    /// [`restore_node`](Self::restore_node).
    pub fn fail_node(&self, id: NodeId) {
        let fresh = self.inner.write().failed_nodes.insert(id);
        if fresh {
            psf_telemetry::counter!("psf.netsim.node_failures").inc();
            self.events.publish(NetworkEvent::NodeFailed(id));
        }
    }

    /// Bring a failed node back into service.
    pub fn restore_node(&self, id: NodeId) {
        let was_down = self.inner.write().failed_nodes.remove(&id);
        if was_down {
            self.events.publish(NetworkEvent::NodeRestored(id));
        }
    }

    /// Whether a node is in service.
    pub fn node_is_up(&self, id: NodeId) -> bool {
        !self.inner.read().failed_nodes.contains(&id)
    }

    /// Nodes currently failed.
    pub fn failed_nodes(&self) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self.inner.read().failed_nodes.iter().copied().collect();
        v.sort();
        v
    }

    /// Partition two node groups from each other: every link with one
    /// endpoint in `a` and the other in `b` fails. Returns the failed
    /// links so [`heal_partition`](Self::heal_partition) can undo it.
    pub fn partition_between(&self, a: &[NodeId], b: &[NodeId]) -> Vec<LinkId> {
        let crossing: Vec<LinkId> = {
            let g = self.inner.read();
            g.links
                .iter()
                .enumerate()
                .map(|(i, l)| (LinkId(i as u32), l))
                .filter(|(id, l)| {
                    !g.failed_links.contains(id)
                        && ((a.contains(&l.a) && b.contains(&l.b))
                            || (a.contains(&l.b) && b.contains(&l.a)))
                })
                .map(|(id, _)| id)
                .collect()
        };
        for &id in &crossing {
            self.fail_link(id);
        }
        crossing
    }

    /// Isolate an administrative domain: every link crossing its boundary
    /// fails. Returns the failed links for later healing.
    pub fn partition_domain(&self, domain: &str) -> Vec<LinkId> {
        let inside = self.nodes_in_domain(domain);
        let outside: Vec<NodeId> = self
            .node_ids()
            .into_iter()
            .filter(|n| !inside.contains(n))
            .collect();
        self.partition_between(&inside, &outside)
    }

    /// Undo a partition by healing the links it failed.
    pub fn heal_partition(&self, links: &[LinkId]) {
        for &id in links {
            self.heal_link(id);
        }
    }

    /// Update a link's security flag (monitoring event fires).
    pub fn set_secure(&self, id: LinkId, secure: bool) {
        {
            let mut g = self.inner.write();
            g.links[id.0 as usize].secure = secure;
        }
        self.events.publish(NetworkEvent::LinkChanged(id));
    }

    /// Reserve CPU on a node for a component deployment. Returns false if
    /// insufficient capacity remains.
    pub fn reserve_cpu(&self, id: NodeId, units: u32) -> bool {
        let ok = {
            let mut g = self.inner.write();
            if g.failed_nodes.contains(&id) {
                return false;
            }
            let n = &mut g.nodes[id.0 as usize];
            if n.cpu_available() >= units {
                n.cpu_used += units;
                true
            } else {
                false
            }
        };
        if ok {
            self.events.publish(NetworkEvent::NodeChanged(id));
        }
        ok
    }

    /// Release previously reserved CPU.
    pub fn release_cpu(&self, id: NodeId, units: u32) {
        {
            let mut g = self.inner.write();
            let n = &mut g.nodes[id.0 as usize];
            n.cpu_used = n.cpu_used.saturating_sub(units);
        }
        self.events.publish(NetworkEvent::NodeChanged(id));
    }

    /// Dijkstra shortest path by latency from `from` to `to`. Returns the
    /// path metrics, or `None` if disconnected.
    pub fn route(&self, from: NodeId, to: NodeId) -> Option<PathMetrics> {
        let g = self.inner.read();
        if g.failed_nodes.contains(&from) || g.failed_nodes.contains(&to) {
            return None;
        }
        if from == to {
            return Some(PathMetrics {
                links: Vec::new(),
                latency_ms: 0.0,
                bandwidth_mbps: f64::INFINITY,
                all_secure: true,
            });
        }
        // (negated latency, node) min-heap via Reverse-ordering trick.
        #[derive(PartialEq)]
        struct Entry(f64, NodeId);
        impl Eq for Entry {}
        impl PartialOrd for Entry {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Entry {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                // Max-heap on negated latency = min-heap on latency.
                other
                    .0
                    .partial_cmp(&self.0)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| self.1.cmp(&other.1))
            }
        }

        let mut dist: HashMap<NodeId, f64> = HashMap::new();
        let mut prev: HashMap<NodeId, (NodeId, LinkId)> = HashMap::new();
        let mut heap = BinaryHeap::new();
        dist.insert(from, 0.0);
        heap.push(Entry(0.0, from));
        while let Some(Entry(d, u)) = heap.pop() {
            if u == to {
                break;
            }
            if d > *dist.get(&u).unwrap_or(&f64::INFINITY) {
                continue;
            }
            for &lid in g.adjacency.get(&u).into_iter().flatten() {
                if g.failed_links.contains(&lid) {
                    continue;
                }
                let l = &g.links[lid.0 as usize];
                let v = if l.a == u { l.b } else { l.a };
                if g.failed_nodes.contains(&v) {
                    continue;
                }
                let nd = d + l.latency_ms;
                if !nd.is_finite() {
                    continue;
                }
                if nd < *dist.get(&v).unwrap_or(&f64::INFINITY) {
                    dist.insert(v, nd);
                    prev.insert(v, (u, lid));
                    heap.push(Entry(nd, v));
                }
            }
        }
        if !dist.contains_key(&to) {
            return None;
        }
        // Reconstruct.
        let mut links = Vec::new();
        let mut cur = to;
        while cur != from {
            let (p, l) = *prev.get(&cur)?;
            links.push(l);
            cur = p;
        }
        links.reverse();
        let mut latency = 0.0;
        let mut bw = f64::INFINITY;
        let mut secure = true;
        for &lid in &links {
            let l = &g.links[lid.0 as usize];
            latency += l.latency_ms;
            bw = bw.min(l.bandwidth_mbps);
            secure &= l.secure;
        }
        Some(PathMetrics {
            links,
            latency_ms: latency,
            bandwidth_mbps: bw,
            all_secure: secure,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(name: &str, domain: &str) -> NodeSpec {
        NodeSpec {
            name: name.into(),
            domain: domain.into(),
            vendor: "Dell".into(),
            os: "Linux".into(),
            cpu_capacity: 100,
            cpu_used: 0,
        }
    }

    fn link(a: NodeId, b: NodeId, lat: f64, bw: f64, secure: bool) -> LinkSpec {
        LinkSpec {
            a,
            b,
            latency_ms: lat,
            bandwidth_mbps: bw,
            secure,
        }
    }

    #[test]
    fn route_prefers_lower_latency() {
        let net = Network::new();
        let a = net.add_node(node("a", "D"));
        let b = net.add_node(node("b", "D"));
        let c = net.add_node(node("c", "D"));
        net.add_link(link(a, c, 100.0, 10.0, true)); // direct but slow
        net.add_link(link(a, b, 10.0, 100.0, true));
        net.add_link(link(b, c, 10.0, 100.0, true));
        let p = net.route(a, c).unwrap();
        assert_eq!(p.links.len(), 2);
        assert!((p.latency_ms - 20.0).abs() < 1e-9);
        assert!((p.bandwidth_mbps - 100.0).abs() < 1e-9);
    }

    #[test]
    fn route_reports_insecure_path() {
        let net = Network::new();
        let a = net.add_node(node("a", "D1"));
        let b = net.add_node(node("b", "D2"));
        net.add_link(link(a, b, 50.0, 1.0, false));
        let p = net.route(a, b).unwrap();
        assert!(!p.all_secure);
    }

    #[test]
    fn route_to_self_is_free() {
        let net = Network::new();
        let a = net.add_node(node("a", "D"));
        let p = net.route(a, a).unwrap();
        assert_eq!(p.latency_ms, 0.0);
        assert!(p.all_secure);
    }

    #[test]
    fn disconnected_nodes_unroutable() {
        let net = Network::new();
        let a = net.add_node(node("a", "D"));
        let b = net.add_node(node("b", "D"));
        assert!(net.route(a, b).is_none());
    }

    #[test]
    fn transfer_time_model() {
        let net = Network::new();
        let a = net.add_node(node("a", "D"));
        let b = net.add_node(node("b", "D"));
        net.add_link(link(a, b, 10.0, 8.0, true)); // 8 Mbps = 1 KB/ms
        let p = net.route(a, b).unwrap();
        // 1 MB at 8 Mbps = 1000 ms serialization + 10 ms latency.
        let t = p.transfer_time_ms(1_000_000);
        assert!((t - 1010.0).abs() < 1.0, "{t}");
    }

    #[test]
    fn cpu_reservation() {
        let net = Network::new();
        let a = net.add_node(node("a", "D"));
        assert!(net.reserve_cpu(a, 60));
        assert!(!net.reserve_cpu(a, 60));
        assert!(net.reserve_cpu(a, 40));
        net.release_cpu(a, 50);
        assert_eq!(net.node(a).unwrap().cpu_available(), 50);
    }

    #[test]
    fn dynamic_updates_reroute() {
        let net = Network::new();
        let a = net.add_node(node("a", "D"));
        let b = net.add_node(node("b", "D"));
        let c = net.add_node(node("c", "D"));
        let direct = net.add_link(link(a, c, 10.0, 10.0, true));
        net.add_link(link(a, b, 15.0, 10.0, true));
        net.add_link(link(b, c, 15.0, 10.0, true));
        assert_eq!(net.route(a, c).unwrap().links, vec![direct]);
        net.set_latency(direct, 100.0);
        assert_eq!(net.route(a, c).unwrap().links.len(), 2);
    }

    #[test]
    fn failed_links_are_not_routed() {
        let net = Network::new();
        let a = net.add_node(node("a", "D"));
        let b = net.add_node(node("b", "D"));
        let c = net.add_node(node("c", "D"));
        let direct = net.add_link(link(a, b, 5.0, 10.0, true));
        net.add_link(link(a, c, 10.0, 10.0, true));
        net.add_link(link(c, b, 10.0, 10.0, true));
        assert_eq!(net.route(a, b).unwrap().links, vec![direct]);
        net.fail_link(direct);
        let detour = net.route(a, b).unwrap();
        assert_eq!(detour.links.len(), 2);
        // Fail the detour too: unreachable.
        net.fail_link(detour.links[0]);
        assert!(net.route(a, b).is_none());
        // Restore: direct path returns.
        net.restore_link(direct, 5.0);
        assert_eq!(net.route(a, b).unwrap().links, vec![direct]);
    }

    #[test]
    fn failed_node_is_excluded_from_routing_until_restored() {
        let net = Network::new();
        let a = net.add_node(node("a", "D"));
        let b = net.add_node(node("b", "D"));
        let c = net.add_node(node("c", "D"));
        net.add_link(link(a, b, 5.0, 10.0, true));
        net.add_link(link(b, c, 5.0, 10.0, true));
        let mon = net.monitor();
        // b is the only transit node: failing it disconnects a from c.
        assert!(net.route(a, c).is_some());
        net.fail_node(b);
        assert!(!net.node_is_up(b));
        assert_eq!(net.failed_nodes(), vec![b]);
        assert!(net.route(a, c).is_none(), "transit through a dead node");
        assert!(net.route(a, b).is_none(), "dead endpoint");
        assert!(net.route(b, b).is_none(), "dead self-route");
        // A dead node refuses reservations.
        assert!(!net.reserve_cpu(b, 1));
        // Restore: routing and reservations recover.
        net.restore_node(b);
        assert!(net.route(a, c).is_some());
        assert!(net.reserve_cpu(b, 1));
        let evs = mon.drain();
        assert!(evs.contains(&NetworkEvent::NodeFailed(b)));
        assert!(evs.contains(&NetworkEvent::NodeRestored(b)));
    }

    #[test]
    fn fail_node_is_idempotent() {
        let net = Network::new();
        let a = net.add_node(node("a", "D"));
        let mon = net.monitor();
        net.fail_node(a);
        net.fail_node(a);
        net.restore_node(a);
        net.restore_node(a);
        let evs = mon.drain();
        assert_eq!(
            evs,
            vec![NetworkEvent::NodeFailed(a), NetworkEvent::NodeRestored(a)]
        );
    }

    #[test]
    fn partition_cuts_and_heals_with_original_properties() {
        let net = Network::new();
        let a = net.add_node(node("a", "D1"));
        let b = net.add_node(node("b", "D1"));
        let c = net.add_node(node("c", "D2"));
        net.add_link(link(a, b, 1.0, 100.0, true));
        let cross1 = net.add_link(link(a, c, 30.0, 10.0, false));
        let cross2 = net.add_link(link(b, c, 35.0, 10.0, false));
        let cut = net.partition_between(&[a, b], &[c]);
        assert_eq!(cut.len(), 2);
        assert!(cut.contains(&cross1) && cut.contains(&cross2));
        assert!(net.route(a, c).is_none());
        assert!(net.route(a, b).is_some(), "intra-group link survives");
        // Healing restores the links with the latency they failed with.
        net.heal_partition(&cut);
        let p = net.route(a, c).unwrap();
        assert!((p.latency_ms - 30.0).abs() < 1e-9);
    }

    #[test]
    fn partition_domain_isolates_the_domain() {
        let net = Network::new();
        let a = net.add_node(node("a", "D1"));
        let b = net.add_node(node("b", "D2"));
        let c = net.add_node(node("c", "D3"));
        net.add_link(link(a, b, 10.0, 10.0, true));
        net.add_link(link(b, c, 10.0, 10.0, true));
        let cut = net.partition_domain("D2");
        assert_eq!(cut.len(), 2);
        assert!(net.route(a, b).is_none());
        assert!(net.route(b, c).is_none());
        net.heal_partition(&cut);
        assert!(net.route(a, c).is_some());
    }

    #[test]
    fn domain_and_name_lookup() {
        let net = Network::new();
        let a = net.add_node(node("ny-1", "Comp.NY"));
        let _ = net.add_node(node("sd-1", "Comp.SD"));
        assert_eq!(net.find_node("ny-1"), Some(a));
        assert_eq!(net.nodes_in_domain("Comp.NY"), vec![a]);
        assert_eq!(net.node(a).unwrap().vendor_role(), "Dell.Linux");
    }
}
