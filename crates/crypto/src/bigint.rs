//! Minimal fixed-width big-integer helpers used by the scalar field
//! (arithmetic modulo the Ed25519 group order ℓ) and by the runtime
//! derivation of SHA-2 constants.
//!
//! Only the handful of operations we need are implemented; all are
//! straightforward schoolbook algorithms operating on little-endian
//! `u64` limbs.

/// 256-bit unsigned integer, little-endian limbs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct U256(pub [u64; 4]);

/// 512-bit unsigned integer, little-endian limbs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct U512(pub [u64; 8]);

impl U256 {
    pub const ZERO: U256 = U256([0; 4]);

    pub fn from_le_bytes(b: &[u8; 32]) -> U256 {
        let mut limbs = [0u64; 4];
        for (i, limb) in limbs.iter_mut().enumerate() {
            let mut w = [0u8; 8];
            w.copy_from_slice(&b[i * 8..i * 8 + 8]);
            *limb = u64::from_le_bytes(w);
        }
        U256(limbs)
    }

    pub fn to_le_bytes(self) -> [u8; 32] {
        let mut out = [0u8; 32];
        for (i, limb) in self.0.iter().enumerate() {
            out[i * 8..i * 8 + 8].copy_from_slice(&limb.to_le_bytes());
        }
        out
    }

    /// `self + rhs`, returning the sum and the carry-out bit.
    pub fn overflowing_add(self, rhs: U256) -> (U256, bool) {
        let mut out = [0u64; 4];
        let mut carry = 0u64;
        for (o, (a, b)) in out.iter_mut().zip(self.0.iter().zip(rhs.0.iter())) {
            let (s1, c1) = a.overflowing_add(*b);
            let (s2, c2) = s1.overflowing_add(carry);
            *o = s2;
            carry = (c1 as u64) + (c2 as u64);
        }
        (U256(out), carry != 0)
    }

    /// `self - rhs`, returning the difference and whether a borrow occurred.
    pub fn overflowing_sub(self, rhs: U256) -> (U256, bool) {
        let mut out = [0u64; 4];
        let mut borrow = 0u64;
        for (o, (a, b)) in out.iter_mut().zip(self.0.iter().zip(rhs.0.iter())) {
            let (d1, b1) = a.overflowing_sub(*b);
            let (d2, b2) = d1.overflowing_sub(borrow);
            *o = d2;
            borrow = (b1 as u64) + (b2 as u64);
        }
        (U256(out), borrow != 0)
    }

    pub fn cmp_val(&self, other: &U256) -> core::cmp::Ordering {
        for i in (0..4).rev() {
            match self.0[i].cmp(&other.0[i]) {
                core::cmp::Ordering::Equal => continue,
                ord => return ord,
            }
        }
        core::cmp::Ordering::Equal
    }

    pub fn is_zero(&self) -> bool {
        self.0.iter().all(|&l| l == 0)
    }

    /// Full 256×256 → 512-bit product.
    pub fn widening_mul(self, rhs: U256) -> U512 {
        let mut out = [0u64; 8];
        for i in 0..4 {
            let mut carry = 0u128;
            for j in 0..4 {
                let acc = out[i + j] as u128 + (self.0[i] as u128) * (rhs.0[j] as u128) + carry;
                out[i + j] = acc as u64;
                carry = acc >> 64;
            }
            // carry < 2^64 here; i+4 <= 7
            out[i + 4] = out[i + 4].wrapping_add(carry as u64);
        }
        U512(out)
    }
}

impl U512 {
    pub fn from_le_bytes(b: &[u8; 64]) -> U512 {
        let mut limbs = [0u64; 8];
        for (i, limb) in limbs.iter_mut().enumerate() {
            let mut w = [0u8; 8];
            w.copy_from_slice(&b[i * 8..i * 8 + 8]);
            *limb = u64::from_le_bytes(w);
        }
        U512(limbs)
    }

    pub fn bit(&self, i: usize) -> bool {
        (self.0[i / 64] >> (i % 64)) & 1 == 1
    }

    /// `self mod m`, via binary long division. Requires `m < 2^255` and
    /// `m != 0` so the running remainder never overflows 256 bits.
    pub fn rem(self, m: &U256) -> U256 {
        debug_assert!(!m.is_zero());
        debug_assert!(m.0[3] >> 63 == 0, "modulus must be < 2^255");
        let mut r = U256::ZERO;
        for i in (0..512).rev() {
            // r = (r << 1) | bit(i)
            let mut carried = U256::ZERO;
            let mut carry = self.bit(i) as u64;
            for j in 0..4 {
                carried.0[j] = (r.0[j] << 1) | carry;
                carry = r.0[j] >> 63;
            }
            r = carried;
            if r.cmp_val(m) != core::cmp::Ordering::Less {
                r = r.overflowing_sub(*m).0;
            }
        }
        r
    }
}

/// Exact integer `n`-th root helpers used to derive SHA-2 constants.
///
/// `frac_root_bits(x, n, frac_bits)` computes
/// `floor(x^(1/n) * 2^frac_bits) mod 2^64` — i.e. the first `frac_bits`
/// fractional bits of the real n-th root of the integer `x`, as used by
/// FIPS 180-4 to define round constants (cube roots) and initial hash
/// values (square roots) from small primes.
pub fn frac_root_bits(x: u64, n: u32, frac_bits: u32) -> u64 {
    // We want floor((x << (n * frac_bits))^(1/n)); the integer part of the
    // root occupies the bits above `frac_bits`, masking to u64 keeps the
    // fractional word (frac_bits <= 64 and small x keeps everything tiny).
    assert!(n == 2 || n == 3);
    assert!(frac_bits <= 64);
    let shift = (n * frac_bits) as usize;
    // target = x << shift, as little-endian u64 limbs (at most 6 limbs for
    // x < 2^16, n = 3, frac_bits = 64).
    let mut target = [0u64; 8];
    let limb = shift / 64;
    let off = shift % 64;
    target[limb] = x << off;
    if off != 0 && limb + 1 < 8 {
        target[limb + 1] = x >> (64 - off);
    }

    // Binary search the root r (fits easily in u128).
    let mut lo: u128 = 0;
    // The root is x^(1/n) * 2^frac_bits; for the primes used by SHA-2
    // (x < 4096) the integer part fits in 6 bits.
    assert!(x < 4096);
    let mut hi: u128 = 1u128 << ((frac_bits as usize + 7).min(126));
    while lo + 1 < hi {
        let mid = lo + (hi - lo) / 2;
        if cmp_le_arrays(&pow_le(mid, n), &target) != core::cmp::Ordering::Greater {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    // Keep only the fractional word: the bits below `frac_bits`.
    if frac_bits == 64 {
        lo as u64
    } else {
        (lo as u64) & ((1u64 << frac_bits) - 1)
    }
}

/// Compare two little-endian limb arrays as integers.
fn cmp_le_arrays(a: &[u64; 8], b: &[u64; 8]) -> core::cmp::Ordering {
    for i in (0..8).rev() {
        match a[i].cmp(&b[i]) {
            core::cmp::Ordering::Equal => continue,
            ord => return ord,
        }
    }
    core::cmp::Ordering::Equal
}

/// `v^n` for small `n`, as 8 little-endian u64 limbs. Saturates to all-ones
/// on overflow past 512 bits so that binary search treats it as "too big".
fn pow_le(v: u128, n: u32) -> [u64; 8] {
    let mut acc = [0u64; 8];
    acc[0] = 1;
    for _ in 0..n {
        match mul_le(&acc, v) {
            Some(next) => acc = next,
            None => return [u64::MAX; 8],
        }
    }
    acc
}

/// Multiply an 8-limb little-endian integer by a u128. Returns `None` on
/// overflow past 512 bits.
fn mul_le(a: &[u64; 8], v: u128) -> Option<[u64; 8]> {
    let vl = [v as u64, (v >> 64) as u64];
    let mut wide = [0u64; 10];
    for (j, &vj) in vl.iter().enumerate() {
        let mut carry: u128 = 0;
        for i in 0..8 {
            let acc = wide[i + j] as u128 + (a[i] as u128) * (vj as u128) + carry;
            wide[i + j] = acc as u64;
            carry = acc >> 64;
        }
        let mut k = 8 + j;
        while carry != 0 && k < 10 {
            let acc = wide[k] as u128 + carry;
            wide[k] = acc as u64;
            carry = acc >> 64;
            k += 1;
        }
    }
    if wide[8] != 0 || wide[9] != 0 {
        return None;
    }
    let mut out = [0u64; 8];
    out.copy_from_slice(&wide[..8]);
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u256_add_sub_roundtrip() {
        let a = U256([u64::MAX, 1, 2, 3]);
        let b = U256([5, 6, 7, 8]);
        let (s, c) = a.overflowing_add(b);
        assert!(!c);
        let (d, bo) = s.overflowing_sub(b);
        assert!(!bo);
        assert_eq!(d, a);
    }

    #[test]
    fn u256_mul_small() {
        let a = U256([7, 0, 0, 0]);
        let b = U256([9, 0, 0, 0]);
        assert_eq!(a.widening_mul(b).0[0], 63);
    }

    #[test]
    fn u256_mul_carries() {
        // (2^64 - 1)^2 = 2^128 - 2^65 + 1
        let a = U256([u64::MAX, 0, 0, 0]);
        let p = a.widening_mul(a);
        assert_eq!(p.0[0], 1);
        assert_eq!(p.0[1], u64::MAX - 1);
        assert_eq!(p.0[2], 0);
    }

    #[test]
    fn u512_rem_simple() {
        // 1000 mod 7 = 6
        let mut x = U512::default();
        x.0[0] = 1000;
        let m = U256([7, 0, 0, 0]);
        assert_eq!(x.rem(&m).0[0], 6);
    }

    #[test]
    fn u512_rem_large() {
        // (m * k + r) mod m == r for a big m.
        let m = U256([0xdead_beef, 0x1234, 0, 1]); // ~2^192
        let k = U256([0xffff_ffff_ffff, 0xabc, 99, 0]);
        let r = U256([42, 7, 0, 0]);
        let mut prod = m.widening_mul(k);
        // prod += r
        let mut carry = 0u64;
        for i in 0..4 {
            let (s1, c1) = prod.0[i].overflowing_add(r.0[i]);
            let (s2, c2) = s1.overflowing_add(carry);
            prod.0[i] = s2;
            carry = (c1 as u64) + (c2 as u64);
        }
        assert_eq!(carry, 0);
        assert_eq!(prod.rem(&m), r);
    }

    #[test]
    fn frac_root_sqrt2() {
        // First 64 fractional bits of sqrt(2) = 0x6a09e667f3bcc908
        // (this is the well-known SHA-512 IV word h0).
        assert_eq!(frac_root_bits(2, 2, 64), 0x6a09e667f3bcc908);
        // First 32 fractional bits of sqrt(2) = SHA-256 IV h0.
        assert_eq!(frac_root_bits(2, 2, 32), 0x6a09e667);
    }

    #[test]
    fn frac_root_cbrt2() {
        // First 32 fractional bits of cbrt(2) = SHA-256 K[0].
        assert_eq!(frac_root_bits(2, 3, 32), 0x428a2f98);
        // First 64 fractional bits of cbrt(2) = SHA-512 K[0].
        assert_eq!(frac_root_bits(2, 3, 64), 0x428a2f98d728ae22);
    }
}
