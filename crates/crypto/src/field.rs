//! Arithmetic in GF(2^255 − 19) with radix-2^51 limbs.
//!
//! Representation: five `u64` limbs, value = Σ limb[i]·2^(51·i). Limbs are
//! kept loosely reduced (< 2^52-ish) between operations; full canonical
//! reduction happens only on encoding.

/// A field element of GF(2^255 − 19).
#[derive(Debug, Clone, Copy)]
pub struct Fe(pub(crate) [u64; 5]);

const MASK51: u64 = (1 << 51) - 1;

impl Fe {
    /// The additive identity.
    pub const ZERO: Fe = Fe([0; 5]);
    /// The multiplicative identity.
    pub const ONE: Fe = Fe([1, 0, 0, 0, 0]);

    /// Construct from a small u64 (< 2^51).
    pub fn from_u64(v: u64) -> Fe {
        debug_assert!(v <= MASK51);
        Fe([v, 0, 0, 0, 0])
    }

    /// Decode 32 little-endian bytes (the high bit of byte 31 is ignored,
    /// per convention).
    pub fn from_bytes(b: &[u8; 32]) -> Fe {
        let load = |off: usize| -> u64 {
            let mut w = [0u8; 8];
            w.copy_from_slice(&b[off..off + 8]);
            u64::from_le_bytes(w)
        };
        Fe([
            load(0) & MASK51,
            (load(6) >> 3) & MASK51,
            (load(12) >> 6) & MASK51,
            (load(19) >> 1) & MASK51,
            (load(24) >> 12) & MASK51,
        ])
    }

    /// Encode canonically to 32 little-endian bytes.
    pub fn to_bytes(self) -> [u8; 32] {
        let mut t = self.reduce_limbs().0;
        // Canonical reduction: compute q = 1 iff value >= p, then subtract.
        let mut q = (t[0].wrapping_add(19)) >> 51;
        q = (t[1].wrapping_add(q)) >> 51;
        q = (t[2].wrapping_add(q)) >> 51;
        q = (t[3].wrapping_add(q)) >> 51;
        q = (t[4].wrapping_add(q)) >> 51;

        t[0] = t[0].wrapping_add(19u64.wrapping_mul(q));
        let mut carry = t[0] >> 51;
        t[0] &= MASK51;
        t[1] = t[1].wrapping_add(carry);
        carry = t[1] >> 51;
        t[1] &= MASK51;
        t[2] = t[2].wrapping_add(carry);
        carry = t[2] >> 51;
        t[2] &= MASK51;
        t[3] = t[3].wrapping_add(carry);
        carry = t[3] >> 51;
        t[3] &= MASK51;
        t[4] = t[4].wrapping_add(carry);
        t[4] &= MASK51; // drop bit 255 (the subtracted 2^255)

        let mut out = [0u8; 32];
        let lo = |x: u64| x.to_le_bytes();
        // Pack 5×51 bits into 32 bytes.
        let w0 = t[0] | (t[1] << 51);
        let w1 = (t[1] >> 13) | (t[2] << 38);
        let w2 = (t[2] >> 26) | (t[3] << 25);
        let w3 = (t[3] >> 39) | (t[4] << 12);
        out[0..8].copy_from_slice(&lo(w0));
        out[8..16].copy_from_slice(&lo(w1));
        out[16..24].copy_from_slice(&lo(w2));
        out[24..32].copy_from_slice(&lo(w3));
        out
    }

    /// One carry pass bringing limbs below 2^51 (+ small epsilon in limb 0).
    fn reduce_limbs(self) -> Fe {
        let mut t = self.0;
        let mut carry;
        carry = t[0] >> 51;
        t[0] &= MASK51;
        t[1] += carry;
        carry = t[1] >> 51;
        t[1] &= MASK51;
        t[2] += carry;
        carry = t[2] >> 51;
        t[2] &= MASK51;
        t[3] += carry;
        carry = t[3] >> 51;
        t[3] &= MASK51;
        t[4] += carry;
        carry = t[4] >> 51;
        t[4] &= MASK51;
        t[0] += carry * 19;
        carry = t[0] >> 51;
        t[0] &= MASK51;
        t[1] += carry;
        Fe(t)
    }

    /// Field addition.
    pub fn add(&self, rhs: &Fe) -> Fe {
        let mut out = [0u64; 5];
        for (o, (a, b)) in out.iter_mut().zip(self.0.iter().zip(rhs.0.iter())) {
            *o = a + b;
        }
        Fe(out).reduce_limbs()
    }

    /// Field subtraction.
    pub fn sub(&self, rhs: &Fe) -> Fe {
        // Add 2p before subtracting so limbs stay non-negative; in radix-51,
        // 2p = (2^52 − 38, 2^52 − 2, 2^52 − 2, 2^52 − 2, 2^52 − 2).
        let two_p = [
            0x000F_FFFF_FFFF_FFDA_u64,
            0x000F_FFFF_FFFF_FFFE,
            0x000F_FFFF_FFFF_FFFE,
            0x000F_FFFF_FFFF_FFFE,
            0x000F_FFFF_FFFF_FFFE,
        ];
        let mut out = [0u64; 5];
        for i in 0..5 {
            out[i] = self.0[i] + two_p[i] - rhs.0[i];
        }
        Fe(out).reduce_limbs()
    }

    /// Field negation.
    pub fn neg(&self) -> Fe {
        Fe::ZERO.sub(self)
    }

    /// Field multiplication.
    pub fn mul(&self, rhs: &Fe) -> Fe {
        let f = &self.reduce_limbs().0;
        let g = &rhs.reduce_limbs().0;
        let m = |a: u64, b: u64| (a as u128) * (b as u128);

        let r0 =
            m(f[0], g[0]) + 19 * (m(f[1], g[4]) + m(f[2], g[3]) + m(f[3], g[2]) + m(f[4], g[1]));
        let r1 =
            m(f[0], g[1]) + m(f[1], g[0]) + 19 * (m(f[2], g[4]) + m(f[3], g[3]) + m(f[4], g[2]));
        let r2 =
            m(f[0], g[2]) + m(f[1], g[1]) + m(f[2], g[0]) + 19 * (m(f[3], g[4]) + m(f[4], g[3]));
        let r3 = m(f[0], g[3]) + m(f[1], g[2]) + m(f[2], g[1]) + m(f[3], g[0]) + 19 * m(f[4], g[4]);
        let r4 = m(f[0], g[4]) + m(f[1], g[3]) + m(f[2], g[2]) + m(f[3], g[1]) + m(f[4], g[0]);

        Fe::carry_wide([r0, r1, r2, r3, r4])
    }

    /// Field squaring.
    pub fn square(&self) -> Fe {
        self.mul(self)
    }

    fn carry_wide(mut r: [u128; 5]) -> Fe {
        let mut out = [0u64; 5];
        let mut carry: u128 = 0;
        for i in 0..5 {
            let v = r[i] + carry;
            out[i] = (v as u64) & MASK51;
            carry = v >> 51;
            r[i] = 0;
        }
        // Fold the final carry back through ·19.
        let mut t = Fe(out);
        t.0[0] += (carry as u64) * 19;
        t.reduce_limbs()
    }

    /// Raise to the power given by 32 little-endian exponent bytes
    /// (variable-time; used only with fixed public exponents).
    pub fn pow_vartime(&self, exp_le: &[u8; 32]) -> Fe {
        let mut acc = Fe::ONE;
        let mut started = false;
        for byte in exp_le.iter().rev() {
            for bit in (0..8).rev() {
                if started {
                    acc = acc.square();
                }
                if (byte >> bit) & 1 == 1 {
                    acc = acc.mul(self);
                    started = true;
                }
            }
        }
        acc
    }

    /// Multiplicative inverse via Fermat: `self^(p-2)`. Returns zero for
    /// zero input.
    pub fn invert(&self) -> Fe {
        // p - 2 = 2^255 - 21, little-endian bytes: eb ff .. ff 7f
        let mut e = [0xffu8; 32];
        e[0] = 0xeb;
        e[31] = 0x7f;
        self.pow_vartime(&e)
    }

    /// `self^((p-5)/8)`, used in square-root extraction.
    pub fn pow_p58(&self) -> Fe {
        // (p-5)/8 = 2^252 - 3, bytes: fd ff .. ff 0f
        let mut e = [0xffu8; 32];
        e[0] = 0xfd;
        e[31] = 0x0f;
        self.pow_vartime(&e)
    }

    /// sqrt(-1) mod p = 2^((p-1)/4).
    pub fn sqrt_m1() -> Fe {
        // (p-1)/4 = 2^253 - 5, bytes: fb ff .. ff 1f
        let mut e = [0xffu8; 32];
        e[0] = 0xfb;
        e[31] = 0x1f;
        Fe::from_u64(2).pow_vartime(&e)
    }

    /// Compute `sqrt(u/v)` if it exists (ref10 algorithm). Returns
    /// `(was_square, root)`.
    pub fn sqrt_ratio(u: &Fe, v: &Fe) -> (bool, Fe) {
        let v3 = v.square().mul(v);
        let v7 = v3.square().mul(v);
        let mut r = u.mul(&v3).mul(&u.mul(&v7).pow_p58());
        let check = v.mul(&r.square());
        let u_neg = u.neg();
        let correct = check.ct_eq(u);
        let flipped = check.ct_eq(&u_neg);
        if flipped {
            r = r.mul(&Fe::sqrt_m1());
        }
        (correct || flipped, r)
    }

    /// Canonical equality.
    pub fn ct_eq(&self, other: &Fe) -> bool {
        crate::ct::ct_eq(&self.to_bytes(), &other.to_bytes())
    }

    /// True if the canonical encoding is zero.
    pub fn is_zero(&self) -> bool {
        self.ct_eq(&Fe::ZERO)
    }

    /// Sign bit: least-significant bit of the canonical encoding.
    pub fn is_negative(&self) -> bool {
        self.to_bytes()[0] & 1 == 1
    }

    /// Conditional negation (variable-time on `flag`; flags here derive
    /// from public encodings).
    pub fn cneg(&self, flag: bool) -> Fe {
        if flag {
            self.neg()
        } else {
            *self
        }
    }
}

impl PartialEq for Fe {
    fn eq(&self, other: &Self) -> bool {
        self.ct_eq(other)
    }
}
impl Eq for Fe {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_plus_one() {
        let two = Fe::ONE.add(&Fe::ONE);
        assert_eq!(two, Fe::from_u64(2));
    }

    #[test]
    fn sub_wraps() {
        let a = Fe::from_u64(5);
        let b = Fe::from_u64(7);
        let d = a.sub(&b); // -2 mod p
        assert_eq!(d.add(&Fe::from_u64(2)), Fe::ZERO);
    }

    #[test]
    fn mul_matches_repeated_add() {
        let a = Fe::from_u64(123456789);
        let mut s = Fe::ZERO;
        for _ in 0..17 {
            s = s.add(&a);
        }
        assert_eq!(a.mul(&Fe::from_u64(17)), s);
    }

    #[test]
    fn invert_roundtrip() {
        let a = Fe::from_u64(0x1234_5678_9abc);
        let inv = a.invert();
        assert_eq!(a.mul(&inv), Fe::ONE);
    }

    #[test]
    fn invert_zero_is_zero() {
        assert_eq!(Fe::ZERO.invert(), Fe::ZERO);
    }

    #[test]
    fn sqrt_m1_squares_to_minus_one() {
        let i = Fe::sqrt_m1();
        assert_eq!(i.square(), Fe::ONE.neg());
    }

    #[test]
    fn sqrt_ratio_perfect_square() {
        let x = Fe::from_u64(42);
        let sq = x.square();
        let (ok, r) = Fe::sqrt_ratio(&sq, &Fe::ONE);
        assert!(ok);
        assert!(r == x || r == x.neg());
    }

    #[test]
    fn sqrt_ratio_non_square() {
        // 2 is a non-square mod p (p ≡ 5 mod 8).
        let (ok, _) = Fe::sqrt_ratio(&Fe::from_u64(2), &Fe::ONE);
        assert!(!ok);
    }

    #[test]
    fn bytes_roundtrip() {
        let mut b = [0u8; 32];
        for (i, v) in b.iter_mut().enumerate() {
            *v = (i * 7 + 3) as u8;
        }
        b[31] &= 0x7f;
        let fe = Fe::from_bytes(&b);
        assert_eq!(fe.to_bytes(), b);
    }

    #[test]
    fn canonical_reduction_of_p_is_zero() {
        // p itself encodes to zero.
        let mut p_bytes = [0xffu8; 32];
        p_bytes[0] = 0xed;
        p_bytes[31] = 0x7f;
        let fe = Fe::from_bytes(&p_bytes);
        assert_eq!(fe.to_bytes(), [0u8; 32]);
    }

    #[test]
    fn p_plus_one_is_one() {
        let mut b = [0xffu8; 32];
        b[0] = 0xee; // p + 1
        b[31] = 0x7f;
        let fe = Fe::from_bytes(&b);
        assert_eq!(fe, Fe::ONE);
    }

    #[test]
    fn distributivity() {
        let a = Fe::from_u64(111111);
        let b = Fe::from_u64(222222);
        let c = Fe::from_u64(333333);
        assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
    }
}
