//! SHA-256 and SHA-512 (FIPS 180-4).
//!
//! The round constants (fractional cube roots of the first 64/80 primes)
//! and initial hash values (fractional square roots of the first 8 primes)
//! are derived at runtime by exact integer root extraction in
//! [`crate::bigint`], then the whole construction is validated against the
//! FIPS known-answer digests in the test module. This removes the usual
//! risk of a silently mistranscribed constant table.

use crate::bigint::frac_root_bits;
use std::sync::OnceLock;

/// First `n` primes, by trial division.
fn primes(n: usize) -> Vec<u64> {
    let mut out = Vec::with_capacity(n);
    let mut cand = 2u64;
    while out.len() < n {
        if out
            .iter()
            .take_while(|&&p| p * p <= cand)
            .all(|&p| !cand.is_multiple_of(p))
        {
            out.push(cand);
        }
        cand += 1;
    }
    out
}

fn k256() -> &'static [u32; 64] {
    static K: OnceLock<[u32; 64]> = OnceLock::new();
    K.get_or_init(|| {
        let ps = primes(64);
        let mut k = [0u32; 64];
        for (i, &p) in ps.iter().enumerate() {
            k[i] = frac_root_bits(p, 3, 32) as u32;
        }
        k
    })
}

fn iv256() -> &'static [u32; 8] {
    static IV: OnceLock<[u32; 8]> = OnceLock::new();
    IV.get_or_init(|| {
        let ps = primes(8);
        let mut h = [0u32; 8];
        for (i, &p) in ps.iter().enumerate() {
            h[i] = frac_root_bits(p, 2, 32) as u32;
        }
        h
    })
}

fn k512() -> &'static [u64; 80] {
    static K: OnceLock<[u64; 80]> = OnceLock::new();
    K.get_or_init(|| {
        let ps = primes(80);
        let mut k = [0u64; 80];
        for (i, &p) in ps.iter().enumerate() {
            k[i] = frac_root_bits(p, 3, 64);
        }
        k
    })
}

fn iv512() -> &'static [u64; 8] {
    static IV: OnceLock<[u64; 8]> = OnceLock::new();
    IV.get_or_init(|| {
        let ps = primes(8);
        let mut h = [0u64; 8];
        for (i, &p) in ps.iter().enumerate() {
            h[i] = frac_root_bits(p, 2, 64);
        }
        h
    })
}

/// Incremental SHA-256 hasher.
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buf: [u8; 64],
    buf_len: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Create a fresh hasher.
    pub fn new() -> Self {
        Sha256 {
            state: *iv256(),
            buf: [0; 64],
            buf_len: 0,
            total_len: 0,
        }
    }

    /// Absorb `data`.
    pub fn update(&mut self, mut data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            } else {
                return; // buffer not full ⇒ data exhausted
            }
        }
        while data.len() >= 64 {
            let mut block = [0u8; 64];
            block.copy_from_slice(&data[..64]);
            self.compress(&block);
            data = &data[64..];
        }
        self.buf[..data.len()].copy_from_slice(data);
        self.buf_len = data.len();
    }

    /// Finish and produce the 32-byte digest.
    pub fn finalize(mut self) -> [u8; 32] {
        let bit_len = self.total_len.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        // Appending the length must not be counted in total_len, but we've
        // already captured bit_len, so update() bookkeeping is harmless.
        self.update(&bit_len.to_be_bytes());
        debug_assert_eq!(self.buf_len, 0);
        let mut out = [0u8; 32];
        for (i, w) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&w.to_be_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let k = k256();
        let mut w = [0u32; 64];
        for (i, wi) in w.iter_mut().take(16).enumerate() {
            let mut b = [0u8; 4];
            b.copy_from_slice(&block[i * 4..i * 4 + 4]);
            *wi = u32::from_be_bytes(b);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(k[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

/// Incremental SHA-512 hasher.
#[derive(Clone)]
pub struct Sha512 {
    state: [u64; 8],
    buf: [u8; 128],
    buf_len: usize,
    total_len: u128,
}

impl Default for Sha512 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha512 {
    /// Create a fresh hasher.
    pub fn new() -> Self {
        Sha512 {
            state: *iv512(),
            buf: [0; 128],
            buf_len: 0,
            total_len: 0,
        }
    }

    /// Absorb `data`.
    pub fn update(&mut self, mut data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u128);
        if self.buf_len > 0 {
            let take = (128 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 128 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            } else {
                return; // buffer not full ⇒ data exhausted
            }
        }
        while data.len() >= 128 {
            let mut block = [0u8; 128];
            block.copy_from_slice(&data[..128]);
            self.compress(&block);
            data = &data[128..];
        }
        self.buf[..data.len()].copy_from_slice(data);
        self.buf_len = data.len();
    }

    /// Finish and produce the 64-byte digest.
    pub fn finalize(mut self) -> [u8; 64] {
        let bit_len = self.total_len.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buf_len != 112 {
            self.update(&[0]);
        }
        self.update(&bit_len.to_be_bytes());
        debug_assert_eq!(self.buf_len, 0);
        let mut out = [0u8; 64];
        for (i, w) in self.state.iter().enumerate() {
            out[i * 8..i * 8 + 8].copy_from_slice(&w.to_be_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; 128]) {
        let k = k512();
        let mut w = [0u64; 80];
        for (i, wi) in w.iter_mut().take(16).enumerate() {
            let mut b = [0u8; 8];
            b.copy_from_slice(&block[i * 8..i * 8 + 8]);
            *wi = u64::from_be_bytes(b);
        }
        for i in 16..80 {
            let s0 = w[i - 15].rotate_right(1) ^ w[i - 15].rotate_right(8) ^ (w[i - 15] >> 7);
            let s1 = w[i - 2].rotate_right(19) ^ w[i - 2].rotate_right(61) ^ (w[i - 2] >> 6);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..80 {
            let s1 = e.rotate_right(14) ^ e.rotate_right(18) ^ e.rotate_right(41);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(k[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(28) ^ a.rotate_right(34) ^ a.rotate_right(39);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

/// One-shot SHA-256.
pub fn sha256(data: &[u8]) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

/// One-shot SHA-512.
pub fn sha512(data: &[u8]) -> [u8; 64] {
    let mut h = Sha512::new();
    h.update(data);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn primes_are_right() {
        assert_eq!(primes(10), vec![2, 3, 5, 7, 11, 13, 17, 19, 23, 29]);
        assert_eq!(*primes(80).last().unwrap(), 409);
    }

    #[test]
    fn sha256_fips_empty() {
        assert_eq!(
            hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn sha256_fips_abc() {
        assert_eq!(
            hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn sha256_fips_two_block() {
        assert_eq!(
            hex(&sha256(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn sha512_fips_abc() {
        assert_eq!(
            hex(&sha512(b"abc")),
            "ddaf35a193617abacc417349ae20413112e6fa4e89a97ea20a9eeee64b55d39a\
             2192992a274fc1a836ba3c23a3feebbd454d4423643ce80e2a9ac94fa54ca49f"
                .replace(char::is_whitespace, "")
        );
    }

    #[test]
    fn sha512_fips_empty() {
        assert_eq!(
            hex(&sha512(b"")),
            "cf83e1357eefb8bdf1542850d66d8007d620e4050b5715dc83f4a921d36ce9ce\
             47d0d13c5d85f2b0ff8318d2877eec2f63b931bd47417a81a538327af927da3e"
                .replace(char::is_whitespace, "")
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0u32..1000).map(|i| (i * 31 % 251) as u8).collect();
        for split in [0, 1, 13, 63, 64, 65, 127, 128, 500, 999, 1000] {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), sha256(&data), "split {split}");
            let mut h = Sha512::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), sha512(&data), "split {split}");
        }
    }

    #[test]
    fn million_a() {
        // FIPS 180-4 long-message vector.
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            hex(&sha256(&data)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }
}
