//! ChaCha20-Poly1305 AEAD (RFC 8439 §2.8).

use crate::chacha::{chacha20_block, chacha20_xor};
use crate::ct::ct_eq;
use crate::poly1305::Poly1305;
use crate::CryptoError;

/// An authenticated encryption context with a fixed 256-bit key.
#[derive(Clone)]
pub struct ChaCha20Poly1305 {
    key: [u8; 32],
}

impl ChaCha20Poly1305 {
    /// Create an AEAD with the given 256-bit key.
    pub fn new(key: [u8; 32]) -> Self {
        ChaCha20Poly1305 { key }
    }

    fn mac(&self, nonce: &[u8; 12], aad: &[u8], ciphertext: &[u8]) -> [u8; 16] {
        // One-time Poly1305 key = first 32 bytes of keystream block 0.
        let block0 = chacha20_block(&self.key, 0, nonce);
        let mut otk = [0u8; 32];
        otk.copy_from_slice(&block0[..32]);

        let mut mac = Poly1305::new(&otk);
        mac.update(aad);
        mac.update(&[0u8; 16][..(16 - aad.len() % 16) % 16]);
        mac.update(ciphertext);
        mac.update(&[0u8; 16][..(16 - ciphertext.len() % 16) % 16]);
        mac.update(&(aad.len() as u64).to_le_bytes());
        mac.update(&(ciphertext.len() as u64).to_le_bytes());
        mac.finalize()
    }

    /// Encrypt `plaintext` with additional authenticated data `aad`.
    /// Returns `ciphertext || tag`.
    pub fn seal(&self, nonce: &[u8; 12], aad: &[u8], plaintext: &[u8]) -> Vec<u8> {
        let mut out = plaintext.to_vec();
        chacha20_xor(&self.key, 1, nonce, &mut out);
        let tag = self.mac(nonce, aad, &out);
        out.extend_from_slice(&tag);
        out
    }

    /// Decrypt `ciphertext || tag`; verifies the tag before releasing the
    /// plaintext.
    pub fn open(
        &self,
        nonce: &[u8; 12],
        aad: &[u8],
        sealed: &[u8],
    ) -> Result<Vec<u8>, CryptoError> {
        if sealed.len() < 16 {
            return Err(CryptoError::BadLength);
        }
        let (ciphertext, tag) = sealed.split_at(sealed.len() - 16);
        let expected = self.mac(nonce, aad, ciphertext);
        if !ct_eq(&expected, tag) {
            return Err(CryptoError::BadTag);
        }
        let mut out = ciphertext.to_vec();
        chacha20_xor(&self.key, 1, nonce, &mut out);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let aead = ChaCha20Poly1305::new([5u8; 32]);
        let nonce = [1u8; 12];
        let sealed = aead.seal(&nonce, b"header", b"secret mail body");
        let opened = aead.open(&nonce, b"header", &sealed).unwrap();
        assert_eq!(opened, b"secret mail body");
    }

    #[test]
    fn tamper_ciphertext_rejected() {
        let aead = ChaCha20Poly1305::new([5u8; 32]);
        let nonce = [1u8; 12];
        let mut sealed = aead.seal(&nonce, b"", b"payload");
        sealed[0] ^= 1;
        assert_eq!(aead.open(&nonce, b"", &sealed), Err(CryptoError::BadTag));
    }

    #[test]
    fn tamper_tag_rejected() {
        let aead = ChaCha20Poly1305::new([5u8; 32]);
        let nonce = [1u8; 12];
        let mut sealed = aead.seal(&nonce, b"", b"payload");
        let last = sealed.len() - 1;
        sealed[last] ^= 0x80;
        assert_eq!(aead.open(&nonce, b"", &sealed), Err(CryptoError::BadTag));
    }

    #[test]
    fn wrong_aad_rejected() {
        let aead = ChaCha20Poly1305::new([5u8; 32]);
        let nonce = [1u8; 12];
        let sealed = aead.seal(&nonce, b"aad-1", b"payload");
        assert_eq!(
            aead.open(&nonce, b"aad-2", &sealed),
            Err(CryptoError::BadTag)
        );
    }

    #[test]
    fn wrong_nonce_rejected() {
        let aead = ChaCha20Poly1305::new([5u8; 32]);
        let sealed = aead.seal(&[1u8; 12], b"", b"payload");
        assert_eq!(
            aead.open(&[2u8; 12], b"", &sealed),
            Err(CryptoError::BadTag)
        );
    }

    #[test]
    fn empty_plaintext() {
        let aead = ChaCha20Poly1305::new([0u8; 32]);
        let nonce = [0u8; 12];
        let sealed = aead.seal(&nonce, b"only-aad", b"");
        assert_eq!(sealed.len(), 16);
        assert_eq!(aead.open(&nonce, b"only-aad", &sealed).unwrap(), b"");
    }

    #[test]
    fn short_input_rejected() {
        let aead = ChaCha20Poly1305::new([0u8; 32]);
        assert_eq!(
            aead.open(&[0u8; 12], b"", &[0u8; 15]),
            Err(CryptoError::BadLength)
        );
    }
}
